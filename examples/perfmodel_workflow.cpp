/**
 * @file
 * The two-phase performance-model workflow (Section 6.2), isolated:
 *
 *  1. pre-train the dual-head MLP on simulator-labeled samples drawn
 *     uniformly from the DLRM search space;
 *  2. show it is accurate against the simulator but systematically
 *     wrong against "real hardware" (the oracle's sim-to-silicon bias);
 *  3. fine-tune on 20 hardware measurements and show the error
 *     collapse;
 *  4. compare per-candidate prediction latency against querying the
 *     simulator. (This repo's simulator is analytic and fast, so the
 *     gap here is modest; the paper's simulator is far costlier, and
 *     no simulator query can reflect real hardware — only the
 *     fine-tuned model does both cheaply and accurately.)
 *
 *   $ ./perfmodel_workflow --pretrain_samples=4000
 */

#include <chrono>
#include <iostream>

#include "arch/dlrm_arch.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "perfmodel/features.h"
#include "perfmodel/hardware_oracle.h"
#include "perfmodel/perf_model.h"
#include "perfmodel/two_phase.h"
#include "searchspace/dlrm_space.h"

using namespace h2o;

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("pretrain_samples", 4000, "simulator samples");
    flags.defineInt("finetune_samples", 20, "hardware measurements");
    flags.defineInt("seed", 3, "RNG seed");
    flags.parse(argc, argv);
    uint64_t seed = static_cast<uint64_t>(flags.getInt("seed"));

    arch::DlrmArch baseline;
    baseline.numDenseFeatures = 8;
    baseline.tables = {{65536, 24, 1.0}, {16384, 16, 1.0},
                       {4096, 16, 1.0}};
    baseline.bottomMlp = {{64, 0}};
    baseline.topMlp = {{128, 0}, {64, 0}};
    baseline.globalBatch = 4096;
    searchspace::DlrmSearchSpace space(baseline);
    perfmodel::DlrmFeatureEncoder encoder(space);
    hw::Platform platform{hw::tpuV4(), 16};

    auto simulate = [&](const searchspace::Sample &s) {
        arch::DlrmArch a = space.decode(s);
        double t = bench::dlrmTrainStepTime(a, platform);
        return perfmodel::SimTimes{t, t * 0.4};
    };
    perfmodel::HardwareOracle oracle({}, seed * 7 + 1);
    perfmodel::TwoPhaseTrainer trainer(space.decisions(), encoder,
                                       simulate, oracle);

    common::Rng rng(seed);
    perfmodel::PerfModelConfig mcfg;
    mcfg.hiddenWidth = 128;
    mcfg.epochs = 40;
    perfmodel::PerfModel model(encoder.dim(), mcfg, rng);

    std::cout << "phase 1: pre-training on "
              << flags.getInt("pretrain_samples")
              << " simulator-labeled candidates...\n";
    auto pre = trainer.pretrain(
        model, static_cast<size_t>(flags.getInt("pretrain_samples")), rng);
    auto sim_eval = trainer.evaluateAgainstSimulator(model, 300, rng);
    auto hw_before = trainer.evaluateAgainstOracle(model, 300, rng);

    std::cout << "phase 2: fine-tuning on "
              << flags.getInt("finetune_samples")
              << " hardware measurements...\n";
    trainer.finetune(
        model, static_cast<size_t>(flags.getInt("finetune_samples")), rng);
    auto hw_after = trainer.evaluateAgainstOracle(model, 300, rng);

    common::AsciiTable t("Two-phase training outcome (training head)");
    t.setHeader({"evaluation", "NRMSE"});
    t.addRow({"pretrained vs simulator (held out)",
              common::AsciiTable::pct(pre.train, 2)});
    t.addRow({"pretrained vs simulator (fresh)",
              common::AsciiTable::pct(sim_eval.train, 2)});
    t.addRow({"pretrained vs HARDWARE (systematic bias!)",
              common::AsciiTable::pct(hw_before.train, 2)});
    t.addRow({"finetuned vs HARDWARE",
              common::AsciiTable::pct(hw_after.train, 2)});
    t.print(std::cout);

    // --- Prediction latency vs simulation latency.
    auto sample = space.decisions().uniformSample(rng);
    auto features = encoder.encode(sample);
    constexpr int kReps = 1000;
    auto t0 = std::chrono::steady_clock::now();
    double acc = 0.0;
    for (int i = 0; i < kReps; ++i)
        acc += model.predict(features).trainStepTimeSec;
    auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < 100; ++i)
        acc += simulate(sample).trainSec;
    auto t2 = std::chrono::steady_clock::now();
    double predict_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kReps;
    double sim_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / 100;
    std::cout << "prediction latency: " << predict_us
              << " us/candidate vs simulator query " << sim_us
              << " us/candidate; unlike the simulator, the fine-tuned "
                 "model also reflects real-hardware behavior "
                 "(benchmark dummy: " << acc << ")\n";
    return 0;
}
