/**
 * @file
 * Transformer-only NLP search — the Appendix-A claim in action: "our
 * transformer search space can be used [in] isolation to search for
 * pure VIT or transformer based NLP models."
 *
 * Searches the isolated transformer space around a GPT-2-medium-scale
 * reference LM for better training throughput (tokens/s) on TPUv4 at a
 * capacity (parameter) floor — the NLP analogue of the CoAtNet-H
 * training-performance optimization.
 *
 *   $ ./nlp_search --steps=100
 */

#include <iostream>

#include "arch/nlp_arch.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "nn/activation.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "searchspace/nlp_space.h"

using namespace h2o;

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("steps", 100, "search steps");
    flags.defineInt("shards", 8, "parallel candidates per step");
    flags.defineInt("seed", 29, "RNG seed");
    common::defineThreadsFlag(flags);
    common::defineProcsFlag(flags);
    common::defineWorkersFlag(flags);
    flags.parse(argc, argv);

    hw::Platform train = hw::trainingPlatform();
    arch::NlpArch baseline = arch::referenceLm();
    searchspace::NlpSearchSpace space(baseline);

    double base_time =
        bench::simulate(arch::buildNlpGraph(baseline, train,
                                            arch::ExecMode::Training),
                        train.chip)
            .stepTimeSec;
    double base_tokens_s = baseline.tokensPerStep() / base_time;
    std::cout << "baseline " << baseline.name << ": "
              << baseline.paramCount() / 1e6 << "M params, "
              << base_tokens_s / 1e3 << "k tokens/s/chip on TPUv4\n";
    std::cout << "isolated transformer space: 10^" << space.log10Size()
              << " candidates (17920 per block)\n";

    // Quality surrogate for an LM: log-scale capacity with an anchor at
    // the baseline (the vision quality model's capacity term, reused).
    double base_capacity =
        3.5 * std::log10(std::max(baseline.paramCount(), 1.0));
    auto quality_fn = [&](const searchspace::Sample &s) {
        arch::NlpArch a = space.decode(s);
        return 3.5 * std::log10(std::max(a.paramCount(), 1.0)) -
               base_capacity; // delta vs baseline, in "quality points"
    };
    auto perf_fn = [&](const searchspace::Sample &s) {
        return std::vector<double>{
            bench::simulate(arch::buildNlpGraph(space.decode(s), train,
                                                arch::ExecMode::Training),
                            train.chip)
                .stepTimeSec};
    };
    reward::ReluReward reward({{"train_step", 0.8 * base_time, -20.0}});

    search::SurrogateSearchConfig cfg;
    cfg.numSteps = static_cast<size_t>(flags.getInt("steps"));
    cfg.samplesPerStep = static_cast<size_t>(flags.getInt("shards"));
    cfg.rl.learningRate = 0.08;
    cfg.rl.entropyWeight = 5e-3;
    cfg.threads = static_cast<size_t>(flags.getInt("threads"));
    cfg.procs = static_cast<size_t>(flags.getInt("procs"));
    cfg.workers = flags.getString("workers");
    search::SurrogateSearch search(space.decisions(), quality_fn, perf_fn,
                                   reward, cfg);
    common::Rng rng(static_cast<uint64_t>(flags.getInt("seed")));
    auto outcome = search.run(rng);

    const search::CandidateRecord *best = nullptr;
    for (const auto &c : outcome.history)
        if (!best || c.reward > best->reward)
            best = &c;
    arch::NlpArch found = space.decode(best->sample);
    double found_time =
        bench::simulate(arch::buildNlpGraph(found, train,
                                            arch::ExecMode::Training),
                        train.chip)
            .stepTimeSec;

    common::AsciiTable t("Found LM vs reference");
    t.setHeader({"metric", "baseline", "found"});
    t.addRow({"params (M)",
              common::AsciiTable::num(baseline.paramCount() / 1e6, 1),
              common::AsciiTable::num(found.paramCount() / 1e6, 1)});
    t.addRow({"tokens/s/chip (k)",
              common::AsciiTable::num(base_tokens_s / 1e3, 1),
              common::AsciiTable::num(
                  found.tokensPerStep() / found_time / 1e3, 1)});
    t.print(std::cout);

    common::AsciiTable blocks("Transformer block choices");
    blocks.setHeader({"block", "hidden", "layers", "activation",
                      "seq-pool", "primer", "low-rank"});
    for (size_t b = 0; b < found.blocks.size(); ++b) {
        const auto &blk = found.blocks[b];
        blocks.addRow({std::to_string(b), std::to_string(blk.hidden),
                       std::to_string(blk.layers),
                       nn::activationName(blk.act),
                       blk.seqPool ? "yes" : "no",
                       blk.primer ? "yes" : "no",
                       common::AsciiTable::num(blk.lowRank, 1)});
    }
    blocks.print(std::cout);
    std::cout << "training speedup: "
              << common::AsciiTable::times(base_time / found_time, 2)
              << " (target was 1.25x)\n";
    return 0;
}
