/**
 * @file
 * Hybrid vision-transformer search: search the ViT space (Table 5)
 * around CoAtNet-0 for better training throughput on TPUv4 at neutral
 * quality — the workflow that produced the CoAtNet-H family
 * (Section 7.1.1). Watch for the search discovering the same moves the
 * paper reports: cheaper activations (Squared ReLU), resolution/depth
 * re-balancing, and funnel pooling.
 *
 *   $ ./vit_search --steps=100
 */

#include <iostream>

#include "arch/vit_arch.h"
#include "baselines/coatnet.h"
#include "baselines/quality_model.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "nn/activation.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "searchspace/vit_space.h"

using namespace h2o;

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("steps", 100, "search steps");
    flags.defineInt("shards", 8, "parallel candidates per step");
    flags.defineInt("seed", 19, "RNG seed");
    common::defineThreadsFlag(flags);
    common::defineProcsFlag(flags);
    common::defineWorkersFlag(flags);
    flags.parse(argc, argv);

    hw::Platform train = hw::trainingPlatform();
    arch::VitArch baseline = baselines::coatnet(0);
    searchspace::VitSearchSpace space(baseline);

    double base_time =
        bench::simulate(arch::buildVitGraph(baseline, train,
                                            arch::ExecMode::Training),
                        train.chip)
            .stepTimeSec;
    double base_q =
        baselines::vitQuality(baseline, baselines::DatasetSize::Medium);
    std::cout << "baseline " << baseline.name << ": "
              << baseline.perChipBatch / base_time
              << " images/s/chip on TPUv4, quality " << base_q << "\n";

    auto quality_fn = [&](const searchspace::Sample &s) {
        return baselines::vitQuality(space.decode(s),
                                     baselines::DatasetSize::Medium);
    };
    auto perf_fn = [&](const searchspace::Sample &s) {
        return std::vector<double>{
            bench::simulate(arch::buildVitGraph(space.decode(s), train,
                                                arch::ExecMode::Training),
                            train.chip)
                .stepTimeSec};
    };
    reward::ReluReward reward({{"train_step", base_time, -30.0}});

    search::SurrogateSearchConfig cfg;
    cfg.numSteps = static_cast<size_t>(flags.getInt("steps"));
    cfg.samplesPerStep = static_cast<size_t>(flags.getInt("shards"));
    cfg.rl.learningRate = 0.08;
    cfg.rl.entropyWeight = 5e-3;
    cfg.threads = static_cast<size_t>(flags.getInt("threads"));
    cfg.procs = static_cast<size_t>(flags.getInt("procs"));
    cfg.workers = flags.getString("workers");
    search::SurrogateSearch search(space.decisions(), quality_fn, perf_fn,
                                   reward, cfg);
    common::Rng rng(static_cast<uint64_t>(flags.getInt("seed")));
    auto outcome = search.run(rng);

    const search::CandidateRecord *best = nullptr;
    for (const auto &c : outcome.history)
        if (!best || c.reward > best->reward)
            best = &c;
    arch::VitArch found = space.decode(best->sample);
    double found_time =
        bench::simulate(arch::buildVitGraph(found, train,
                                            arch::ExecMode::Training),
                        train.chip)
            .stepTimeSec;

    common::AsciiTable t("Found hybrid ViT vs CoAtNet-0");
    t.setHeader({"metric", "baseline", "found"});
    t.addRow({"train images/s/chip",
              common::AsciiTable::num(baseline.perChipBatch / base_time, 0),
              common::AsciiTable::num(found.perChipBatch / found_time, 0)});
    t.addRow({"quality", common::AsciiTable::num(base_q, 2),
              common::AsciiTable::num(
                  baselines::vitQuality(found,
                                        baselines::DatasetSize::Medium),
                  2)});
    t.addRow({"params (M)",
              common::AsciiTable::num(baseline.paramCount() / 1e6, 1),
              common::AsciiTable::num(found.paramCount() / 1e6, 1)});
    t.addRow({"resolution", std::to_string(baseline.resolution),
              std::to_string(found.resolution)});
    t.print(std::cout);

    common::AsciiTable blocks("Transformer block choices");
    blocks.setHeader({"block", "hidden", "layers", "activation",
                      "seq-pool", "primer", "low-rank"});
    for (size_t b = 0; b < found.tfmBlocks.size(); ++b) {
        const auto &blk = found.tfmBlocks[b];
        blocks.addRow({std::to_string(b), std::to_string(blk.hidden),
                       std::to_string(blk.layers),
                       nn::activationName(blk.act),
                       blk.seqPool ? "yes" : "no",
                       blk.primer ? "yes" : "no",
                       common::AsciiTable::num(blk.lowRank, 1)});
    }
    blocks.print(std::cout);
    std::cout << "speedup: "
              << common::AsciiTable::times(base_time / found_time, 2)
              << "\n";
    return 0;
}
