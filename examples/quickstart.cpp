/**
 * @file
 * Quickstart: the smallest end-to-end H2O-NAS run.
 *
 * Builds a toy DLRM search space, a trainable weight-sharing
 * super-network, and an in-memory synthetic-traffic pipeline, then runs
 * the unified single-step search (Figure 2 of the paper) with the
 * single-sided ReLU reward, and prints the architecture the policy
 * converged to.
 *
 *   $ ./quickstart [--threads=N] [--procs=N] [--workers=host:port,...]
 */

#include <iostream>

#include "arch/dlrm_arch.h"
#include "common/flags.h"
#include "common/rng.h"
#include "pipeline/pipeline.h"
#include "reward/reward.h"
#include "search/h2o_dlrm_search.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_supernet.h"

using namespace h2o;

int
main(int argc, char **argv)
{
    common::Flags flags;
    common::defineThreadsFlag(flags);
    common::defineProcsFlag(flags);
    common::defineWorkersFlag(flags);
    flags.parse(argc, argv);

    // 1. A baseline DLRM to search around: 3 embedding tables, a small
    //    bottom/top MLP. Every Table-5 dimension (widths, vocabs,
    //    low-rank, depth) becomes searchable around this point.
    arch::DlrmArch baseline;
    baseline.numDenseFeatures = 8;
    baseline.tables = {{4096, 16, 1.0}, {1024, 16, 1.0}, {256, 8, 2.0}};
    baseline.bottomMlp = {{32, 0}};
    baseline.topMlp = {{64, 0}, {32, 0}};
    baseline.globalBatch = 1024;

    searchspace::DlrmSearchSpace space(baseline);
    std::cout << "search space: " << space.decisions().numDecisions()
              << " categorical decisions, 10^" << space.log10Size()
              << " candidates\n";

    // 2. The weight-sharing super-network (hybrid fine/coarse sharing)
    //    and the in-memory pipeline of fresh synthetic traffic.
    common::Rng rng(42);
    supernet::DlrmSupernet supernet(space, {}, rng);
    std::vector<uint64_t> vocabs;
    std::vector<double> avg_ids;
    for (const auto &t : baseline.tables) {
        vocabs.push_back(t.vocab);
        avg_ids.push_back(t.avgIds);
    }
    auto traffic = std::make_unique<pipeline::TrafficGenerator>(
        pipeline::trafficConfigFor(baseline.numDenseFeatures, vocabs,
                                   avg_ids),
        7);
    pipeline::InMemoryPipeline pipe(std::move(traffic), 64);

    // 3. The single-sided ReLU reward (Equation 1): penalize candidates
    //    whose model size exceeds the baseline, never over-achievers.
    reward::ReluReward reward(
        {{"model_size", baseline.modelBytes(), -2.0}});

    // 4. Run the massively parallel unified single-step search.
    search::H2oSearchConfig config;
    config.numShards = 4;
    config.numSteps = 100;
    config.warmupSteps = 20;
    config.threads = static_cast<size_t>(flags.getInt("threads"));
    config.procs = static_cast<size_t>(flags.getInt("procs"));
    config.workers = flags.getString("workers");
    search::H2oDlrmSearch search(
        space, supernet, pipe,
        [&](const searchspace::Sample &s) {
            return std::vector<double>{space.decode(s).modelBytes()};
        },
        reward, config);
    common::Rng search_rng(1);
    auto outcome = search.run(search_rng);

    // 5. Report.
    arch::DlrmArch found = space.decode(outcome.finalSample);
    std::cout << "\nfound architecture after "
              << outcome.history.size() << " evaluated candidates:\n";
    for (size_t t = 0; t < found.tables.size(); ++t) {
        std::cout << "  table " << t << ": vocab " << found.tables[t].vocab
                  << ", width " << found.tables[t].width
                  << (found.tables[t].width == 0 ? " (removed)" : "")
                  << "\n";
    }
    auto print_stack = [](const char *name,
                          const std::vector<arch::MlpLayerConfig> &stack) {
        std::cout << "  " << name << ":";
        for (const auto &l : stack) {
            std::cout << " " << l.width;
            if (l.rank > 0)
                std::cout << "(rank " << l.rank << ")";
        }
        std::cout << "\n";
    };
    print_stack("bottom MLP", found.bottomMlp);
    print_stack("top MLP", found.topMlp);
    std::cout << "  params: " << found.paramCount() / 1e6 << "M (baseline "
              << baseline.paramCount() / 1e6 << "M)\n";
    std::cout << "  final mean reward: " << outcome.finalMeanReward
              << ", policy entropy: " << outcome.finalEntropy << "\n";
    auto stats = pipe.stats();
    std::cout << "  pipeline: " << stats.examplesIssued
              << " fresh examples, every batch used alpha-before-W ("
              << stats.completeLeases << "/" << stats.batchesIssued
              << " complete leases)\n";
    return 0;
}
