/**
 * @file
 * NAS-as-a-service demo: one `serve::Server`, six tenants.
 *
 * Submits a mixed batch of search jobs — surrogate searches with
 * different latency/size targets plus one supernet and one TuNAS job —
 * to a multi-tenant server sharing ONE thread pool and ONE simulator
 * cache. Mid-run it pauses a job, lets the others make progress, then
 * resumes it from its checkpoint; the job still produces exactly the
 * result it would have standalone (the demo verifies this for one job).
 * Finishes with a results table, the telemetry tail, and the shared
 * cache's cross-tenant hit statistics.
 *
 *   $ ./serve_demo [--threads=N] [--procs=N] [--workers=...] [--steps=N]
 *                [--telemetry_csv=FILE]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "serve/scheduler.h"

using namespace h2o;

int
main(int argc, char **argv)
{
    common::Flags flags;
    common::defineThreadsFlag(flags);
    common::defineProcsFlag(flags);
    common::defineWorkersFlag(flags);
    flags.defineInt("steps", 12, "search steps per job");
    flags.defineString("checkpoint_dir", "serve_demo_ckpt",
                       "directory for pause/resume checkpoints");
    flags.defineString("telemetry_csv", "",
                       "optional CSV file for the telemetry stream");
    flags.parse(argc, argv);

    const auto steps = static_cast<size_t>(flags.getInt("steps"));
    const auto procs = static_cast<size_t>(flags.getInt("procs"));
    const auto workers = flags.getString("workers");

    serve::ServeConfig config;
    config.threads = static_cast<size_t>(flags.getInt("threads"));
    config.maxConcurrentJobs = 3;
    config.stepsPerSlice = 2;
    config.checkpointDir = flags.getString("checkpoint_dir");
    std::string mkdir = "mkdir -p " + config.checkpointDir;
    if (std::system(mkdir.c_str()) != 0)
        return 1;
    serve::Server server(config);

    // 1. Six tenants: four surrogate searches sweeping the latency
    //    target, one supernet job, one TuNAS job.
    auto surrogate = [&](const char *name, uint64_t seed, double rel) {
        serve::JobSpec spec;
        spec.name = name;
        spec.kind = serve::JobKind::DlrmSurrogate;
        spec.seed = seed;
        spec.numSteps = steps;
        spec.stepTimeTargetRel = rel;
        spec.procs = procs;
        spec.workers = workers;
        return server.submit(spec);
    };
    uint64_t tight = surrogate("latency-0.85x", 11, 0.85);
    surrogate("latency-0.95x", 12, 0.95);
    surrogate("latency-1.00x", 13, 1.00);
    surrogate("latency-1.10x", 14, 1.10);
    serve::JobSpec super;
    super.name = "supernet";
    super.kind = serve::JobKind::DlrmSupernet;
    super.seed = 21;
    super.numSteps = steps;
    super.procs = procs;
    super.workers = workers;
    server.submit(super);
    serve::JobSpec tunas;
    tunas.name = "tunas";
    tunas.kind = serve::JobKind::DlrmTunas;
    tunas.seed = 22;
    tunas.numSteps = steps;
    tunas.procs = procs;
    tunas.workers = workers;
    server.submit(tunas);
    std::cout << "submitted " << server.queue().size()
              << " jobs (3 concurrency slots, slice quantum "
              << config.stepsPerSlice << " steps)\n";

    // 2. Run two rounds, then pause the tightest-target tenant: its
    //    state goes to a checkpoint and its slot frees up for the
    //    queued jobs.
    server.runRound();
    server.pauseJob(tight);
    server.runRound();
    std::cout << "paused job " << tight << " after "
              << server.queue().info(tight).stepsDone
              << " steps; checkpoint at "
              << server.checkpointPathFor(tight) << "\n";

    // 3. Let the rest drain, resume the paused tenant, drain again.
    for (int i = 0; i < 6; ++i)
        server.runRound();
    server.resumeJob(tight);
    server.runUntilIdle();

    // 4. Results table.
    std::cout << "\n  id  name            state      steps  best reward"
              << "  pareto\n";
    for (const auto &info : server.queue().snapshot()) {
        const serve::JobResult *res = server.result(info.spec.id);
        std::cout << "  " << std::setw(2) << info.spec.id << "  "
                  << std::left << std::setw(14) << info.spec.name
                  << "  " << std::setw(9)
                  << serve::jobStateName(info.state) << std::right
                  << "  " << std::setw(5) << info.stepsDone << "  "
                  << std::setw(11) << std::setprecision(5)
                  << info.bestReward << "  "
                  << (res ? res->paretoIndices.size() : 0) << " pts\n";
    }

    // 5. The paused-and-resumed job must match its standalone run
    //    bit for bit — the server's determinism contract.
    serve::JobSpec ref_spec = server.queue().info(tight).spec;
    serve::StandaloneRun ref = serve::runStandalone(ref_spec);
    const serve::JobResult *served = server.result(tight);
    bool match = served != nullptr &&
                 served->bestReward == ref.result.bestReward &&
                 served->outcome.finalMeanReward ==
                     ref.result.outcome.finalMeanReward &&
                 served->paretoIndices == ref.result.paretoIndices;
    std::cout << "\npause/resume determinism vs standalone: "
              << (match ? "MATCH (bit-identical)" : "MISMATCH") << "\n";

    // 6. Telemetry tail + shared-cache economics.
    auto rows = server.telemetry().rows();
    std::cout << "\ntelemetry (" << rows.size() << " rows, last 5):\n"
              << "  job  step  mean_reward  best_reward  hit_rate\n";
    for (size_t i = rows.size() >= 5 ? rows.size() - 5 : 0;
         i < rows.size(); ++i) {
        const auto &r = rows[i];
        std::cout << "  " << std::setw(3) << r.jobId << "  "
                  << std::setw(4) << r.step << "  " << std::setw(11)
                  << r.meanReward << "  " << std::setw(11)
                  << r.bestReward << "  " << std::setw(8)
                  << std::setprecision(3) << r.cacheHitRate << "\n";
    }
    sim::SimCacheStats cs = server.cache().stats();
    std::cout << "\nshared sim cache: " << cs.entries << " entries, "
              << cs.hits << " hits / " << cs.misses
              << " misses (lifetime hit rate "
              << 100.0 * cs.hitRate()
              << "% — every hit is a simulation some tenant skipped)\n";

    std::string csv = flags.getString("telemetry_csv");
    if (!csv.empty()) {
        server.telemetry().writeCsvFile(csv);
        std::cout << "telemetry written to " << csv << "\n";
    }
    return match ? 0 : 1;
}
