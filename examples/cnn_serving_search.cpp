/**
 * @file
 * Hardware-optimized CNN search for SERVING: search the convolutional
 * space (Table 5) around EfficientNet-X-B2 for a model with better
 * serving latency on TPUv4i at neutral-or-better quality — the
 * dynamically-fused-MBConv story of Figure 4 in action: the search
 * decides per stage whether MBConv or fused MBConv wins on this
 * hardware at this channel depth.
 *
 *   $ ./cnn_serving_search --chip=tpuv4i --steps=120
 */

#include <iostream>

#include "arch/conv_arch.h"
#include "baselines/efficientnet.h"
#include "baselines/quality_model.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "searchspace/conv_space.h"

using namespace h2o;

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("steps", 120, "search steps");
    flags.defineInt("shards", 8, "parallel candidates per step");
    flags.defineString("chip", "tpuv4i", "serving chip");
    flags.defineInt("seed", 9, "RNG seed");
    common::defineThreadsFlag(flags);
    common::defineProcsFlag(flags);
    common::defineWorkersFlag(flags);
    flags.parse(argc, argv);

    hw::Platform serve{
        hw::chipSpec(hw::chipModelFromName(flags.getString("chip"))), 1};

    arch::ConvArch baseline = baselines::efficientnetX(2);
    searchspace::ConvSearchSpace space(baseline);
    double base_time =
        bench::simulate(arch::buildConvGraph(baseline, serve,
                                             arch::ExecMode::Serving),
                        serve.chip)
            .stepTimeSec;
    double base_q = baselines::convQuality(baseline);
    std::cout << "baseline " << baseline.name << ": serving step "
              << base_time * 1e3 << " ms on " << serve.chip.name
              << ", quality " << base_q << "\n";
    std::cout << "space: 10^" << space.log10Size() << " candidates\n";

    auto quality_fn = [&](const searchspace::Sample &s) {
        return baselines::convQuality(space.decode(s));
    };
    auto perf_fn = [&](const searchspace::Sample &s) {
        return std::vector<double>{
            bench::simulate(arch::buildConvGraph(space.decode(s), serve,
                                                 arch::ExecMode::Serving),
                            serve.chip)
                .stepTimeSec};
    };
    reward::ReluReward reward({{"serve_time", base_time, -8.0}});

    search::SurrogateSearchConfig cfg;
    cfg.numSteps = static_cast<size_t>(flags.getInt("steps"));
    cfg.samplesPerStep = static_cast<size_t>(flags.getInt("shards"));
    cfg.rl.learningRate = 0.08;
    cfg.rl.entropyWeight = 5e-3;
    cfg.threads = static_cast<size_t>(flags.getInt("threads"));
    cfg.procs = static_cast<size_t>(flags.getInt("procs"));
    cfg.workers = flags.getString("workers");
    search::SurrogateSearch search(space.decisions(), quality_fn, perf_fn,
                                   reward, cfg);
    common::Rng rng(static_cast<uint64_t>(flags.getInt("seed")));
    auto outcome = search.run(rng);

    // Deploy the best evaluated candidate (retraining happens from
    // scratch anyway; per-decision argmax may compose untested combos).
    const search::CandidateRecord *best = nullptr;
    for (const auto &c : outcome.history)
        if (!best || c.reward > best->reward)
            best = &c;
    arch::ConvArch found = space.decode(best->sample);
    double found_time =
        bench::simulate(arch::buildConvGraph(found, serve,
                                             arch::ExecMode::Serving),
                        serve.chip)
            .stepTimeSec;

    common::AsciiTable t("Found architecture vs baseline");
    t.setHeader({"metric", "baseline", "found"});
    t.addRow({"serving step (ms)",
              common::AsciiTable::num(base_time * 1e3, 3),
              common::AsciiTable::num(found_time * 1e3, 3)});
    t.addRow({"quality (top-1)", common::AsciiTable::num(base_q, 2),
              common::AsciiTable::num(baselines::convQuality(found), 2)});
    t.addRow({"params (M)",
              common::AsciiTable::num(baseline.paramCount() / 1e6, 1),
              common::AsciiTable::num(found.paramCount() / 1e6, 1)});
    t.addRow({"GFLOPs/image",
              common::AsciiTable::num(baseline.flopsPerImage() / 1e9, 2),
              common::AsciiTable::num(found.flopsPerImage() / 1e9, 2)});
    t.print(std::cout);

    common::AsciiTable stages("Per-stage block choices (dynamic fusion)");
    stages.setHeader({"stage", "baseline", "found", "kernel", "expansion",
                      "filters", "layers"});
    for (size_t s = 0; s < found.stages.size(); ++s) {
        auto name = [](arch::BlockType type) {
            return type == arch::BlockType::MBConv ? "MBConv" : "F-MBConv";
        };
        stages.addRow({std::to_string(s),
                       name(baseline.stages[s].type),
                       name(found.stages[s].type),
                       std::to_string(found.stages[s].kernel),
                       common::AsciiTable::num(found.stages[s].expansion, 0),
                       std::to_string(found.stages[s].filters),
                       std::to_string(found.stages[s].layers)});
    }
    stages.print(std::cout);
    std::cout << "speedup: "
              << common::AsciiTable::times(base_time / found_time, 2)
              << " at " << (baselines::convQuality(found) >= base_q - 0.1
                                ? "neutral-or-better"
                                : "reduced")
              << " quality\n";
    return 0;
}
