/**
 * @file
 * Full DLRM search workflow — the paper's flagship use case, end to end:
 *
 *  1. define a production-like baseline DLRM and its Table-5 search
 *     space;
 *  2. pre-train the dual-head MLP performance model on simulator
 *     samples and fine-tune it on O(20) "hardware" measurements
 *     (Section 6.2);
 *  3. run the massively parallel unified single-step search: the real
 *     weight-sharing super-network trains on fresh synthetic traffic
 *     while REINFORCE learns the policy, with the ReLU multi-objective
 *     reward over predicted step time and model size;
 *  4. compare against the TuNAS alternating baseline under the same
 *     candidate budget;
 *  5. report the found architecture and its simulated performance.
 *
 *   $ ./dlrm_search --steps=150 --shards=8 --threads=8 \
 *       --checkpoint=/tmp/h2o.ckpt
 */

#include <iostream>
#include <span>

#include "arch/dlrm_arch.h"
#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "perfmodel/features.h"
#include "perfmodel/hardware_oracle.h"
#include "perfmodel/perf_model.h"
#include "perfmodel/two_phase.h"
#include "pipeline/pipeline.h"
#include "reward/reward.h"
#include "search/h2o_dlrm_search.h"
#include "search/tunas_search.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_supernet.h"

using namespace h2o;

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("steps", 150, "search steps");
    flags.defineInt("shards", 8, "virtual accelerator shards");
    flags.defineInt("pretrain_samples", 1500, "perf-model samples");
    flags.defineInt("seed", 11, "RNG seed");
    flags.defineBool("run_tunas", true, "also run the TuNAS baseline");
    flags.defineString("checkpoint", "",
                       "checkpoint file for the H2O search (resumes when "
                       "it already exists; empty disables)");
    common::defineThreadsFlag(flags);
    common::defineProcsFlag(flags);
    common::defineWorkersFlag(flags);
    flags.parse(argc, argv);
    uint64_t seed = static_cast<uint64_t>(flags.getInt("seed"));

    // --- Baseline and search space.
    arch::DlrmArch baseline;
    baseline.numDenseFeatures = 8;
    baseline.tables = {{65536, 24, 1.0}, {16384, 16, 1.0},
                       {4096, 16, 1.0},  {1024, 8, 2.0}};
    baseline.bottomMlp = {{64, 0}, {32, 0}};
    baseline.topMlp = {{128, 0}, {64, 0}};
    baseline.globalBatch = 4096;

    searchspace::DlrmSearchSpace space(baseline);
    hw::Platform platform{hw::tpuV4(), 16};
    double base_time = bench::dlrmTrainStepTime(baseline, platform);
    std::cout << "baseline: " << baseline.paramCount() / 1e6
              << "M params, simulated train step "
              << base_time * 1e3 << " ms\n";

    // --- Two-phase performance model.
    perfmodel::DlrmFeatureEncoder encoder(space);
    auto simulate = [&](const searchspace::Sample &s) {
        arch::DlrmArch a = space.decode(s);
        double t = bench::dlrmTrainStepTime(a, platform);
        return perfmodel::SimTimes{t, t * 0.4};
    };
    perfmodel::HardwareOracle oracle({}, seed * 13 + 1);
    perfmodel::TwoPhaseTrainer trainer(space.decisions(), encoder,
                                       simulate, oracle);
    common::Rng rng(seed);
    perfmodel::PerfModelConfig mcfg;
    mcfg.hiddenWidth = 128;
    mcfg.epochs = 30;
    perfmodel::PerfModel perf_model(encoder.dim(), mcfg, rng);
    auto pre = trainer.pretrain(
        perf_model, static_cast<size_t>(flags.getInt("pretrain_samples")),
        rng);
    trainer.finetune(perf_model, 20, rng);
    auto post = trainer.evaluateAgainstOracle(perf_model, 200, rng);
    std::cout << "perf model: pretrain NRMSE "
              << common::AsciiTable::pct(pre.train, 1)
              << " (vs simulator), finetuned NRMSE "
              << common::AsciiTable::pct(post.train, 1)
              << " (vs hardware oracle)\n";

    // --- Supernet + pipeline.
    common::Rng net_rng(seed + 1);
    supernet::DlrmSupernet supernet(space, {}, net_rng);
    std::vector<uint64_t> vocabs;
    std::vector<double> avg_ids;
    for (const auto &t : baseline.tables) {
        vocabs.push_back(t.vocab);
        avg_ids.push_back(t.avgIds);
    }
    auto make_pipeline = [&](uint64_t s) {
        auto gen = std::make_unique<pipeline::TrafficGenerator>(
            pipeline::trafficConfigFor(baseline.numDenseFeatures, vocabs,
                                       avg_ids),
            s);
        return std::make_unique<pipeline::InMemoryPipeline>(std::move(gen),
                                                            64);
    };
    auto pipe = make_pipeline(seed + 2);

    reward::ReluReward reward({{"step_time", base_time, -2.0},
                               {"model_size", baseline.modelBytes(),
                                -2.0}});
    // Batched performance stage: one PerfModel::predictBatch (a single
    // packed MLP forward) per step over the surviving shard candidates.
    auto perf_fn = [&](std::span<const searchspace::Sample> ss) {
        std::vector<std::vector<double>> feats;
        feats.reserve(ss.size());
        for (const auto &s : ss)
            feats.push_back(encoder.encode(s));
        auto preds = perf_model.predictBatch(feats);
        std::vector<std::vector<double>> out;
        out.reserve(ss.size());
        for (size_t i = 0; i < ss.size(); ++i)
            out.push_back({preds[i].trainStepTimeSec,
                           space.decode(ss[i]).modelBytes()});
        return out;
    };

    // --- H2O unified single-step search.
    search::H2oSearchConfig cfg;
    cfg.numShards = static_cast<size_t>(flags.getInt("shards"));
    cfg.numSteps = static_cast<size_t>(flags.getInt("steps"));
    cfg.warmupSteps = cfg.numSteps / 5;
    cfg.threads = static_cast<size_t>(flags.getInt("threads"));
    cfg.procs = static_cast<size_t>(flags.getInt("procs"));
    cfg.workers = flags.getString("workers");
    cfg.checkpointPath = flags.getString("checkpoint");
    cfg.checkpointEvery = 10;
    search::H2oDlrmSearch h2o_search(space, supernet, *pipe, perf_fn,
                                     reward, cfg);
    common::Rng srng(seed + 3);
    auto outcome = h2o_search.run(srng);

    arch::DlrmArch found = space.decode(outcome.finalSample);
    double found_time = bench::dlrmTrainStepTime(found, platform);
    common::AsciiTable t("H2O-NAS result");
    t.setHeader({"metric", "baseline", "found"});
    t.addRow({"params (M)",
              common::AsciiTable::num(baseline.paramCount() / 1e6, 2),
              common::AsciiTable::num(found.paramCount() / 1e6, 2)});
    t.addRow({"train step (us)",
              common::AsciiTable::num(base_time * 1e6, 3),
              common::AsciiTable::num(found_time * 1e6, 3)});
    t.addRow({"model size (MB)",
              common::AsciiTable::num(baseline.modelBytes() / 1e6, 1),
              common::AsciiTable::num(found.modelBytes() / 1e6, 1)});
    t.print(std::cout);

    // --- TuNAS baseline, for the data-efficiency comparison of
    // Figure 2. (Cross-algorithm REWARDS are deliberately not compared:
    // one-shot rewards depend on how much each supernet has trained and
    // are only comparable within a run — the paper's Section 2.1 point.)
    if (flags.getBool("run_tunas")) {
        common::Rng tn_rng(seed + 4);
        supernet::DlrmSupernet tunas_net(space, {}, tn_rng);
        auto tunas_pipe = make_pipeline(seed + 5);
        search::TunasSearchConfig tcfg;
        tcfg.numIterations = cfg.numSteps; // same number of policy updates
        tcfg.warmupSteps = cfg.warmupSteps;
        search::TunasSearch tunas(space, tunas_net, *tunas_pipe, perf_fn,
                                  reward, tcfg);
        common::Rng trng(seed + 6);
        auto tunas_outcome = tunas.run(trng);

        double h2o_updates = static_cast<double>(cfg.numSteps);
        auto h2o_stats = pipe->stats();
        auto tn_stats = tunas_pipe->stats();
        common::AsciiTable cmp(
            "Data efficiency per policy update (Figure 2)");
        cmp.setHeader({"algorithm", "policy updates", "batches drawn",
                       "candidates/update", "alpha-only (validation) "
                       "batches"});
        cmp.addRow({"H2O unified single-step",
                    common::AsciiTable::num(h2o_updates, 0),
                    std::to_string(h2o_stats.batchesIssued),
                    std::to_string(cfg.numShards),
                    std::to_string(h2o_stats.alphaOnlyLeases)});
        cmp.addRow({"TuNAS alternating",
                    common::AsciiTable::num(double(tcfg.numIterations), 0),
                    std::to_string(tn_stats.batchesIssued),
                    "1",
                    std::to_string(tn_stats.alphaOnlyLeases)});
        cmp.print(std::cout);
        std::cout << "Every H2O batch trained weights AND scored a "
                     "candidate; TuNAS needed a separate validation "
                     "stream ("
                  << tn_stats.alphaOnlyLeases
                  << " batches that never trained W).\n";
        (void)tunas_outcome;
    }
    return 0;
}
