/**
 * @file
 * Multi-objective reward functions (Section 6.1).
 *
 * The single-sided ReLU reward (Equation 1):
 *
 *   R(a) = Q(a) + sum_i beta_i * ReLU(T_i(a) / T_i0 - 1)
 *
 * penalizes candidates that exceed a performance target but never
 * penalizes over-achievers — with multiple constraints the feasible
 * region is sparse, and favoring faster-than-target models at equal
 * quality is what lets the RL controller navigate it.
 *
 * The TuNAS absolute-value baseline (Equation 2) replaces ReLU with
 * |.|, pulling candidates TOWARD each target from both sides and thereby
 * discarding over-achieving models.
 *
 * beta_i < 0 throughout (a penalty); targets normalize each objective so
 * rewards are scale-invariant.
 */

#ifndef H2O_REWARD_REWARD_H
#define H2O_REWARD_REWARD_H

#include <memory>
#include <string>
#include <vector>

namespace h2o::reward {

/** One performance objective: a normalized target and its penalty weight. */
struct PerformanceObjective
{
    std::string name;   ///< e.g. "train_step_time", "model_size"
    double target;      ///< T_i0; candidate values are divided by this
    double beta;        ///< penalty weight, must be negative
};

/** Quality plus measured performance values for one candidate. */
struct CandidateMetrics
{
    double quality = 0.0;               ///< Q(a), e.g. accuracy or -logloss
    std::vector<double> performance;    ///< T_i(a), parallel to objectives
};

/** Abstract multi-objective reward. */
class RewardFunction
{
  public:
    /** @param objectives Targets/weights; all betas must be negative. */
    explicit RewardFunction(std::vector<PerformanceObjective> objectives);
    virtual ~RewardFunction() = default;

    /** Combined reward for one candidate. The base implementation is
     *  the paper's additive form: Q + sum_i beta_i * penalty_i. */
    virtual double compute(const CandidateMetrics &metrics) const;

    /** The per-objective penalty term for value T against objective i. */
    virtual double penalty(double normalized_excess, size_t i) const = 0;

    /** Human-readable name. */
    virtual std::string name() const = 0;

    /** The configured objectives. */
    const std::vector<PerformanceObjective> &objectives() const
    {
        return _objectives;
    }

  protected:
    std::vector<PerformanceObjective> _objectives;
};

/** Equation 1: single-sided ReLU reward. */
class ReluReward : public RewardFunction
{
  public:
    using RewardFunction::RewardFunction;
    double penalty(double normalized_excess, size_t i) const override;
    std::string name() const override { return "relu"; }
};

/** Equation 2: TuNAS absolute-value reward. */
class AbsoluteReward : public RewardFunction
{
  public:
    using RewardFunction::RewardFunction;
    double penalty(double normalized_excess, size_t i) const override;
    std::string name() const override { return "absolute"; }
};

/** How MultiTargetReward folds per-target rewards into one scalar. */
enum class MultiTargetCombine
{
    /** The worst (smallest) per-target reward — a candidate is only as
     *  good as its weakest deployment. */
    Min,
    /** Weighted softmin, -T * log(sum_c w_c * exp(-r_c / T)): a smooth
     *  approximation of Min (within [min, min + T*log(1/w_min)] for
     *  normalized weights, converging as T -> 0) that keeps gradient
     *  signal flowing from every target, not just the current worst
     *  one. */
    SoftMin,
};

/**
 * Joint multi-target reward (one objective per deployment chip).
 *
 * Each target c gets its own single-sided ReLU reward against its own
 * latency target,
 *
 *   r_c(a) = Q(a) + beta_c * ReLU(T_c(a) / T_c0 - 1),
 *
 * and the combined reward is the min (or weighted softmin) over the
 * r_c. With one target and Min combining this is bitwise identical to
 * ReluReward over the same single objective, which is what lets a
 * one-element TargetSet reproduce legacy single-target searches
 * exactly.
 */
class MultiTargetReward : public RewardFunction
{
  public:
    /**
     * @param objectives   One per target, in TargetSet order.
     * @param combine      Min or SoftMin.
     * @param temperature  SoftMin temperature (> 0); ignored for Min.
     * @param weights      SoftMin weights, one per target; empty =
     *                     uniform. Normalized internally; ignored for
     *                     Min.
     */
    MultiTargetReward(std::vector<PerformanceObjective> objectives,
                      MultiTargetCombine combine = MultiTargetCombine::Min,
                      double temperature = 0.05,
                      std::vector<double> weights = {});

    double compute(const CandidateMetrics &metrics) const override;
    double penalty(double normalized_excess, size_t i) const override;
    std::string name() const override;

  private:
    MultiTargetCombine _combine;
    double _temperature;
    std::vector<double> _weights; ///< normalized; empty for Min
};

/** Factory by name ("relu" | "absolute"); fatal on unknown names. */
std::unique_ptr<RewardFunction>
makeReward(const std::string &name,
           std::vector<PerformanceObjective> objectives);

} // namespace h2o::reward

#endif // H2O_REWARD_REWARD_H
