/**
 * @file
 * Multi-objective reward functions (Section 6.1).
 *
 * The single-sided ReLU reward (Equation 1):
 *
 *   R(a) = Q(a) + sum_i beta_i * ReLU(T_i(a) / T_i0 - 1)
 *
 * penalizes candidates that exceed a performance target but never
 * penalizes over-achievers — with multiple constraints the feasible
 * region is sparse, and favoring faster-than-target models at equal
 * quality is what lets the RL controller navigate it.
 *
 * The TuNAS absolute-value baseline (Equation 2) replaces ReLU with
 * |.|, pulling candidates TOWARD each target from both sides and thereby
 * discarding over-achieving models.
 *
 * beta_i < 0 throughout (a penalty); targets normalize each objective so
 * rewards are scale-invariant.
 */

#ifndef H2O_REWARD_REWARD_H
#define H2O_REWARD_REWARD_H

#include <memory>
#include <string>
#include <vector>

namespace h2o::reward {

/** One performance objective: a normalized target and its penalty weight. */
struct PerformanceObjective
{
    std::string name;   ///< e.g. "train_step_time", "model_size"
    double target;      ///< T_i0; candidate values are divided by this
    double beta;        ///< penalty weight, must be negative
};

/** Quality plus measured performance values for one candidate. */
struct CandidateMetrics
{
    double quality = 0.0;               ///< Q(a), e.g. accuracy or -logloss
    std::vector<double> performance;    ///< T_i(a), parallel to objectives
};

/** Abstract multi-objective reward. */
class RewardFunction
{
  public:
    /** @param objectives Targets/weights; all betas must be negative. */
    explicit RewardFunction(std::vector<PerformanceObjective> objectives);
    virtual ~RewardFunction() = default;

    /** Combined reward for one candidate. */
    double compute(const CandidateMetrics &metrics) const;

    /** The per-objective penalty term for value T against objective i. */
    virtual double penalty(double normalized_excess, size_t i) const = 0;

    /** Human-readable name. */
    virtual std::string name() const = 0;

    /** The configured objectives. */
    const std::vector<PerformanceObjective> &objectives() const
    {
        return _objectives;
    }

  protected:
    std::vector<PerformanceObjective> _objectives;
};

/** Equation 1: single-sided ReLU reward. */
class ReluReward : public RewardFunction
{
  public:
    using RewardFunction::RewardFunction;
    double penalty(double normalized_excess, size_t i) const override;
    std::string name() const override { return "relu"; }
};

/** Equation 2: TuNAS absolute-value reward. */
class AbsoluteReward : public RewardFunction
{
  public:
    using RewardFunction::RewardFunction;
    double penalty(double normalized_excess, size_t i) const override;
    std::string name() const override { return "absolute"; }
};

/** Factory by name ("relu" | "absolute"); fatal on unknown names. */
std::unique_ptr<RewardFunction>
makeReward(const std::string &name,
           std::vector<PerformanceObjective> objectives);

} // namespace h2o::reward

#endif // H2O_REWARD_REWARD_H
