#include "reward/reward.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::reward {

RewardFunction::RewardFunction(std::vector<PerformanceObjective> objectives)
    : _objectives(std::move(objectives))
{
    for (const auto &obj : _objectives) {
        h2o_assert(obj.beta < 0.0, "objective '", obj.name,
                   "' must have a negative beta, got ", obj.beta);
        h2o_assert(obj.target > 0.0, "objective '", obj.name,
                   "' must have a positive target, got ", obj.target);
    }
}

double
RewardFunction::compute(const CandidateMetrics &metrics) const
{
    h2o_assert(metrics.performance.size() == _objectives.size(),
               "candidate has ", metrics.performance.size(),
               " performance values for ", _objectives.size(),
               " objectives");
    double reward = metrics.quality;
    for (size_t i = 0; i < _objectives.size(); ++i) {
        double normalized_excess =
            metrics.performance[i] / _objectives[i].target - 1.0;
        reward += _objectives[i].beta * penalty(normalized_excess, i);
    }
    return reward;
}

double
ReluReward::penalty(double normalized_excess, size_t) const
{
    return normalized_excess > 0.0 ? normalized_excess : 0.0;
}

double
AbsoluteReward::penalty(double normalized_excess, size_t) const
{
    return std::abs(normalized_excess);
}

MultiTargetReward::MultiTargetReward(
    std::vector<PerformanceObjective> objectives, MultiTargetCombine combine,
    double temperature, std::vector<double> weights)
    : RewardFunction(std::move(objectives)),
      _combine(combine),
      _temperature(temperature),
      _weights(std::move(weights))
{
    h2o_assert(!_objectives.empty(), "multi-target reward needs >= 1 target");
    if (_combine == MultiTargetCombine::SoftMin) {
        h2o_assert(_temperature > 0.0, "softmin temperature must be > 0, got ",
                   _temperature);
        if (_weights.empty())
            _weights.assign(_objectives.size(), 1.0);
        h2o_assert(_weights.size() == _objectives.size(), "got ",
                   _weights.size(), " weights for ", _objectives.size(),
                   " targets");
        double total = 0.0;
        for (double w : _weights) {
            h2o_assert(w > 0.0, "softmin weights must be positive, got ", w);
            total += w;
        }
        for (double &w : _weights)
            w /= total;
    }
}

double
MultiTargetReward::compute(const CandidateMetrics &metrics) const
{
    h2o_assert(metrics.performance.size() == _objectives.size(),
               "candidate has ", metrics.performance.size(),
               " per-target costs for ", _objectives.size(), " targets");
    // Per-target rewards, each against its own latency target. The
    // k == 1 Min case must stay bitwise identical to ReluReward, so the
    // expression mirrors RewardFunction::compute's op order exactly.
    double worst = 0.0;
    std::vector<double> perTarget;
    if (_combine == MultiTargetCombine::SoftMin)
        perTarget.reserve(_objectives.size());
    for (size_t c = 0; c < _objectives.size(); ++c) {
        double reward = metrics.quality;
        double normalized_excess =
            metrics.performance[c] / _objectives[c].target - 1.0;
        reward += _objectives[c].beta * penalty(normalized_excess, c);
        if (c == 0 || reward < worst)
            worst = reward;
        if (_combine == MultiTargetCombine::SoftMin)
            perTarget.push_back(reward);
    }
    if (_combine == MultiTargetCombine::Min)
        return worst;
    // Stable weighted softmin anchored at the minimum:
    //   -T log(sum w_c e^{-r_c/T}) = m - T log(sum w_c e^{-(r_c-m)/T}).
    double sum = 0.0;
    for (size_t c = 0; c < perTarget.size(); ++c)
        sum += _weights[c] * std::exp(-(perTarget[c] - worst) / _temperature);
    return worst - _temperature * std::log(sum);
}

double
MultiTargetReward::penalty(double normalized_excess, size_t) const
{
    return normalized_excess > 0.0 ? normalized_excess : 0.0;
}

std::string
MultiTargetReward::name() const
{
    return _combine == MultiTargetCombine::Min ? "multi_min"
                                               : "multi_softmin";
}

std::unique_ptr<RewardFunction>
makeReward(const std::string &name,
           std::vector<PerformanceObjective> objectives)
{
    if (name == "relu")
        return std::make_unique<ReluReward>(std::move(objectives));
    if (name == "absolute" || name == "abs")
        return std::make_unique<AbsoluteReward>(std::move(objectives));
    h2o_fatal("unknown reward function '", name, "' (relu|absolute)");
}

} // namespace h2o::reward
