#include "reward/reward.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::reward {

RewardFunction::RewardFunction(std::vector<PerformanceObjective> objectives)
    : _objectives(std::move(objectives))
{
    for (const auto &obj : _objectives) {
        h2o_assert(obj.beta < 0.0, "objective '", obj.name,
                   "' must have a negative beta, got ", obj.beta);
        h2o_assert(obj.target > 0.0, "objective '", obj.name,
                   "' must have a positive target, got ", obj.target);
    }
}

double
RewardFunction::compute(const CandidateMetrics &metrics) const
{
    h2o_assert(metrics.performance.size() == _objectives.size(),
               "candidate has ", metrics.performance.size(),
               " performance values for ", _objectives.size(),
               " objectives");
    double reward = metrics.quality;
    for (size_t i = 0; i < _objectives.size(); ++i) {
        double normalized_excess =
            metrics.performance[i] / _objectives[i].target - 1.0;
        reward += _objectives[i].beta * penalty(normalized_excess, i);
    }
    return reward;
}

double
ReluReward::penalty(double normalized_excess, size_t) const
{
    return normalized_excess > 0.0 ? normalized_excess : 0.0;
}

double
AbsoluteReward::penalty(double normalized_excess, size_t) const
{
    return std::abs(normalized_excess);
}

std::unique_ptr<RewardFunction>
makeReward(const std::string &name,
           std::vector<PerformanceObjective> objectives)
{
    if (name == "relu")
        return std::make_unique<ReluReward>(std::move(objectives));
    if (name == "absolute" || name == "abs")
        return std::make_unique<AbsoluteReward>(std::move(objectives));
    h2o_fatal("unknown reward function '", name, "' (relu|absolute)");
}

} // namespace h2o::reward
