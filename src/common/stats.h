/**
 * @file
 * Statistics helpers used throughout the library: summary statistics,
 * error metrics for the performance model (NRMSE, as reported in Table 1 of
 * the paper), rank correlations for sanity-checking performance proxies,
 * geometric means for speedup tables (Table 4), and the quality/step-time
 * bucketizer used by the Figure 5 reward-function study.
 */

#ifndef H2O_COMMON_STATS_H
#define H2O_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace h2o::common {

/** Arithmetic mean. @pre xs non-empty. */
double mean(const std::vector<double> &xs);

/** Population variance. @pre xs non-empty. */
double variance(const std::vector<double> &xs);

/** Population standard deviation. */
double stddev(const std::vector<double> &xs);

/** Geometric mean. @pre all xs strictly positive. */
double geomean(const std::vector<double> &xs);

/** Root-mean-square error between predictions and targets. */
double rmse(const std::vector<double> &pred, const std::vector<double> &truth);

/**
 * Normalized RMSE: RMSE divided by the mean of the targets, the metric the
 * paper reports for performance-model quality (Table 1).
 * @pre mean(truth) != 0.
 */
double nrmse(const std::vector<double> &pred,
             const std::vector<double> &truth);

/** Mean absolute percentage error. @pre all truth values nonzero. */
double mape(const std::vector<double> &pred, const std::vector<double> &truth);

/** Pearson linear correlation coefficient. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Spearman rank correlation coefficient. */
double spearman(const std::vector<double> &xs, const std::vector<double> &ys);

/** Linear-interpolated quantile, q in [0, 1]. @pre xs non-empty. */
double quantile(std::vector<double> xs, double q);

/** Fractional ranks with ties averaged (helper for spearman). */
std::vector<double> ranks(const std::vector<double> &xs);

/**
 * Buckets (x, y) points by x and averages y within each bucket.
 *
 * This is how Figure 5b/5c summarize a searched-model population: cluster
 * models into quality buckets and compare the average step time per bucket
 * (and vice versa).
 */
class Bucketizer
{
  public:
    /** One output bucket: [lo, hi) in x, with mean y of its members. */
    struct Bucket
    {
        double lo;
        double hi;
        double meanY;
        size_t count;
    };

    /**
     * @param num_buckets Number of equal-width buckets spanning the x range.
     */
    explicit Bucketizer(size_t num_buckets);

    /** Add one observation. */
    void add(double x, double y);

    /** Compute buckets over everything added so far (empty buckets skipped). */
    std::vector<Bucket> buckets() const;

  private:
    size_t _numBuckets;
    std::vector<double> _xs;
    std::vector<double> _ys;
};

/** Streaming mean/variance accumulator (Welford). */
class RunningStat
{
  public:
    /** Add one sample. */
    void push(double x);

    /** Number of samples pushed. */
    size_t count() const { return _count; }

    /** Mean of pushed samples; 0 when empty. */
    double mean() const { return _mean; }

    /** Population variance; 0 when fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest pushed sample. */
    double min() const { return _min; }

    /** Largest pushed sample. */
    double max() const { return _max; }

  private:
    size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

} // namespace h2o::common

#endif // H2O_COMMON_STATS_H
