#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace h2o::common {

AsciiTable::AsciiTable(std::string title) : _title(std::move(title)) {}

void
AsciiTable::setHeader(std::vector<std::string> header)
{
    h2o_assert(_rows.empty(), "setHeader after rows were added");
    _header = std::move(header);
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    h2o_assert(row.size() == _header.size(),
               "row width ", row.size(), " != header width ", _header.size());
    _rows.push_back(std::move(row));
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(_header.size(), 0);
    for (size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << _title << " ==\n";
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    print_row(_header);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        print_row(row);
    os << "\n";
}

void
AsciiTable::printCsv(std::ostream &os) const
{
    auto csv_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    csv_row(_header);
    for (const auto &row : _rows)
        csv_row(row);
}

std::string
AsciiTable::num(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

std::string
AsciiTable::times(double v, int decimals)
{
    return num(v, decimals) + "x";
}

std::string
AsciiTable::pct(double v, int decimals)
{
    return num(v * 100.0, decimals) + "%";
}

} // namespace h2o::common
