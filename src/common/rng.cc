#include "common/rng.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace h2o::common {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) : _seed(seed), _engine(seed) {}

Rng
Rng::fork(uint64_t salt)
{
    uint64_t state = _seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
    // Two splitmix rounds decorrelate even adjacent salts.
    uint64_t child = splitmix64(state);
    child ^= splitmix64(state);
    return Rng(child);
}

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(_engine);
}

double
Rng::uniform(double lo, double hi)
{
    h2o_assert(lo <= hi, "uniform bounds inverted: ", lo, " > ", hi);
    return std::uniform_real_distribution<double>(lo, hi)(_engine);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    h2o_assert(lo <= hi, "uniformInt bounds inverted: ", lo, " > ", hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(_engine);
}

double
Rng::normal()
{
    return std::normal_distribution<double>(0.0, 1.0)(_engine);
}

double
Rng::normal(double mean, double stddev)
{
    h2o_assert(stddev >= 0.0, "negative stddev ", stddev);
    return std::normal_distribution<double>(mean, stddev)(_engine);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    h2o_assert(p >= 0.0 && p <= 1.0, "bernoulli p out of range: ", p);
    return uniform() < p;
}

size_t
Rng::categorical(const std::vector<double> &weights)
{
    h2o_assert(!weights.empty(), "categorical over empty weights");
    double total = 0.0;
    for (double w : weights) {
        h2o_assert(w >= 0.0, "negative categorical weight ", w);
        total += w;
    }
    h2o_assert(total > 0.0, "categorical weights sum to zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

size_t
Rng::zipf(size_t n, double s)
{
    h2o_assert(n > 0, "zipf over empty support");
    // Direct inverse-CDF over the (small) support; callers use this for
    // embedding-table access skew where n is bounded by vocabulary buckets.
    double norm = 0.0;
    for (size_t k = 1; k <= n; ++k)
        norm += 1.0 / std::pow(static_cast<double>(k), s);
    double r = uniform() * norm;
    double acc = 0.0;
    for (size_t k = 1; k <= n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k), s);
        if (r < acc)
            return k - 1;
    }
    return n - 1;
}

std::vector<size_t>
Rng::permutation(size_t n)
{
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), size_t{0});
    for (size_t i = n; i > 1; --i) {
        size_t j = static_cast<size_t>(uniformInt(0, static_cast<int64_t>(i) - 1));
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

uint64_t
Rng::next64()
{
    return _engine();
}

void
Rng::save(std::ostream &os) const
{
    // The mt19937_64 stream operators serialize the full engine state as
    // decimal integers — exact, unlike a double round-trip.
    os << "rng " << _seed << "\n" << _engine << "\n";
}

void
Rng::load(std::istream &is)
{
    std::string word;
    if (!(is >> word) || word != "rng")
        h2o_fatal("checkpoint expected 'rng', found '", word, "'");
    if (!(is >> _seed >> _engine))
        h2o_fatal("checkpoint truncated inside rng state");
}

} // namespace h2o::common
