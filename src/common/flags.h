/**
 * @file
 * A minimal command-line flag parser for the bench and example binaries.
 *
 * Flags take the form --name=value or --name value. Unknown flags are a
 * fatal error (user mistake), so typos are caught instead of silently
 * running the default configuration.
 */

#ifndef H2O_COMMON_FLAGS_H
#define H2O_COMMON_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace h2o::common {

/**
 * Parses argv against a set of registered flags with defaults.
 */
class Flags
{
  public:
    /** Register an integer flag with its default and help string. */
    void defineInt(const std::string &name, int64_t def,
                   const std::string &help);

    /** Register a floating-point flag. */
    void defineDouble(const std::string &name, double def,
                      const std::string &help);

    /** Register a string flag. */
    void defineString(const std::string &name, const std::string &def,
                      const std::string &help);

    /** Register a boolean flag (--name or --name=true/false). */
    void defineBool(const std::string &name, bool def,
                    const std::string &help);

    /**
     * Parse argv. Recognizes --help (prints usage, exits 0). Fatal on
     * unknown flags or malformed values.
     */
    void parse(int argc, char **argv);

    /** Fetch a parsed (or default) integer flag. */
    int64_t getInt(const std::string &name) const;

    /** Fetch a parsed (or default) double flag. */
    double getDouble(const std::string &name) const;

    /** Fetch a parsed (or default) string flag. */
    std::string getString(const std::string &name) const;

    /** Fetch a parsed (or default) boolean flag. */
    bool getBool(const std::string &name) const;

  private:
    enum class Type { Int, Double, String, Bool };

    struct Spec
    {
        Type type;
        std::string value;
        std::string help;
    };

    const Spec &lookup(const std::string &name, Type type) const;
    void printUsage(const char *argv0) const;

    std::map<std::string, Spec> _specs;
};

/**
 * Default value for a --threads flag: the H2O_THREADS environment
 * variable when set (and a valid non-negative integer), otherwise 0,
 * which the execution runtime resolves to one worker per hardware
 * thread. The command line always wins over the environment.
 */
int64_t threadsFlagDefault();

/** Register the standard --threads flag with the shared help text. */
void defineThreadsFlag(Flags &flags);

/**
 * Default value for a --procs flag: the H2O_PROCS environment variable
 * when set, otherwise 0 (in-process thread execution — no workers are
 * forked). Unlike H2O_THREADS, a malformed or negative H2O_PROCS is
 * FATAL rather than ignored: silently falling back to 0 would silently
 * drop the multi-process transport the user asked for.
 */
int64_t procsFlagDefault();

/** Register the standard --procs flag with the shared help text. */
void defineProcsFlag(Flags &flags);

/**
 * Default value for a --workers flag: the H2O_WORKERS environment
 * variable when set, otherwise "" (no remote workers). The value is a
 * comma-separated list of remote worker daemon endpoints — "host:port",
 * or "local" to fork a loopback daemon. Like H2O_PROCS (and unlike
 * H2O_THREADS), a malformed H2O_WORKERS is FATAL: silently dropping
 * endpoints would silently shrink the fleet the user asked for. Only
 * the list SYNTAX is validated here; reachability is checked when the
 * remote pool connects.
 */
std::string workersFlagDefault();

/** Register the standard --workers flag with the shared help text. */
void defineWorkersFlag(Flags &flags);

} // namespace h2o::common

#endif // H2O_COMMON_FLAGS_H
