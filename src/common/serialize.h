/**
 * @file
 * Minimal tagged text serialization for checkpoints.
 *
 * Production NAS runs continuously (Section 7.3's zero-touch loop), so
 * the policy and the fine-tuned performance model must survive process
 * restarts. The format is deliberately simple and diff-able:
 *
 *   tag <name> <count>
 *   v0 v1 v2 ...
 *
 * Readers are strict: a missing or misnamed tag is a fatal error
 * (corrupt checkpoints must not be silently half-loaded).
 */

#ifndef H2O_COMMON_SERIALIZE_H
#define H2O_COMMON_SERIALIZE_H

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace h2o::common {

/** Write one tagged vector of doubles. */
void writeTagged(std::ostream &os, const std::string &tag,
                 const std::vector<double> &values);

/** Write one tagged scalar. */
void writeTaggedScalar(std::ostream &os, const std::string &tag,
                       double value);

/**
 * Read a tagged vector; fatal if the next tag does not match `tag`
 * or the stream is malformed.
 */
std::vector<double> readTagged(std::istream &is, const std::string &tag);

/** Read a tagged scalar; fatal on mismatch. */
double readTaggedScalar(std::istream &is, const std::string &tag);

/**
 * Write one tagged vector of 64-bit counters. Encoded as decimal
 * integers, not doubles: step counts, sequence cursors and seeds must
 * round-trip exactly even above 2^53.
 */
void writeTaggedU64(std::ostream &os, const std::string &tag,
                    const std::vector<uint64_t> &values);

/** Read a tagged u64 vector; fatal on tag mismatch or truncation. */
std::vector<uint64_t> readTaggedU64(std::istream &is,
                                    const std::string &tag);

} // namespace h2o::common

#endif // H2O_COMMON_SERIALIZE_H
