#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace h2o::common {

void
Flags::defineInt(const std::string &name, int64_t def, const std::string &help)
{
    _specs[name] = Spec{Type::Int, std::to_string(def), help};
}

void
Flags::defineDouble(const std::string &name, double def,
                    const std::string &help)
{
    _specs[name] = Spec{Type::Double, std::to_string(def), help};
}

void
Flags::defineString(const std::string &name, const std::string &def,
                    const std::string &help)
{
    _specs[name] = Spec{Type::String, def, help};
}

void
Flags::defineBool(const std::string &name, bool def, const std::string &help)
{
    _specs[name] = Spec{Type::Bool, def ? "true" : "false", help};
}

void
Flags::printUsage(const char *argv0) const
{
    std::fprintf(stderr, "usage: %s [--flag=value ...]\n", argv0);
    for (const auto &[name, spec] : _specs) {
        std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                     spec.help.c_str(), spec.value.c_str());
    }
}

void
Flags::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            h2o_fatal("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);
        std::string name, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            auto it = _specs.find(name);
            if (it != _specs.end() && it->second.type == Type::Bool) {
                value = "true";
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                h2o_fatal("flag --", name, " is missing a value");
            }
        }
        auto it = _specs.find(name);
        if (it == _specs.end())
            h2o_fatal("unknown flag --", name);
        // Validate numeric flags eagerly so typos fail at parse time.
        if (it->second.type == Type::Int) {
            char *end = nullptr;
            (void)std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                h2o_fatal("flag --", name, " expects an integer, got '",
                          value, "'");
        } else if (it->second.type == Type::Double) {
            char *end = nullptr;
            (void)std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                h2o_fatal("flag --", name, " expects a number, got '", value,
                          "'");
        } else if (it->second.type == Type::Bool) {
            if (value != "true" && value != "false")
                h2o_fatal("flag --", name, " expects true/false, got '",
                          value, "'");
        }
        it->second.value = value;
    }
}

const Flags::Spec &
Flags::lookup(const std::string &name, Type type) const
{
    auto it = _specs.find(name);
    h2o_assert(it != _specs.end(), "flag --", name, " was never defined");
    h2o_assert(it->second.type == type, "flag --", name,
               " fetched with wrong type");
    return it->second;
}

int64_t
Flags::getInt(const std::string &name) const
{
    return std::strtoll(lookup(name, Type::Int).value.c_str(), nullptr, 10);
}

double
Flags::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Type::Double).value.c_str(), nullptr);
}

std::string
Flags::getString(const std::string &name) const
{
    return lookup(name, Type::String).value;
}

bool
Flags::getBool(const std::string &name) const
{
    return lookup(name, Type::Bool).value == "true";
}

int64_t
threadsFlagDefault()
{
    const char *env = std::getenv("H2O_THREADS");
    if (!env || *env == '\0')
        return 0;
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) {
        warn("ignoring malformed H2O_THREADS='", env, "'");
        return 0;
    }
    return v;
}

void
defineThreadsFlag(Flags &flags)
{
    flags.defineInt("threads", threadsFlagDefault(),
                    "worker threads for shard evaluation (0 = one per "
                    "hardware thread; default from H2O_THREADS)");
}

int64_t
procsFlagDefault()
{
    const char *env = std::getenv("H2O_PROCS");
    if (!env || *env == '\0')
        return 0;
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 0)
        h2o_fatal("malformed H2O_PROCS='", env,
                  "': expected a non-negative integer (0 = in-process, "
                  "N = N worker processes)");
    return v;
}

void
defineProcsFlag(Flags &flags)
{
    flags.defineInt("procs", procsFlagDefault(),
                    "worker processes for shard evaluation (0 = "
                    "in-process threads; default from H2O_PROCS)");
}

namespace {

/** Syntactic check of one worker-list entry: "local" or host:port with
 *  a nonempty host and a port in [1, 65535]. The authoritative parse
 *  (exec::parseWorkerList) applies the same rules; this copy keeps
 *  common/ free of an exec/ dependency. */
bool
validWorkerEntry(const std::string &entry)
{
    if (entry == "local")
        return true;
    size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size())
        return false;
    const std::string portStr = entry.substr(colon + 1);
    for (char c : portStr) {
        if (c < '0' || c > '9')
            return false;
    }
    char *end = nullptr;
    long long port = std::strtoll(portStr.c_str(), &end, 10);
    return end != portStr.c_str() && *end == '\0' && port >= 1 &&
           port <= 65535;
}

} // namespace

std::string
workersFlagDefault()
{
    const char *env = std::getenv("H2O_WORKERS");
    if (!env || *env == '\0')
        return "";
    const std::string csv(env);
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        const std::string entry = csv.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!validWorkerEntry(entry))
            h2o_fatal("malformed H2O_WORKERS='", env, "': entry '", entry,
                      "' is not 'local' or host:port");
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return csv;
}

void
defineWorkersFlag(Flags &flags)
{
    flags.defineString("workers", workersFlagDefault(),
                       "comma-separated remote worker daemons for shard "
                       "evaluation ('host:port', or 'local' to fork a "
                       "loopback daemon); empty = none (default from "
                       "H2O_WORKERS)");
}

} // namespace h2o::common
