#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace h2o::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_emit_mutex;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_emit_mutex);
        std::fprintf(stderr, "[fatal] %s (%s:%d)\n", msg.c_str(), file, line);
        std::fflush(stderr);
    }
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_emit_mutex);
        std::fprintf(stderr, "[panic] %s (%s:%d)\n", msg.c_str(), file, line);
        std::fflush(stderr);
    }
    std::abort();
}

} // namespace detail

} // namespace h2o::common
