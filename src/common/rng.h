/**
 * @file
 * Deterministic random number generation.
 *
 * All randomness in the library flows through Rng instances whose seeds are
 * derived explicitly, so every search, simulation, and benchmark is exactly
 * reproducible given a seed. Independent streams (one per virtual
 * accelerator shard, one per workload generator, ...) are derived with
 * Rng::fork(), which uses SplitMix64 to decorrelate child seeds.
 */

#ifndef H2O_COMMON_RNG_H
#define H2O_COMMON_RNG_H

#include <cstdint>
#include <istream>
#include <ostream>
#include <random>
#include <vector>

namespace h2o::common {

/**
 * A seeded random stream wrapping a 64-bit Mersenne Twister with
 * convenience samplers used across the library.
 */
class Rng
{
  public:
    /** Construct a stream from an explicit seed. */
    explicit Rng(uint64_t seed = 0x5eed5eedULL);

    /**
     * Derive an independent child stream.
     *
     * @param salt Distinguishes siblings forked from the same parent state.
     */
    Rng fork(uint64_t salt);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal draw. */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal draw: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * @pre weights is non-empty and sums to a positive value.
     */
    size_t categorical(const std::vector<double> &weights);

    /** Zipf-distributed integer in [0, n) with exponent s (s >= 0). */
    size_t zipf(size_t n, double s);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<size_t> permutation(size_t n);

    /** Raw 64-bit draw (for deriving sub-seeds). */
    uint64_t next64();

    /** The seed this stream was constructed with. */
    uint64_t seed() const { return _seed; }

    /**
     * Checkpoint the stream: seed plus full engine state, exactly. A
     * restored stream produces the identical draw sequence, which is
     * what makes a resumed search bit-identical to an uninterrupted one.
     */
    void save(std::ostream &os) const;

    /** Restore a checkpointed stream; fatal on malformed input. */
    void load(std::istream &is);

  private:
    uint64_t _seed;
    std::mt19937_64 _engine;
};

/** SplitMix64 step, exposed for deterministic seed derivation. */
uint64_t splitmix64(uint64_t &state);

} // namespace h2o::common

#endif // H2O_COMMON_RNG_H
