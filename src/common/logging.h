/**
 * @file
 * Status/error reporting in the gem5 tradition.
 *
 * Severity taxonomy:
 *  - inform(): normal operating message, no connotation of misbehavior.
 *  - warn():   something may be off; a good place to look if strange
 *              behavior follows.
 *  - fatal():  the run cannot continue because of a *user* error (bad
 *              configuration, invalid arguments). Exits with code 1.
 *  - panic():  an internal invariant was violated (a bug in this library).
 *              Aborts, so a core dump / debugger can capture state.
 */

#ifndef H2O_COMMON_LOGGING_H
#define H2O_COMMON_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace h2o::common {

/** Verbosity levels for runtime filtering of status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the global verbosity; messages above this level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

/** Emit a formatted message to stderr with a severity tag. */
void emit(const char *tag, const std::string &msg);

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Fold a parameter pack into a string via ostringstream. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Informative message for the user; printed at Info verbosity and above. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info", detail::cat(std::forward<Args>(args)...));
}

/** Debug-level message; printed only at Debug verbosity. */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug", detail::cat(std::forward<Args>(args)...));
}

/** Warning: possibly-incorrect behavior that does not stop the run. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::cat(std::forward<Args>(args)...));
}

} // namespace h2o::common

/**
 * Terminate because of a user/configuration error.
 * Usage: h2o_fatal("batch size ", bs, " must be positive").
 */
#define h2o_fatal(...)                                                        \
    ::h2o::common::detail::fatalImpl(                                         \
        __FILE__, __LINE__, ::h2o::common::detail::cat(__VA_ARGS__))

/** Terminate because an internal invariant was violated (library bug). */
#define h2o_panic(...)                                                        \
    ::h2o::common::detail::panicImpl(                                         \
        __FILE__, __LINE__, ::h2o::common::detail::cat(__VA_ARGS__))

/** Panic unless a library-internal invariant holds. Always checked. */
#define h2o_assert(cond, ...)                                                 \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::h2o::common::detail::panicImpl(                                 \
                __FILE__, __LINE__,                                           \
                ::h2o::common::detail::cat("assertion failed: " #cond " ",    \
                                           ##__VA_ARGS__));                   \
        }                                                                     \
    } while (0)

#endif // H2O_COMMON_LOGGING_H
