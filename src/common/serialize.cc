#include "common/serialize.h"

#include <iomanip>
#include <limits>

#include "common/logging.h"

namespace h2o::common {

void
writeTagged(std::ostream &os, const std::string &tag,
            const std::vector<double> &values)
{
    os << "tag " << tag << " " << values.size() << "\n";
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            os << " ";
        os << values[i];
    }
    os << "\n";
}

void
writeTaggedScalar(std::ostream &os, const std::string &tag, double value)
{
    writeTagged(os, tag, {value});
}

std::vector<double>
readTagged(std::istream &is, const std::string &tag)
{
    std::string word, name;
    size_t count = 0;
    if (!(is >> word >> name >> count))
        h2o_fatal("checkpoint truncated while expecting tag '", tag, "'");
    if (word != "tag" || name != tag)
        h2o_fatal("checkpoint expected tag '", tag, "', found '", word,
                  " ", name, "'");
    std::vector<double> values(count);
    for (size_t i = 0; i < count; ++i) {
        if (!(is >> values[i]))
            h2o_fatal("checkpoint truncated inside tag '", tag, "'");
    }
    return values;
}

double
readTaggedScalar(std::istream &is, const std::string &tag)
{
    auto values = readTagged(is, tag);
    if (values.size() != 1)
        h2o_fatal("checkpoint tag '", tag, "' expected 1 value, found ",
                  values.size());
    return values[0];
}

void
writeTaggedU64(std::ostream &os, const std::string &tag,
               const std::vector<uint64_t> &values)
{
    os << "tagu64 " << tag << " " << values.size() << "\n";
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            os << " ";
        os << values[i];
    }
    os << "\n";
}

std::vector<uint64_t>
readTaggedU64(std::istream &is, const std::string &tag)
{
    std::string word, name;
    size_t count = 0;
    if (!(is >> word >> name >> count))
        h2o_fatal("checkpoint truncated while expecting tag '", tag, "'");
    if (word != "tagu64" || name != tag)
        h2o_fatal("checkpoint expected u64 tag '", tag, "', found '", word,
                  " ", name, "'");
    std::vector<uint64_t> values(count);
    for (size_t i = 0; i < count; ++i) {
        if (!(is >> values[i]))
            h2o_fatal("checkpoint truncated inside tag '", tag, "'");
    }
    return values;
}

} // namespace h2o::common
