/**
 * @file
 * Text tables for benchmark output. Every bench binary regenerating one of
 * the paper's tables/figures prints its rows through AsciiTable so the
 * output is directly comparable to the published artifact, and can also
 * dump CSV for downstream plotting.
 */

#ifndef H2O_COMMON_TABLE_H
#define H2O_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace h2o::common {

/**
 * A simple column-aligned text table.
 *
 * Cells are strings; numeric helpers format with a fixed precision. The
 * table is rendered with a header rule and column padding.
 */
class AsciiTable
{
  public:
    /** @param title Printed above the table. */
    explicit AsciiTable(std::string title);

    /** Set the header row. Must be called before any addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (header + rows, comma separated). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added. */
    size_t numRows() const { return _rows.size(); }

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 3);

    /** Format a value as a multiplier, e.g. "1.54x". */
    static std::string times(double v, int decimals = 2);

    /** Format a fraction as a percentage, e.g. 0.22 -> "22.0%". */
    static std::string pct(double v, int decimals = 1);

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace h2o::common

#endif // H2O_COMMON_TABLE_H
