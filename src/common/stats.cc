#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace h2o::common {

double
mean(const std::vector<double> &xs)
{
    h2o_assert(!xs.empty(), "mean of empty vector");
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
geomean(const std::vector<double> &xs)
{
    h2o_assert(!xs.empty(), "geomean of empty vector");
    double acc = 0.0;
    for (double x : xs) {
        h2o_assert(x > 0.0, "geomean requires positive values, got ", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
rmse(const std::vector<double> &pred, const std::vector<double> &truth)
{
    h2o_assert(pred.size() == truth.size() && !pred.empty(),
               "rmse size mismatch: ", pred.size(), " vs ", truth.size());
    double acc = 0.0;
    for (size_t i = 0; i < pred.size(); ++i) {
        double d = pred[i] - truth[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(pred.size()));
}

double
nrmse(const std::vector<double> &pred, const std::vector<double> &truth)
{
    double m = mean(truth);
    h2o_assert(m != 0.0, "nrmse normalizer (mean of truth) is zero");
    return rmse(pred, truth) / std::abs(m);
}

double
mape(const std::vector<double> &pred, const std::vector<double> &truth)
{
    h2o_assert(pred.size() == truth.size() && !pred.empty(),
               "mape size mismatch");
    double acc = 0.0;
    for (size_t i = 0; i < pred.size(); ++i) {
        h2o_assert(truth[i] != 0.0, "mape with zero truth value");
        acc += std::abs((pred[i] - truth[i]) / truth[i]);
    }
    return acc / static_cast<double>(pred.size());
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    h2o_assert(xs.size() == ys.size() && xs.size() >= 2,
               "pearson needs >= 2 paired samples");
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
ranks(const std::vector<double> &xs)
{
    size_t n = xs.size();
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return xs[a] < xs[b]; });
    std::vector<double> out(n, 0.0);
    size_t i = 0;
    while (i < n) {
        size_t j = i;
        while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]])
            ++j;
        // Average rank over the tie group [i, j].
        double r = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (size_t k = i; k <= j; ++k)
            out[idx[k]] = r;
        i = j + 1;
    }
    return out;
}

double
spearman(const std::vector<double> &xs, const std::vector<double> &ys)
{
    return pearson(ranks(xs), ranks(ys));
}

double
quantile(std::vector<double> xs, double q)
{
    h2o_assert(!xs.empty(), "quantile of empty vector");
    h2o_assert(q >= 0.0 && q <= 1.0, "quantile q out of range: ", q);
    std::sort(xs.begin(), xs.end());
    double pos = q * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Bucketizer::Bucketizer(size_t num_buckets) : _numBuckets(num_buckets)
{
    h2o_assert(num_buckets > 0, "Bucketizer needs >= 1 bucket");
}

void
Bucketizer::add(double x, double y)
{
    _xs.push_back(x);
    _ys.push_back(y);
}

std::vector<Bucketizer::Bucket>
Bucketizer::buckets() const
{
    std::vector<Bucket> out;
    if (_xs.empty())
        return out;
    double lo = *std::min_element(_xs.begin(), _xs.end());
    double hi = *std::max_element(_xs.begin(), _xs.end());
    if (lo == hi) {
        out.push_back({lo, hi, mean(_ys), _ys.size()});
        return out;
    }
    double width = (hi - lo) / static_cast<double>(_numBuckets);
    std::vector<double> sum(_numBuckets, 0.0);
    std::vector<size_t> cnt(_numBuckets, 0);
    for (size_t i = 0; i < _xs.size(); ++i) {
        size_t b = static_cast<size_t>((_xs[i] - lo) / width);
        b = std::min(b, _numBuckets - 1);
        sum[b] += _ys[i];
        cnt[b] += 1;
    }
    for (size_t b = 0; b < _numBuckets; ++b) {
        if (cnt[b] == 0)
            continue;
        out.push_back({lo + width * static_cast<double>(b),
                       lo + width * static_cast<double>(b + 1),
                       sum[b] / static_cast<double>(cnt[b]), cnt[b]});
    }
    return out;
}

void
RunningStat::push(double x)
{
    if (_count == 0) {
        _min = _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_count;
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
}

double
RunningStat::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

} // namespace h2o::common
