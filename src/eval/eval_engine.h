/**
 * @file
 * eval::EvalEngine — the candidate -> reward evaluation pipeline shared
 * by every search loop.
 *
 * One search step evaluates N candidates (the virtual accelerator
 * shards of Figure 2). Before this subsystem each search loop owned its
 * own copy of the plumbing: a ThreadPool + ShardRunner pair, a per-shard
 * body that sampled/evaluated/rewarded one candidate, and ad-hoc
 * survivor bookkeeping. EvalEngine centralizes that pipeline:
 *
 *   1. quality stage — runs per shard INSIDE ShardRunner::runStep, so
 *      FaultInjector semantics are unchanged: an injected fault strikes
 *      before the shard body, a degraded shard never draws its sample
 *      and never advances its RNG stream. Bodies may still carve out
 *      deterministic shard-index-ordered regions (the shared supernet /
 *      pipeline) via `engine.runner().ordered()`.
 *   2. performance stage — in one of two modes, chosen by which functor
 *      type the engine is built with:
 *      - PerfBatchFn: ONE batched call over the step's surviving
 *        candidates, on the coordinator thread. Callers back it with the
 *        batched entry points (PerfModel::predictBatch,
 *        Simulator::runBatch behind a SimCache), amortizing feature
 *        packing, striped-lock traffic and workspace setup across the
 *        step. Use this for cheap, pure, CPU-side functions.
 *      - PerfFn: per candidate, INSIDE the shard body on the worker
 *        pool. Use this when the function occupies a device or
 *        otherwise blocks (the production shape: each shard's candidate
 *        runs on a remote accelerator) — shard occupancy then overlaps
 *        across worker threads instead of serializing on the
 *        coordinator.
 *      Performance functions are pure, so the two modes produce
 *      element-for-element identical values.
 *   3. reward stage — the multi-objective RewardFunction over
 *      (quality, performance), per surviving shard, in shard order.
 *
 * Aggregation (REINFORCE update, merged weight update) stays in the
 * caller, which consumes StepEval in shard-index order on its own
 * thread — bit-for-bit identical to a serial run at any thread count.
 */

#ifndef H2O_EVAL_EVAL_ENGINE_H
#define H2O_EVAL_EVAL_ENGINE_H

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "exec/proc_runner.h"
#include "exec/proc_transport.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"
#include "reward/reward.h"
#include "searchspace/decision_space.h"

namespace h2o::eval {

/** Candidate -> performance objective values (e.g. perf-model query). */
using PerfFn =
    std::function<std::vector<double>(const searchspace::Sample &)>;

/** Candidate -> quality signal; PURE (same candidate, same answer,
 *  regardless of process or thread). Required for the process
 *  transport's worker-side quality stage; also drives the draw-only
 *  evaluate(step, SampleBodyFn) overload on the thread path. */
using QualityFn = std::function<double(const searchspace::Sample &)>;

/** Batch of candidates -> objective values, one vector per candidate.
 *  The batched analogue of PerfFn; must be pure (same answer for the
 *  same sample regardless of batch composition). A multi-target search
 *  returns each candidate's PER-CHIP cost vector here (one serving
 *  step time per deployment target, in hw::TargetSet order — see
 *  CachedDlrmTimer::serveStepTimesMulti); the engine treats it as any
 *  other objective vector and the reward/front layers interpret the
 *  per-chip columns. */
using PerfBatchFn = std::function<std::vector<std::vector<double>>(
    std::span<const searchspace::Sample>)>;

/** Wrap a per-candidate performance function into a PerfBatchFn. */
PerfBatchFn batchify(PerfFn fn);

/**
 * The performance stage in one of its two execution modes (see the file
 * comment). Implicitly constructible from either functor type, so search
 * ctor overloads forward their performance argument straight through.
 */
struct PerfStage
{
    /** Per-candidate mode: runs inside the shard body on the worker
     *  pool (device-in-the-loop / blocking functions). */
    PerfStage(PerfFn fn) : perCandidate(std::move(fn)) {}
    /** Batched mode: one coordinator-side call per step over the
     *  surviving candidates (batch entry points). */
    PerfStage(PerfBatchFn fn) : batched(std::move(fn)) {}

    PerfFn perCandidate;  ///< exactly one of the two is non-null
    PerfBatchFn batched;
};

/** Engine configuration (mirrors the exec runtime knobs). */
struct EvalEngineConfig
{
    /** Virtual accelerator shards = candidates per step. */
    size_t numShards = 1;
    /** Worker threads; 0 = one per hardware thread. Clamped to
     *  numShards. Any value yields bit-identical results. */
    size_t threads = 0;
    /** false forces a single worker (results identical either way). */
    bool multithread = true;
    /** Optional fault oracle (preemptible-fleet emulation); not owned. */
    exec::FaultInjector *faults = nullptr;
    /** Max attempts per shard per step before it is dropped. */
    size_t maxShardAttempts = 3;
    /** Exponential retry backoff base, in milliseconds. */
    double retryBackoffMs = 0.5;
    /** With one worker (threads == 1 or !multithread), execute shard
     *  bodies inline on the evaluate() caller's thread instead of
     *  dispatching to the pool — bit-identical results (see
     *  exec::ShardRunnerConfig::inlineSingleWorker), no cross-thread
     *  hand-off cost. Disable only to A/B the dispatch path. */
    bool inlineSingleThread = true;
    /**
     * Worker PROCESSES for the shard stage (the multi-process
     * transport, exec::ProcRunner). 0 keeps everything in-process (the
     * thread path above). >= 1 forks that many workers (clamped to
     * numShards) at engine construction and ships each shard's pure
     * work — the per-candidate quality when the engine was built with
     * one, plus the per-candidate performance stage when configured —
     * into them; draws, fault decisions, batched stages and aggregation
     * stay coordinator-side. Any value (including 1 vs the pure-thread
     * path) produces byte-identical results; `threads` then only sizes
     * the coordinator pool still used for non-evaluate runner() steps.
     */
    size_t procs = 0;
    /**
     * Remote worker daemons for the shard stage, as a comma-separated
     * endpoint list ("host:port" for an external daemon running the
     * same binary, "local" to fork a loopback daemon) — see
     * exec::parseWorkerList. Empty = none. Combines with `procs`: the
     * pool is then MIXED, forked slots first, remote slots after, and
     * shard s is pinned to slot s % (procs + workers). Worker tasks are
     * pure, so every combination — threads only, procs only, remote
     * only, mixed — produces byte-identical results.
     */
    std::string workers;
};

/**
 * One evaluated step. Vectors are indexed by shard; entries for
 * degraded shards are value-initialized and excluded from `survivors`.
 */
struct StepEval
{
    std::vector<searchspace::Sample> samples;
    std::vector<double> qualities;
    std::vector<std::vector<double>> performance;
    std::vector<double> rewards;
    /** Shards that completed the quality stage, ascending. */
    std::vector<size_t> survivors;
    exec::StepReport report;
};

/**
 * The engine. Owns the persistent worker pool and the fault-tolerant
 * ShardRunner; outlives many evaluate() calls.
 */
class EvalEngine
{
  public:
    /**
     * Per-shard quality stage: fill in the shard's candidate and its
     * quality signal. Runs inside the shard body — draw the sample from
     * the shard's own RNG stream HERE so a degraded shard leaves its
     * stream untouched.
     */
    using ShardBodyFn = std::function<void(
        size_t shard, searchspace::Sample &sample, double &quality)>;

    /**
     * Draw-only shard body for the batched quality mode: fill in the
     * shard's candidate (from the shard's own RNG stream, so a degraded
     * shard leaves its stream untouched) WITHOUT computing quality.
     */
    using SampleBodyFn =
        std::function<void(size_t shard, searchspace::Sample &sample)>;

    /**
     * Batched quality stage: one coordinator-side call per step over the
     * step's surviving candidates, in ascending shard order — the order
     * the per-shard path's ordered sections serialize to. Returns one
     * quality per candidate (same indexing as `samples`).
     *
     * @param shards  Surviving shard indices, ascending.
     * @param samples The candidates those shards drew, same order.
     */
    using QualityBatchFn = std::function<std::vector<double>(
        std::span<const size_t> shards,
        std::span<const searchspace::Sample> samples)>;

    /**
     * @param perf    Performance stage (pure). A PerfBatchFn runs once
     *                per step on the caller's thread; a PerfFn runs per
     *                candidate inside the shard body (or inside a
     *                worker process in proc mode).
     * @param rewardf Multi-objective reward; not owned, must outlive
     *                the engine.
     * @param config  Shard count and runtime knobs.
     * @param quality Optional PURE per-candidate quality. Enables the
     *                draw-only evaluate(step, SampleBodyFn) overload;
     *                in proc mode it runs inside the worker processes
     *                (it is captured before the workers fork).
     */
    EvalEngine(PerfStage perf, const reward::RewardFunction &rewardf,
               EvalEngineConfig config, QualityFn quality = nullptr);

    /**
     * Evaluate one step: run `body` for every shard (concurrently,
     * fault-tolerantly), then one batched performance call and the
     * reward over the survivors.
     *
     * Thread-path only: the closure computes quality inline, which
     * cannot cross a process boundary — fatal when procs > 0 (use the
     * draw-only overloads there).
     *
     * @param step Step index keying fault-injection decisions; callers
     *             with multiple runStep phases (warm-up, W-steps) must
     *             keep the combined sequence strictly increasing.
     */
    StepEval evaluate(size_t step, const ShardBodyFn &body);

    /**
     * Draw-only + pure-quality mode (requires the ctor `quality`):
     * `body` draws each shard's candidate; the engine computes quality
     * per candidate — inside the shard body on the thread path, inside
     * the worker processes in proc mode. Bit-identical either way.
     */
    StepEval evaluate(size_t step, const SampleBodyFn &body);

    /**
     * Batched quality mode: run the draw-only `body` for every shard
     * under the fault-tolerant runner (per-candidate performance still
     * rides along inside the shard body when configured), then ONE
     * `quality` call over the survivors on this thread, then the shared
     * performance/reward tail. Identical StepEval to the per-shard
     * overload whenever `quality` computes what the per-shard bodies
     * would have computed in ascending shard order.
     */
    StepEval evaluate(size_t step, const SampleBodyFn &body,
                      const QualityBatchFn &quality);

    /** The underlying runner, for ordered sections inside bodies and
     *  for non-evaluation steps (weight warm-up) that must share the
     *  fault-injection step sequence. */
    exec::ShardRunner &runner() { return _runner; }

    /** The persistent worker pool. */
    exec::ThreadPool &pool() { return _pool; }

    /** Shard count. */
    size_t numShards() const { return _config.numShards; }

    /** True when the engine ships shard work across a process boundary
     *  (forked workers, remote daemons, or both). */
    bool multiproc() const { return _transport != nullptr; }

    /** Worker transport (ProcPool / RemotePool / MixedTransport), or
     *  nullptr on the thread path. */
    exec::ShardTransport *transport() { return _transport.get(); }

    /** Per-worker transport/liveness counters; empty on the thread
     *  path (no worker processes to report on). */
    exec::ProcPoolStats transportStats() const
    {
        return _transport ? _transport->stats() : exec::ProcPoolStats{};
    }

  private:
    /** Shared stage-2/3 tail: batched performance over the survivors,
     *  then the reward in shard-index order. */
    void finishStep(StepEval &ev);

    /** Proc-mode stage 1: draw coordinator-side, ship quality/perf to
     *  the worker processes. `withQuality` = ask workers for quality
     *  (draw-only batched mode sends perf-only / ack requests). */
    void runProcStage(size_t step, const SampleBodyFn &body,
                      bool withQuality, StepEval &ev);

    PerfStage _perf;
    const reward::RewardFunction &_reward;
    EvalEngineConfig _config;
    QualityFn _quality;
    exec::ThreadPool _pool;
    exec::ShardRunner _runner;
    /** Process/remote transport (procs > 0 or workers nonempty only).
     *  Registration order matters: the task must be registered before
     *  workers fork and before remote connections handshake. */
    std::unique_ptr<exec::ProcTaskRegistration> _taskReg;
    std::unique_ptr<exec::ShardTransport> _transport;
    std::unique_ptr<exec::ProcRunner> _procRunner;
};

} // namespace h2o::eval

#endif // H2O_EVAL_EVAL_ENGINE_H
