#include "eval/eval_engine.h"

#include <atomic>

#include "common/logging.h"
#include "exec/remote_transport.h"
#include "exec/shard_transport.h"

namespace h2o::eval {

PerfBatchFn
batchify(PerfFn fn)
{
    h2o_assert(fn, "null performance functor");
    return [fn = std::move(fn)](
               std::span<const searchspace::Sample> samples) {
        std::vector<std::vector<double>> out;
        out.reserve(samples.size());
        for (const auto &s : samples)
            out.push_back(fn(s));
        return out;
    };
}

namespace {

/**
 * The worker-side eval task: decode one candidate, run the pure
 * per-candidate quality and/or performance functions, encode the
 * answers. Captures COPIES of the functors so the fork-time snapshot is
 * self-contained.
 *
 * Request:  u32 wantQuality | u64 decisionCount | u64 per decision
 * Response: u32 hasQuality [f64 quality] | u32 perfCount | f64 each
 */
exec::ProcTaskFn
makeEvalTask(QualityFn quality, PerfFn perf)
{
    return [quality = std::move(quality), perf = std::move(perf)](
               uint64_t, uint64_t, const std::string &request) {
        exec::WireReader req(request);
        const bool wantQuality = req.getU32() != 0;
        searchspace::Sample sample(req.getU64());
        for (auto &d : sample)
            d = static_cast<size_t>(req.getU64());

        exec::WireWriter out;
        if (wantQuality) {
            if (!quality)
                throw std::runtime_error(
                    "eval task asked for quality but the engine was "
                    "built without a pure quality functor");
            out.putU32(1);
            out.putDouble(quality(sample));
        } else {
            out.putU32(0);
        }
        if (perf) {
            std::vector<double> values = perf(sample);
            out.putU32(static_cast<uint32_t>(values.size()));
            for (double v : values)
                out.putDouble(v);
        } else {
            out.putU32(0);
        }
        return out.take();
    };
}

} // namespace

EvalEngine::EvalEngine(PerfStage perf,
                       const reward::RewardFunction &rewardf,
                       EvalEngineConfig config, QualityFn quality)
    : _perf(std::move(perf)), _reward(rewardf), _config(config),
      _quality(std::move(quality)),
      _pool(config.multithread
                ? exec::ThreadPool::resolve(config.threads,
                                            config.numShards)
                : 1),
      _runner(_pool,
              {config.numShards, config.maxShardAttempts,
               config.retryBackoffMs, config.inlineSingleThread},
              config.faults)
{
    h2o_assert(_perf.perCandidate || _perf.batched,
               "null performance functor");
    h2o_assert(_config.numShards > 0, "engine with zero shards");

    if (_config.procs > 0 || !_config.workers.empty()) {
        // Register the eval task, THEN build the transports — forked
        // workers only know tasks registered before their fork, and
        // remote handshakes verify the task is registered on both ends.
        // The name is unique per engine instance because one process
        // may host several engines at once (serve::Server runs one per
        // job).
        static std::atomic<uint64_t> instances{0};
        _taskReg = std::make_unique<exec::ProcTaskRegistration>(
            "eval_engine/" + std::to_string(instances.fetch_add(1)),
            makeEvalTask(_quality, _perf.perCandidate));

        // Forked slots first, remote slots after — fork order matters
        // for fd hygiene (fork-local daemons must not inherit remote
        // connection fds), and slot order fixes the shard pinning
        // (shard s -> slot s % total) that outcomes are invariant to
        // anyway (pure tasks).
        std::vector<std::unique_ptr<exec::ShardTransport>> parts;
        if (_config.procs > 0)
            parts.push_back(std::make_unique<exec::ProcPool>(
                exec::ProcPool::resolve(_config.procs,
                                        _config.numShards)));
        if (!_config.workers.empty()) {
            exec::RemotePoolConfig remote;
            remote.endpoints = exec::parseWorkerList(_config.workers);
            remote.requiredTasks = {_taskReg->name()};
            parts.push_back(
                std::make_unique<exec::RemotePool>(std::move(remote)));
        }
        if (parts.size() == 1)
            _transport = std::move(parts.front());
        else
            _transport = std::make_unique<exec::MixedTransport>(
                std::move(parts));
        _procRunner = std::make_unique<exec::ProcRunner>(
            *_transport,
            exec::ShardRunnerConfig{_config.numShards,
                                    _config.maxShardAttempts,
                                    _config.retryBackoffMs,
                                    _config.inlineSingleThread},
            _config.faults);
    }
}

void
EvalEngine::finishStep(StepEval &ev)
{
    // Stage 2 (batched mode): one performance call over the survivors,
    // on this thread. Purity makes this element-for-element identical
    // to the per-shard calls of per-candidate mode.
    if (_perf.batched) {
        std::vector<searchspace::Sample> live;
        live.reserve(ev.survivors.size());
        for (size_t s : ev.survivors)
            live.push_back(ev.samples[s]);
        auto perfs = _perf.batched(live);
        h2o_assert(perfs.size() == live.size(),
                   "performance batch returned ", perfs.size(),
                   " results for ", live.size(), " candidates");
        for (size_t i = 0; i < ev.survivors.size(); ++i)
            ev.performance[ev.survivors[i]] = std::move(perfs[i]);
    }

    // Stage 3: reward, per survivor, in shard-index order.
    for (size_t s : ev.survivors)
        ev.rewards[s] =
            _reward.compute({ev.qualities[s], ev.performance[s]});
}

void
EvalEngine::runProcStage(size_t step, const SampleBodyFn &body,
                         bool withQuality, StepEval &ev)
{
    exec::ProcShardTask task;
    task.name = _taskReg->name();
    // Encode = the draw. ProcRunner runs it at the exact point the
    // thread path runs the shard body (after the fault decision, at
    // most once per step unless the worker task throws), so each
    // shard's RNG stream advances exactly as it would in-process.
    task.encode = [&](size_t s) {
        body(s, ev.samples[s]);
        exec::WireWriter w;
        w.putU32(withQuality ? 1u : 0u);
        w.putU64(ev.samples[s].size());
        for (size_t d : ev.samples[s])
            w.putU64(static_cast<uint64_t>(d));
        return w.take();
    };
    task.decode = [&](size_t s, const std::string &response) {
        exec::WireReader r(response);
        if (r.getU32() != 0)
            ev.qualities[s] = r.getDouble();
        const uint32_t perfCount = r.getU32();
        if (_perf.perCandidate) {
            std::vector<double> values(perfCount);
            for (auto &v : values)
                v = r.getDouble();
            ev.performance[s] = std::move(values);
        }
    };
    ev.report = _procRunner->runStep(step, task);
}

StepEval
EvalEngine::evaluate(size_t step, const ShardBodyFn &body)
{
    if (_procRunner)
        h2o_fatal("per-shard quality closures cannot cross the process "
                  "boundary; with procs > 0 use the draw-only "
                  "evaluate() overloads (pure quality functor or "
                  "batched quality)");
    const size_t n = _config.numShards;
    StepEval ev;
    ev.samples.resize(n);
    ev.qualities.assign(n, 0.0);
    ev.performance.resize(n);
    ev.rewards.assign(n, 0.0);

    // Stage 1: quality, per shard, under the fault-tolerant runner. In
    // per-candidate mode the performance call rides along inside the
    // shard body, so a blocking function (device-in-the-loop) occupies
    // its shard and overlaps across workers.
    ev.report = _runner.runStep(step, [&](size_t s) {
        body(s, ev.samples[s], ev.qualities[s]);
        if (_perf.perCandidate)
            ev.performance[s] = _perf.perCandidate(ev.samples[s]);
    });
    ev.survivors = ev.report.survivors();
    if (ev.survivors.empty())
        return ev;

    finishStep(ev);
    return ev;
}

StepEval
EvalEngine::evaluate(size_t step, const SampleBodyFn &body)
{
    h2o_assert(_quality, "draw-only evaluate() requires the engine to "
                         "be built with a pure quality functor");
    if (!_procRunner) {
        // Thread path: compose the historical per-shard body (draw,
        // then quality, inside the shard body) so results are
        // bit-identical to engines that predate the draw-only mode.
        const QualityFn &quality = _quality;
        return evaluate(step,
                        ShardBodyFn([&body, &quality](
                                        size_t s,
                                        searchspace::Sample &sample,
                                        double &q) {
                            body(s, sample);
                            q = quality(sample);
                        }));
    }

    const size_t n = _config.numShards;
    StepEval ev;
    ev.samples.resize(n);
    ev.qualities.assign(n, 0.0);
    ev.performance.resize(n);
    ev.rewards.assign(n, 0.0);

    runProcStage(step, body, /*withQuality=*/true, ev);
    ev.survivors = ev.report.survivors();
    if (ev.survivors.empty())
        return ev;

    finishStep(ev);
    return ev;
}

StepEval
EvalEngine::evaluate(size_t step, const SampleBodyFn &body,
                     const QualityBatchFn &quality)
{
    h2o_assert(quality, "null batched quality functor");
    const size_t n = _config.numShards;
    StepEval ev;
    ev.samples.resize(n);
    ev.qualities.assign(n, 0.0);
    ev.performance.resize(n);
    ev.rewards.assign(n, 0.0);

    // Stage 1: draw-only shard bodies under the fault-tolerant runner —
    // fault semantics are unchanged (a degraded shard never draws, its
    // RNG stream never advances). Per-candidate performance still rides
    // along (inside the shard body on the thread path, inside the
    // worker processes in proc mode) so device-in-the-loop functions
    // overlap across workers.
    if (_procRunner) {
        runProcStage(step, body, /*withQuality=*/false, ev);
    } else {
        ev.report = _runner.runStep(step, [&](size_t s) {
            body(s, ev.samples[s]);
            if (_perf.perCandidate)
                ev.performance[s] = _perf.perCandidate(ev.samples[s]);
        });
    }
    ev.survivors = ev.report.survivors();
    if (ev.survivors.empty())
        return ev;

    // Stage 1b: ONE quality call over the survivors, ascending shard
    // order — exactly the order the per-shard path's ordered sections
    // admit shards, so a quality function that runs the same work per
    // candidate produces bit-identical qualities.
    std::vector<searchspace::Sample> live;
    live.reserve(ev.survivors.size());
    for (size_t s : ev.survivors)
        live.push_back(ev.samples[s]);
    std::vector<double> qs = quality(ev.survivors, live);
    h2o_assert(qs.size() == live.size(), "quality batch returned ",
               qs.size(), " results for ", live.size(), " candidates");
    for (size_t i = 0; i < ev.survivors.size(); ++i)
        ev.qualities[ev.survivors[i]] = qs[i];

    finishStep(ev);
    return ev;
}

} // namespace h2o::eval
