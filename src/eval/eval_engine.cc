#include "eval/eval_engine.h"

#include "common/logging.h"

namespace h2o::eval {

PerfBatchFn
batchify(PerfFn fn)
{
    h2o_assert(fn, "null performance functor");
    return [fn = std::move(fn)](
               std::span<const searchspace::Sample> samples) {
        std::vector<std::vector<double>> out;
        out.reserve(samples.size());
        for (const auto &s : samples)
            out.push_back(fn(s));
        return out;
    };
}

EvalEngine::EvalEngine(PerfStage perf,
                       const reward::RewardFunction &rewardf,
                       EvalEngineConfig config)
    : _perf(std::move(perf)), _reward(rewardf), _config(config),
      _pool(config.multithread
                ? exec::ThreadPool::resolve(config.threads,
                                            config.numShards)
                : 1),
      _runner(_pool,
              {config.numShards, config.maxShardAttempts,
               config.retryBackoffMs, config.inlineSingleThread},
              config.faults)
{
    h2o_assert(_perf.perCandidate || _perf.batched,
               "null performance functor");
    h2o_assert(_config.numShards > 0, "engine with zero shards");
}

void
EvalEngine::finishStep(StepEval &ev)
{
    // Stage 2 (batched mode): one performance call over the survivors,
    // on this thread. Purity makes this element-for-element identical
    // to the per-shard calls of per-candidate mode.
    if (_perf.batched) {
        std::vector<searchspace::Sample> live;
        live.reserve(ev.survivors.size());
        for (size_t s : ev.survivors)
            live.push_back(ev.samples[s]);
        auto perfs = _perf.batched(live);
        h2o_assert(perfs.size() == live.size(),
                   "performance batch returned ", perfs.size(),
                   " results for ", live.size(), " candidates");
        for (size_t i = 0; i < ev.survivors.size(); ++i)
            ev.performance[ev.survivors[i]] = std::move(perfs[i]);
    }

    // Stage 3: reward, per survivor, in shard-index order.
    for (size_t s : ev.survivors)
        ev.rewards[s] =
            _reward.compute({ev.qualities[s], ev.performance[s]});
}

StepEval
EvalEngine::evaluate(size_t step, const ShardBodyFn &body)
{
    const size_t n = _config.numShards;
    StepEval ev;
    ev.samples.resize(n);
    ev.qualities.assign(n, 0.0);
    ev.performance.resize(n);
    ev.rewards.assign(n, 0.0);

    // Stage 1: quality, per shard, under the fault-tolerant runner. In
    // per-candidate mode the performance call rides along inside the
    // shard body, so a blocking function (device-in-the-loop) occupies
    // its shard and overlaps across workers.
    ev.report = _runner.runStep(step, [&](size_t s) {
        body(s, ev.samples[s], ev.qualities[s]);
        if (_perf.perCandidate)
            ev.performance[s] = _perf.perCandidate(ev.samples[s]);
    });
    ev.survivors = ev.report.survivors();
    if (ev.survivors.empty())
        return ev;

    finishStep(ev);
    return ev;
}

StepEval
EvalEngine::evaluate(size_t step, const SampleBodyFn &body,
                     const QualityBatchFn &quality)
{
    h2o_assert(quality, "null batched quality functor");
    const size_t n = _config.numShards;
    StepEval ev;
    ev.samples.resize(n);
    ev.qualities.assign(n, 0.0);
    ev.performance.resize(n);
    ev.rewards.assign(n, 0.0);

    // Stage 1: draw-only shard bodies under the fault-tolerant runner —
    // fault semantics are unchanged (a degraded shard never draws, its
    // RNG stream never advances). Per-candidate performance still rides
    // along so device-in-the-loop functions overlap across workers.
    ev.report = _runner.runStep(step, [&](size_t s) {
        body(s, ev.samples[s]);
        if (_perf.perCandidate)
            ev.performance[s] = _perf.perCandidate(ev.samples[s]);
    });
    ev.survivors = ev.report.survivors();
    if (ev.survivors.empty())
        return ev;

    // Stage 1b: ONE quality call over the survivors, ascending shard
    // order — exactly the order the per-shard path's ordered sections
    // admit shards, so a quality function that runs the same work per
    // candidate produces bit-identical qualities.
    std::vector<searchspace::Sample> live;
    live.reserve(ev.survivors.size());
    for (size_t s : ev.survivors)
        live.push_back(ev.samples[s]);
    std::vector<double> qs = quality(ev.survivors, live);
    h2o_assert(qs.size() == live.size(), "quality batch returned ",
               qs.size(), " results for ", live.size(), " candidates");
    for (size_t i = 0; i < ev.survivors.size(); ++i)
        ev.qualities[ev.survivors[i]] = qs[i];

    finishStep(ev);
    return ev;
}

} // namespace h2o::eval
