/**
 * @file
 * Memoized DLRM step-time evaluation: fronts `Simulator::run` with a
 * `sim::SimCache` keyed by the candidate's canonical decision encoding
 * plus an exec-mode tag and the simulator-config fingerprint. Candidates
 * that recur — paired eval sets, a converging RL policy's repeats, and
 * (with a shared cache) OTHER TENANTS' searches over the same space —
 * skip decode, lowering, the compiler passes and the DAG walk entirely.
 *
 * Grew up in bench/bench_util.h; promoted here so the NAS job server
 * (h2o::serve) can hang many jobs' timers off one shared SimCache.
 */

#ifndef H2O_EVAL_DLRM_TIMER_H
#define H2O_EVAL_DLRM_TIMER_H

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "arch/dlrm_arch.h"
#include "arch/lowering.h"
#include "common/logging.h"
#include "exec/thread_pool.h"
#include "hw/chip.h"
#include "hw/target_set.h"
#include "searchspace/dlrm_space.h"
#include "sim/sim_cache.h"
#include "sim/simulator.h"

namespace h2o::eval {

/** See file comment. Thread-safe to the extent SimCache is: concurrent
 *  calls from different jobs are fine; results are pure. */
class CachedDlrmTimer
{
  public:
    /**
     * Owning constructor: the timer creates its own cache.
     *
     * @param fill_threads Workers for the cold-path fill: cache misses
     *        in the batched entry points decode/lower/simulate on this
     *        many threads (SimCache::getOrComputeBatch fan-out; the
     *        per-thread PassWorkspaces keep workers allocation-free).
     *        1 — the default — computes misses inline on the calling
     *        thread; 0 means one worker per hardware thread. Results,
     *        counters and cache images are bit-identical at any value.
     * @param key_salt Distinguishes timers whose samples come from
     *        DIFFERENT search spaces sharing one cache: the salt folds
     *        into the exec-mode tag appended to every key (salt 0
     *        reproduces the historical tags 0/1, so existing cache
     *        files stay warm).
     */
    CachedDlrmTimer(hw::Platform train_platform,
                    hw::Platform serve_platform,
                    size_t cache_capacity = 1 << 16,
                    size_t fill_threads = 1, uint64_t key_salt = 0)
        : _train(train_platform), _serve(serve_platform),
          _trainConfig{train_platform.chip, true, true, {}},
          _serveConfig{serve_platform.chip, true, true, {}},
          _owned(std::make_unique<sim::SimCache>(cache_capacity)),
          _cache(_owned.get()), _trainTag(key_salt << 1),
          _serveTag((key_salt << 1) | 1)
    {
        makeFillPool(fill_threads);
    }

    /**
     * Shared-cache constructor: the timer fronts a cache owned by the
     * caller (e.g. the job server's cross-tenant cache). The cache must
     * outlive the timer. Give each distinct search space its own
     * `key_salt` so two spaces' identical decision vectors never alias.
     */
    CachedDlrmTimer(hw::Platform train_platform,
                    hw::Platform serve_platform, sim::SimCache &shared,
                    size_t fill_threads = 1, uint64_t key_salt = 0)
        : _train(train_platform), _serve(serve_platform),
          _trainConfig{train_platform.chip, true, true, {}},
          _serveConfig{serve_platform.chip, true, true, {}},
          _cache(&shared), _trainTag(key_salt << 1),
          _serveTag((key_salt << 1) | 1)
    {
        makeFillPool(fill_threads);
    }

    /** Training step time of the sample's decode on the train platform. */
    double trainStepTime(const searchspace::DlrmSearchSpace &space,
                         const searchspace::Sample &sample)
    {
        sim::SimCacheKey key =
            sim::makeSimCacheKey(sample, _trainTag, _trainConfig);
        return _cache
            ->getOrCompute(key,
                           [&] {
                               arch::DlrmArch a = space.decode(sample);
                               sim::Simulator simulator(_trainConfig);
                               return simulator.run(arch::buildDlrmGraph(
                                   a, _train, arch::ExecMode::Training));
                           })
            .stepTimeSec;
    }

    /** Serving step time (serving batch 1024, as dlrmServeStepTime). */
    double serveStepTime(const searchspace::DlrmSearchSpace &space,
                         const searchspace::Sample &sample)
    {
        sim::SimCacheKey key =
            sim::makeSimCacheKey(sample, _serveTag, _serveConfig);
        return _cache
            ->getOrCompute(key,
                           [&] {
                               arch::DlrmArch serving =
                                   space.decode(sample);
                               serving.globalBatch = 1024;
                               sim::Simulator simulator(_serveConfig);
                               return simulator.run(arch::buildDlrmGraph(
                                   serving, _serve,
                                   arch::ExecMode::Serving));
                           })
            .stepTimeSec;
    }

    /**
     * Batched training step times, parallel to `samples`. One
     * getOrComputeBatch (each cache stripe locked once per phase) with
     * Simulator::runBatch over chunks of the distinct misses —
     * computed in parallel on the fill pool when one was requested —
     * equal values to per-sample trainStepTime calls, identical
     * hit/miss totals.
     */
    std::vector<double>
    trainStepTimes(const searchspace::DlrmSearchSpace &space,
                   std::span<const searchspace::Sample> samples)
    {
        return stepTimes(space, samples, _trainTag, _trainConfig, _train,
                         arch::ExecMode::Training);
    }

    /** Batched serving step times (serving batch 1024). */
    std::vector<double>
    serveStepTimes(const searchspace::DlrmSearchSpace &space,
                   std::span<const searchspace::Sample> samples)
    {
        return stepTimes(space, samples, _serveTag, _serveConfig, _serve,
                         arch::ExecMode::Serving);
    }

    /**
     * Joint multi-target serving step times: out[i][c] is sample i's
     * serving step time (batch 1024) on targets[c]. All (candidate x
     * chip) pairs go through ONE getOrComputeBatch — keys are laid out
     * candidate-major ([i*k + c]) under the usual serve tag, with each
     * target's SimConfig fingerprint keeping the k keyspaces disjoint —
     * and misses simulate through Simulator::runBatchMulti (one
     * PassWorkspace fetch per chunk, one simulator core per target).
     * A one-element TargetSet whose platform equals the timer's serve
     * platform issues exactly serveStepTimes' key sequence: identical
     * hits, misses, LRU image and values.
     */
    std::vector<std::vector<double>>
    serveStepTimesMulti(const searchspace::DlrmSearchSpace &space,
                        std::span<const searchspace::Sample> samples,
                        const hw::TargetSet &targets)
    {
        const size_t k = targets.size();
        h2o_assert(k > 0, "serveStepTimesMulti needs >= 1 target");
        std::vector<sim::SimConfig> configs;
        configs.reserve(k);
        for (const hw::Target &t : targets)
            configs.push_back(sim::SimConfig{t.platform.chip, true, true,
                                             {}});
        std::vector<sim::SimCacheKey> keys;
        keys.reserve(samples.size() * k);
        for (const auto &s : samples)
            for (size_t c = 0; c < k; ++c)
                keys.push_back(sim::makeSimCacheKey(s, _serveTag,
                                                    configs[c]));
        // As in stepTimes, the lambda touches only locals + const state
        // (configs/targets/samples), so fill-pool fan-out is safe.
        auto results = _cache->getOrComputeBatch(
            keys,
            [&](const std::vector<size_t> &misses) {
                std::vector<sim::Graph> graphs;
                graphs.reserve(misses.size());
                for (size_t pos : misses) {
                    arch::DlrmArch serving =
                        space.decode(samples[pos / k]);
                    serving.globalBatch = 1024;
                    graphs.push_back(arch::buildDlrmGraph(
                        serving, targets[pos % k].platform,
                        arch::ExecMode::Serving));
                }
                std::vector<sim::SimRequest> reqs;
                reqs.reserve(misses.size());
                for (size_t j = 0; j < misses.size(); ++j)
                    reqs.push_back(
                        sim::SimRequest{&graphs[j],
                                        &configs[misses[j] % k]});
                return sim::Simulator::runBatchMulti(reqs);
            },
            _fillPool.get());
        std::vector<std::vector<double>> out(samples.size());
        for (size_t i = 0; i < samples.size(); ++i) {
            out[i].reserve(k);
            for (size_t c = 0; c < k; ++c)
                out[i].push_back(results[i * k + c].stepTimeSec);
        }
        return out;
    }

    sim::SimCacheStats cacheStats() const { return _cache->stats(); }

    /** The underlying cache, e.g. for save()/load() persistence. */
    sim::SimCache &cache() { return *_cache; }

  private:
    void makeFillPool(size_t fill_threads)
    {
        size_t resolved = exec::ThreadPool::resolve(
            fill_threads, std::numeric_limits<size_t>::max());
        if (resolved > 1)
            _fillPool = std::make_unique<exec::ThreadPool>(resolved);
    }

    std::vector<double>
    stepTimes(const searchspace::DlrmSearchSpace &space,
              std::span<const searchspace::Sample> samples, uint64_t tag,
              const sim::SimConfig &config, const hw::Platform &platform,
              arch::ExecMode mode)
    {
        std::vector<sim::SimCacheKey> keys;
        keys.reserve(samples.size());
        for (const auto &s : samples)
            keys.push_back(sim::makeSimCacheKey(s, tag, config));
        // The cache chunks the distinct misses (kDefaultFillChunk), so
        // at most one chunk's worth of decoded graphs is live per
        // worker, and fans the chunks out over _fillPool when present.
        // The lambda touches only locals + const state: thread-safe.
        auto results = _cache->getOrComputeBatch(
            keys,
            [&](const std::vector<size_t> &misses) {
                sim::Simulator simulator(config);
                std::vector<sim::Graph> graphs;
                graphs.reserve(misses.size());
                for (size_t k : misses) {
                    arch::DlrmArch a = space.decode(samples[k]);
                    if (mode == arch::ExecMode::Serving)
                        a.globalBatch = 1024;
                    graphs.push_back(
                        arch::buildDlrmGraph(a, platform, mode));
                }
                std::vector<const sim::Graph *> ptrs;
                ptrs.reserve(graphs.size());
                for (const auto &g : graphs)
                    ptrs.push_back(&g);
                return simulator.runBatch(ptrs);
            },
            _fillPool.get());
        std::vector<double> out;
        out.reserve(results.size());
        for (const auto &r : results)
            out.push_back(r.stepTimeSec);
        return out;
    }

    hw::Platform _train;
    hw::Platform _serve;
    sim::SimConfig _trainConfig;
    sim::SimConfig _serveConfig;
    /** Present only for the owning constructor. */
    std::unique_ptr<sim::SimCache> _owned;
    sim::SimCache *_cache;
    uint64_t _trainTag;
    uint64_t _serveTag;
    /** Cold-path fill workers; null = compute misses inline. */
    std::unique_ptr<exec::ThreadPool> _fillPool;
};

} // namespace h2o::eval

#endif // H2O_EVAL_DLRM_TIMER_H
