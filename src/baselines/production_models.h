/**
 * @file
 * The synthetic "production fleet" for the Figure 10 study: five
 * computer-vision models (CV1..CV5) and three DLRMs (DLRM1..DLRM3) at
 * assorted scales, standing in for the business-critical Google models
 * the paper optimizes zero-touch. Each entry carries the baseline
 * architecture plus the latency/size targets its (fictional) product
 * imposes — the launch constraints of Section 2.2.
 */

#ifndef H2O_BASELINES_PRODUCTION_MODELS_H
#define H2O_BASELINES_PRODUCTION_MODELS_H

#include <string>
#include <vector>

#include "arch/conv_arch.h"
#include "arch/dlrm_arch.h"

namespace h2o::baselines {

/** One production CV model entry. */
struct ProductionCvModel
{
    std::string name;
    arch::ConvArch baseline;
    /** Training step-time target relative to the baseline's (1.0 =
     *  neutral; <1 demands a speedup — performance-primary searches;
     *  >1 allows a quality-driven slowdown, as CV5 does). */
    double stepTimeTargetRel = 1.0;
};

/** One production DLRM entry. */
struct ProductionDlrmModel
{
    std::string name;
    arch::DlrmArch baseline;
    double stepTimeTargetRel = 1.0;
};

/** The five CV fleet members. */
std::vector<ProductionCvModel> productionCvFleet();

/** The three DLRM fleet members. */
std::vector<ProductionDlrmModel> productionDlrmFleet();

} // namespace h2o::baselines

#endif // H2O_BASELINES_PRODUCTION_MODELS_H
