#include "baselines/efficientnet.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::baselines {

namespace {

/** Compound-scaling coefficients per member: width, depth, resolution. */
struct ScaleSpec
{
    double width;
    double depth;
    uint32_t resolution;
};

constexpr ScaleSpec kScales[8] = {
    {1.0, 1.0, 224}, // B0
    {1.0, 1.1, 240}, // B1
    {1.1, 1.2, 260}, // B2
    {1.2, 1.4, 300}, // B3
    {1.4, 1.8, 380}, // B4
    {1.6, 2.2, 456}, // B5
    {1.8, 2.6, 528}, // B6
    {2.0, 3.1, 600}, // B7
};

uint32_t
scaleWidth(uint32_t base, double mult)
{
    // Round to a multiple of 8, as EfficientNet does.
    double w = base * mult;
    return static_cast<uint32_t>(std::max(8.0, std::round(w / 8.0) * 8.0));
}

uint32_t
scaleDepth(uint32_t base, double mult)
{
    return static_cast<uint32_t>(std::ceil(base * mult));
}

arch::ConvArch
build(int index, bool h_variant)
{
    h2o_assert(index >= 0 && index <= 7, "EfficientNet index out of range");
    const ScaleSpec &sc = kScales[index];

    // B0 stage table {type, kernel, stride, expansion, se, layers,
    // filters}; EfficientNet-X fuses the early stages and uses ReLU
    // (TPU-friendly) rather than swish in them.
    struct Row
    {
        arch::BlockType type;
        uint32_t kernel, stride;
        double expansion;
        uint32_t layers, filters;
    };
    const Row rows[7] = {
        {arch::BlockType::FusedMBConv, 3, 1, 1.0, 1, 16},
        {arch::BlockType::FusedMBConv, 3, 2, 6.0, 2, 24},
        {arch::BlockType::FusedMBConv, 5, 2, 6.0, 2, 40},
        {arch::BlockType::MBConv, 3, 2, 6.0, 3, 80},
        {arch::BlockType::MBConv, 5, 1, 6.0, 3, 112},
        {arch::BlockType::MBConv, 5, 2, 6.0, 4, 192},
        {arch::BlockType::MBConv, 3, 1, 6.0, 1, 320},
    };

    arch::ConvArch a;
    a.name = std::string(h_variant ? "efficientnet-h-b" : "efficientnet-x-b")
             + std::to_string(index);
    a.resolution = sc.resolution;
    a.stemFilters = scaleWidth(32, sc.width);
    a.spaceToDepthStem = true; // EfficientNet-X stem optimization
    a.headFilters = scaleWidth(1280, sc.width);
    a.perChipBatch = 64;

    bool apply_h = h_variant && index >= 5;
    for (size_t s = 0; s < 7; ++s) {
        arch::ConvStageConfig cfg;
        cfg.type = rows[s].type;
        cfg.kernel = rows[s].kernel;
        cfg.stride = rows[s].stride;
        cfg.expansion = rows[s].expansion;
        // EfficientNet-H (B5..B7): alternate stages drop expansion 6->4,
        // the "mixture of 4 and 6" the search found.
        if (apply_h && cfg.expansion == 6.0 && s % 2 == 1)
            cfg.expansion = 4.0;
        cfg.seRatio = 0.25;
        cfg.act = nn::Activation::ReLU; // EfficientNet-X choice on TPUs
        cfg.layers = scaleDepth(rows[s].layers, sc.depth);
        cfg.filters = scaleWidth(rows[s].filters, sc.width);
        cfg.skip = true;
        a.stages.push_back(cfg);
    }
    return a;
}

} // namespace

arch::ConvArch
efficientnetX(int index)
{
    return build(index, false);
}

arch::ConvArch
efficientnetH(int index)
{
    return build(index, true);
}

std::vector<arch::ConvArch>
efficientnetXFamily()
{
    std::vector<arch::ConvArch> family;
    for (int i = 0; i <= 7; ++i)
        family.push_back(efficientnetX(i));
    return family;
}

std::vector<arch::ConvArch>
efficientnetHFamily()
{
    std::vector<arch::ConvArch> family;
    for (int i = 0; i <= 7; ++i)
        family.push_back(efficientnetH(i));
    return family;
}

} // namespace h2o::baselines
