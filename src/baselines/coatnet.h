/**
 * @file
 * The CoAtNet baseline family (Dai et al. 2021) and the H2O-NAS-designed
 * CoAtNet-H family (Section 7.1.1, Table 3, Figure 6).
 *
 * CoAtNet is a hybrid C-C-T-T network: two convolutional (MBConv) stages
 * followed by two transformer stages. The CoAtNet-H changes found by the
 * search, applied here exactly as the Table 3 ablation describes:
 *
 *   +DeeperConv:   the second conv stage grows from 12 to 16 layers
 *                  (model capacity up, quality up, throughput down);
 *   +ResShrink:    pre-training resolution shrinks 224 -> 160 px
 *                  (total FLOPs down ~53%, TPU-friendlier shapes);
 *   +SquaredReLU:  the transformer activation becomes Squared ReLU
 *                  (non-linearity/capacity up at trivial VPU cost).
 */

#ifndef H2O_BASELINES_COATNET_H
#define H2O_BASELINES_COATNET_H

#include <string>
#include <vector>

#include "arch/vit_arch.h"

namespace h2o::baselines {

/** CoAtNet-`index` baseline (index in 0..5). */
arch::VitArch coatnet(int index);

/** The H2O-NAS-designed CoAtNet-H-`index` counterpart. */
arch::VitArch coatnetH(int index);

/** All six baseline family members, C-0 .. C-5. */
std::vector<arch::VitArch> coatnetFamily();

/** All six optimized family members, C-H0 .. C-H5. */
std::vector<arch::VitArch> coatnetHFamily();

/**
 * The Table 3 ablation sequence:
 * {CoAtNet-5, +DeeperConv, +ResShrink, +SquaredReLU (== CoAtNet-H5)}.
 */
std::vector<std::pair<std::string, arch::VitArch>> coatnetAblation();

} // namespace h2o::baselines

#endif // H2O_BASELINES_COATNET_H
