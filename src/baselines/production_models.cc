#include "baselines/production_models.h"

#include <cmath>

#include "baselines/efficientnet.h"
#include "common/logging.h"

namespace h2o::baselines {

namespace {

/** A deliberately under-optimized CV baseline: production models predate
 *  hardware-aware NAS, so they use uniform MBConv, swish everywhere,
 *  and conservative shapes — leaving headroom for the search. */
arch::ConvArch
legacyCvModel(const std::string &name, double width_mult, double depth_mult,
              uint32_t resolution)
{
    arch::ConvArch a = efficientnetX(0);
    a.name = name;
    a.resolution = resolution;
    a.spaceToDepthStem = false; // legacy stem
    for (auto &s : a.stages) {
        s.type = arch::BlockType::MBConv; // no fused blocks pre-search
        s.act = nn::Activation::Swish;
        s.expansion = 6.0;
        s.filters = static_cast<uint32_t>(
            std::max(8.0, std::round(s.filters * width_mult / 8.0) * 8.0));
        s.layers = static_cast<uint32_t>(
            std::max(1.0, std::ceil(s.layers * depth_mult)));
    }
    return a;
}

} // namespace

std::vector<ProductionCvModel>
productionCvFleet()
{
    std::vector<ProductionCvModel> fleet;
    fleet.push_back({"CV1", legacyCvModel("cv1", 1.0, 1.0, 224), 1.0});
    fleet.push_back({"CV2", legacyCvModel("cv2", 1.2, 1.4, 260), 1.0});
    fleet.push_back({"CV3", legacyCvModel("cv3", 1.4, 1.8, 300), 1.0});
    fleet.push_back({"CV4", legacyCvModel("cv4", 1.6, 2.2, 380), 1.0});
    // CV5 trades performance for quality: the product allows a slower
    // model if accuracy improves (Figure 10 shows its negative perf bar).
    fleet.push_back({"CV5", legacyCvModel("cv5", 2.0, 2.6, 456), 1.15});
    return fleet;
}

std::vector<ProductionDlrmModel>
productionDlrmFleet()
{
    std::vector<ProductionDlrmModel> fleet;

    arch::DlrmArch d1 = arch::baselineDlrm();
    d1.name = "dlrm1";
    fleet.push_back({"DLRM1", d1, 0.8});

    // A smaller ranking model with fewer tables and a leaner MLP.
    arch::DlrmArch d2 = arch::baselineDlrm();
    d2.name = "dlrm2";
    d2.tables.resize(16);
    d2.bottomMlp = {{256, 0}, {128, 0}};
    d2.topMlp = {{512, 0}, {512, 0}, {256, 0}};
    fleet.push_back({"DLRM2", d2, 0.8});

    // A retrieval-ish model, embedding-heavy; the product tolerates a
    // small slowdown for quality (negative perf bar in Figure 10).
    arch::DlrmArch d3 = arch::baselineDlrm();
    d3.name = "dlrm3";
    for (auto &t : d3.tables)
        t.width = 64;
    d3.bottomMlp = {{256, 0}};
    d3.topMlp = {{512, 0}, {256, 0}};
    fleet.push_back({"DLRM3", d3, 1.1});

    return fleet;
}

} // namespace h2o::baselines
