#include "baselines/coatnet.h"

#include "common/logging.h"

namespace h2o::baselines {

namespace {

/** Family scaling table: {conv widths, conv depths, tfm hidden, tfm
 *  depths} per index, following the published C-C-T-T layouts. */
struct CoatSpec
{
    uint32_t convF1, convL1;
    uint32_t convF2, convL2;
    uint32_t tfmH1, tfmL1;
    uint32_t tfmH2, tfmL2;
};

constexpr CoatSpec kSpecs[6] = {
    {96, 2, 192, 3, 384, 5, 768, 2},     // C-0
    {96, 2, 192, 6, 512, 14, 1024, 2},   // C-1
    {128, 2, 256, 6, 512, 14, 1024, 2},  // C-2
    {192, 2, 384, 6, 768, 14, 1536, 2},  // C-3
    {192, 2, 384, 12, 768, 28, 1536, 2}, // C-4
    {256, 2, 512, 12, 1024, 28, 2048, 2},// C-5
};

arch::VitArch
build(int index, uint32_t resolution, uint32_t extra_conv_layers,
      nn::Activation tfm_act, const std::string &name)
{
    h2o_assert(index >= 0 && index <= 5, "CoAtNet index out of range");
    const CoatSpec &spec = kSpecs[index];

    arch::VitArch a;
    a.name = name;
    a.resolution = resolution;
    a.patch = 16; // unused once conv stages exist (2x patchify after)
    a.perChipBatch = 64;

    arch::ConvStageConfig s1;
    s1.type = arch::BlockType::MBConv;
    s1.kernel = 3;
    s1.stride = 2;
    s1.expansion = 4.0;
    s1.seRatio = 0.25;
    s1.act = nn::Activation::GeLU;
    s1.layers = spec.convL1;
    s1.filters = spec.convF1;

    arch::ConvStageConfig s2 = s1;
    s2.layers = spec.convL2 + extra_conv_layers;
    s2.filters = spec.convF2;
    a.convStages = {s1, s2};

    arch::TfmBlockConfig t1;
    t1.hidden = spec.tfmH1;
    t1.layers = spec.tfmL1;
    t1.heads = spec.tfmH1 / 32;
    t1.mlpRatio = 4.0;
    t1.act = tfm_act;

    arch::TfmBlockConfig t2 = t1;
    t2.hidden = spec.tfmH2;
    t2.layers = spec.tfmL2;
    t2.heads = spec.tfmH2 / 32;
    t2.seqPool = true;
    a.tfmBlocks = {t1, t2};
    return a;
}

} // namespace

arch::VitArch
coatnet(int index)
{
    return build(index, 224, 0, nn::Activation::GeLU,
                 "coatnet-" + std::to_string(index));
}

arch::VitArch
coatnetH(int index)
{
    // DeeperConv: +4 layers in the second conv stage (12 -> 16 for C5);
    // ResShrink: 224 -> 160; SquaredReLU in the transformer.
    return build(index, 160, 4, nn::Activation::SquaredReLU,
                 "coatnet-h" + std::to_string(index));
}

std::vector<arch::VitArch>
coatnetFamily()
{
    std::vector<arch::VitArch> family;
    for (int i = 0; i <= 5; ++i)
        family.push_back(coatnet(i));
    return family;
}

std::vector<arch::VitArch>
coatnetHFamily()
{
    std::vector<arch::VitArch> family;
    for (int i = 0; i <= 5; ++i)
        family.push_back(coatnetH(i));
    return family;
}

std::vector<std::pair<std::string, arch::VitArch>>
coatnetAblation()
{
    std::vector<std::pair<std::string, arch::VitArch>> steps;
    steps.emplace_back("CoAtNet-5",
                       build(5, 224, 0, nn::Activation::GeLU, "coatnet-5"));
    steps.emplace_back("+DeeperConv", build(5, 224, 4, nn::Activation::GeLU,
                                            "coatnet-5-deeper"));
    steps.emplace_back("+ResShrink", build(5, 160, 4, nn::Activation::GeLU,
                                           "coatnet-5-deeper-160"));
    steps.emplace_back("+SquaredReLU (CoAtNet-H5)",
                       build(5, 160, 4, nn::Activation::SquaredReLU,
                             "coatnet-h5"));
    return steps;
}

} // namespace h2o::baselines
