/**
 * @file
 * Calibrated analytical quality model for the vision domains.
 *
 * This repository cannot train ImageNet/JFT-scale vision models (see
 * DESIGN.md substitution table), so Q(a) for CNN/ViT candidates comes
 * from a smooth surrogate calibrated against the paper's published
 * numbers. The NAS machinery is agnostic to where Q comes from; the
 * performance side is always computed honestly by the simulator.
 *
 * Calibration anchors (Table 3 of the paper):
 *   - +DeeperConv (conv 12->16 layers):  +0.6% top-1
 *   - +ResShrink  (224 -> 160 px):       -1.4% top-1
 *   - +SquaredReLU (over GeLU):          +0.8% top-1
 *   - capacity: ~3.5% top-1 per decade of parameters (CoAtNet family
 *     span), saturating near 99%.
 *
 * A small deterministic per-architecture noise term (hash-seeded) models
 * run-to-run evaluation variance without breaking reproducibility.
 */

#ifndef H2O_BASELINES_QUALITY_MODEL_H
#define H2O_BASELINES_QUALITY_MODEL_H

#include "arch/conv_arch.h"
#include "arch/dlrm_arch.h"
#include "arch/vit_arch.h"

namespace h2o::baselines {

/** Pre-training dataset scale (Figure 6: SD/MD/LD). */
enum class DatasetSize { Small, Medium, Large };

/**
 * Top-1 ImageNet accuracy (percent) of a hybrid ViT after pre-training
 * at the given dataset scale.
 *
 * @param noise_seed 0 disables the variance term.
 */
double vitQuality(const arch::VitArch &a, DatasetSize dataset,
                  uint64_t noise_seed = 0);

/** Top-1 ImageNet accuracy (percent) of a convolutional model. */
double convQuality(const arch::ConvArch &a, uint64_t noise_seed = 0);

/**
 * Surrogate DLRM quality as negated log-loss: responds to embedding
 * capacity (memorization), dense capacity (generalization), and the
 * balance between them, with diminishing returns on both — the
 * trade-off Section 7.1.2 describes. Used only where training the real
 * super-network is out of budget (the Figure 10 production fleet); the
 * Figure 5 searches use the genuinely-trained super-network.
 */
double dlrmQualitySurrogate(const arch::DlrmArch &a,
                            uint64_t noise_seed = 0);

} // namespace h2o::baselines

#endif // H2O_BASELINES_QUALITY_MODEL_H
