#include "baselines/quality_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace h2o::baselines {

namespace {

/** Deterministic noise in [-scale, scale] from an arch-derived seed. */
double
hashNoise(uint64_t seed, double scale)
{
    if (seed == 0)
        return 0.0;
    uint64_t state = seed;
    uint64_t h = common::splitmix64(state);
    double u = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    return (2.0 * u - 1.0) * scale;
}

/** Mean activation bonus over transformer blocks (Table 3 anchors). */
double
tfmActivationBonus(nn::Activation act)
{
    switch (act) {
      case nn::Activation::SquaredReLU:
        return 1.2;
      case nn::Activation::GeLU:
        return 0.4;
      case nn::Activation::Swish:
        return 0.3;
      default:
        return 0.0;
    }
}

/** Soft saturation toward a 99% ceiling, linear in the working range. */
double
saturate(double raw)
{
    const double ceiling = 99.0;
    if (raw < ceiling - 20.0)
        return raw;
    // Smoothly compress the last 20 points toward the ceiling.
    double x = (raw - (ceiling - 20.0)) / 20.0;
    return (ceiling - 20.0) + 20.0 * std::tanh(x);
}

} // namespace

double
vitQuality(const arch::VitArch &a, DatasetSize dataset, uint64_t noise_seed)
{
    double params = std::max(a.paramCount(), 1e6);

    // Dataset offsets: SD = ImageNet1K, MD = ImageNet21K, LD = JFT-300M.
    double base;
    switch (dataset) {
      case DatasetSize::Small:
        base = 49.8;
        break;
      case DatasetSize::Medium:
        base = 52.4;
        break;
      case DatasetSize::Large:
        base = 54.3;
        break;
      default:
        h2o_panic("unhandled dataset size");
    }

    // Capacity: ~3.5 points per decade of parameters.
    double cap = 3.5 * std::log10(params);

    // Resolution: calibrated so 224 -> 160 costs 1.4 points.
    double res = 4.16 * std::log(static_cast<double>(a.resolution) / 224.0);

    // Convolutional depth: calibrated so 14 -> 18 total layers gains 0.6.
    double conv_layers = 0.0;
    for (const auto &s : a.convStages)
        conv_layers += s.layers;
    double depth = conv_layers > 0.0 ? 2.08 * std::log(conv_layers) : 0.0;

    // Transformer-block terms.
    double act_bonus = 0.0, pool_cost = 0.0, primer_bonus = 0.0,
           rank_cost = 0.0;
    for (const auto &b : a.tfmBlocks) {
        act_bonus += tfmActivationBonus(b.act);
        if (b.seqPool)
            pool_cost += 0.25;
        if (b.primer)
            primer_bonus += 0.2;
        rank_cost += 0.5 * (1.0 - std::clamp(b.lowRank, 0.0, 1.0));
    }
    act_bonus /= static_cast<double>(a.tfmBlocks.size());

    double raw = base + cap + res + depth + act_bonus + primer_bonus -
                 pool_cost - rank_cost;
    raw += hashNoise(noise_seed, 0.08);
    return std::clamp(saturate(raw), 1.0, 99.0);
}

double
convQuality(const arch::ConvArch &a, uint64_t noise_seed)
{
    double params = std::max(a.paramCount(), 1e5);

    double base = 56.0;
    double cap = 3.2 * std::log10(params / 1e6) + 3.2 * 6.0; // per decade
    double res = 2.5 * std::log(static_cast<double>(a.resolution) / 224.0);

    double se_bonus = 0.0, act_bonus = 0.0, kernel_bonus = 0.0;
    double total_stride = 2.0; // stem
    for (const auto &s : a.stages) {
        if (s.seRatio > 0.0)
            se_bonus += 0.3;
        if (s.act == nn::Activation::Swish)
            act_bonus += 0.3;
        kernel_bonus += 0.1 * std::log(static_cast<double>(s.kernel) / 3.0);
        total_stride *= s.stride;
    }
    double n = static_cast<double>(a.stages.size());
    se_bonus /= n;
    act_bonus /= n;

    // Spatial-collapse penalty: over-striding destroys spatial detail
    // faster than capacity can recover it. Final feature maps smaller
    // than the canonical ~7x7 (224/32) are punished hard, so the search
    // cannot buy free speed with stride-4 stages.
    double final_map =
        static_cast<double>(a.resolution) / std::max(total_stride, 1.0);
    double stride_cost = 0.0;
    if (final_map < 7.0)
        stride_cost = 6.0 * std::log(7.0 / std::max(final_map, 0.5));

    double raw = base + cap + res + se_bonus + act_bonus + kernel_bonus -
                 stride_cost;
    raw += hashNoise(noise_seed, 0.08);
    return std::clamp(saturate(raw), 1.0, 99.0);
}

double
dlrmQualitySurrogate(const arch::DlrmArch &a, uint64_t noise_seed)
{
    // Per-table memorization value with sharply diminishing returns:
    // each sparse feature contributes quality according to its (Zipf-
    // ordered) importance and the capacity vocab x width devoted to it,
    // saturating once the feature's head ids are well represented.
    // Large production tables sit deep in saturation, so shrinking them
    // is nearly quality-free while keeping them costs memory and
    // network time — the landscape in which the ReLU reward's tolerance
    // of over-achieving (smaller/faster) candidates pays off, and the
    // balance dynamic of Section 7.1.2 emerges.
    double mem_gain = 0.0;
    for (size_t t = 0; t < a.tables.size(); ++t) {
        const auto &table = a.tables[t];
        double importance = 0.010 * std::exp(-0.12 * double(t));
        double cap = std::log10(
            1.0 + double(table.vocab) * double(table.width));
        mem_gain += importance * std::tanh((cap - 4.5) / 1.2);
    }

    double dense = std::log10(std::max(a.denseParamCount(), 1.0));
    double gen_gain = 0.014 * std::tanh((dense - 6.0) / 0.8);

    // Mild imbalance penalty between memorization and generalization
    // capacity (the original production DLRM skewed toward the MLP).
    double emb = std::log10(std::max(a.embeddingParamCount(), 1.0));
    double imbalance = (emb - 8.0) - (dense - 6.0);
    double balance_cost = 0.002 * imbalance * imbalance /
                          (1.0 + std::abs(imbalance));

    double log_loss = 0.335 - mem_gain - gen_gain + balance_cost;
    log_loss += hashNoise(noise_seed, 0.0004);
    return -log_loss; // quality = negated log-loss, higher is better
}

} // namespace h2o::baselines
