/**
 * @file
 * The EfficientNet-X baseline family (Li et al. 2021) and the
 * H2O-NAS-designed EfficientNet-H family (Section 7.1.3, Table 4).
 *
 * EfficientNet-X is a TPU/GPU-optimized EfficientNet variant: fused
 * MBConv in the early stages, space-to-depth stem, compound-scaled
 * B0..B7 members. The H2O-NAS change: in the larger members (B5..B7)
 * the expansion factors inside the dynamically fused MBConv blocks move
 * from uniformly 6 to a mixture of 4 and 6; B0..B4 are unchanged.
 */

#ifndef H2O_BASELINES_EFFICIENTNET_H
#define H2O_BASELINES_EFFICIENTNET_H

#include <vector>

#include "arch/conv_arch.h"

namespace h2o::baselines {

/** EfficientNet-X-B`index` baseline (index in 0..7). */
arch::ConvArch efficientnetX(int index);

/** The H2O-NAS-designed EfficientNet-H-B`index` counterpart. */
arch::ConvArch efficientnetH(int index);

/** All eight baseline members B0..B7. */
std::vector<arch::ConvArch> efficientnetXFamily();

/** All eight optimized members B0..B7 (B0..B4 identical to baseline). */
std::vector<arch::ConvArch> efficientnetHFamily();

} // namespace h2o::baselines

#endif // H2O_BASELINES_EFFICIENTNET_H
