/**
 * @file
 * Human-readable graph dumps for simulator debugging: a per-op table
 * (costs and pass annotations, plus timings when a SimResult is
 * supplied) and Graphviz DOT output of the DAG.
 */

#ifndef H2O_SIM_DUMP_H
#define H2O_SIM_DUMP_H

#include <ostream>

#include "sim/graph.h"
#include "sim/simulator.h"

namespace h2o::sim {

/** Write a per-op text table of costs for a graph. */
void dumpGraph(const Graph &graph, std::ostream &os);

/**
 * Write a per-op table including simulated timings. The result must
 * come from simulating this graph (perOp sizes must match).
 */
void dumpGraphWithTimings(const Graph &graph, const SimResult &result,
                          std::ostream &os);

/** Write the DAG in Graphviz DOT format (fused ops shown dashed). */
void dumpDot(const Graph &graph, std::ostream &os);

} // namespace h2o::sim

#endif // H2O_SIM_DUMP_H
