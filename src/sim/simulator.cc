#include "sim/simulator.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/pass_workspace.h"

namespace h2o::sim {

Simulator::Simulator(SimConfig config) : _config(std::move(config))
{
    h2o_assert(_config.chip.peakTensorFlops > 0.0,
               "simulator configured with zero-FLOPS chip");
}

SimResult
Simulator::run(const Graph &input) const
{
    input.validate();
    // Pass annotations live in a reusable per-thread workspace: the
    // graph itself stays read-only and is never copied.
    return runValidated(input, PassWorkspace::forThread());
}

std::vector<SimResult>
Simulator::runBatch(std::span<const Graph *const> graphs) const
{
    std::vector<SimResult> results;
    results.reserve(graphs.size());
    // One workspace fetch for the batch; validation once per distinct
    // graph pointer (batches that re-simulate one supernet graph under
    // different configs validate it once).
    PassWorkspace &ws = PassWorkspace::forThread();
    std::vector<const Graph *> validated;
    for (const Graph *g : graphs) {
        h2o_assert(g != nullptr, "null graph in runBatch");
        if (std::find(validated.begin(), validated.end(), g) ==
            validated.end()) {
            g->validate();
            validated.push_back(g);
        }
        results.push_back(runValidated(*g, ws));
    }
    return results;
}

std::vector<SimResult>
Simulator::runBatchMulti(std::span<const SimRequest> requests)
{
    std::vector<SimResult> results;
    results.reserve(requests.size());
    PassWorkspace &ws = PassWorkspace::forThread();
    std::vector<const Graph *> validated;
    // Simulators are cheap to build (a config copy); cache one per
    // distinct config pointer so (candidate x chip) batches construct k
    // cores, not n*k.
    std::vector<std::pair<const SimConfig *, Simulator>> sims;
    for (const SimRequest &req : requests) {
        h2o_assert(req.graph != nullptr, "null graph in runBatchMulti");
        h2o_assert(req.config != nullptr, "null config in runBatchMulti");
        if (std::find(validated.begin(), validated.end(), req.graph) ==
            validated.end()) {
            req.graph->validate();
            validated.push_back(req.graph);
        }
        const Simulator *sim = nullptr;
        for (const auto &entry : sims) {
            if (entry.first == req.config) {
                sim = &entry.second;
                break;
            }
        }
        if (sim == nullptr) {
            sims.emplace_back(req.config, Simulator(*req.config));
            sim = &sims.back().second;
        }
        results.push_back(sim->runValidated(*req.graph, ws));
    }
    return results;
}

SimResult
Simulator::runValidated(const Graph &input, PassWorkspace &ws) const
{
    ws.reset(input);

    SimResult res;
    if (_config.enableFusion) {
        FusionStats fs = fuseGraph(input, ws);
        res.fusedOps = fs.fusedOps;
    }
    MemoryStats ms;
    if (_config.enableMemoryPlacement) {
        ms = placeMemory(input, _config.chip, _config.memory, ws);
    }
    res.paramsResident = ms.paramsResident;

    const auto &ops = input.ops();
    res.perOp.assign(ops.size(), OpTiming{});

    // Longest-path earliest-finish times over the DAG. Fused-away ops are
    // transparent: they finish when their producer finishes.
    auto &finish = ws.finish;
    finish.assign(ops.size(), 0.0);

    for (size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        const OpAnnotations &a = ws.ann[i];
        double ready = 0.0;
        for (OpId in : op.inputs)
            ready = std::max(ready, finish[in]);
        if (a.fusedAway) {
            finish[i] = ready;
            continue;
        }
        OpTiming t = timeOp(_config.chip, op, a);
        res.perOp[i] = t;
        finish[i] = ready + t.seconds;

        res.liveOps += 1;
        res.totalFlops += op.flops + a.fusedVpuFlops;
        res.tensorBusySec += t.tensorBusySec;
        res.vpuBusySec += t.vpuBusySec;
        res.hbmBytes += t.hbmBytes;
        res.onChipBytes += t.onChipBytes;
        res.networkBytes += t.networkBytes;
    }

    for (double f : finish)
        res.criticalPathSec = std::max(res.criticalPathSec, f);

    res.hbmSec = res.hbmBytes / _config.chip.hbmBandwidth;
    res.onChipSec = res.onChipBytes / _config.chip.onChipBandwidth;
    res.networkSec = res.networkBytes / _config.chip.iciBandwidth;

    res.stepTimeSec = std::max({res.tensorBusySec, res.vpuBusySec,
                                res.hbmSec, res.onChipSec, res.networkSec,
                                res.criticalPathSec});
    h2o_assert(res.stepTimeSec > 0.0, "graph '", input.name(),
               "' simulated to zero time");

    if (res.stepTimeSec == res.tensorBusySec)
        res.boundBy = hw::BoundBy::TensorCompute;
    else if (res.stepTimeSec == res.networkSec)
        res.boundBy = hw::BoundBy::Network;
    else if (res.stepTimeSec == res.vpuBusySec)
        res.boundBy = hw::BoundBy::VectorCompute;
    else
        res.boundBy = hw::BoundBy::Memory;

    res.achievedFlops = res.totalFlops / res.stepTimeSec;
    res.operationalIntensity =
        res.totalFlops / std::max(res.hbmBytes + res.onChipBytes, 1.0);
    res.hbmBandwidthUsed = res.hbmBytes / res.stepTimeSec;
    res.onChipBandwidthUsed = res.onChipBytes / res.stepTimeSec;
    res.tensorUtilization =
        std::clamp(res.tensorBusySec / res.stepTimeSec, 0.0, 1.0);

    hw::ActivityProfile activity{res.tensorUtilization,
                                 res.hbmBandwidthUsed,
                                 res.onChipBandwidthUsed};
    res.avgPowerW = hw::averagePowerW(_config.chip, activity);
    res.energyPerStepJ = res.avgPowerW * res.stepTimeSec;
    return res;
}

} // namespace h2o::sim
