#include "sim/fusion.h"

#include <vector>

#include "common/logging.h"
#include "sim/pass_workspace.h"

namespace h2o::sim {

FusionStats
fuseGraph(const Graph &graph, PassWorkspace &ws)
{
    FusionStats stats;
    const auto &ops = graph.ops();
    size_t n = ops.size();
    h2o_assert(ws.ann.size() == n, "fusion workspace not reset for graph");

    auto &consumers = ws.consumers;
    consumers.assign(n, 0);
    for (const auto &op : ops)
        for (OpId in : op.inputs)
            consumers[in] += 1;

    // Root of the fusion group each op currently belongs to.
    auto &root = ws.root;
    root.resize(n);
    for (size_t i = 0; i < n; ++i)
        root[i] = static_cast<OpId>(i);

    for (size_t i = 0; i < n; ++i) {
        const Op &op = ops[i];
        OpAnnotations &a = ws.ann[i];
        if (!op.fusable || op.inputs.size() != 1)
            continue;
        OpId producer = op.inputs[0];
        if (consumers[producer] != 1)
            continue;
        OpId r = root[producer];
        OpAnnotations &head = ws.ann[r];
        if (head.fusedAway)
            continue; // defensive; roots are never fused away

        // The producer->op intermediate stays in registers/local memory:
        // the head now writes this op's output instead.
        stats.bytesSaved += head.outputBytes + op.inputBytes;
        head.fusedVpuFlops += op.flops + a.fusedVpuFlops;
        head.outputBytes = a.outputBytes;
        // Fused param bytes (e.g. norm scales) still stream.
        head.paramBytes += a.paramBytes;
        head.networkBytes += a.networkBytes;

        a.fusedAway = true;
        root[i] = r;
        stats.fusedOps += 1;
    }
    return stats;
}

FusionStats
fuseGraph(Graph &graph)
{
    PassWorkspace ws;
    ws.reset(graph);
    FusionStats stats = fuseGraph(static_cast<const Graph &>(graph), ws);
    ws.apply(graph);
    return stats;
}

} // namespace h2o::sim
