#include "sim/fusion.h"

#include <vector>

#include "common/logging.h"

namespace h2o::sim {

FusionStats
fuseGraph(Graph &graph)
{
    FusionStats stats;
    auto &ops = graph.ops();
    size_t n = ops.size();

    std::vector<uint32_t> consumers(n, 0);
    for (const auto &op : ops)
        for (OpId in : op.inputs)
            consumers[in] += 1;

    // Root of the fusion group each op currently belongs to.
    std::vector<OpId> root(n);
    for (size_t i = 0; i < n; ++i)
        root[i] = static_cast<OpId>(i);

    for (size_t i = 0; i < n; ++i) {
        Op &op = ops[i];
        if (!op.fusable || op.inputs.size() != 1)
            continue;
        OpId producer = op.inputs[0];
        if (consumers[producer] != 1)
            continue;
        OpId r = root[producer];
        Op &head = graph.op(r);
        if (head.fusedAway)
            continue; // defensive; roots are never fused away

        // The producer->op intermediate stays in registers/local memory:
        // the head now writes this op's output instead.
        stats.bytesSaved += head.outputBytes + op.inputBytes;
        head.fusedVpuFlops += op.flops + op.fusedVpuFlops;
        head.outputBytes = op.outputBytes;
        // Fused param bytes (e.g. norm scales) still stream.
        head.paramBytes += op.paramBytes;
        head.networkBytes += op.networkBytes;

        op.fusedAway = true;
        root[i] = r;
        stats.fusedOps += 1;
    }
    return stats;
}

} // namespace h2o::sim
