/**
 * @file
 * Operator fusion pass.
 *
 * The paper's simulator "simulates compiler optimizations such as op/layer
 * fusion" when fed TensorFlow graphs (Section 6.2.3). This pass folds
 * single-consumer fusable elementwise/norm/reshape ops into their
 * producer: the intermediate tensor never round-trips through memory and
 * the vector-unit work overlaps with the producer's tensor-unit work.
 */

#ifndef H2O_SIM_FUSION_H
#define H2O_SIM_FUSION_H

#include <cstddef>

#include "sim/graph.h"

namespace h2o::sim {

struct PassWorkspace;

/** Summary of one fusion pass. */
struct FusionStats
{
    size_t fusedOps = 0;     ///< ops folded into producers
    double bytesSaved = 0.0; ///< intermediate bytes eliminated
};

/**
 * Fuse eligible ops, writing the results into the workspace's annotation
 * array (the graph stays const). An op is folded when it is marked
 * fusable, has exactly one producer input, and is that producer's only
 * consumer. Chains fold transitively into the chain's root.
 * @pre ws.reset(graph) was called.
 */
FusionStats fuseGraph(const Graph &graph, PassWorkspace &ws);

/** In-place convenience wrapper: annotate into a scratch workspace and
 *  write the results back onto the graph's ops. */
FusionStats fuseGraph(Graph &graph);

} // namespace h2o::sim

#endif // H2O_SIM_FUSION_H
