/**
 * @file
 * The operator IR the performance simulator walks.
 *
 * This mirrors the role of the TensorFlow/HLO graphs consumed by the
 * paper's in-house simulator (Section 6.2.3): a DAG of operators, each
 * carrying the semantic quantities the cost model needs — FLOPs, tensor
 * sizes, matmul-equivalent dimensions for tile-quantization analysis,
 * network traffic for collectives, and fusion eligibility.
 */

#ifndef H2O_SIM_GRAPH_H
#define H2O_SIM_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

namespace h2o::sim {

/** Operator categories with distinct cost behavior. */
enum class OpKind
{
    Matmul,          ///< dense matrix multiply (tensor unit)
    Conv2d,          ///< standard / pointwise convolution (tensor unit)
    DepthwiseConv2d, ///< depthwise convolution (vector unit on TPUs)
    Attention,       ///< fused self-attention score+context matmuls
    Elementwise,     ///< activations, bias, residual adds (vector unit)
    Norm,            ///< batch/layer norm (vector unit, reduction)
    Pool,            ///< spatial or sequence pooling (vector unit)
    Reshape,         ///< layout change; bytes only, may be free if fused
    EmbeddingLookup, ///< gather from embedding tables (memory system)
    AllToAll,        ///< cross-chip exchange for model-parallel embeddings
    AllReduce,       ///< cross-chip gradient/activation reduction
    Concat,          ///< feature concatenation (memory traffic)
};

/** Unique id of an op within its graph. */
using OpId = uint32_t;

/**
 * One operator node. All byte quantities are per executed step for one
 * chip's shard of the model.
 */
struct Op
{
    OpKind kind = OpKind::Elementwise;
    std::string name;

    double flops = 0.0;        ///< useful floating-point work
    double inputBytes = 0.0;   ///< activation bytes read
    double outputBytes = 0.0;  ///< activation bytes written
    double paramBytes = 0.0;   ///< weight bytes streamed
    double networkBytes = 0.0; ///< ICI bytes for collectives

    /** Matmul-equivalent dims for tile-efficiency (tensor-unit ops). */
    double dimM = 0.0;
    double dimN = 0.0;
    double dimK = 0.0;

    /** True when the op runs on the matrix/tensor unit. */
    bool onTensorUnit = false;

    /** Elementwise ops marked fusable can fold into their producer,
     *  eliminating the intermediate round-trip to memory. */
    bool fusable = false;

    /** Producer ops this op consumes. */
    std::vector<OpId> inputs;

    // --- Filled in by simulator passes ---
    /** Fraction of activation traffic served by on-chip memory (set by
     *  the memory-placement pass). */
    double onChipFraction = 0.0;
    /** True when this op's weights stay resident in on-chip memory. */
    bool paramsOnChip = false;
    /** True when the fusion pass folded this op into its producer. */
    bool fusedAway = false;
    /** Vector-unit FLOPs absorbed from ops fused into this one. */
    double fusedVpuFlops = 0.0;
};

/**
 * A DAG of operators plus model-level metadata.
 */
class Graph
{
  public:
    /** @param name Graph label used in reports. */
    explicit Graph(std::string name);

    /** Append an op; its inputs must already exist. Returns its id. */
    OpId add(Op op);

    /** Number of ops (including fused-away ones). */
    size_t size() const { return _ops.size(); }

    /** Access an op by id. */
    Op &op(OpId id);

    /** Access an op by id (const). */
    const Op &op(OpId id) const;

    /** All ops in insertion (topological) order. */
    std::vector<Op> &ops() { return _ops; }

    /** All ops (const). */
    const std::vector<Op> &ops() const { return _ops; }

    /** Graph label. */
    const std::string &name() const { return _name; }

    /** Total useful FLOPs over live (non-fused) ops. */
    double totalFlops() const;

    /** Total parameter bytes over live ops. */
    double totalParamBytes() const;

    /** Verify the DAG invariant: every input id precedes its consumer. */
    void validate() const;

  private:
    std::string _name;
    std::vector<Op> _ops;
};

/** Human-readable op-kind name. */
const char *opKindName(OpKind kind);

} // namespace h2o::sim

#endif // H2O_SIM_GRAPH_H
