/**
 * @file
 * Semantic op builders: construct cost-annotated Ops from the natural
 * parameters of each layer type (shapes, channels, strides), so the
 * architecture-lowering code never hand-computes FLOPs or byte counts.
 *
 * All builders produce *per-chip* costs; callers pass already-sharded
 * batch sizes / table shards. The default datatype is bf16 (2 bytes), the
 * training and serving precision on TPUs.
 */

#ifndef H2O_SIM_OPS_H
#define H2O_SIM_OPS_H

#include <string>

#include "sim/graph.h"

namespace h2o::sim::ops {

/** Bytes per element (bf16). */
inline constexpr double kDtypeBytes = 2.0;

/**
 * Dense matmul: [m, k] x [k, n]. m is typically batch (or batch x
 * spatial); k, n are feature dims. Weight is the k x n operand.
 */
Op matmul(const std::string &name, double m, double n, double k);

/**
 * Standard 2D convolution over a [batch, h, w, cin] input producing
 * cout channels with a kh x kw kernel and the given stride. Implemented
 * on the tensor unit as an implicit GEMM with
 * M = batch x h_out x w_out, N = cout, K = kh x kw x cin.
 */
Op conv2d(const std::string &name, double batch, double h, double w,
          double cin, double cout, double kh, double kw, double stride);

/**
 * Depthwise 2D convolution: per-channel kh x kw filter. Runs on the
 * vector unit on TPUs (no channel reduction to feed the MXU), which is
 * why MBConv has low operational intensity — the motivation for the
 * fused-MBConv search option (Figure 4).
 */
Op depthwiseConv2d(const std::string &name, double batch, double h, double w,
                   double c, double kh, double kw, double stride);

/**
 * Fused multi-head self-attention over [batch, seq, hidden]: QKV
 * projections + score/context matmuls + output projection.
 */
Op attention(const std::string &name, double batch, double seq,
             double hidden, double heads);

/**
 * Elementwise op over `elements` values with a per-element vector-unit
 * cost factor (see nn::activationVpuCost). Fusable by default.
 */
Op elementwise(const std::string &name, double elements,
               double vpu_cost_per_element, bool fusable = true);

/** Batch/layer normalization over `elements` values (two passes). */
Op norm(const std::string &name, double elements);

/** Pooling that reads in_elements and writes out_elements. */
Op pool(const std::string &name, double in_elements, double out_elements);

/**
 * Squeeze-and-excite block on [batch, h, w, c] with the given squeeze
 * ratio: global pool + two tiny matmuls + channel scale. Modeled as one
 * vector-unit op (the matmuls are too small to fill an MXU).
 */
Op squeezeExcite(const std::string &name, double batch, double h, double w,
                 double c, double se_ratio);

/**
 * Embedding lookups: `lookups` gathers of `width`-wide rows per step
 * (already summed over tables and batch for this chip's shard).
 * Pure memory-system work with gather-limited efficiency.
 */
Op embeddingLookup(const std::string &name, double lookups, double width);

/** Cross-chip all-to-all moving `bytes` through the ICI per chip. */
Op allToAll(const std::string &name, double bytes);

/** Cross-chip all-reduce of `bytes` payload per chip. */
Op allReduce(const std::string &name, double bytes);

/** Concatenation writing `bytes` of output. */
Op concat(const std::string &name, double bytes);

/** Layout change moving `bytes`; zero-cost when the compiler can fold it
 *  (free = true), e.g. space-to-depth annotated in the HLO. */
Op reshape(const std::string &name, double bytes, bool free = false);

} // namespace h2o::sim::ops

#endif // H2O_SIM_OPS_H
