#include "sim/ops.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::sim::ops {

Op
matmul(const std::string &name, double m, double n, double k)
{
    h2o_assert(m > 0 && n > 0 && k > 0, "matmul '", name,
               "' with non-positive dims");
    Op op;
    op.kind = OpKind::Matmul;
    op.name = name;
    op.flops = 2.0 * m * n * k;
    op.inputBytes = m * k * kDtypeBytes;
    op.outputBytes = m * n * kDtypeBytes;
    op.paramBytes = k * n * kDtypeBytes;
    op.dimM = m;
    op.dimN = n;
    op.dimK = k;
    op.onTensorUnit = true;
    return op;
}

Op
conv2d(const std::string &name, double batch, double h, double w, double cin,
       double cout, double kh, double kw, double stride)
{
    h2o_assert(stride >= 1, "conv2d '", name, "' stride < 1");
    double ho = std::ceil(h / stride);
    double wo = std::ceil(w / stride);
    Op op;
    op.kind = OpKind::Conv2d;
    op.name = name;
    op.dimM = batch * ho * wo;
    op.dimN = cout;
    op.dimK = kh * kw * cin;
    op.flops = 2.0 * op.dimM * op.dimN * op.dimK;
    op.inputBytes = batch * h * w * cin * kDtypeBytes;
    op.outputBytes = batch * ho * wo * cout * kDtypeBytes;
    op.paramBytes = kh * kw * cin * cout * kDtypeBytes;
    op.onTensorUnit = true;
    return op;
}

Op
depthwiseConv2d(const std::string &name, double batch, double h, double w,
                double c, double kh, double kw, double stride)
{
    h2o_assert(stride >= 1, "depthwise '", name, "' stride < 1");
    double ho = std::ceil(h / stride);
    double wo = std::ceil(w / stride);
    Op op;
    op.kind = OpKind::DepthwiseConv2d;
    op.name = name;
    // One kh x kw MAC per output element per channel; no channel
    // reduction, so this cannot use the MXU.
    op.flops = 2.0 * batch * ho * wo * c * kh * kw;
    op.inputBytes = batch * h * w * c * kDtypeBytes;
    op.outputBytes = batch * ho * wo * c * kDtypeBytes;
    op.paramBytes = kh * kw * c * kDtypeBytes;
    op.onTensorUnit = false;
    return op;
}

Op
attention(const std::string &name, double batch, double seq, double hidden,
          double heads)
{
    h2o_assert(heads >= 1, "attention '", name, "' with no heads");
    Op op;
    op.kind = OpKind::Attention;
    op.name = name;
    // QKV + output projections: 4 matmuls of [b*s, h] x [h, h].
    double proj_flops = 4.0 * 2.0 * batch * seq * hidden * hidden;
    // Scores QK^T and context SV: 2 matmuls of [b*heads, s, d] x [d, s].
    double attn_flops = 2.0 * 2.0 * batch * seq * seq * hidden;
    op.flops = proj_flops + attn_flops;
    op.inputBytes = batch * seq * hidden * kDtypeBytes;
    op.outputBytes = batch * seq * hidden * kDtypeBytes +
                     batch * heads * seq * seq * kDtypeBytes; // score matrix
    op.paramBytes = 4.0 * hidden * hidden * kDtypeBytes;
    // Effective GEMM dims for tile analysis: the projections dominate.
    op.dimM = batch * seq;
    op.dimN = hidden;
    op.dimK = hidden;
    op.onTensorUnit = true;
    return op;
}

Op
elementwise(const std::string &name, double elements,
            double vpu_cost_per_element, bool fusable)
{
    h2o_assert(elements >= 0, "elementwise '", name, "' negative elements");
    Op op;
    op.kind = OpKind::Elementwise;
    op.name = name;
    op.flops = elements * vpu_cost_per_element;
    op.inputBytes = elements * kDtypeBytes;
    op.outputBytes = elements * kDtypeBytes;
    op.onTensorUnit = false;
    op.fusable = fusable;
    return op;
}

Op
norm(const std::string &name, double elements)
{
    Op op;
    op.kind = OpKind::Norm;
    op.name = name;
    op.flops = 4.0 * elements; // mean, var, normalize, scale+shift
    op.inputBytes = elements * kDtypeBytes;
    op.outputBytes = elements * kDtypeBytes;
    op.onTensorUnit = false;
    op.fusable = true;
    return op;
}

Op
pool(const std::string &name, double in_elements, double out_elements)
{
    Op op;
    op.kind = OpKind::Pool;
    op.name = name;
    op.flops = in_elements;
    op.inputBytes = in_elements * kDtypeBytes;
    op.outputBytes = out_elements * kDtypeBytes;
    op.onTensorUnit = false;
    return op;
}

Op
squeezeExcite(const std::string &name, double batch, double h, double w,
              double c, double se_ratio)
{
    h2o_assert(se_ratio > 0.0 && se_ratio <= 1.0, "SE ratio out of range");
    double squeezed = std::max(1.0, c * se_ratio);
    Op op;
    op.kind = OpKind::Elementwise;
    op.name = name;
    // Global pool + FC(c->squeezed) + FC(squeezed->c) + scale.
    op.flops = batch * (h * w * c + 2.0 * c * squeezed * 2.0 + h * w * c);
    op.inputBytes = batch * h * w * c * kDtypeBytes;
    op.outputBytes = batch * h * w * c * kDtypeBytes;
    op.paramBytes = 2.0 * c * squeezed * kDtypeBytes;
    op.onTensorUnit = false;
    return op;
}

Op
embeddingLookup(const std::string &name, double lookups, double width)
{
    Op op;
    op.kind = OpKind::EmbeddingLookup;
    op.name = name;
    op.flops = lookups * width; // pooling adds
    // Each gather reads one row; random access also drags in DRAM
    // row-activation overhead, modeled as a 2x inflation of useful bytes.
    op.inputBytes = 2.0 * lookups * width * kDtypeBytes;
    op.outputBytes = lookups * width * kDtypeBytes;
    op.onTensorUnit = false;
    return op;
}

Op
allToAll(const std::string &name, double bytes)
{
    Op op;
    op.kind = OpKind::AllToAll;
    op.name = name;
    op.networkBytes = bytes;
    op.onTensorUnit = false;
    return op;
}

Op
allReduce(const std::string &name, double bytes)
{
    Op op;
    op.kind = OpKind::AllReduce;
    op.name = name;
    // Ring all-reduce moves ~2x the payload per chip.
    op.networkBytes = 2.0 * bytes;
    op.flops = bytes / kDtypeBytes; // reduction adds
    op.onTensorUnit = false;
    return op;
}

Op
concat(const std::string &name, double bytes)
{
    Op op;
    op.kind = OpKind::Concat;
    op.name = name;
    op.inputBytes = bytes;
    op.outputBytes = bytes;
    op.onTensorUnit = false;
    op.fusable = true;
    return op;
}

Op
reshape(const std::string &name, double bytes, bool free)
{
    Op op;
    op.kind = OpKind::Reshape;
    op.name = name;
    if (!free) {
        op.inputBytes = bytes;
        op.outputBytes = bytes;
    }
    op.onTensorUnit = false;
    op.fusable = true;
    return op;
}

} // namespace h2o::sim::ops
