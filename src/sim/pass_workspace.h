/**
 * @file
 * Reusable pass-annotation workspace for the simulator.
 *
 * Historically the compiler passes (fusion, memory placement) annotated
 * the graph in place, which forced `Simulator::run` to deep-copy every
 * input graph so annotations never leaked back to the caller. At
 * perf-model pretraining scale (thousands of `run` calls per bench) that
 * copy — a vector of Ops each carrying a name string and an input-id
 * vector — dominated the uncached simulation cost.
 *
 * PassWorkspace moves every pass-mutable quantity into a parallel
 * `OpAnnotations` array owned by the caller (in practice a thread_local
 * inside `Simulator::run`). The graph stays const; the workspace's
 * vectors are reused across runs, so steady-state simulation performs no
 * per-run heap allocation beyond `SimResult::perOp`.
 */

#ifndef H2O_SIM_PASS_WORKSPACE_H
#define H2O_SIM_PASS_WORKSPACE_H

#include <vector>

#include "sim/graph.h"

namespace h2o::sim {

/**
 * The pass-mutable view of one op: the byte quantities fusion folds into
 * a head, plus the placement annotations. Initialized from the op's
 * static fields by PassWorkspace::reset(); mutated by the annotation
 * overloads of fuseGraph / placeMemory; read by timeOp.
 */
struct OpAnnotations
{
    double outputBytes = 0.0;   ///< head writes the fused tail's output
    double paramBytes = 0.0;    ///< absorbs fused ops' streamed params
    double networkBytes = 0.0;  ///< absorbs fused ops' collective bytes
    double fusedVpuFlops = 0.0; ///< vector-unit FLOPs folded into this op
    bool fusedAway = false;     ///< folded into its producer
    double onChipFraction = 0.0; ///< activation traffic served on-chip
    bool paramsOnChip = false;   ///< weights resident in on-chip memory
};

/**
 * Scratch state for one simulation: per-op annotations plus the pass-
 * internal vectors (fusion's consumer counts and group roots, the DAG
 * walk's finish times). reset() re-initializes for a graph while reusing
 * the previous run's capacity.
 */
struct PassWorkspace
{
    std::vector<OpAnnotations> ann;

    // Pass-internal scratch (sized on demand by the passes).
    std::vector<uint32_t> consumers;
    std::vector<OpId> root;
    std::vector<double> finish;

    /** Size `ann` to the graph and seed each entry from its op's static
     *  (or previously annotated, for pre-fused inputs) fields. */
    void reset(const Graph &graph);

    /** Write the annotations back onto a mutable graph — the in-place
     *  pass APIs are thin wrappers over the annotation overloads. */
    void apply(Graph &graph) const;

    /** A reusable per-thread workspace for callers that simulate in a
     *  loop (Simulator::run uses this). */
    static PassWorkspace &forThread();
};

} // namespace h2o::sim

#endif // H2O_SIM_PASS_WORKSPACE_H
