#include "sim/memory.h"

#include <algorithm>

#include "common/logging.h"

namespace h2o::sim {

MemoryStats
placeMemory(Graph &graph, const hw::ChipSpec &chip,
            const MemoryConfig &config)
{
    h2o_assert(config.paramFraction >= 0.0 &&
                   config.activationFraction >= 0.0 &&
                   config.paramFraction + config.activationFraction <= 1.0 + 1e-9,
               "memory partition fractions exceed capacity");
    MemoryStats stats;
    double param_budget = chip.onChipCapacityBytes * config.paramFraction;
    stats.activationBudget =
        chip.onChipCapacityBytes * config.activationFraction;

    stats.paramsResident = graph.totalParamBytes() <= param_budget;

    for (auto &op : graph.ops()) {
        if (op.fusedAway)
            continue;
        op.paramsOnChip = stats.paramsResident && op.paramBytes > 0.0;

        double tensor_bytes = std::max(op.inputBytes, op.outputBytes);
        if (tensor_bytes <= 0.0) {
            op.onChipFraction = 0.0;
            continue;
        }
        if (tensor_bytes <= stats.activationBudget) {
            op.onChipFraction = 1.0;
            stats.onChipTensors += 1;
        } else {
            // The head of the tensor streams through CMEM; the rest
            // spills. Embedding gathers never cache (random access).
            if (op.kind == OpKind::EmbeddingLookup) {
                op.onChipFraction = 0.0;
            } else {
                op.onChipFraction =
                    std::clamp(stats.activationBudget / tensor_bytes, 0.0, 1.0);
            }
            stats.spilledTensors += 1;
        }
    }
    return stats;
}

} // namespace h2o::sim
