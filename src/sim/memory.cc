#include "sim/memory.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/pass_workspace.h"

namespace h2o::sim {

MemoryStats
placeMemory(const Graph &graph, const hw::ChipSpec &chip,
            const MemoryConfig &config, PassWorkspace &ws)
{
    h2o_assert(config.paramFraction >= 0.0 &&
                   config.activationFraction >= 0.0 &&
                   config.paramFraction + config.activationFraction <= 1.0 + 1e-9,
               "memory partition fractions exceed capacity");
    const auto &ops = graph.ops();
    h2o_assert(ws.ann.size() == ops.size(),
               "memory workspace not reset for graph");
    MemoryStats stats;
    double param_budget = chip.onChipCapacityBytes * config.paramFraction;
    stats.activationBudget =
        chip.onChipCapacityBytes * config.activationFraction;

    // Live parameter bytes post-fusion (fused ops' params were folded
    // into their heads, so summing live annotations preserves the total).
    double total_param_bytes = 0.0;
    for (size_t i = 0; i < ops.size(); ++i)
        if (!ws.ann[i].fusedAway)
            total_param_bytes += ws.ann[i].paramBytes;
    stats.paramsResident = total_param_bytes <= param_budget;

    for (size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        OpAnnotations &a = ws.ann[i];
        if (a.fusedAway)
            continue;
        a.paramsOnChip = stats.paramsResident && a.paramBytes > 0.0;

        double tensor_bytes = std::max(op.inputBytes, a.outputBytes);
        if (tensor_bytes <= 0.0) {
            a.onChipFraction = 0.0;
            continue;
        }
        if (tensor_bytes <= stats.activationBudget) {
            a.onChipFraction = 1.0;
            stats.onChipTensors += 1;
        } else {
            // The head of the tensor streams through CMEM; the rest
            // spills. Embedding gathers never cache (random access).
            if (op.kind == OpKind::EmbeddingLookup) {
                a.onChipFraction = 0.0;
            } else {
                a.onChipFraction =
                    std::clamp(stats.activationBudget / tensor_bytes, 0.0, 1.0);
            }
            stats.spilledTensors += 1;
        }
    }
    return stats;
}

MemoryStats
placeMemory(Graph &graph, const hw::ChipSpec &chip,
            const MemoryConfig &config)
{
    PassWorkspace ws;
    ws.reset(graph);
    MemoryStats stats =
        placeMemory(static_cast<const Graph &>(graph), chip, config, ws);
    ws.apply(graph);
    return stats;
}

} // namespace h2o::sim
