/**
 * @file
 * The ML performance simulator.
 *
 * Reimplements the role of the paper's in-house simulator (Section 6.2.3):
 * given a cost-annotated op graph and a target chip, it runs the compiler
 * passes (fusion, on-chip memory placement), times every op against the
 * chip's subsystems, and walks the DAG to produce the execution time plus
 * the per-subsystem counters (FLOPS, HBM/CMEM traffic, network time,
 * power, energy) that the benchmarks and the reward function consume.
 *
 * Step time combines two constraints:
 *  - resource serialization: each hardware resource can only do so much
 *    work per step (sum of busy time per resource), and
 *  - dependency chains: the DAG longest path over op latencies.
 * Parallel branches (e.g. DLRM's embedding column vs its bottom MLP)
 * overlap, giving the paper's MAX(embedding time, MLP time) behavior.
 */

#ifndef H2O_SIM_SIMULATOR_H
#define H2O_SIM_SIMULATOR_H

#include <span>
#include <vector>

#include "hw/chip.h"
#include "hw/power.h"
#include "sim/cost_model.h"
#include "sim/fusion.h"
#include "sim/graph.h"
#include "sim/memory.h"

namespace h2o::sim {

class PassWorkspace;

/** Simulator configuration. */
struct SimConfig
{
    hw::ChipSpec chip;
    bool enableFusion = true;
    bool enableMemoryPlacement = true;
    MemoryConfig memory{};
};

/** Aggregate result of simulating one step of one graph on one chip. */
struct SimResult
{
    double stepTimeSec = 0.0;    ///< simulated execution time per step
    double totalFlops = 0.0;     ///< useful FLOPs per step
    double achievedFlops = 0.0;  ///< totalFlops / stepTimeSec
    double operationalIntensity = 0.0; ///< FLOPs per memory byte (HBM+CMEM)

    double hbmBytes = 0.0;
    double onChipBytes = 0.0;
    double networkBytes = 0.0;
    double hbmBandwidthUsed = 0.0;    ///< bytes/s averaged over the step
    double onChipBandwidthUsed = 0.0; ///< bytes/s averaged over the step

    double tensorBusySec = 0.0;  ///< total tensor-unit work
    double vpuBusySec = 0.0;     ///< total vector-unit work
    double hbmSec = 0.0;         ///< HBM-serialized time
    double onChipSec = 0.0;      ///< CMEM-serialized time
    double networkSec = 0.0;     ///< ICI-serialized time
    double criticalPathSec = 0.0; ///< DAG longest path

    hw::BoundBy boundBy = hw::BoundBy::Memory; ///< step-level bottleneck
    double tensorUtilization = 0.0; ///< tensor busy / step time

    double avgPowerW = 0.0;      ///< power model output
    double energyPerStepJ = 0.0; ///< stepTime x power

    size_t liveOps = 0;
    size_t fusedOps = 0;
    bool paramsResident = false;

    /** Per-live-op timings, parallel to graph op order (fused ops have
     *  zeroed entries). Kept for the hardware-analysis benches. */
    std::vector<OpTiming> perOp;
};

/** One (graph, configuration) pair of a heterogeneous simulation
 *  batch; both pointers must outlive the runBatchMulti call. */
struct SimRequest
{
    const Graph *graph = nullptr;
    const SimConfig *config = nullptr;
};

/**
 * The simulator. Stateless apart from configuration. run() keeps the
 * input graph const: pass annotations go into a reusable per-thread
 * PassWorkspace, so repeated runs neither copy the graph nor leak
 * annotations back to the caller.
 */
class Simulator
{
  public:
    /** @param config Chip and pass configuration. */
    explicit Simulator(SimConfig config);

    /** Simulate one execution step of the graph. Implemented as a
     *  one-element runBatch. */
    SimResult run(const Graph &graph) const;

    /**
     * Simulate one step of each graph, in order. The calling thread's
     * PassWorkspace is fetched once for the whole batch and graph
     * validation is amortized: a graph pointer that recurs in the batch
     * is validated only on first sight. Results are element-for-element
     * identical to N separate run() calls (the simulator is pure).
     */
    std::vector<SimResult>
    runBatch(std::span<const Graph *const> graphs) const;

    /**
     * Simulate heterogeneous (graph, config) pairs in order — the joint
     * multi-target path batches all (candidate x chip) pairs of one
     * evaluation through a single call. As in runBatch, the calling
     * thread's PassWorkspace is fetched once and each distinct graph
     * pointer is validated once; one Simulator core is built per
     * distinct config pointer. Results are element-for-element
     * identical to per-pair run() calls.
     */
    static std::vector<SimResult>
    runBatchMulti(std::span<const SimRequest> requests);

    /** The configured chip. */
    const hw::ChipSpec &chip() const { return _config.chip; }

  private:
    /** The per-graph core: passes + timing on an already-validated
     *  graph, annotations in the caller's workspace. */
    SimResult runValidated(const Graph &graph, PassWorkspace &ws) const;

    SimConfig _config;
};

} // namespace h2o::sim

#endif // H2O_SIM_SIMULATOR_H
