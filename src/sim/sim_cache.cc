#include "sim/sim_cache.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "common/logging.h"
#include "common/serialize.h"
#include "exec/checkpoint.h"

namespace h2o::sim {

namespace {

/** SplitMix64-style combine: order-sensitive, avalanche per word. */
uint64_t
mixWord(uint64_t h, uint64_t v)
{
    uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
mixDouble(uint64_t h, double v)
{
    return mixWord(h, std::bit_cast<uint64_t>(v));
}

uint64_t
mixString(uint64_t h, const std::string &s)
{
    h = mixWord(h, s.size());
    for (char c : s)
        h = mixWord(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    return h;
}

} // namespace

uint64_t
chipFingerprint(const hw::ChipSpec &chip)
{
    uint64_t h = 0x6833326f63686970ULL; // "h2ochip"
    h = mixString(h, chip.name);
    h = mixDouble(h, chip.peakTensorFlops);
    h = mixDouble(h, chip.peakVectorFlops);
    h = mixWord(h, chip.tensorTile);
    h = mixDouble(h, chip.hbmCapacityBytes);
    h = mixDouble(h, chip.hbmBandwidth);
    h = mixDouble(h, chip.onChipCapacityBytes);
    h = mixDouble(h, chip.onChipBandwidth);
    h = mixDouble(h, chip.iciBandwidth);
    h = mixDouble(h, chip.idlePowerW);
    h = mixDouble(h, chip.computePowerW);
    h = mixDouble(h, chip.hbmEnergyPerByte);
    h = mixDouble(h, chip.onChipEnergyPerByte);
    return h;
}

uint64_t
simConfigFingerprint(const SimConfig &config)
{
    uint64_t h = chipFingerprint(config.chip);
    h = mixWord(h, config.enableFusion ? 1 : 0);
    h = mixWord(h, config.enableMemoryPlacement ? 2 : 0);
    h = mixDouble(h, config.memory.paramFraction);
    h = mixDouble(h, config.memory.activationFraction);
    return h;
}

uint64_t
simCacheKeyHash(const SimCacheKey &key)
{
    uint64_t h = key.configFingerprint;
    h = mixWord(h, key.decisions.size());
    for (uint64_t d : key.decisions)
        h = mixWord(h, d);
    return h;
}

SimCacheKey
makeSimCacheKey(const std::vector<size_t> &sample, uint64_t mode_tag,
                const SimConfig &config)
{
    SimCacheKey key;
    key.decisions.reserve(sample.size() + 1);
    for (size_t d : sample)
        key.decisions.push_back(static_cast<uint64_t>(d));
    key.decisions.push_back(mode_tag);
    key.configFingerprint = simConfigFingerprint(config);
    return key;
}

SimCache::SimCache(size_t capacity, size_t num_shards)
{
    h2o_assert(capacity > 0, "sim cache with zero capacity");
    if (num_shards == 0)
        num_shards = 1;
    // Never more shards than entries: every shard must hold >= 1 entry.
    num_shards = std::min(num_shards, capacity);
    _shardCapacity = (capacity + num_shards - 1) / num_shards;
    _shards.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s)
        _shards.push_back(std::make_unique<Shard>());
}

SimCache::Shard &
SimCache::shardFor(const SimCacheKey &key)
{
    return *_shards[simCacheKeyHash(key) % _shards.size()];
}

bool
SimCache::lookup(const SimCacheKey &key, SimResult &out)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->tick = nextTick();
    out = it->second->value;
    _hits.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
SimCache::insert(const SimCacheKey &key, SimResult value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Concurrent miss raced us here; results are identical (the
        // simulator is pure), keep the freshest and refresh LRU.
        it->second->value = std::move(value);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        it->second->tick = nextTick();
        return;
    }
    shard.lru.push_front(Entry{key, std::move(value), nextTick()});
    shard.index.emplace(key, shard.lru.begin());
    if (shard.index.size() > _shardCapacity) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        _evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

std::vector<char>
SimCache::lookupBatch(std::span<const SimCacheKey> keys,
                      std::vector<SimResult> &out)
{
    size_t n = keys.size();
    if (out.size() < n)
        out.resize(n);
    std::vector<char> hit(n, 0);

    // Group key positions by stripe, then visit each stripe under one
    // lock. Ascending batch position within a stripe keeps the LRU
    // refresh order deterministic.
    std::vector<size_t> stripe_of(n);
    for (size_t i = 0; i < n; ++i)
        stripe_of[i] = simCacheKeyHash(keys[i]) % _shards.size();

    uint64_t hits = 0, misses = 0;
    std::vector<char> stripe_seen(_shards.size(), 0);
    for (size_t i = 0; i < n; ++i) {
        size_t s = stripe_of[i];
        if (stripe_seen[s])
            continue;
        stripe_seen[s] = 1;
        Shard &shard = *_shards[s];
        std::lock_guard<std::mutex> lock(shard.mu);
        for (size_t j = i; j < n; ++j) {
            if (stripe_of[j] != s)
                continue;
            auto it = shard.index.find(keys[j]);
            if (it == shard.index.end()) {
                ++misses;
                continue;
            }
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            it->second->tick = nextTick();
            out[j] = it->second->value;
            hit[j] = 1;
            ++hits;
        }
    }
    if (hits)
        _hits.fetch_add(hits, std::memory_order_relaxed);
    if (misses)
        _misses.fetch_add(misses, std::memory_order_relaxed);
    return hit;
}

void
SimCache::insertBatch(std::span<const SimCacheKey> keys,
                      std::span<const SimResult> values)
{
    h2o_assert(keys.size() == values.size(),
               "insertBatch key/value count mismatch");
    size_t n = keys.size();
    std::vector<size_t> stripe_of(n);
    for (size_t i = 0; i < n; ++i)
        stripe_of[i] = simCacheKeyHash(keys[i]) % _shards.size();

    uint64_t evictions = 0;
    std::vector<char> stripe_seen(_shards.size(), 0);
    for (size_t i = 0; i < n; ++i) {
        size_t s = stripe_of[i];
        if (stripe_seen[s])
            continue;
        stripe_seen[s] = 1;
        Shard &shard = *_shards[s];
        std::lock_guard<std::mutex> lock(shard.mu);
        for (size_t j = i; j < n; ++j) {
            if (stripe_of[j] != s)
                continue;
            auto it = shard.index.find(keys[j]);
            if (it != shard.index.end()) {
                it->second->value = values[j];
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second);
                it->second->tick = nextTick();
                continue;
            }
            shard.lru.push_front(Entry{keys[j], values[j], nextTick()});
            shard.index.emplace(keys[j], shard.lru.begin());
            if (shard.index.size() > _shardCapacity) {
                shard.index.erase(shard.lru.back().key);
                shard.lru.pop_back();
                ++evictions;
            }
        }
    }
    if (evictions)
        _evictions.fetch_add(evictions, std::memory_order_relaxed);
}

SimCacheStats
SimCache::stats() const
{
    SimCacheStats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    s.evictions = _evictions.load(std::memory_order_relaxed);
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        s.entries += shard->index.size();
    }
    return s;
}

void
SimCache::clear()
{
    for (auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->index.clear();
        shard->lru.clear();
    }
}

// ------------------------------------------------------- persistence

namespace {

constexpr uint64_t kSimCacheFormatVersion = 1;

void
writeResult(std::ostream &os, const SimResult &r)
{
    common::writeTagged(
        os, "res",
        {r.stepTimeSec, r.totalFlops, r.achievedFlops,
         r.operationalIntensity, r.hbmBytes, r.onChipBytes,
         r.networkBytes, r.hbmBandwidthUsed, r.onChipBandwidthUsed,
         r.tensorBusySec, r.vpuBusySec, r.hbmSec, r.onChipSec,
         r.networkSec, r.criticalPathSec, r.tensorUtilization,
         r.avgPowerW, r.energyPerStepJ});
    common::writeTaggedU64(os, "res_meta",
                           {static_cast<uint64_t>(r.boundBy),
                            static_cast<uint64_t>(r.liveOps),
                            static_cast<uint64_t>(r.fusedOps),
                            r.paramsResident ? 1ULL : 0ULL});
    std::vector<double> per_op;
    per_op.reserve(r.perOp.size() * 7);
    for (const OpTiming &t : r.perOp) {
        per_op.push_back(t.seconds);
        per_op.push_back(t.tensorBusySec);
        per_op.push_back(t.vpuBusySec);
        per_op.push_back(t.hbmBytes);
        per_op.push_back(t.onChipBytes);
        per_op.push_back(t.networkBytes);
        per_op.push_back(static_cast<double>(t.boundBy));
    }
    common::writeTagged(os, "res_per_op", per_op);
}

SimResult
readResult(std::istream &is)
{
    SimResult r;
    auto d = common::readTagged(is, "res");
    if (d.size() != 18)
        h2o_fatal("malformed sim-cache result record (", d.size(),
                  " scalars)");
    r.stepTimeSec = d[0];
    r.totalFlops = d[1];
    r.achievedFlops = d[2];
    r.operationalIntensity = d[3];
    r.hbmBytes = d[4];
    r.onChipBytes = d[5];
    r.networkBytes = d[6];
    r.hbmBandwidthUsed = d[7];
    r.onChipBandwidthUsed = d[8];
    r.tensorBusySec = d[9];
    r.vpuBusySec = d[10];
    r.hbmSec = d[11];
    r.onChipSec = d[12];
    r.networkSec = d[13];
    r.criticalPathSec = d[14];
    r.tensorUtilization = d[15];
    r.avgPowerW = d[16];
    r.energyPerStepJ = d[17];
    auto meta = common::readTaggedU64(is, "res_meta");
    if (meta.size() != 4)
        h2o_fatal("malformed sim-cache result metadata");
    r.boundBy = static_cast<hw::BoundBy>(meta[0]);
    r.liveOps = static_cast<size_t>(meta[1]);
    r.fusedOps = static_cast<size_t>(meta[2]);
    r.paramsResident = meta[3] != 0;
    auto per_op = common::readTagged(is, "res_per_op");
    if (per_op.size() % 7 != 0)
        h2o_fatal("malformed sim-cache per-op record");
    r.perOp.resize(per_op.size() / 7);
    for (size_t i = 0; i < r.perOp.size(); ++i) {
        OpTiming &t = r.perOp[i];
        const double *p = per_op.data() + i * 7;
        t.seconds = p[0];
        t.tensorBusySec = p[1];
        t.vpuBusySec = p[2];
        t.hbmBytes = p[3];
        t.onChipBytes = p[4];
        t.networkBytes = p[5];
        t.boundBy = static_cast<hw::BoundBy>(p[6]);
    }
    return r;
}

} // namespace

void
SimCache::save(std::ostream &os) const
{
    // Snapshot under the stripe locks first so one consistent image is
    // serialized even while other threads keep inserting.
    std::vector<const Entry *> entries;
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(_shards.size());
    for (const auto &shard : _shards)
        locks.emplace_back(shard->mu);
    for (const auto &shard : _shards)
        for (const Entry &e : shard->lru)
            entries.push_back(&e);

    // Global least-recently-used first (the recency ticks interleave
    // the stripes): replaying inserts in this order reproduces the
    // cross-shard recency order on load, into ANY target geometry, and
    // a smaller-capacity load evicts the globally oldest entries.
    std::sort(entries.begin(), entries.end(),
              [](const Entry *a, const Entry *b) {
                  return a->tick < b->tick;
              });

    common::writeTaggedU64(os, "sim_cache",
                           {kSimCacheFormatVersion,
                            static_cast<uint64_t>(entries.size())});
    for (const Entry *e : entries) {
        std::vector<uint64_t> key_words;
        key_words.reserve(e->key.decisions.size() + 1);
        key_words.push_back(e->key.configFingerprint);
        key_words.insert(key_words.end(), e->key.decisions.begin(),
                         e->key.decisions.end());
        common::writeTaggedU64(os, "key", key_words);
        writeResult(os, e->value);
    }
}

void
SimCache::load(std::istream &is)
{
    auto header = common::readTaggedU64(is, "sim_cache");
    if (header.size() != 2 || header[0] != kSimCacheFormatVersion)
        h2o_fatal("unsupported sim-cache stream header");
    size_t count = static_cast<size_t>(header[1]);
    for (size_t i = 0; i < count; ++i) {
        auto key_words = common::readTaggedU64(is, "key");
        if (key_words.empty())
            h2o_fatal("malformed sim-cache key record");
        SimCacheKey key;
        key.configFingerprint = key_words[0];
        key.decisions.assign(key_words.begin() + 1, key_words.end());
        insert(key, readResult(is));
    }
}

void
SimCache::mergeFrom(std::istream &is)
{
    // Parse the incoming stream up front (save() wrote it globally
    // oldest-first; that relative order is preserved below).
    auto header = common::readTaggedU64(is, "sim_cache");
    if (header.size() != 2 || header[0] != kSimCacheFormatVersion)
        h2o_fatal("unsupported sim-cache stream header");
    size_t count = static_cast<size_t>(header[1]);
    std::vector<std::pair<SimCacheKey, SimResult>> incoming;
    incoming.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        auto key_words = common::readTaggedU64(is, "key");
        if (key_words.empty())
            h2o_fatal("malformed sim-cache key record");
        SimCacheKey key;
        key.configFingerprint = key_words[0];
        key.decisions.assign(key_words.begin() + 1, key_words.end());
        incoming.emplace_back(std::move(key), readResult(is));
    }

    // Snapshot the live entries, globally oldest-first by recency tick.
    std::vector<Entry> live;
    {
        std::vector<std::unique_lock<std::mutex>> locks;
        locks.reserve(_shards.size());
        for (const auto &shard : _shards)
            locks.emplace_back(shard->mu);
        for (const auto &shard : _shards)
            for (const Entry &e : shard->lru)
                live.push_back(e);
    }
    std::sort(live.begin(), live.end(),
              [](const Entry &a, const Entry &b) {
                  return a.tick < b.tick;
              });
    std::unordered_set<SimCacheKey, KeyHash> live_keys;
    live_keys.reserve(live.size());
    for (const Entry &e : live)
        live_keys.insert(e.key);

    // Rebuild: stream-only entries first (they take the oldest recency
    // ranks), then the live entries oldest-to-newest, so LRU eviction
    // under capacity pressure drops the merged-in entries before
    // anything this process computed, and a key present on both sides
    // keeps the live value.
    clear();
    for (auto &[key, value] : incoming)
        if (!live_keys.contains(key))
            insert(key, std::move(value));
    for (Entry &e : live)
        insert(e.key, std::move(e.value));
}

bool
warmSimCacheFromFile(SimCache &cache, const std::string &path)
{
    if (path.empty() || !exec::CheckpointReader::exists(path))
        return false;
    exec::CheckpointReader reader(path);
    cache.load(reader.stream());
    return true;
}

void
saveSimCacheFileMerged(SimCache &cache, const std::string &path)
{
    if (path.empty())
        return;
    if (exec::CheckpointReader::exists(path)) {
        exec::CheckpointReader reader(path);
        cache.mergeFrom(reader.stream());
    }
    exec::CheckpointWriter writer;
    cache.save(writer.stream());
    writer.commit(path);
}

} // namespace h2o::sim
