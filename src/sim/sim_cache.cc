#include "sim/sim_cache.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace h2o::sim {

namespace {

/** SplitMix64-style combine: order-sensitive, avalanche per word. */
uint64_t
mixWord(uint64_t h, uint64_t v)
{
    uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
mixDouble(uint64_t h, double v)
{
    return mixWord(h, std::bit_cast<uint64_t>(v));
}

uint64_t
mixString(uint64_t h, const std::string &s)
{
    h = mixWord(h, s.size());
    for (char c : s)
        h = mixWord(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
    return h;
}

} // namespace

uint64_t
chipFingerprint(const hw::ChipSpec &chip)
{
    uint64_t h = 0x6833326f63686970ULL; // "h2ochip"
    h = mixString(h, chip.name);
    h = mixDouble(h, chip.peakTensorFlops);
    h = mixDouble(h, chip.peakVectorFlops);
    h = mixWord(h, chip.tensorTile);
    h = mixDouble(h, chip.hbmCapacityBytes);
    h = mixDouble(h, chip.hbmBandwidth);
    h = mixDouble(h, chip.onChipCapacityBytes);
    h = mixDouble(h, chip.onChipBandwidth);
    h = mixDouble(h, chip.iciBandwidth);
    h = mixDouble(h, chip.idlePowerW);
    h = mixDouble(h, chip.computePowerW);
    h = mixDouble(h, chip.hbmEnergyPerByte);
    h = mixDouble(h, chip.onChipEnergyPerByte);
    return h;
}

uint64_t
simConfigFingerprint(const SimConfig &config)
{
    uint64_t h = chipFingerprint(config.chip);
    h = mixWord(h, config.enableFusion ? 1 : 0);
    h = mixWord(h, config.enableMemoryPlacement ? 2 : 0);
    h = mixDouble(h, config.memory.paramFraction);
    h = mixDouble(h, config.memory.activationFraction);
    return h;
}

uint64_t
simCacheKeyHash(const SimCacheKey &key)
{
    uint64_t h = key.configFingerprint;
    h = mixWord(h, key.decisions.size());
    for (uint64_t d : key.decisions)
        h = mixWord(h, d);
    return h;
}

SimCacheKey
makeSimCacheKey(const std::vector<size_t> &sample, uint64_t mode_tag,
                const SimConfig &config)
{
    SimCacheKey key;
    key.decisions.reserve(sample.size() + 1);
    for (size_t d : sample)
        key.decisions.push_back(static_cast<uint64_t>(d));
    key.decisions.push_back(mode_tag);
    key.configFingerprint = simConfigFingerprint(config);
    return key;
}

SimCache::SimCache(size_t capacity, size_t num_shards)
{
    h2o_assert(capacity > 0, "sim cache with zero capacity");
    if (num_shards == 0)
        num_shards = 1;
    // Never more shards than entries: every shard must hold >= 1 entry.
    num_shards = std::min(num_shards, capacity);
    _shardCapacity = (capacity + num_shards - 1) / num_shards;
    _shards.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s)
        _shards.push_back(std::make_unique<Shard>());
}

SimCache::Shard &
SimCache::shardFor(const SimCacheKey &key)
{
    return *_shards[simCacheKeyHash(key) % _shards.size()];
}

bool
SimCache::lookup(const SimCacheKey &key, SimResult &out)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        _misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    out = it->second->value;
    _hits.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
SimCache::insert(const SimCacheKey &key, SimResult value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Concurrent miss raced us here; results are identical (the
        // simulator is pure), keep the freshest and refresh LRU.
        it->second->value = std::move(value);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(Entry{key, std::move(value)});
    shard.index.emplace(key, shard.lru.begin());
    if (shard.index.size() > _shardCapacity) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        _evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

SimCacheStats
SimCache::stats() const
{
    SimCacheStats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    s.evictions = _evictions.load(std::memory_order_relaxed);
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        s.entries += shard->index.size();
    }
    return s;
}

void
SimCache::clear()
{
    for (auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->index.clear();
        shard->lru.clear();
    }
}

} // namespace h2o::sim
