#include "sim/serving.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::sim {

namespace {

/** ln(100): exponential-tail multiplier from mean waiting to p99. */
constexpr double kTail99 = 4.605170186;

} // namespace

double
p99Sojourn(double step_time_sec, double rho)
{
    h2o_assert(step_time_sec > 0.0, "non-positive step time");
    h2o_assert(rho >= 0.0 && rho < 1.0, "utilization out of [0,1): ", rho);
    double wq = rho * step_time_sec / (2.0 * (1.0 - rho));
    return step_time_sec + kTail99 * wq;
}

ServingResult
servingThroughput(double step_time_sec, const ServingConfig &config)
{
    h2o_assert(step_time_sec > 0.0, "non-positive step time");
    h2o_assert(config.p99TargetSec > 0.0, "non-positive p99 target");
    h2o_assert(config.numReplicas >= 1, "no serving replicas");
    h2o_assert(config.requestsPerBatch > 0.0, "non-positive batch size");

    ServingResult res;
    if (step_time_sec >= config.p99TargetSec)
        return res; // even an unloaded replica misses the target

    // Solve p99Sojourn(s, rho) = target for rho:
    //   s + K * rho * s / (2 (1 - rho)) = T
    //   rho = 2 (T - s) / (K s + 2 (T - s))
    double slack = config.p99TargetSec - step_time_sec;
    double rho = 2.0 * slack / (kTail99 * step_time_sec + 2.0 * slack);
    rho = std::min(rho, 0.999); // keep strictly below saturation

    res.feasible = true;
    res.utilization = rho;
    res.p99LatencySec = p99Sojourn(step_time_sec, rho);
    double per_replica_qps =
        rho / step_time_sec * config.requestsPerBatch;
    res.maxThroughputQps = per_replica_qps * config.numReplicas;
    return res;
}

} // namespace h2o::sim
