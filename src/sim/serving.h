/**
 * @file
 * Serving-deployment model: throughput under a p99 latency target.
 *
 * The paper's serving objective is "the serving throughput under P99
 * target latency over O(n) serving accelerators" (Section 6.2.2) —
 * serving is not just a step time, because queueing at high load
 * inflates tail latency. This module models each replica as an M/D/1
 * queue (Poisson arrivals, deterministic service = the simulated
 * serving step time) and computes the highest load whose p99 sojourn
 * time stays within the target.
 *
 * p99 model: mean waiting for M/D/1 is Wq = rho * s / (2 (1 - rho));
 * the tail is approximated as exponential, giving
 * p99 sojourn ~ s + ln(100) * Wq. This captures the two regimes that
 * matter for NAS: a model whose bare step time exceeds the target
 * serves nothing, and a model well under the target can be driven to
 * high utilization before the tail blows up.
 */

#ifndef H2O_SIM_SERVING_H
#define H2O_SIM_SERVING_H

#include <cstdint>

namespace h2o::sim {

/** Serving deployment parameters. */
struct ServingConfig
{
    /** Number of serving accelerators (the paper's O(n) replicas). */
    uint32_t numReplicas = 1;
    /** p99 end-to-end latency target, seconds. */
    double p99TargetSec = 0.010;
    /** Requests served per batch (one step serves one batch). */
    double requestsPerBatch = 1.0;
};

/** Outcome of the serving analysis. */
struct ServingResult
{
    /** Highest sustainable request rate meeting the p99 target, QPS
     *  across all replicas. Zero when the bare step time misses it. */
    double maxThroughputQps = 0.0;
    /** Per-replica utilization at that operating point, [0, 1). */
    double utilization = 0.0;
    /** p99 sojourn latency at that operating point, seconds. */
    double p99LatencySec = 0.0;
    /** Whether the model can meet the target at all. */
    bool feasible = false;
};

/**
 * Compute serving throughput under the p99 target.
 *
 * @param step_time_sec Simulated serving step (batch) time per replica.
 * @param config        Deployment parameters.
 */
ServingResult servingThroughput(double step_time_sec,
                                const ServingConfig &config);

/** p99 sojourn time for an M/D/1 replica at utilization rho. */
double p99Sojourn(double step_time_sec, double rho);

} // namespace h2o::sim

#endif // H2O_SIM_SERVING_H
