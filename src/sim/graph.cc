#include "sim/graph.h"

#include "common/logging.h"

namespace h2o::sim {

Graph::Graph(std::string name) : _name(std::move(name)) {}

OpId
Graph::add(Op op)
{
    for (OpId in : op.inputs) {
        h2o_assert(in < _ops.size(), "op '", op.name,
                   "' references future op id ", in);
    }
    _ops.push_back(std::move(op));
    return static_cast<OpId>(_ops.size() - 1);
}

Op &
Graph::op(OpId id)
{
    h2o_assert(id < _ops.size(), "op id ", id, " out of range");
    return _ops[id];
}

const Op &
Graph::op(OpId id) const
{
    h2o_assert(id < _ops.size(), "op id ", id, " out of range");
    return _ops[id];
}

double
Graph::totalFlops() const
{
    double total = 0.0;
    for (const auto &op : _ops)
        if (!op.fusedAway)
            total += op.flops;
    return total;
}

double
Graph::totalParamBytes() const
{
    double total = 0.0;
    for (const auto &op : _ops)
        if (!op.fusedAway)
            total += op.paramBytes;
    return total;
}

void
Graph::validate() const
{
    for (size_t i = 0; i < _ops.size(); ++i) {
        for (OpId in : _ops[i].inputs) {
            h2o_assert(in < i, "graph '", _name, "': op ", i,
                       " consumes non-preceding op ", in);
        }
        h2o_assert(_ops[i].flops >= 0.0 && _ops[i].inputBytes >= 0.0 &&
                       _ops[i].outputBytes >= 0.0 &&
                       _ops[i].paramBytes >= 0.0 &&
                       _ops[i].networkBytes >= 0.0,
                   "graph '", _name, "': op '", _ops[i].name,
                   "' has negative cost");
    }
}

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Matmul:
        return "matmul";
      case OpKind::Conv2d:
        return "conv2d";
      case OpKind::DepthwiseConv2d:
        return "depthwise_conv2d";
      case OpKind::Attention:
        return "attention";
      case OpKind::Elementwise:
        return "elementwise";
      case OpKind::Norm:
        return "norm";
      case OpKind::Pool:
        return "pool";
      case OpKind::Reshape:
        return "reshape";
      case OpKind::EmbeddingLookup:
        return "embedding_lookup";
      case OpKind::AllToAll:
        return "all_to_all";
      case OpKind::AllReduce:
        return "all_reduce";
      case OpKind::Concat:
        return "concat";
    }
    h2o_panic("unhandled op kind");
}

} // namespace h2o::sim
