#include "sim/pass_workspace.h"

#include "common/logging.h"

namespace h2o::sim {

void
PassWorkspace::reset(const Graph &graph)
{
    const auto &ops = graph.ops();
    ann.resize(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        OpAnnotations &a = ann[i];
        a.outputBytes = op.outputBytes;
        a.paramBytes = op.paramBytes;
        a.networkBytes = op.networkBytes;
        a.fusedVpuFlops = op.fusedVpuFlops;
        a.fusedAway = op.fusedAway;
        a.onChipFraction = op.onChipFraction;
        a.paramsOnChip = op.paramsOnChip;
    }
}

void
PassWorkspace::apply(Graph &graph) const
{
    auto &ops = graph.ops();
    h2o_assert(ann.size() == ops.size(),
               "pass workspace sized for a different graph");
    for (size_t i = 0; i < ops.size(); ++i) {
        const OpAnnotations &a = ann[i];
        Op &op = ops[i];
        op.outputBytes = a.outputBytes;
        op.paramBytes = a.paramBytes;
        op.networkBytes = a.networkBytes;
        op.fusedVpuFlops = a.fusedVpuFlops;
        op.fusedAway = a.fusedAway;
        op.onChipFraction = a.onChipFraction;
        op.paramsOnChip = a.paramsOnChip;
    }
}

PassWorkspace &
PassWorkspace::forThread()
{
    thread_local PassWorkspace ws;
    return ws;
}

} // namespace h2o::sim
