#include "sim/cost_model.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/pass_workspace.h"

namespace h2o::sim {

OpTiming
timeOp(const hw::ChipSpec &chip, const Op &op, const OpAnnotations &a)
{
    h2o_assert(!a.fusedAway, "timing a fused-away op '", op.name, "'");
    OpTiming t;

    double act_bytes = op.inputBytes + a.outputBytes;
    t.onChipBytes = act_bytes * a.onChipFraction;
    t.hbmBytes = act_bytes * (1.0 - a.onChipFraction);
    if (a.paramsOnChip)
        t.onChipBytes += a.paramBytes;
    else
        t.hbmBytes += a.paramBytes;
    t.networkBytes = a.networkBytes;

    if (op.onTensorUnit) {
        double eff = 1.0;
        if (op.dimM > 0 && op.dimN > 0 && op.dimK > 0)
            eff = hw::tileEfficiency(chip, op.dimM, op.dimN, op.dimK);
        t.tensorBusySec = op.flops / (chip.peakTensorFlops * eff);
        t.vpuBusySec = a.fusedVpuFlops / chip.peakVectorFlops;
    } else {
        t.vpuBusySec = (op.flops + a.fusedVpuFlops) / chip.peakVectorFlops;
    }

    double hbm_sec = t.hbmBytes / chip.hbmBandwidth;
    double cmem_sec = t.onChipBytes / chip.onChipBandwidth;
    double net_sec = t.networkBytes / chip.iciBandwidth;

    t.seconds = std::max({t.tensorBusySec, t.vpuBusySec, hbm_sec, cmem_sec,
                          net_sec});

    if (t.seconds == t.tensorBusySec && op.onTensorUnit)
        t.boundBy = hw::BoundBy::TensorCompute;
    else if (t.seconds == net_sec && t.networkBytes > 0.0)
        t.boundBy = hw::BoundBy::Network;
    else if (t.seconds == t.vpuBusySec && t.vpuBusySec > 0.0)
        t.boundBy = hw::BoundBy::VectorCompute;
    else
        t.boundBy = hw::BoundBy::Memory;
    return t;
}

OpTiming
timeOp(const hw::ChipSpec &chip, const Op &op)
{
    OpAnnotations a;
    a.outputBytes = op.outputBytes;
    a.paramBytes = op.paramBytes;
    a.networkBytes = op.networkBytes;
    a.fusedVpuFlops = op.fusedVpuFlops;
    a.fusedAway = op.fusedAway;
    a.onChipFraction = op.onChipFraction;
    a.paramsOnChip = op.paramsOnChip;
    return timeOp(chip, op, a);
}

} // namespace h2o::sim
