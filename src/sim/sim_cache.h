/**
 * @file
 * Sharded memoization cache fronting `Simulator::run`.
 *
 * Perf-model two-phase pretraining and the figure benches evaluate
 * thousands of candidates drawn from a *discrete* search space, and the
 * same candidate architectures recur — across paired evaluation sets,
 * across a converging RL policy's samples, and across benches sharing a
 * baseline. HW-NAS-Bench-style cost lookup is the standard way to
 * amortize those repeats: SimCache maps a canonical key — the candidate's
 * decision encoding plus a fingerprint of the chip and pass configuration
 * — to the full SimResult.
 *
 * Concurrency: the table is sharded by key hash with one mutex per
 * shard (mutex striping), so concurrent evaluators from h2o::exec rarely
 * contend. Each shard keeps an LRU list bounded at capacity/shards;
 * eviction is O(1). getOrCompute() runs the miss computation OUTSIDE the
 * shard lock: two threads may race to simulate the same key (both
 * compute, last insert wins) — acceptable because Simulator::run is pure.
 *
 * Hit/miss/eviction counters are atomics, exported through
 * `search/telemetry` (writeSimCacheStatsCsv) for the benches.
 */

#ifndef H2O_SIM_SIM_CACHE_H
#define H2O_SIM_SIM_CACHE_H

#include <atomic>
#include <cstdint>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hw/chip.h"
#include "sim/simulator.h"

namespace h2o::sim {

/**
 * Canonical identity of one simulation request: the candidate's decision
 * encoding (plus any caller tags, e.g. exec mode) and a fingerprint of
 * everything else that determines the result (chip, pass config).
 * Equality is exact — fingerprints only pick the shard/bucket; full keys
 * are compared on lookup, so distinct configurations never alias.
 */
struct SimCacheKey
{
    /** Canonical decision encoding; callers append discriminator tags
     *  (e.g. training-vs-serving) as extra trailing elements. */
    std::vector<uint64_t> decisions;
    /** simConfigFingerprint() of the chip + pass configuration. */
    uint64_t configFingerprint = 0;

    bool operator==(const SimCacheKey &other) const = default;
};

/** Order-sensitive 64-bit fingerprint of a chip description. */
uint64_t chipFingerprint(const hw::ChipSpec &chip);

/** Fingerprint of a full simulator configuration (chip + passes). */
uint64_t simConfigFingerprint(const SimConfig &config);

/** Hash of a full cache key (shard/bucket selection only). */
uint64_t simCacheKeyHash(const SimCacheKey &key);

/** Build a key from a candidate's decision sample, a caller-chosen mode
 *  tag, and the simulator configuration. */
SimCacheKey makeSimCacheKey(const std::vector<size_t> &sample,
                            uint64_t mode_tag, const SimConfig &config);

/** Counter snapshot. */
struct SimCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;

    double hitRate() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / double(total) : 0.0;
    }
};

/**
 * The sharded, LRU-bounded memo-cache. Thread-safe; copyable results.
 */
class SimCache
{
  public:
    /**
     * @param capacity   Max cached entries across all shards (>= 1).
     * @param num_shards Mutex stripes; rounded up to at least 1.
     */
    explicit SimCache(size_t capacity, size_t num_shards = 16);

    /** Look up a key; on hit copies the cached result into `out` and
     *  refreshes its LRU position. Counts a hit or miss. */
    bool lookup(const SimCacheKey &key, SimResult &out);

    /** Insert (or overwrite) a key's result, evicting the shard's
     *  least-recently-used entry when over budget. */
    void insert(const SimCacheKey &key, SimResult value);

    /**
     * Batched lookup: keys are grouped by mutex stripe so each stripe's
     * lock is acquired ONCE per batch instead of once per key. Within a
     * stripe, keys are processed in ascending batch position, so hit
     * counting and LRU refresh order are deterministic. On hit,
     * `out[i]` is filled. Returns one hit flag per key.
     */
    std::vector<char> lookupBatch(std::span<const SimCacheKey> keys,
                                  std::vector<SimResult> &out);

    /** Batched insert, one stripe-lock acquisition per stripe touched.
     *  keys and values are parallel arrays. */
    void insertBatch(std::span<const SimCacheKey> keys,
                     std::span<const SimResult> values);

    /**
     * Batched memoization: one lookupBatch, then `computeMisses(miss
     * indices) -> results parallel to the miss list` runs OUTSIDE every
     * lock, then one insertBatch of the fresh results. Returns results
     * parallel to `keys`. Duplicate missing keys within a batch are
     * computed once per occurrence (the simulator is pure, so either
     * copy is correct).
     */
    template <typename Fn>
    std::vector<SimResult> getOrComputeBatch(
        std::span<const SimCacheKey> keys, Fn &&computeMisses)
    {
        std::vector<SimResult> results(keys.size());
        std::vector<char> hit = lookupBatch(keys, results);
        std::vector<size_t> misses;
        for (size_t i = 0; i < keys.size(); ++i)
            if (!hit[i])
                misses.push_back(i);
        if (misses.empty())
            return results;
        std::vector<SimResult> fresh = computeMisses(misses);
        std::vector<SimCacheKey> miss_keys;
        miss_keys.reserve(misses.size());
        for (size_t i : misses)
            miss_keys.push_back(keys[i]);
        insertBatch(miss_keys, fresh);
        for (size_t j = 0; j < misses.size(); ++j)
            results[misses[j]] = std::move(fresh[j]);
        return results;
    }

    /** Memoize `compute()` under `key`. The computation runs outside
     *  any lock; concurrent misses on one key may compute twice. */
    template <typename Fn>
    SimResult getOrCompute(const SimCacheKey &key, Fn &&compute)
    {
        SimResult cached;
        if (lookup(key, cached))
            return cached;
        SimResult fresh = compute();
        insert(key, fresh);
        return fresh;
    }

    /** Snapshot the counters (entries is summed across shards). */
    SimCacheStats stats() const;

    /** Drop every entry; counters are preserved. */
    void clear();

    /**
     * Serialize every cached entry (least-recently-used first, so a
     * subsequent load() reproduces the recency order) in the tagged
     * text format used by exec::Checkpoint streams. Counters are not
     * persisted — they describe a process, not the cache contents.
     */
    void save(std::ostream &os) const;

    /**
     * Merge a save()d stream into this cache via normal inserts (LRU
     * eviction applies if the stream exceeds capacity). Entries whose
     * config fingerprint no longer matches any caller's configuration
     * are harmless: exact key equality keeps them from ever aliasing.
     */
    void load(std::istream &is);

    /** Total entry budget across shards. */
    size_t capacity() const { return _shardCapacity * _shards.size(); }

  private:
    struct Entry
    {
        SimCacheKey key;
        SimResult value;
    };
    struct KeyHash
    {
        size_t operator()(const SimCacheKey &k) const
        {
            return static_cast<size_t>(simCacheKeyHash(k));
        }
    };
    struct Shard
    {
        std::mutex mu;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<SimCacheKey, std::list<Entry>::iterator,
                           KeyHash>
            index;
    };

    Shard &shardFor(const SimCacheKey &key);

    std::vector<std::unique_ptr<Shard>> _shards;
    size_t _shardCapacity;
    std::atomic<uint64_t> _hits{0};
    std::atomic<uint64_t> _misses{0};
    std::atomic<uint64_t> _evictions{0};
};

} // namespace h2o::sim

#endif // H2O_SIM_SIM_CACHE_H
