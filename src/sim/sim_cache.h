/**
 * @file
 * Sharded memoization cache fronting `Simulator::run`.
 *
 * Perf-model two-phase pretraining and the figure benches evaluate
 * thousands of candidates drawn from a *discrete* search space, and the
 * same candidate architectures recur — across paired evaluation sets,
 * across a converging RL policy's samples, and across benches sharing a
 * baseline. HW-NAS-Bench-style cost lookup is the standard way to
 * amortize those repeats: SimCache maps a canonical key — the candidate's
 * decision encoding plus a fingerprint of the chip and pass configuration
 * — to the full SimResult.
 *
 * Concurrency: the table is sharded by key hash with one mutex per
 * shard (mutex striping), so concurrent evaluators from h2o::exec rarely
 * contend. Each shard keeps an LRU list bounded at capacity/shards;
 * eviction is O(1). getOrCompute() runs the miss computation OUTSIDE the
 * shard lock: two threads may race to simulate the same key (both
 * compute, last insert wins) — acceptable because Simulator::run is pure.
 *
 * The cold path parallelizes: getOrComputeBatch() dedupes the batch's
 * missing keys (each distinct key is computed exactly once) and can fan
 * the miss chunks out over an h2o::exec::ThreadPool. Every cache
 * mutation stays on the calling thread in ascending batch position —
 * workers only run the pure miss computation — so hit counting, LRU
 * refresh order and eviction order are bit-identical at any pool size.
 *
 * Hit/miss/eviction counters are atomics, exported through
 * `search/telemetry` (writeSimCacheStatsCsv) for the benches. Entries
 * additionally carry a global recency tick so save() can serialize the
 * cache in global least-recently-used-first order: a load() into any
 * capacity/shard geometry replays accesses oldest-first and therefore
 * evicts oldest-first when the stream exceeds the target's capacity.
 */

#ifndef H2O_SIM_SIM_CACHE_H
#define H2O_SIM_SIM_CACHE_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <future>
#include <istream>
#include <list>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "exec/thread_pool.h"
#include "hw/chip.h"
#include "sim/simulator.h"

namespace h2o::sim {

/**
 * Canonical identity of one simulation request: the candidate's decision
 * encoding (plus any caller tags, e.g. exec mode) and a fingerprint of
 * everything else that determines the result (chip, pass config).
 * Equality is exact — fingerprints only pick the shard/bucket; full keys
 * are compared on lookup, so distinct configurations never alias.
 */
struct SimCacheKey
{
    /** Canonical decision encoding; callers append discriminator tags
     *  (e.g. training-vs-serving) as extra trailing elements. */
    std::vector<uint64_t> decisions;
    /** simConfigFingerprint() of the chip + pass configuration. */
    uint64_t configFingerprint = 0;

    bool operator==(const SimCacheKey &other) const = default;
};

/** Order-sensitive 64-bit fingerprint of a chip description. */
uint64_t chipFingerprint(const hw::ChipSpec &chip);

/** Fingerprint of a full simulator configuration (chip + passes). */
uint64_t simConfigFingerprint(const SimConfig &config);

/** Hash of a full cache key (shard/bucket selection only). */
uint64_t simCacheKeyHash(const SimCacheKey &key);

/** Build a key from a candidate's decision sample, a caller-chosen mode
 *  tag, and the simulator configuration. */
SimCacheKey makeSimCacheKey(const std::vector<size_t> &sample,
                            uint64_t mode_tag, const SimConfig &config);

/** Counter snapshot. */
struct SimCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;

    double hitRate() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / double(total) : 0.0;
    }
};

/**
 * The sharded, LRU-bounded memo-cache. Thread-safe; copyable results.
 */
class SimCache
{
  public:
    /**
     * @param capacity   Max cached entries across all shards (>= 1).
     * @param num_shards Mutex stripes; rounded up to at least 1.
     */
    explicit SimCache(size_t capacity, size_t num_shards = 16);

    /** Look up a key; on hit copies the cached result into `out` and
     *  refreshes its LRU position. Counts a hit or miss. */
    bool lookup(const SimCacheKey &key, SimResult &out);

    /** Insert (or overwrite) a key's result, evicting the shard's
     *  least-recently-used entry when over budget. */
    void insert(const SimCacheKey &key, SimResult value);

    /**
     * Batched lookup: keys are grouped by mutex stripe so each stripe's
     * lock is acquired ONCE per batch instead of once per key. Within a
     * stripe, keys are processed in ascending batch position, so hit
     * counting and LRU refresh order are deterministic. On hit,
     * `out[i]` is filled. Returns one hit flag per key.
     */
    std::vector<char> lookupBatch(std::span<const SimCacheKey> keys,
                                  std::vector<SimResult> &out);

    /** Batched insert, one stripe-lock acquisition per stripe touched.
     *  keys and values are parallel arrays. */
    void insertBatch(std::span<const SimCacheKey> keys,
                     std::span<const SimResult> values);

    /** Default bound on distinct misses handed to one computeMisses
     *  call: keeps thousands of decoded graphs from ever being live at
     *  once, and is the unit of work a fill pool's workers steal. */
    static constexpr size_t kDefaultFillChunk = 256;

    /**
     * Batched memoization: one lookupBatch, then `computeMisses(miss
     * indices) -> results parallel to the miss list` runs OUTSIDE every
     * lock, then one insertBatch of the fresh results. Returns results
     * parallel to `keys`.
     *
     * Duplicate missing keys within a batch are computed ONCE per
     * distinct key; the result fans out to every duplicate position.
     * `computeMisses` receives chunks of at most `fill_chunk` distinct
     * miss positions (ascending within a chunk) and may therefore be
     * invoked several times per batch; it must be pure — the same
     * position yields the same result regardless of chunking.
     *
     * With a non-null `fill_pool` of more than one worker the chunks
     * are computed concurrently on the pool ("parallel cold-path
     * fill"); `computeMisses` must then also be thread-safe. All cache
     * mutations — the lookup, the write-back, the eviction — still run
     * on the calling thread in ascending batch position, so results,
     * counters, LRU order and save() images are bit-identical at any
     * pool size. A chunk that throws aborts the batch: the exception is
     * rethrown here after every in-flight chunk has drained, and no
     * partial chunk result is inserted (whole chunks that completed are
     * not rolled back; the simulator being pure makes them correct).
     */
    template <typename Fn>
    std::vector<SimResult>
    getOrComputeBatch(std::span<const SimCacheKey> keys, Fn &&computeMisses,
                      exec::ThreadPool *fill_pool = nullptr,
                      size_t fill_chunk = kDefaultFillChunk)
    {
        h2o_assert(fill_chunk > 0, "zero sim-cache fill chunk");
        std::vector<SimResult> results(keys.size());
        std::vector<char> hit = lookupBatch(keys, results);

        // Distinct missing keys, in first-occurrence order. `reps[r]`
        // is the representative batch position of distinct key r;
        // `rep_of[j]` maps the j-th miss position back to its key.
        std::vector<size_t> reps;
        std::vector<size_t> miss_pos;
        std::vector<size_t> rep_of;
        {
            std::unordered_map<SimCacheKey, size_t, KeyHash> first_seen;
            for (size_t i = 0; i < keys.size(); ++i) {
                if (hit[i])
                    continue;
                auto [it, inserted] =
                    first_seen.try_emplace(keys[i], reps.size());
                if (inserted)
                    reps.push_back(i);
                miss_pos.push_back(i);
                rep_of.push_back(it->second);
            }
        }
        if (reps.empty())
            return results;

        std::vector<SimResult> fresh(reps.size());
        const size_t n_chunks = (reps.size() + fill_chunk - 1) / fill_chunk;
        auto run_chunk = [&](size_t c) {
            size_t lo = c * fill_chunk;
            size_t hi = std::min(reps.size(), lo + fill_chunk);
            std::vector<size_t> part(reps.begin() +
                                         static_cast<ptrdiff_t>(lo),
                                     reps.begin() +
                                         static_cast<ptrdiff_t>(hi));
            std::vector<SimResult> out = computeMisses(part);
            h2o_assert(out.size() == part.size(),
                       "computeMisses returned ", out.size(),
                       " results for ", part.size(), " misses");
            std::move(out.begin(), out.end(),
                      fresh.begin() + static_cast<ptrdiff_t>(lo));
        };
        if (fill_pool != nullptr && fill_pool->size() > 1 && n_chunks > 1) {
            std::vector<std::future<void>> futures;
            futures.reserve(n_chunks);
            for (size_t c = 0; c < n_chunks; ++c)
                futures.push_back(
                    fill_pool->submit([&run_chunk, c] { run_chunk(c); }));
            // Drain every chunk before propagating the first failure so
            // no task outlives the locals it references.
            std::exception_ptr first_error;
            for (auto &f : futures) {
                try {
                    f.get();
                } catch (...) {
                    if (!first_error)
                        first_error = std::current_exception();
                }
            }
            if (first_error)
                std::rethrow_exception(first_error);
        } else {
            for (size_t c = 0; c < n_chunks; ++c)
                run_chunk(c);
        }

        // Write-back on the calling thread, ascending representative
        // position: insertion/eviction/recency order is a function of
        // the batch alone, never of worker timing.
        std::vector<SimCacheKey> miss_keys;
        miss_keys.reserve(reps.size());
        for (size_t i : reps)
            miss_keys.push_back(keys[i]);
        insertBatch(miss_keys, fresh);

        // Fan out: duplicate positions copy, the representative moves.
        for (size_t j = 0; j < miss_pos.size(); ++j)
            if (miss_pos[j] != reps[rep_of[j]])
                results[miss_pos[j]] = fresh[rep_of[j]];
        for (size_t r = 0; r < reps.size(); ++r)
            results[reps[r]] = std::move(fresh[r]);
        return results;
    }

    /** Memoize `compute()` under `key`. The computation runs outside
     *  any lock; concurrent misses on one key may compute twice. */
    template <typename Fn>
    SimResult getOrCompute(const SimCacheKey &key, Fn &&compute)
    {
        SimResult cached;
        if (lookup(key, cached))
            return cached;
        SimResult fresh = compute();
        insert(key, fresh);
        return fresh;
    }

    /** Snapshot the counters (entries is summed across shards). */
    SimCacheStats stats() const;

    /** Drop every entry; counters are preserved. */
    void clear();

    /**
     * Serialize every cached entry in GLOBAL least-recently-used-first
     * order (the per-entry recency tick, not per-shard list order) in
     * the tagged text format used by exec::Checkpoint streams. A
     * subsequent load() therefore reproduces the recency order even
     * into a cache with a different capacity or shard count. Counters
     * are not persisted — they describe a process, not the contents.
     */
    void save(std::ostream &os) const;

    /**
     * Merge a save()d stream into this cache via normal inserts (LRU
     * eviction applies if the stream exceeds capacity; the stream's
     * global oldest-first order means the oldest entries are the ones
     * evicted). Entries whose config fingerprint no longer matches any
     * caller's configuration are harmless: exact key equality keeps
     * them from ever aliasing.
     */
    void load(std::istream &is);

    /**
     * Eviction-aware merge of a save()d stream into this cache's LIVE
     * contents: after the merge the cache holds the union of both entry
     * sets, with the stream's entries ranked older than everything
     * computed in this process (their relative oldest-first order is
     * preserved), so when the union exceeds capacity the LRU policy
     * evicts the merged-in (stale) entries first and a key present on
     * both sides keeps this process's value and recency. This is what
     * makes concurrent or sequential fills COMPOSE through one cache
     * file — save-over-existing keeps the globally newest entries —
     * instead of the last writer clobbering the others' work (see
     * saveSimCacheFileMerged). Counters are preserved; merge-driven
     * evictions count as evictions.
     */
    void mergeFrom(std::istream &is);

    /** Total entry budget across shards. */
    size_t capacity() const { return _shardCapacity * _shards.size(); }

  private:
    struct Entry
    {
        SimCacheKey key;
        SimResult value;
        /** Global recency stamp (higher = more recent); orders save(). */
        uint64_t tick = 0;
    };
    struct KeyHash
    {
        size_t operator()(const SimCacheKey &k) const
        {
            return static_cast<size_t>(simCacheKeyHash(k));
        }
    };
    struct Shard
    {
        std::mutex mu;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<SimCacheKey, std::list<Entry>::iterator,
                           KeyHash>
            index;
    };

    Shard &shardFor(const SimCacheKey &key);

    /** Next global recency stamp (see Entry::tick). */
    uint64_t nextTick()
    {
        return _accessTick.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    std::vector<std::unique_ptr<Shard>> _shards;
    size_t _shardCapacity;
    std::atomic<uint64_t> _accessTick{0};
    std::atomic<uint64_t> _hits{0};
    std::atomic<uint64_t> _misses{0};
    std::atomic<uint64_t> _evictions{0};
};

/** Warm-start a cache from a checkpoint file written by
 *  saveSimCacheFileMerged (or a raw save() commit). Returns false —
 *  without touching the cache — when the path is empty or the file does
 *  not exist, so `--sim_cache_file` flags can pass their value through
 *  unconditionally. */
bool warmSimCacheFromFile(SimCache &cache, const std::string &path);

/** Persist a cache to `path` with the eviction-aware merge: any
 *  existing file's entries are mergeFrom()ed first (this process's
 *  entries rank newer), then one atomic CheckpointWriter commit writes
 *  the union. No-op when the path is empty. */
void saveSimCacheFileMerged(SimCache &cache, const std::string &path);

} // namespace h2o::sim

#endif // H2O_SIM_SIM_CACHE_H
