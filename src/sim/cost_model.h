/**
 * @file
 * Per-operator timing: how long one op occupies each hardware resource
 * (tensor unit, vector unit, HBM, on-chip memory, ICI) and which resource
 * binds it. Within an op, resource use is assumed perfectly overlapped —
 * the op's latency is the max across resources, the classic bottleneck
 * model underlying rooflines.
 */

#ifndef H2O_SIM_COST_MODEL_H
#define H2O_SIM_COST_MODEL_H

#include "hw/chip.h"
#include "hw/roofline.h"
#include "sim/graph.h"

namespace h2o::sim {

/** Resource occupancy and latency for one op. */
struct OpTiming
{
    double seconds = 0.0;       ///< op latency (max across resources)
    double tensorBusySec = 0.0; ///< tensor-unit busy time
    double vpuBusySec = 0.0;    ///< vector-unit busy time
    double hbmBytes = 0.0;      ///< off-chip traffic
    double onChipBytes = 0.0;   ///< on-chip scratchpad traffic
    double networkBytes = 0.0;  ///< ICI traffic
    hw::BoundBy boundBy = hw::BoundBy::Memory;
};

struct OpAnnotations;

/**
 * Time one (non-fused) op on a chip against a pass-annotation record:
 * activation bytes split between HBM and on-chip traffic by
 * onChipFraction; params stream from HBM unless paramsOnChip.
 */
OpTiming timeOp(const hw::ChipSpec &chip, const Op &op,
                const OpAnnotations &a);

/** Convenience overload reading the annotations stored on the op itself
 *  (graphs annotated by the in-place pass wrappers). */
OpTiming timeOp(const hw::ChipSpec &chip, const Op &op);

} // namespace h2o::sim

#endif // H2O_SIM_COST_MODEL_H
