/**
 * @file
 * On-chip memory placement pass.
 *
 * Models the simulator's "memory management including on-chip memory
 * management" (Section 6.2.3). The chip's CMEM-style scratchpad is split
 * into a parameter partition and an activation partition. Weights become
 * resident when the whole model fits its partition (small serving models
 * on TPUv4i); activation tensors are placed on-chip per-op when they fit
 * the activation partition, otherwise they spill (partially) to HBM.
 *
 * This pass is what differentiates CoAtNet-H5 (smaller 160px activations
 * that live in CMEM) from baseline CoAtNet-5 (224px activations spilling
 * to HBM) and thereby reproduces the Figure 7 CMEM/HBM traffic shift.
 */

#ifndef H2O_SIM_MEMORY_H
#define H2O_SIM_MEMORY_H

#include "hw/chip.h"
#include "sim/graph.h"

namespace h2o::sim {

/** Placement policy knobs. */
struct MemoryConfig
{
    /** Fraction of on-chip capacity reserved for weights. */
    double paramFraction = 0.4;
    /** Fraction of on-chip capacity usable for activations. */
    double activationFraction = 0.6;
};

/** Summary of one placement pass. */
struct MemoryStats
{
    bool paramsResident = false;   ///< all weights fit on-chip
    double activationBudget = 0.0; ///< bytes available for activations
    size_t onChipTensors = 0;      ///< tensors fully placed on-chip
    size_t spilledTensors = 0;     ///< tensors (partially) in HBM
};

struct PassWorkspace;

/**
 * Annotate each live op's onChipFraction / paramsOnChip in the
 * workspace's annotation array (the graph stays const). Runs after the
 * fusion pass in the same workspace so fused param/output bytes are
 * accounted to their heads.
 * @pre ws.reset(graph) was called (and fuseGraph ran first if enabled).
 */
MemoryStats placeMemory(const Graph &graph, const hw::ChipSpec &chip,
                        const MemoryConfig &config, PassWorkspace &ws);

/** In-place convenience wrapper: annotate into a scratch workspace and
 *  write the results back onto the graph's ops. */
MemoryStats placeMemory(Graph &graph, const hw::ChipSpec &chip,
                        const MemoryConfig &config = MemoryConfig{});

} // namespace h2o::sim

#endif // H2O_SIM_MEMORY_H
