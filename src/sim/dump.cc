#include "sim/dump.h"

#include <iomanip>

#include "common/logging.h"

namespace h2o::sim {

void
dumpGraph(const Graph &graph, std::ostream &os)
{
    os << "graph '" << graph.name() << "': " << graph.size() << " ops, "
       << graph.totalFlops() / 1e9 << " GFLOPs, "
       << graph.totalParamBytes() / 1e6 << " MB params\n";
    os << std::left << std::setw(5) << "id" << std::setw(28) << "name"
       << std::setw(18) << "kind" << std::setw(12) << "GFLOPs"
       << std::setw(12) << "act MB" << std::setw(12) << "param MB"
       << std::setw(10) << "net MB" << "inputs\n";
    for (size_t i = 0; i < graph.size(); ++i) {
        const Op &op = graph.op(static_cast<OpId>(i));
        os << std::setw(5) << i << std::setw(28) << op.name
           << std::setw(18) << opKindName(op.kind) << std::setw(12)
           << op.flops / 1e9 << std::setw(12)
           << (op.inputBytes + op.outputBytes) / 1e6 << std::setw(12)
           << op.paramBytes / 1e6 << std::setw(10)
           << op.networkBytes / 1e6;
        for (OpId in : op.inputs)
            os << " " << in;
        if (op.fusedAway)
            os << " [fused]";
        os << "\n";
    }
}

void
dumpGraphWithTimings(const Graph &graph, const SimResult &result,
                     std::ostream &os)
{
    h2o_assert(result.perOp.size() == graph.size(),
               "SimResult does not match graph (", result.perOp.size(),
               " timings for ", graph.size(), " ops)");
    os << "graph '" << graph.name()
       << "': step=" << result.stepTimeSec * 1e3
       << " ms, bound by " << hw::boundName(result.boundBy) << "\n";
    os << std::left << std::setw(5) << "id" << std::setw(28) << "name"
       << std::setw(12) << "us" << std::setw(12) << "tensor us"
       << std::setw(12) << "vpu us" << std::setw(12) << "hbm MB"
       << std::setw(12) << "cmem MB" << "bound\n";
    for (size_t i = 0; i < graph.size(); ++i) {
        const Op &op = graph.op(static_cast<OpId>(i));
        const OpTiming &t = result.perOp[i];
        if (op.fusedAway)
            continue;
        os << std::setw(5) << i << std::setw(28) << op.name
           << std::setw(12) << t.seconds * 1e6 << std::setw(12)
           << t.tensorBusySec * 1e6 << std::setw(12)
           << t.vpuBusySec * 1e6 << std::setw(12) << t.hbmBytes / 1e6
           << std::setw(12) << t.onChipBytes / 1e6
           << hw::boundName(t.boundBy) << "\n";
    }
}

void
dumpDot(const Graph &graph, std::ostream &os)
{
    os << "digraph \"" << graph.name() << "\" {\n";
    os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
    for (size_t i = 0; i < graph.size(); ++i) {
        const Op &op = graph.op(static_cast<OpId>(i));
        os << "  n" << i << " [label=\"" << op.name << "\\n"
           << opKindName(op.kind);
        if (op.flops > 0.0)
            os << "\\n" << op.flops / 1e9 << " GF";
        os << "\"";
        if (op.fusedAway)
            os << ", style=dashed";
        else if (op.onTensorUnit)
            os << ", style=filled, fillcolor=lightblue";
        os << "];\n";
    }
    for (size_t i = 0; i < graph.size(); ++i) {
        for (OpId in : graph.op(static_cast<OpId>(i)).inputs)
            os << "  n" << in << " -> n" << i << ";\n";
    }
    os << "}\n";
}

} // namespace h2o::sim
