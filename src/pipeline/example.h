/**
 * @file
 * Training examples flowing through the in-memory pipeline: the synthetic
 * stand-in for production CTR traffic (dense features, per-feature sparse
 * id lists, a binary engagement label).
 */

#ifndef H2O_PIPELINE_EXAMPLE_H
#define H2O_PIPELINE_EXAMPLE_H

#include <cstdint>
#include <vector>

#include "nn/embedding.h"

namespace h2o::pipeline {

/** One logged example. */
struct Example
{
    std::vector<float> dense;       ///< continuous features
    std::vector<nn::IdList> sparse; ///< ids per sparse feature/table
    float label = 0.0f;             ///< binary engagement label
};

/** A batch of examples with a monotone sequence id for use-accounting. */
struct Batch
{
    uint64_t sequence = 0; ///< unique, monotone batch id
    std::vector<Example> examples;

    /** Batch size. */
    size_t size() const { return examples.size(); }
};

} // namespace h2o::pipeline

#endif // H2O_PIPELINE_EXAMPLE_H
