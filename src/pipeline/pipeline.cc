#include "pipeline/pipeline.h"

#include "common/logging.h"
#include "common/serialize.h"

namespace h2o::pipeline {

BatchLease::BatchLease(InMemoryPipeline *owner, Batch batch)
    : _owner(owner), _batch(std::move(batch))
{
}

BatchLease::BatchLease(BatchLease &&other) noexcept
    : _owner(other._owner), _batch(std::move(other._batch)),
      _alphaUsed(other._alphaUsed), _weightUsed(other._weightUsed)
{
    other._owner = nullptr;
}

BatchLease::~BatchLease()
{
    if (_owner)
        _owner->onLeaseRelease(_alphaUsed, _weightUsed);
}

void
BatchLease::markAlphaUse()
{
    h2o_assert(_owner, "use of a moved-from lease");
    h2o_assert(!_alphaUsed, "batch ", _batch.sequence,
               " used twice for architecture learning");
    h2o_assert(!_weightUsed, "batch ", _batch.sequence,
               " trained weights before architecture learning");
    _alphaUsed = true;
}

void
BatchLease::markWeightUse()
{
    h2o_assert(_owner, "use of a moved-from lease");
    h2o_assert(_alphaUsed, "batch ", _batch.sequence,
               " must inform architecture choices before weight training "
               "(alpha-before-W invariant)");
    h2o_assert(!_weightUsed, "batch ", _batch.sequence,
               " used twice for weight training");
    _weightUsed = true;
}

InMemoryPipeline::InMemoryPipeline(
    std::unique_ptr<TrafficGenerator> generator, size_t batch_size)
    : _generator(std::move(generator)), _batchSize(batch_size)
{
    h2o_assert(_generator, "pipeline without a generator");
    h2o_assert(batch_size > 0, "pipeline with zero batch size");
}

BatchLease
InMemoryPipeline::lease()
{
    std::lock_guard<std::mutex> lock(_mutex);
    Batch batch = _generator->nextBatch(_batchSize);
    _stats.batchesIssued += 1;
    _stats.examplesIssued += batch.size();
    return BatchLease(this, std::move(batch));
}

PipelineStats
InMemoryPipeline::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

void
InMemoryPipeline::save(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    _generator->save(os);
    common::writeTaggedU64(os, "pipeline_stats",
                           {_stats.batchesIssued, _stats.examplesIssued,
                            _stats.completeLeases,
                            _stats.alphaOnlyLeases});
}

void
InMemoryPipeline::load(std::istream &is)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _generator->load(is);
    auto s = common::readTaggedU64(is, "pipeline_stats");
    if (s.size() != 4)
        h2o_fatal("malformed pipeline stats in checkpoint");
    _stats.batchesIssued = s[0];
    _stats.examplesIssued = s[1];
    _stats.completeLeases = s[2];
    _stats.alphaOnlyLeases = s[3];
}

void
InMemoryPipeline::onLeaseRelease(bool alpha_used, bool weight_used)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (alpha_used && weight_used)
        _stats.completeLeases += 1;
    else if (alpha_used)
        _stats.alphaOnlyLeases += 1;
}

} // namespace h2o::pipeline
