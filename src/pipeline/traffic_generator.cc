#include "pipeline/traffic_generator.h"

#include <cmath>

#include "common/logging.h"
#include "common/serialize.h"
#include "nn/loss.h"

namespace h2o::pipeline {

TrafficConfig
trafficConfigFor(uint32_t num_dense, const std::vector<uint64_t> &vocabs,
                 const std::vector<double> &avg_ids)
{
    h2o_assert(vocabs.size() == avg_ids.size(),
               "vocabs/avgIds size mismatch");
    TrafficConfig cfg;
    cfg.numDenseFeatures = num_dense;
    cfg.vocabs = vocabs;
    cfg.avgIds = avg_ids;
    return cfg;
}

TrafficGenerator::TrafficGenerator(TrafficConfig config, uint64_t seed)
    : _config(std::move(config)), _hiddenSeed(seed ^ 0xabcdef1234567890ULL),
      _rng(seed)
{
    h2o_assert(!_config.vocabs.empty(), "traffic with no sparse features");
    h2o_assert(_config.vocabs.size() == _config.avgIds.size(),
               "vocabs/avgIds size mismatch");
    // Hidden projection weights for the dense signal, drawn once from a
    // stream decoupled from the example stream.
    common::Rng hidden(_hiddenSeed);
    _w1.resize(_config.numDenseFeatures);
    _w2.resize(_config.numDenseFeatures);
    for (size_t i = 0; i < _config.numDenseFeatures; ++i) {
        _w1[i] = hidden.normal(0.0, 1.0 / std::sqrt(
                                        double(_config.numDenseFeatures)));
        _w2[i] = hidden.normal(0.0, 1.0 / std::sqrt(
                                        double(_config.numDenseFeatures)));
    }
}

double
TrafficGenerator::affinity(size_t table, uint64_t id) const
{
    uint64_t state = _hiddenSeed ^ (0x9e3779b97f4a7c15ULL * (table + 1)) ^
                     (0xbf58476d1ce4e5b9ULL * (id + 1));
    uint64_t h = common::splitmix64(state);
    // Map to [-1, 1].
    return (static_cast<double>(h >> 11) /
            static_cast<double>(1ULL << 53)) *
               2.0 -
           1.0;
}

double
TrafficGenerator::denseSignal(const std::vector<float> &dense) const
{
    double z1 = 0.0, z2 = 0.0;
    for (size_t i = 0; i < dense.size(); ++i) {
        z1 += _w1[i] * dense[i];
        z2 += _w2[i] * dense[i];
    }
    return std::sin(1.7 * z1) + 0.5 * z2 * z2 - 0.5;
}

double
TrafficGenerator::trueProbability(const Example &example) const
{
    double mem = 0.0;
    size_t live = 0;
    for (size_t t = 0; t < example.sparse.size(); ++t) {
        const auto &ids = example.sparse[t];
        if (ids.empty())
            continue;
        double a = 0.0;
        for (uint32_t id : ids)
            a += affinity(t, id);
        mem += a / static_cast<double>(ids.size());
        live += 1;
    }
    if (live > 0)
        mem /= std::sqrt(static_cast<double>(live));

    double gen = denseSignal(example.dense);

    double z1 = 0.0;
    for (size_t i = 0; i < example.dense.size(); ++i)
        z1 += _w1[i] * example.dense[i];
    double cross = z1 * mem;

    double logit = _config.bias + _config.memorizationScale * mem +
                   _config.generalizationScale * gen +
                   _config.interactionScale * cross;
    return nn::sigmoid(logit);
}

Batch
TrafficGenerator::nextBatch(size_t batch_size)
{
    h2o_assert(batch_size > 0, "empty batch requested");
    Batch batch;
    batch.sequence = _sequence++;
    batch.examples.resize(batch_size);
    for (auto &ex : batch.examples) {
        ex.dense.resize(_config.numDenseFeatures);
        for (auto &v : ex.dense)
            v = static_cast<float>(_rng.normal());
        ex.sparse.resize(_config.vocabs.size());
        for (size_t t = 0; t < _config.vocabs.size(); ++t) {
            // Expected id count ~ avgIds (at least 1).
            size_t count = 1;
            double extra = _config.avgIds[t] - 1.0;
            while (extra > 0.0 && _rng.bernoulli(std::min(extra, 1.0))) {
                ++count;
                extra -= 1.0;
            }
            ex.sparse[t].resize(count);
            for (auto &id : ex.sparse[t]) {
                // Skewed popularity: u^4 concentrates mass on small ids,
                // a cheap stand-in for a Zipf head-heavy distribution
                // over very large vocabularies.
                double u = _rng.uniform();
                double skewed = std::pow(u, 4.0);
                id = static_cast<uint32_t>(
                    std::min<double>(skewed * double(_config.vocabs[t]),
                                     double(_config.vocabs[t] - 1)));
            }
        }
        double p = trueProbability(ex);
        // Logit-space label noise.
        if (_config.labelNoise > 0.0) {
            double z = std::log(p / (1.0 - p)) +
                       _rng.normal(0.0, _config.labelNoise);
            p = nn::sigmoid(z);
        }
        ex.label = _rng.bernoulli(p) ? 1.0f : 0.0f;
        ++_examples;
    }
    return batch;
}

void
TrafficGenerator::save(std::ostream &os) const
{
    _rng.save(os);
    common::writeTaggedU64(os, "traffic_cursor", {_sequence, _examples});
}

void
TrafficGenerator::load(std::istream &is)
{
    _rng.load(is);
    auto cursor = common::readTaggedU64(is, "traffic_cursor");
    if (cursor.size() != 2)
        h2o_fatal("malformed traffic cursor in checkpoint");
    _sequence = cursor[0];
    _examples = cursor[1];
}

} // namespace h2o::pipeline
