/**
 * @file
 * Synthetic production-traffic generator for DLRM search.
 *
 * Substitutes for the live traffic the paper trains on (Section 4.1).
 * A hidden ground-truth model generates examples whose labels depend on
 * BOTH memorization and generalization signals, so a searched DLRM's
 * quality genuinely responds to the embedding/MLP balance the paper
 * highlights (Section 7.1.2):
 *
 *  - memorization: each (table, id) pair carries a persistent hidden
 *    affinity; ids are Zipf-skewed, so small vocabularies collide heavy
 *    ids with noise ids and lose label signal;
 *  - generalization: a smooth nonlinear function of the dense features
 *    that only a sufficiently wide/deep MLP can fit;
 *  - interaction: a cross term coupling dense features with sparse
 *    affinities, requiring both sides to be learned.
 *
 * The stream is effectively infinite: every example is fresh, matching
 * the paper's premise that "with vast amount of production traffic data,
 * it is feasible to use each data sample only once."
 */

#ifndef H2O_PIPELINE_TRAFFIC_GENERATOR_H
#define H2O_PIPELINE_TRAFFIC_GENERATOR_H

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "common/rng.h"
#include "pipeline/example.h"

namespace h2o::pipeline {

/** Ground-truth model configuration. */
struct TrafficConfig
{
    uint32_t numDenseFeatures = 13;
    /** True id-space size per sparse feature. */
    std::vector<uint64_t> vocabs;
    /** Average ids per example per feature. */
    std::vector<double> avgIds;
    /** Zipf skew of id popularity. */
    double zipfExponent = 1.1;
    /** Relative weight of the memorization (per-id affinity) signal. */
    double memorizationScale = 1.2;
    /** Relative weight of the dense nonlinear signal. */
    double generalizationScale = 1.0;
    /** Relative weight of the dense-sparse cross term. */
    double interactionScale = 0.5;
    /** Label noise: logit-space gaussian noise stddev. */
    double labelNoise = 0.3;
    /** Base click-through bias (negative: rare positives). */
    double bias = -1.0;
};

/** Deterministic, seedable generator of labeled CTR examples. */
class TrafficGenerator
{
  public:
    /**
     * @param config Ground-truth configuration.
     * @param seed   Seed for the hidden model AND the example stream.
     */
    TrafficGenerator(TrafficConfig config, uint64_t seed);

    /** Generate the next batch. Thread-compatible, not thread-safe. */
    Batch nextBatch(size_t batch_size);

    /** Ground-truth probability for an example (for oracle evaluation). */
    double trueProbability(const Example &example) const;

    /** Number of sparse features. */
    size_t numSparseFeatures() const { return _config.vocabs.size(); }

    /** Configuration in use. */
    const TrafficConfig &config() const { return _config; }

    /** Examples generated so far. */
    uint64_t examplesGenerated() const { return _examples; }

    /**
     * Checkpoint the stream cursor: example RNG state plus sequence and
     * example counters. The hidden ground-truth model is derived from
     * the constructor seed and is not persisted — a restored generator
     * must be constructed with the same config and seed.
     */
    void save(std::ostream &os) const;

    /** Restore a checkpointed stream cursor. */
    void load(std::istream &is);

  private:
    /** Persistent hidden affinity for (table, id), in [-1, 1]. */
    double affinity(size_t table, uint64_t id) const;

    /** Smooth nonlinear function of the dense features. */
    double denseSignal(const std::vector<float> &dense) const;

    TrafficConfig _config;
    uint64_t _hiddenSeed;
    common::Rng _rng;
    uint64_t _sequence = 0;
    uint64_t _examples = 0;
    /** Fixed random projection weights for the dense signal. */
    std::vector<double> _w1;
    std::vector<double> _w2;
};

/** TrafficConfig matching a baseline DLRM's tables. */
TrafficConfig trafficConfigFor(uint32_t num_dense,
                               const std::vector<uint64_t> &vocabs,
                               const std::vector<double> &avg_ids);

} // namespace h2o::pipeline

#endif // H2O_PIPELINE_TRAFFIC_GENERATOR_H
