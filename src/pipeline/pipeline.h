/**
 * @file
 * The in-memory data pipeline (Figure 1, component (1)).
 *
 * Production traffic may not be persisted or examined, so the pipeline
 * keeps only a bounded in-memory window of batches and enforces the two
 * invariants the paper's unified single-step search relies on
 * (Section 4.1):
 *
 *  1. single use: every batch is handed out exactly once, so no example
 *     is ever re-used across steps (no train/validation split needed);
 *  2. alpha-before-W ordering: within a step, a batch must be consumed
 *     by architecture-choice learning (the forward pass producing the
 *     reward for the RL controller) BEFORE it is used to train the
 *     shared weights W. The BatchLease API makes violating this order a
 *     hard error.
 *
 * The pipeline is thread-safe: each virtual accelerator shard leases its
 * own batches concurrently.
 */

#ifndef H2O_PIPELINE_PIPELINE_H
#define H2O_PIPELINE_PIPELINE_H

#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>

#include "pipeline/example.h"
#include "pipeline/traffic_generator.h"

namespace h2o::pipeline {

class InMemoryPipeline;

/**
 * A leased batch with use-ordering enforcement. Move-only; the lease
 * reports back to the pipeline on destruction.
 */
class BatchLease
{
  public:
    BatchLease(BatchLease &&other) noexcept;
    BatchLease &operator=(BatchLease &&) = delete;
    BatchLease(const BatchLease &) = delete;
    ~BatchLease();

    /** The leased examples. */
    const Batch &batch() const { return _batch; }

    /**
     * Record that the batch was used to evaluate architecture choices
     * (the alpha step). Must be called exactly once, before
     * markWeightUse().
     */
    void markAlphaUse();

    /**
     * Record that the batch was used to train shared weights. Panics if
     * called before markAlphaUse() — fresh data must inform the
     * architecture decision first.
     */
    void markWeightUse();

  private:
    friend class InMemoryPipeline;
    BatchLease(InMemoryPipeline *owner, Batch batch);

    InMemoryPipeline *_owner;
    Batch _batch;
    bool _alphaUsed = false;
    bool _weightUsed = false;
};

/** Pipeline statistics. */
struct PipelineStats
{
    uint64_t batchesIssued = 0;
    uint64_t examplesIssued = 0;
    uint64_t completeLeases = 0;   ///< alpha+weight both recorded
    uint64_t alphaOnlyLeases = 0;  ///< evaluated but not trained on
};

/**
 * Bounded, non-persisting stream of fresh batches over a traffic
 * generator.
 */
class InMemoryPipeline
{
  public:
    /**
     * @param generator Traffic source; the pipeline owns it.
     * @param batch_size Examples per leased batch.
     */
    InMemoryPipeline(std::unique_ptr<TrafficGenerator> generator,
                     size_t batch_size);

    /** Lease the next fresh batch. Thread-safe. */
    BatchLease lease();

    /** Batch size in use. */
    size_t batchSize() const { return _batchSize; }

    /** Usage statistics so far. Thread-safe. */
    PipelineStats stats() const;

    /** The underlying generator (for oracle evaluation in tests). */
    const TrafficGenerator &generator() const { return *_generator; }

    /**
     * Checkpoint the pipeline cursor (generator stream position plus
     * usage statistics), so a resumed search leases exactly the batches
     * the uninterrupted run would have. Thread-safe; must not race with
     * outstanding leases.
     */
    void save(std::ostream &os) const;

    /** Restore a checkpointed cursor. Thread-safe. */
    void load(std::istream &is);

  private:
    friend class BatchLease;
    void onLeaseRelease(bool alpha_used, bool weight_used);

    std::unique_ptr<TrafficGenerator> _generator;
    size_t _batchSize;
    mutable std::mutex _mutex;
    PipelineStats _stats;
};

} // namespace h2o::pipeline

#endif // H2O_PIPELINE_PIPELINE_H
