#include "supernet/dlrm_supernet.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "common/serialize.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace h2o::supernet {

namespace {

/** Cap a width at the supernet scale-down limit, keeping it positive. */
uint32_t
capWidth(uint32_t width, uint32_t cap)
{
    return std::max(1u, std::min(width, cap));
}

} // namespace

DlrmSupernet::DlrmSupernet(const searchspace::DlrmSearchSpace &space,
                           SupernetConfig config, common::Rng &rng)
    : _space(space), _config(config)
{
    const auto &baseline = space.baseline();

    // --- Embedding banks: coarse-grained per vocab choice (2), each
    // table fine-grained over width (1).
    _tables.resize(baseline.tables.size());
    for (size_t t = 0; t < baseline.tables.size(); ++t) {
        TableBank &bank = _tables[t];
        bank.maxWidth = space.maxEmbeddingWidth(t);
        uint64_t capped_base =
            std::min<uint64_t>(baseline.tables[t].vocab, _config.vocabCap);
        size_t physical_choices =
            _config.fineGrainedVocabSharing ? 1 : space.numVocabChoices();
        for (size_t c = 0; c < physical_choices; ++c) {
            double scale = _config.fineGrainedVocabSharing
                               ? 1.0
                               : space.vocabScale(c);
            uint64_t vocab = static_cast<uint64_t>(std::max(
                16.0,
                std::round(static_cast<double>(capped_base) * scale)));
            common::Rng table_rng = rng.fork((t << 8) | c);
            bank.byVocabChoice.push_back(std::make_unique<nn::EmbeddingTable>(
                vocab, bank.maxWidth, table_rng));
        }
    }

    // --- MLP banks: masked full-rank (3) + shared low-rank factors (4).
    auto build_stack = [&](bool is_bottom, std::vector<LayerBank> &stack) {
        size_t depth = space.maxMlpDepth(is_bottom);
        uint32_t prev =
            is_bottom ? baseline.numDenseFeatures : 0 /* set below */;
        if (!is_bottom) {
            // Top slot 0 consumes the concatenated features. The bottom
            // stack's depth is searchable, so ANY bottom slot can be the
            // last active layer — size for the widest of them (plus the
            // dense passthrough when the bottom MLP is empty).
            uint64_t width = 0;
            for (size_t t = 0; t < baseline.tables.size(); ++t)
                width += space.maxEmbeddingWidth(t);
            uint32_t bottom_out = baseline.numDenseFeatures;
            for (size_t l = 0; l < space.maxMlpDepth(true); ++l) {
                bottom_out = std::max<uint32_t>(
                    bottom_out, capWidth(space.maxMlpWidth(true, l),
                                         _config.mlpWidthCap));
            }
            prev = static_cast<uint32_t>(width) + bottom_out;
        }
        for (size_t l = 0; l < depth; ++l) {
            uint32_t out =
                capWidth(space.maxMlpWidth(is_bottom, l), _config.mlpWidthCap);
            LayerBank bank;
            common::Rng full_rng = rng.fork(0x1000 + (is_bottom ? 0 : 512) + l);
            bank.full = std::make_unique<nn::MaskedDenseLayer>(
                prev, out, nn::Activation::ReLU, full_rng);
            common::Rng lr_rng = rng.fork(0x2000 + (is_bottom ? 0 : 512) + l);
            bank.lowRank = std::make_unique<nn::LowRankDenseLayer>(
                prev, out, out, nn::Activation::ReLU, lr_rng);
            stack.push_back(std::move(bank));
            prev = out;
        }
    };
    build_stack(true, _bottom);
    build_stack(false, _top);

    // Any top slot can be the final active layer (depth is searchable),
    // so the logit layer must accept the widest of their outputs.
    uint32_t logit_in = baseline.numDenseFeatures;
    for (const auto &bank : _top)
        logit_in = std::max<uint32_t>(logit_in, bank.full->maxOut());
    common::Rng logit_rng = rng.fork(0x3000);
    _logit = std::make_unique<nn::MaskedDenseLayer>(
        logit_in, 1, nn::Activation::Identity, logit_rng);

    // --- Optimizer over every shared parameter. SGD without momentum:
    // sub-networks not touched by a step receive zero gradient and stay
    // put, so sharing never bleeds updates into inactive candidates.
    std::vector<nn::ParamRef> params;
    for (auto &bank : _tables)
        for (auto &table : bank.byVocabChoice)
            for (auto &p : table->params())
                params.push_back(p);
    for (auto *stack : {&_bottom, &_top}) {
        for (auto &bank : *stack) {
            for (auto &p : bank.full->params())
                params.push_back(p);
            for (auto &p : bank.lowRank->params())
                params.push_back(p);
        }
    }
    for (auto &p : _logit->params())
        params.push_back(p);
    _allParams = params;
    _optimizer = std::make_unique<nn::SgdOptimizer>(std::move(params),
                                                    /*lr=*/0.05);
}

void
DlrmSupernet::configure(const searchspace::Sample &sample)
{
    h2o_assert(_space.decisions().validSample(sample),
               "malformed sample for supernet");
    arch::DlrmArch arch = _space.decode(sample);

    for (size_t t = 0; t < _tables.size(); ++t) {
        TableBank &bank = _tables[t];
        bank.vocabChoice = _config.fineGrainedVocabSharing
                               ? 0
                               : sample[_space.vocabDecisionIndex(t)];
        bank.activeWidth =
            std::min<uint32_t>(arch.tables[t].width, bank.maxWidth);
        if (bank.activeWidth > 0) {
            bank.byVocabChoice[bank.vocabChoice]->setActiveWidth(
                bank.activeWidth);
        }
    }

    auto configure_stack = [&](const std::vector<arch::MlpLayerConfig> &layers,
                               std::vector<LayerBank> &stack,
                               uint32_t in_width) {
        h2o_assert(layers.size() <= stack.size(),
                   "decoded depth exceeds supernet slots");
        uint32_t prev = in_width;
        for (size_t l = 0; l < layers.size(); ++l) {
            LayerBank &bank = stack[l];
            uint32_t out = capWidth(layers[l].width, _config.mlpWidthCap);
            out = std::min<uint32_t>(out, bank.full->maxOut());
            prev = std::min<uint32_t>(prev, bank.full->maxIn());
            uint32_t rank = layers[l].rank;
            bank.activeIn = prev;
            bank.activeOut = out;
            if (rank > 0 && rank < std::min(prev, out)) {
                bank.useLowRank = true;
                bank.activeRank = std::max(1u, rank);
                bank.lowRank->setActive(prev, bank.activeRank, out);
            } else {
                bank.useLowRank = false;
                bank.activeRank = 0;
                bank.full->setActive(prev, out);
            }
            prev = out;
        }
        return prev;
    };

    uint32_t dense_in = _space.baseline().numDenseFeatures;
    _bottomDepth = arch.bottomMlp.size();
    _bottomOutWidth = configure_stack(arch.bottomMlp, _bottom, dense_in);
    if (_bottomDepth == 0)
        _bottomOutWidth = dense_in; // dense passthrough

    uint64_t concat = _bottomOutWidth;
    for (size_t t = 0; t < _tables.size(); ++t)
        concat += _tables[t].activeWidth;

    _topDepth = arch.topMlp.size();
    h2o_assert(_topDepth >= 1, "decoded DLRM without top MLP");
    uint32_t top_out = configure_stack(
        arch.topMlp, _top, static_cast<uint32_t>(concat));

    h2o_assert(top_out <= _logit->maxIn(),
               "top MLP output ", top_out, " exceeds logit capacity ",
               _logit->maxIn());
    _logit->setActive(top_out, 1);
    _configured = true;
}

const nn::Tensor &
DlrmSupernet::forwardMlp(std::vector<LayerBank> &stack, size_t depth,
                         const nn::Tensor &input)
{
    // Chain by pointer: each layer's output is a member buffer that
    // stays alive (and caches its input by pointer) through backward.
    const nn::Tensor *x = &input;
    for (size_t l = 0; l < depth; ++l) {
        LayerBank &bank = stack[l];
        x = bank.useLowRank ? &bank.lowRank->forward(*x)
                            : &bank.full->forward(*x);
    }
    return *x;
}

const nn::Tensor &
DlrmSupernet::backwardMlp(std::vector<LayerBank> &stack, size_t depth,
                          const nn::Tensor &grad)
{
    const nn::Tensor *g = &grad;
    for (size_t l = depth; l-- > 0;) {
        LayerBank &bank = stack[l];
        g = bank.useLowRank ? &bank.lowRank->backward(*g)
                            : &bank.full->backward(*g);
    }
    return *g;
}

const nn::Tensor &
DlrmSupernet::forward(const pipeline::Batch &batch)
{
    h2o_assert(_configured, "forward before configure");
    size_t b = batch.size();
    h2o_assert(b > 0, "empty batch");
    uint32_t dense_in = _space.baseline().numDenseFeatures;

    _denseInput.resizeUninitialized(b, dense_in);
    for (size_t i = 0; i < b; ++i) {
        h2o_assert(batch.examples[i].dense.size() == dense_in,
                   "example dense width mismatch");
        for (size_t j = 0; j < dense_in; ++j)
            _denseInput.at(i, j) = batch.examples[i].dense[j];
    }

    const nn::Tensor &bottom_out =
        _bottomDepth > 0 ? forwardMlp(_bottom, _bottomDepth, _denseInput)
                         : _denseInput;

    // Concatenate [embeddings..., bottom].
    _liveTables.clear();
    _concatOffsets.clear();
    size_t concat_width = bottom_out.cols();
    for (size_t t = 0; t < _tables.size(); ++t)
        if (_tables[t].activeWidth > 0)
            concat_width += _tables[t].activeWidth;

    _concat.resizeUninitialized(b, concat_width);
    size_t offset = 0;
    std::vector<nn::IdList> ids(b);
    for (size_t t = 0; t < _tables.size(); ++t) {
        TableBank &bank = _tables[t];
        if (bank.activeWidth == 0)
            continue;
        for (size_t i = 0; i < b; ++i) {
            h2o_assert(t < batch.examples[i].sparse.size(),
                       "example missing sparse feature ", t);
            ids[i] = batch.examples[i].sparse[t];
        }
        const nn::Tensor &emb =
            bank.byVocabChoice[bank.vocabChoice]->forward(ids);
        for (size_t i = 0; i < b; ++i)
            for (size_t d = 0; d < bank.activeWidth; ++d)
                _concat.at(i, offset + d) = emb.at(i, d);
        _liveTables.push_back(t);
        _concatOffsets.push_back(offset);
        offset += bank.activeWidth;
    }
    for (size_t i = 0; i < b; ++i)
        for (size_t d = 0; d < bottom_out.cols(); ++d)
            _concat.at(i, offset + d) = bottom_out.at(i, d);

    const nn::Tensor &top_out = forwardMlp(_top, _topDepth, _concat);
    return _logit->forward(top_out);
}

void
DlrmSupernet::backward(const nn::Tensor &grad_logits)
{
    const nn::Tensor &top_grad = _logit->backward(grad_logits);
    const nn::Tensor &grad = backwardMlp(_top, _topDepth, top_grad);

    // Split the concat gradient back into embedding and bottom slices.
    size_t b = grad.rows();
    for (size_t k = 0; k < _liveTables.size(); ++k) {
        TableBank &bank = _tables[_liveTables[k]];
        size_t offset = _concatOffsets[k];
        nn::Tensor &emb_grad =
            _ws.scratch("emb_grad", b, bank.activeWidth);
        for (size_t i = 0; i < b; ++i)
            for (size_t d = 0; d < bank.activeWidth; ++d)
                emb_grad.at(i, d) = grad.at(i, offset + d);
        bank.byVocabChoice[bank.vocabChoice]->backward(emb_grad);
    }
    if (_bottomDepth > 0) {
        size_t offset = _concat.cols() - _bottomOutWidth;
        nn::Tensor &bottom_grad =
            _ws.scratch("bottom_grad", b, _bottomOutWidth);
        for (size_t i = 0; i < b; ++i)
            for (size_t d = 0; d < _bottomOutWidth; ++d)
                bottom_grad.at(i, d) = grad.at(i, offset + d);
        backwardMlp(_bottom, _bottomDepth, bottom_grad);
    }
}

void
DlrmSupernet::setTrainingMode(bool training)
{
    for (auto *stack : {&_bottom, &_top}) {
        for (auto &bank : *stack) {
            bank.full->setTraining(training);
            bank.lowRank->setTraining(training);
        }
    }
    _logit->setTraining(training);
}

EvalResult
DlrmSupernet::evaluate(const pipeline::Batch &batch)
{
    setTrainingMode(false);
    const nn::Tensor &logits = forward(batch);
    EvalResult res;
    std::vector<double> probs(batch.size()), labels(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        probs[i] = nn::sigmoid(logits.at(i, 0));
        labels[i] = batch.examples[i].label;
    }
    res.logLoss = nn::logLoss(probs, labels);
    res.auc = nn::auc(probs, labels);
    setTrainingMode(true);
    return res;
}

std::vector<EvalResult>
DlrmSupernet::evaluateBatch(std::span<const searchspace::Sample> samples,
                            const pipeline::Batch &batch, size_t max_chunk)
{
    size_t n = samples.size();
    h2o_assert(n > 0, "evaluateBatch with no samples");
    size_t b = batch.size();
    h2o_assert(b > 0, "empty batch");

    // --- Full-sample dedup: a converged policy resamples the same
    // candidate many times per step; identical samples share one
    // evaluation. `ord` maps each sample index to its distinct ordinal.
    std::vector<size_t> ord(n);
    std::vector<size_t> rep; // distinct ordinal -> first sample index
    for (size_t i = 0; i < n; ++i) {
        size_t found = rep.size();
        for (size_t j = 0; j < rep.size(); ++j) {
            if (samples[rep[j]] == samples[i]) {
                found = j;
                break;
            }
        }
        if (found == rep.size())
            rep.push_back(i);
        ord[i] = found;
    }
    size_t nd = rep.size();

    _batchStats = EvalBatchStats{};
    _batchStats.candidates = n;
    _batchStats.distinct = nd;

    setTrainingMode(false);

    // --- Stage the dense features once: identical for every candidate.
    uint32_t dense_in = _space.baseline().numDenseFeatures;
    nn::Tensor &dense = _ws.scratch("eb_dense", b, dense_in);
    for (size_t i = 0; i < b; ++i) {
        h2o_assert(batch.examples[i].dense.size() == dense_in,
                   "example dense width mismatch");
        for (size_t j = 0; j < dense_in; ++j)
            dense.at(i, j) = batch.examples[i].dense[j];
    }

    std::vector<EvalResult> distinct_res(nd);
    std::vector<double> probs(b), labels(b);
    for (size_t i = 0; i < b; ++i)
        labels[i] = batch.examples[i].label;

    // Bottom-MLP dedup spans chunks: cache buffers persist in _ws.
    std::vector<std::vector<uint32_t>> bottom_sigs;
    std::vector<const nn::Tensor *> bottom_cache;

    // Per-candidate configuration captured after configure().
    struct LiveTable
    {
        size_t table, choice, cacheIdx;
        uint32_t width;
    };
    struct TopSlot
    {
        bool lowRank;
        uint32_t in, out, rank;
    };
    struct Cfg
    {
        std::vector<LiveTable> live;
        std::vector<TopSlot> top;
        size_t bottomSig = 0;
        size_t concatW = 0;
        uint32_t bottomW = 0;
        uint32_t logitIn = 0;
    };

    size_t chunk_cap = max_chunk;
    if (chunk_cap == 0) {
        // Cache-aware auto-chunk. The packed top-MLP pass ping-pongs two
        // [chunk * b, w] buffers through every layer; once they outgrow
        // the fast cache levels each grouped matmul streams from memory
        // and the packed pass loses to a per-candidate loop whose one
        // small activation tensor stays hot. Cap the pair's footprint
        // (bounded by the top bank's physical input width) to keep the
        // working set cache-resident. Chunking never changes results —
        // only how many candidates share one packed pass.
        constexpr size_t kWorkingSetBytes = 512 * 1024;
        size_t w_bound =
            _top.empty() ? std::max<size_t>(_bottomOutWidth, 1)
                         : _top[0].full->weightTensor().rows();
        size_t per_cand = 2 * b * std::max<size_t>(w_bound, 1) *
                          sizeof(float);
        chunk_cap = std::max<size_t>(1, kWorkingSetBytes / per_cand);
    }
    for (size_t chunk0 = 0; chunk0 < nd; chunk0 += chunk_cap) {
        size_t cn = std::min(chunk_cap, nd - chunk0);

        // --- Pass 1: configure each distinct candidate, snapshot its
        // active dimensions, and run each NEW bottom-MLP configuration
        // once (the banks are configured for this candidate right now,
        // so forwardMlp computes exactly what evaluate() would).
        std::vector<Cfg> cfgs(cn);
        for (size_t g = 0; g < cn; ++g) {
            configure(samples[rep[chunk0 + g]]);
            Cfg &c = cfgs[g];
            for (size_t t = 0; t < _tables.size(); ++t) {
                const TableBank &bank = _tables[t];
                if (bank.activeWidth == 0)
                    continue;
                c.live.push_back(
                    {t, bank.vocabChoice, 0, bank.activeWidth});
            }
            c.bottomW = static_cast<uint32_t>(_bottomOutWidth);
            c.concatW = _bottomOutWidth;
            for (const LiveTable &lt : c.live)
                c.concatW += lt.width;
            for (size_t l = 0; l < _topDepth; ++l) {
                const LayerBank &bank = _top[l];
                c.top.push_back({bank.useLowRank, bank.activeIn,
                                 bank.activeOut, bank.activeRank});
            }
            c.logitIn = static_cast<uint32_t>(_logit->activeIn());

            std::vector<uint32_t> sig;
            sig.push_back(static_cast<uint32_t>(_bottomDepth));
            for (size_t l = 0; l < _bottomDepth; ++l) {
                const LayerBank &bank = _bottom[l];
                sig.push_back(bank.useLowRank ? 1 : 0);
                sig.push_back(bank.activeIn);
                sig.push_back(bank.activeOut);
                sig.push_back(bank.activeRank);
            }
            size_t s = bottom_sigs.size();
            for (size_t j = 0; j < bottom_sigs.size(); ++j) {
                if (bottom_sigs[j] == sig) {
                    s = j;
                    break;
                }
            }
            if (s == bottom_sigs.size()) {
                bottom_sigs.push_back(sig);
                if (_bottomDepth == 0) {
                    bottom_cache.push_back(&dense); // passthrough
                } else {
                    const nn::Tensor &bo =
                        forwardMlp(_bottom, _bottomDepth, dense);
                    nn::Tensor &cache = _ws.scratch(
                        "eb_bot" + std::to_string(s), b, bo.cols());
                    for (size_t i = 0; i < b; ++i)
                        for (size_t d = 0; d < bo.cols(); ++d)
                            cache.at(i, d) = bo.at(i, d);
                    bottom_cache.push_back(&cache);
                }
            }
            c.bottomSig = s;
        }
        _batchStats.distinctBottoms = bottom_sigs.size();

        // --- Pass 2: one pooled gather per (table, vocab-choice) used
        // in this chunk, at the widest width any candidate needs. Each
        // pooled element is independent of the lookup width, so prefix
        // columns are bitwise identical to a narrower lookup.
        struct EmbNeed
        {
            size_t table, choice;
            uint32_t width;
            nn::Tensor *cache = nullptr;
        };
        std::vector<EmbNeed> needs;
        for (Cfg &c : cfgs) {
            for (LiveTable &lt : c.live) {
                size_t found = needs.size();
                for (size_t j = 0; j < needs.size(); ++j) {
                    if (needs[j].table == lt.table &&
                        needs[j].choice == lt.choice) {
                        found = j;
                        break;
                    }
                }
                if (found == needs.size())
                    needs.push_back({lt.table, lt.choice, lt.width});
                else
                    needs[found].width =
                        std::max(needs[found].width, lt.width);
                lt.cacheIdx = found;
            }
        }
        _idPtrScratch.resize(b);
        for (EmbNeed &need : needs) {
            for (size_t i = 0; i < b; ++i) {
                h2o_assert(need.table < batch.examples[i].sparse.size(),
                           "example missing sparse feature ", need.table);
                _idPtrScratch[i] = &batch.examples[i].sparse[need.table];
            }
            need.cache = &_ws.scratch("eb_emb_" +
                                          std::to_string(need.table) + "_" +
                                          std::to_string(need.choice),
                                      b, need.width);
            _tables[need.table].byVocabChoice[need.choice]->lookup(
                _idPtrScratch, need.width, *need.cache);
            ++_batchStats.embLookups;
        }

        // --- Pass 3: assemble the packed concat tensor P0: candidate g
        // occupies rows [g*b, (g+1)*b), laid out [embeddings..., bottom]
        // exactly as forward() builds _concat.
        size_t max_w = 0, max_rank = 0, max_depth = 0;
        for (const Cfg &c : cfgs) {
            max_w = std::max(max_w, c.concatW);
            for (const TopSlot &ts : c.top) {
                max_w = std::max<size_t>(max_w, ts.out);
                if (ts.lowRank)
                    max_rank = std::max<size_t>(max_rank, ts.rank);
            }
            max_depth = std::max(max_depth, c.top.size());
        }
        nn::Tensor &p0 = _ws.scratch("eb_p0", cn * b, max_w);
        nn::Tensor &p1 = _ws.scratch("eb_p1", cn * b, max_w);
        for (size_t g = 0; g < cn; ++g) {
            const Cfg &c = cfgs[g];
            size_t row0 = g * b;
            size_t off = 0;
            for (const LiveTable &lt : c.live) {
                const nn::Tensor &emb = *needs[lt.cacheIdx].cache;
                for (size_t i = 0; i < b; ++i)
                    for (size_t d = 0; d < lt.width; ++d)
                        p0.at(row0 + i, off + d) = emb.at(i, d);
                off += lt.width;
            }
            const nn::Tensor &bo = *bottom_cache[c.bottomSig];
            for (size_t i = 0; i < b; ++i)
                for (size_t d = 0; d < c.bottomW; ++d)
                    p0.at(row0 + i, off + d) = bo.at(i, d);
        }

        // --- Pass 4: packed top MLP. Slot by slot, candidates still
        // active at slot l run as mask groups over the shared slot
        // weights; ping-pong between P0 and P1 (slot l reads parity l,
        // writes parity l+1). A candidate whose depth is exhausted keeps
        // its final rows in buffer (depth % 2), which later slots never
        // write (groups only touch their own rows).
        nn::Tensor *bufs[2] = {&p0, &p1};
        nn::Tensor *hid =
            max_rank > 0 ? &_ws.scratch("eb_hid", cn * b, max_rank)
                         : nullptr;
        std::vector<nn::MaskGroup> full_g, lr_u, lr_v;
        for (size_t l = 0; l < max_depth; ++l) {
            nn::Tensor &src = *bufs[l % 2];
            nn::Tensor &dst = *bufs[(l + 1) % 2];
            full_g.clear();
            lr_u.clear();
            lr_v.clear();
            for (size_t g = 0; g < cn; ++g) {
                if (l >= cfgs[g].top.size())
                    continue;
                const TopSlot &ts = cfgs[g].top[l];
                if (ts.lowRank) {
                    lr_u.push_back({g * b, b, ts.in, ts.rank});
                    lr_v.push_back({g * b, b, ts.rank, ts.out});
                } else {
                    full_g.push_back({g * b, b, ts.in, ts.out});
                }
            }
            LayerBank &bank = _top[l];
            if (!full_g.empty()) {
                nn::matmulMaskedGrouped(src, bank.full->weightTensor(),
                                        dst, full_g);
                nn::addBiasGrouped(dst, bank.full->biasTensor(), full_g);
                for (const nn::MaskGroup &grp : full_g)
                    nn::activateTensorRows(bank.full->activation(), dst,
                                           dst, grp.rowBegin, grp.rows,
                                           grp.nAct);
                ++_batchStats.packedPasses;
            }
            if (!lr_u.empty()) {
                nn::matmulMaskedGrouped(src, bank.lowRank->uTensor(),
                                        *hid, lr_u);
                nn::matmulMaskedGrouped(*hid, bank.lowRank->vTensor(),
                                        dst, lr_v);
                nn::addBiasGrouped(dst, bank.lowRank->biasTensor(), lr_v);
                for (const nn::MaskGroup &grp : lr_v)
                    nn::activateTensorRows(bank.lowRank->activation(), dst,
                                           dst, grp.rowBegin, grp.rows,
                                           grp.nAct);
                ++_batchStats.packedPasses;
            }
        }

        // --- Pass 5: packed logit head. Candidates read from the buffer
        // their final top output landed in (depth parity); Identity
        // activation, like _logit->forward().
        nn::Tensor &logits = _ws.scratch("eb_logit", cn * b, 1);
        std::vector<nn::MaskGroup> logit_g[2];
        for (size_t g = 0; g < cn; ++g)
            logit_g[cfgs[g].top.size() % 2].push_back(
                {g * b, b, cfgs[g].logitIn, 1});
        for (size_t parity = 0; parity < 2; ++parity) {
            if (logit_g[parity].empty())
                continue;
            nn::matmulMaskedGrouped(*bufs[parity],
                                    _logit->weightTensor(), logits,
                                    logit_g[parity]);
            nn::addBiasGrouped(logits, _logit->biasTensor(),
                               logit_g[parity]);
            ++_batchStats.packedPasses;
        }

        // --- Pass 6: per-candidate metrics, exactly as evaluate().
        for (size_t g = 0; g < cn; ++g) {
            for (size_t i = 0; i < b; ++i)
                probs[i] = nn::sigmoid(logits.at(g * b + i, 0));
            EvalResult res;
            res.logLoss = nn::logLoss(probs, labels);
            res.auc = nn::auc(probs, labels);
            distinct_res[chunk0 + g] = res;
        }
    }

    setTrainingMode(true);

    std::vector<EvalResult> results(n);
    for (size_t i = 0; i < n; ++i)
        results[i] = distinct_res[ord[i]];
    return results;
}

double
DlrmSupernet::accumulateGradients(const pipeline::Batch &batch)
{
    const nn::Tensor &logits = forward(batch);
    nn::Tensor &labels = _ws.scratch("labels", batch.size(), 1);
    for (size_t i = 0; i < batch.size(); ++i)
        labels.at(i, 0) = batch.examples[i].label;
    nn::LossResult loss = nn::bceWithLogits(logits, labels);
    backward(loss.grad);
    return loss.value;
}

void
DlrmSupernet::applyGradients(double lr)
{
    _optimizer->setLearningRate(lr);
    _optimizer->step();
}

double
DlrmSupernet::trainStep(const pipeline::Batch &batch, double lr)
{
    double loss = accumulateGradients(batch);
    applyGradients(lr);
    return loss;
}

size_t
DlrmSupernet::activeParamCount() const
{
    h2o_assert(_configured, "activeParamCount before configure");
    size_t total = 0;
    for (const auto &bank : _tables) {
        if (bank.activeWidth == 0)
            continue;
        total += bank.byVocabChoice[bank.vocabChoice]->activeParamCount();
    }
    auto stack_params = [](const std::vector<LayerBank> &stack,
                           size_t depth) {
        size_t n = 0;
        for (size_t l = 0; l < depth; ++l) {
            const auto &bank = stack[l];
            n += bank.useLowRank ? bank.lowRank->activeParamCount()
                                 : bank.full->activeParamCount();
        }
        return n;
    };
    total += stack_params(_bottom, _bottomDepth);
    total += stack_params(_top, _topDepth);
    total += _logit->activeParamCount();
    return total;
}

DlrmModel
DlrmSupernet::extractModel() const
{
    h2o_assert(_configured, "extractModel before configure");
    DlrmModel model;
    model.numDenseFeatures = _space.baseline().numDenseFeatures;

    // Throwaway init stream: every extracted weight is overwritten.
    common::Rng scratch(1);

    // --- Embedding tables: copy the active width of the selected
    // vocabulary choice's physical table.
    model.tables.resize(_tables.size());
    for (size_t t = 0; t < _tables.size(); ++t) {
        const TableBank &bank = _tables[t];
        if (bank.activeWidth == 0)
            continue;
        const auto &src = bank.byVocabChoice[bank.vocabChoice];
        auto dst = std::make_unique<nn::EmbeddingTable>(
            src->vocab(), bank.activeWidth, scratch);
        auto src_params =
            const_cast<nn::EmbeddingTable &>(*src).params();
        auto dst_params = dst->params();
        const nn::Tensor &from = *src_params[0].value;
        nn::Tensor &to = *dst_params[0].value;
        for (size_t row = 0; row < src->vocab(); ++row)
            for (size_t d = 0; d < bank.activeWidth; ++d)
                to.at(row, d) = from.at(row, d);
        model.tables[t] = std::move(dst);
    }

    // --- MLP stacks: copy the active submatrices.
    auto extract_stack = [&](const std::vector<LayerBank> &stack,
                             size_t depth) {
        std::vector<ExtractedLayer> out;
        for (size_t l = 0; l < depth; ++l) {
            const LayerBank &bank = stack[l];
            ExtractedLayer layer;
            if (bank.useLowRank) {
                layer.lowRank = std::make_unique<nn::LowRankDenseLayer>(
                    bank.activeIn, bank.activeRank, bank.activeOut,
                    nn::Activation::ReLU, scratch);
                layer.lowRank->setActive(bank.activeIn, bank.activeRank,
                                         bank.activeOut);
                auto src = const_cast<nn::LowRankDenseLayer &>(
                               *bank.lowRank)
                               .params();
                auto dst = layer.lowRank->params();
                // U [in, rank], V [rank, out], b [out]: copy the active
                // upper-left blocks.
                for (size_t r = 0; r < bank.activeIn; ++r)
                    for (size_t c = 0; c < bank.activeRank; ++c)
                        dst[0].value->at(r, c) = src[0].value->at(r, c);
                for (size_t r = 0; r < bank.activeRank; ++r)
                    for (size_t c = 0; c < bank.activeOut; ++c)
                        dst[1].value->at(r, c) = src[1].value->at(r, c);
                for (size_t c = 0; c < bank.activeOut; ++c)
                    (*dst[2].value)[c] = (*src[2].value)[c];
            } else {
                layer.dense = std::make_unique<nn::DenseLayer>(
                    bank.activeIn, bank.activeOut, nn::Activation::ReLU,
                    scratch);
                auto src =
                    const_cast<nn::MaskedDenseLayer &>(*bank.full).params();
                auto dst = layer.dense->params();
                for (size_t r = 0; r < bank.activeIn; ++r)
                    for (size_t c = 0; c < bank.activeOut; ++c)
                        dst[0].value->at(r, c) = src[0].value->at(r, c);
                for (size_t c = 0; c < bank.activeOut; ++c)
                    (*dst[1].value)[c] = (*src[1].value)[c];
            }
            out.push_back(std::move(layer));
        }
        return out;
    };
    model.bottomMlp = extract_stack(_bottom, _bottomDepth);
    model.topMlp = extract_stack(_top, _topDepth);

    // --- Logit layer.
    size_t logit_in = _logit->activeIn();
    model.logitLayer = std::make_unique<nn::DenseLayer>(
        logit_in, 1, nn::Activation::Identity, scratch);
    auto src = const_cast<nn::MaskedDenseLayer &>(*_logit).params();
    auto dst = model.logitLayer->params();
    for (size_t r = 0; r < logit_in; ++r)
        dst[0].value->at(r, 0) = src[0].value->at(r, 0);
    (*dst[1].value)[0] = (*src[1].value)[0];
    return model;
}

size_t
DlrmSupernet::totalParamCount() const
{
    size_t total = 0;
    for (const auto &bank : _tables)
        for (const auto &table : bank.byVocabChoice)
            total += table->vocab() * table->maxWidth();
    for (const auto *stack : {&_bottom, &_top}) {
        for (const auto &bank : *stack) {
            total += bank.full->maxIn() * bank.full->maxOut() +
                     bank.full->maxOut();
            total += bank.full->maxIn() * bank.full->maxOut() +
                     bank.full->maxOut() * bank.full->maxOut();
        }
    }
    total += _logit->maxIn() + 1;
    return total;
}

void
DlrmSupernet::save(std::ostream &os) const
{
    common::writeTaggedScalar(os, "supernet_tensors",
                              static_cast<double>(_allParams.size()));
    for (size_t i = 0; i < _allParams.size(); ++i) {
        const auto &data = _allParams[i].value->data();
        // float -> double is exact, and the tagged writer emits enough
        // digits for an exact double round-trip.
        std::vector<double> values(data.begin(), data.end());
        common::writeTagged(os, "w" + std::to_string(i), values);
    }
}

void
DlrmSupernet::load(std::istream &is)
{
    size_t tensors = static_cast<size_t>(
        common::readTaggedScalar(is, "supernet_tensors"));
    if (tensors != _allParams.size())
        h2o_fatal("supernet checkpoint has ", tensors,
                  " tensors, this supernet has ", _allParams.size());
    for (size_t i = 0; i < _allParams.size(); ++i) {
        auto values = common::readTagged(is, "w" + std::to_string(i));
        auto &data = _allParams[i].value->data();
        if (values.size() != data.size())
            h2o_fatal("supernet checkpoint tensor ", i, " has ",
                      values.size(), " values, expected ", data.size());
        for (size_t j = 0; j < data.size(); ++j)
            data[j] = static_cast<float>(values[j]);
        _allParams[i].grad->zero();
    }
}

} // namespace h2o::supernet
