/**
 * @file
 * The DLRM weight-sharing super-network — the paper's first such design
 * for RL-based one-shot NAS (Section 5.1.2, Figure 3). Hybrid sharing:
 *
 *  (1) fine-grained embedding width: one vector of the largest possible
 *      width per row; smaller widths mask all but the first D entries;
 *  (2) coarse-grained vocabulary size: a SEPARATE physical table per
 *      vocabulary-size choice, so candidates that hash ids differently
 *      never interfere;
 *  (3) fine-grained MLP width/depth: one weight matrix of the largest
 *      input/output size per layer slot; smaller layers keep the
 *      upper-left sub-matrix;
 *  (4) fine-grained low-rank: shared U/V factor matrices whose active
 *      rank is masked, trained directly without ever materializing the
 *      full-rank matrix.
 *
 * The super-network is genuinely trainable (manual backprop on the
 * synthetic traffic stream). Vocabularies are capped at a configurable
 * physical size — the hashing-trick scale-down substituting for the
 * paper's O(1000)M-parameter production model; the sharing structure and
 * interference dynamics are unchanged.
 */

#ifndef H2O_SUPERNET_DLRM_SUPERNET_H
#define H2O_SUPERNET_DLRM_SUPERNET_H

#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/embedding.h"
#include "nn/low_rank_dense.h"
#include "nn/masked_dense.h"
#include "nn/optimizer.h"
#include "nn/workspace.h"
#include "pipeline/example.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_model.h"

namespace h2o::supernet {

/** Supernet scale-down knobs. */
struct SupernetConfig
{
    /** Cap on the physical vocabulary of any shared table (hash trick). */
    uint64_t vocabCap = 1024;
    /** Cap on MLP layer widths inside the trainable supernet. */
    uint32_t mlpWidthCap = 256;
    /**
     * Ablation switch: share ONE physical table per feature across all
     * vocabulary-size candidates (pure fine-grained sharing) instead of
     * the paper's coarse-grained per-choice tables. Candidates that
     * hash ids with different moduli then interfere — the harmful
     * interaction the hybrid design avoids (Section 5.1.2).
     */
    bool fineGrainedVocabSharing = false;
};

/** Quality metrics from one evaluation forward pass. */
struct EvalResult
{
    double logLoss = 0.0;
    double auc = 0.5;
    /** The quality signal Q(a) fed to the reward: higher is better. */
    double quality() const { return -logLoss; }
};

/** Instrumentation from the last evaluateBatch() call. */
struct EvalBatchStats
{
    size_t candidates = 0;      ///< samples passed in
    size_t distinct = 0;        ///< after full-sample dedup
    size_t distinctBottoms = 0; ///< distinct bottom-MLP configurations run
    size_t embLookups = 0;      ///< (table, vocab-choice) pooled gathers run
    size_t packedPasses = 0;    ///< grouped kernel launches (top + logit)
};

/** The trainable hybrid-sharing DLRM super-network. */
class DlrmSupernet
{
  public:
    /**
     * @param space  The search space defining shared-storage maxima.
     * @param config Scale-down configuration.
     * @param rng    Stream for weight initialization.
     */
    DlrmSupernet(const searchspace::DlrmSearchSpace &space,
                 SupernetConfig config, common::Rng &rng);

    /**
     * Select the active sub-network for a sampled candidate. Must be
     * called before forward/evaluate/trainStep.
     */
    void configure(const searchspace::Sample &sample);

    /**
     * Forward pass on a batch; returns [batch, 1] logits — a reference
     * to an internal buffer, valid until the next forward.
     * @pre configure() was called.
     */
    const nn::Tensor &forward(const pipeline::Batch &batch);

    /** Forward + loss only (no gradients): the alpha-step evaluation.
     *  Runs the layers in eval mode — no backward bookkeeping or output
     *  buffers are retained; forward values are unchanged bit-for-bit. */
    EvalResult evaluate(const pipeline::Batch &batch);

    /**
     * Evaluate MANY sampled candidates against ONE shared batch in a
     * single packed pass: the step's samples are deduplicated, embedding
     * lookups are shared across candidates per (table, vocab-choice),
     * distinct bottom-MLP configurations run once, and the top MLP +
     * logit run as grouped-mask kernels over a packed
     * [n_distinct * batch, width] tensor (nn::matmulMaskedGrouped).
     *
     * Result row i is BITWISE identical to `configure(samples[i]);
     * evaluate(batch)` — the grouped kernels preserve each candidate's
     * per-element floating-point operation sequence, and the shared
     * caches exploit only prefix-sharing that is exact by construction.
     * No gradients are accumulated and no backward state is retained.
     *
     * Leaves the supernet configured to the last *distinct* sample;
     * callers must configure() before any later forward/backward.
     *
     * @param max_chunk Cap on distinct candidates packed per pass.
     *        0 (default) picks a cache-aware cap that keeps the packed
     *        ping-pong buffers inside the fast cache levels. Results
     *        are identical for every chunk size.
     */
    std::vector<EvalResult>
    evaluateBatch(std::span<const searchspace::Sample> samples,
                  const pipeline::Batch &batch, size_t max_chunk = 0);

    /** Instrumentation from the last evaluateBatch() call. */
    const EvalBatchStats &batchStats() const { return _batchStats; }

    /**
     * One SGD training step of the active sub-network's shared weights
     * on the batch. Returns the training loss.
     */
    double trainStep(const pipeline::Batch &batch, double lr);

    /** Apply externally-accumulated gradients (cross-shard training):
     *  run forward+backward WITHOUT stepping, so the caller can merge
     *  gradients across shards before calling applyGradients(). */
    double accumulateGradients(const pipeline::Batch &batch);

    /** SGD step from whatever gradients are accumulated, then zero. */
    void applyGradients(double lr);

    /** Parameters of the active candidate (analytic count at the
     *  *scaled-down* supernet dimensions). */
    size_t activeParamCount() const;

    /** Total shared parameters across all tables/choices/layers. */
    size_t totalParamCount() const;

    /** Whether configure() has been called. */
    bool configured() const { return _configured; }

    /**
     * Checkpoint every shared parameter tensor (preemptible-fleet
     * resume). Gradient accumulators are not persisted: checkpoints are
     * taken between steps, where they are zero. Exact: float values
     * round-trip bit-for-bit through the tagged text format.
     */
    void save(std::ostream &os) const;

    /**
     * Restore checkpointed weights into the shared storage; fatal when
     * the checkpoint's tensor structure does not match this supernet.
     * Zeroes all gradient accumulators.
     */
    void load(std::istream &is);

    /**
     * Extract the currently-configured sub-network as a standalone
     * model: the selected candidate's weights are COPIED out of the
     * shared storage, so the search's own training is reused directly
     * for deployment (no retraining) and later search steps cannot
     * perturb the extracted model.
     */
    DlrmModel extractModel() const;

  private:
    /** Per-table shared storage: one physical table per vocab choice. */
    struct TableBank
    {
        /** Physical tables indexed by vocabulary choice (coarse (2)). */
        std::vector<std::unique_ptr<nn::EmbeddingTable>> byVocabChoice;
        uint32_t maxWidth = 0;
        // Active selection:
        size_t vocabChoice = 0;
        uint32_t activeWidth = 0; ///< 0 = table removed
    };

    /** Per-MLP-layer shared storage: full-rank + low-rank paths. */
    struct LayerBank
    {
        std::unique_ptr<nn::MaskedDenseLayer> full;
        std::unique_ptr<nn::LowRankDenseLayer> lowRank;
        // Active selection:
        bool useLowRank = false;
        uint32_t activeIn = 0;
        uint32_t activeOut = 0;
        uint32_t activeRank = 0;
    };

    // Both chain layer-owned buffers by reference: no per-layer copies.
    const nn::Tensor &forwardMlp(std::vector<LayerBank> &stack,
                                 size_t depth, const nn::Tensor &input);
    const nn::Tensor &backwardMlp(std::vector<LayerBank> &stack,
                                  size_t depth, const nn::Tensor &grad);
    void backward(const nn::Tensor &grad_logits);

    /** Flip every MLP layer (and the logit head) between training and
     *  eval mode; embedding tables have no mode. */
    void setTrainingMode(bool training);

    const searchspace::DlrmSearchSpace &_space;
    SupernetConfig _config;

    std::vector<TableBank> _tables;
    std::vector<LayerBank> _bottom;
    std::vector<LayerBank> _top;
    std::unique_ptr<nn::MaskedDenseLayer> _logit;

    size_t _bottomDepth = 0;
    size_t _topDepth = 0;
    bool _configured = false;

    // Cached forward state for backward.
    nn::Tensor _denseInput;
    nn::Tensor _concat;
    std::vector<size_t> _concatOffsets; ///< column offset per live table
    std::vector<size_t> _liveTables;
    size_t _bottomOutWidth = 0;

    /** Reused scratch for gradient splits and label staging. */
    nn::Workspace _ws;

    EvalBatchStats _batchStats;
    /** Reused id-list pointer staging for batched embedding lookups. */
    std::vector<const nn::IdList *> _idPtrScratch;

    std::unique_ptr<nn::SgdOptimizer> _optimizer;
    /** Every shared parameter, in construction order (checkpointing). */
    std::vector<nn::ParamRef> _allParams;
};

} // namespace h2o::supernet

#endif // H2O_SUPERNET_DLRM_SUPERNET_H
