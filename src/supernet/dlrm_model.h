/**
 * @file
 * A standalone DLRM predictor extracted from the super-network.
 *
 * One of the paper's deployment wins is "eliminating the need for
 * lengthy retraining and fine-tuning for model deployment" (§1): the
 * weights the one-shot search trained are used directly. DlrmModel is
 * that artifact — the selected sub-network's weights copied out of the
 * shared storage into a compact, immutable-by-sharing inference model
 * that no longer depends on the super-network (further search steps
 * cannot perturb it).
 */

#ifndef H2O_SUPERNET_DLRM_MODEL_H
#define H2O_SUPERNET_DLRM_MODEL_H

#include <memory>
#include <vector>

#include "nn/dense.h"
#include "nn/embedding.h"
#include "nn/low_rank_dense.h"
#include "nn/tensor.h"
#include "pipeline/example.h"

namespace h2o::supernet {

/** One extracted MLP layer: either dense or low-rank factorized. */
struct ExtractedLayer
{
    std::unique_ptr<nn::DenseLayer> dense;        ///< set when full rank
    std::unique_ptr<nn::LowRankDenseLayer> lowRank; ///< set when factorized
};

/** Quality metrics (matches DlrmSupernet::EvalResult semantics). */
struct ModelEval
{
    double logLoss = 0.0;
    double auc = 0.5;
};

/**
 * Standalone extracted DLRM. Constructed by DlrmSupernet::extractModel();
 * supports inference only (the search already trained it).
 */
class DlrmModel
{
  public:
    /** Sparse-feature table slot; null when the search removed the
     *  table. Indexed by feature position. */
    std::vector<std::unique_ptr<nn::EmbeddingTable>> tables;
    std::vector<ExtractedLayer> bottomMlp;
    std::vector<ExtractedLayer> topMlp;
    std::unique_ptr<nn::DenseLayer> logitLayer;
    uint32_t numDenseFeatures = 0;

    /** Forward pass: [batch, 1] logits. */
    nn::Tensor forward(const pipeline::Batch &batch);

    /** Log-loss / AUC on a batch. */
    ModelEval evaluate(const pipeline::Batch &batch);

    /** Total parameters held by this standalone model. */
    size_t paramCount() const;
};

} // namespace h2o::supernet

#endif // H2O_SUPERNET_DLRM_MODEL_H
