#include "supernet/dlrm_model.h"

#include "common/logging.h"
#include "nn/loss.h"

namespace h2o::supernet {

namespace {

const nn::Tensor &
layerForward(ExtractedLayer &layer, const nn::Tensor &input)
{
    if (layer.dense)
        return layer.dense->forward(input);
    h2o_assert(layer.lowRank != nullptr, "empty extracted layer");
    return layer.lowRank->forward(input);
}

} // namespace

nn::Tensor
DlrmModel::forward(const pipeline::Batch &batch)
{
    size_t b = batch.size();
    h2o_assert(b > 0, "empty batch");
    h2o_assert(logitLayer != nullptr, "model missing logit layer");

    nn::Tensor dense_in(b, numDenseFeatures);
    for (size_t i = 0; i < b; ++i) {
        h2o_assert(batch.examples[i].dense.size() == numDenseFeatures,
                   "example dense width mismatch");
        for (size_t j = 0; j < numDenseFeatures; ++j)
            dense_in.at(i, j) = batch.examples[i].dense[j];
    }

    const nn::Tensor *bottom = &dense_in;
    for (auto &layer : bottomMlp)
        bottom = &layerForward(layer, *bottom);

    size_t concat_width = bottom->cols();
    std::vector<nn::Tensor> embedded;
    std::vector<size_t> live;
    for (size_t t = 0; t < tables.size(); ++t) {
        if (!tables[t])
            continue;
        std::vector<nn::IdList> ids(b);
        for (size_t i = 0; i < b; ++i) {
            h2o_assert(t < batch.examples[i].sparse.size(),
                       "example missing sparse feature ", t);
            ids[i] = batch.examples[i].sparse[t];
        }
        embedded.push_back(tables[t]->forward(ids));
        live.push_back(t);
        concat_width += embedded.back().cols();
    }

    nn::Tensor concat(b, concat_width);
    size_t offset = 0;
    for (const auto &emb : embedded) {
        for (size_t i = 0; i < b; ++i)
            for (size_t d = 0; d < emb.cols(); ++d)
                concat.at(i, offset + d) = emb.at(i, d);
        offset += emb.cols();
    }
    for (size_t i = 0; i < b; ++i)
        for (size_t d = 0; d < bottom->cols(); ++d)
            concat.at(i, offset + d) = bottom->at(i, d);

    const nn::Tensor *top = &concat;
    for (auto &layer : topMlp)
        top = &layerForward(layer, *top);
    return logitLayer->forward(*top);
}

ModelEval
DlrmModel::evaluate(const pipeline::Batch &batch)
{
    nn::Tensor logits = forward(batch);
    std::vector<double> probs(batch.size()), labels(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        probs[i] = nn::sigmoid(logits.at(i, 0));
        labels[i] = batch.examples[i].label;
    }
    ModelEval eval;
    eval.logLoss = nn::logLoss(probs, labels);
    eval.auc = nn::auc(probs, labels);
    return eval;
}

size_t
DlrmModel::paramCount() const
{
    size_t total = 0;
    for (const auto &table : tables)
        if (table)
            total += table->activeParamCount();
    auto stack = [&](const std::vector<ExtractedLayer> &layers) {
        size_t n = 0;
        for (const auto &l : layers) {
            if (l.dense)
                n += l.dense->activeParamCount();
            else if (l.lowRank)
                n += l.lowRank->activeParamCount();
        }
        return n;
    };
    total += stack(bottomMlp) + stack(topMlp);
    if (logitLayer)
        total += logitLayer->activeParamCount();
    return total;
}

} // namespace h2o::supernet
