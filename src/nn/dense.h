/**
 * @file
 * A plain fully-connected layer: y = act(x W + b).
 *
 * Used by the MLP performance model (Section 6.2.1 of the paper: a 2-layer,
 * 512-neuron MLP predicting training/serving performance) and anywhere a
 * fixed-shape layer is needed.
 */

#ifndef H2O_NN_DENSE_H
#define H2O_NN_DENSE_H

#include "nn/activation.h"
#include "nn/layer.h"

namespace h2o::common { class Rng; }

namespace h2o::nn {

/** Fixed-shape fully-connected layer. */
class DenseLayer : public Layer
{
  public:
    /**
     * @param in   Input feature count.
     * @param out  Output feature count.
     * @param act  Activation applied to the affine output.
     * @param rng  Stream for He-normal weight initialization.
     */
    DenseLayer(size_t in, size_t out, Activation act, common::Rng &rng);

    const Tensor &forward(const Tensor &input) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;
    size_t activeParamCount() const override;
    std::string describe() const override;

    /** Input width. */
    size_t inDim() const { return _in; }

    /** Output width. */
    size_t outDim() const { return _out; }

    /** Weight matrix (in x out). */
    Tensor &weights() { return _w; }

    /** Bias vector. */
    Tensor &bias() { return _b; }

    /**
     * When disabled, backward() skips the dX = dpre W^T matmul and
     * returns an empty tensor. Only valid for a network's first layer,
     * whose input gradient has no consumer (e.g. the perf model trains
     * on fixed feature rows) — roughly a third of the layer's backward
     * FLOPs for free.
     */
    void setNeedInputGrad(bool need) { _needInputGrad = need; }

  private:
    size_t _in;
    size_t _out;
    Activation _act;
    Tensor _w;
    Tensor _b;
    Tensor _wGrad;
    Tensor _bGrad;
    const Tensor *_input = nullptr; ///< forward input (caller-owned)
    Tensor _preact;  ///< cached pre-activation (reused across calls)
    Tensor _output;  ///< cached activation output (reused across calls)
    Tensor _dpre;    ///< backward scratch (reused across calls)
    Tensor _dx;      ///< input gradient returned by backward
    bool _needInputGrad = true;
};

} // namespace h2o::nn

#endif // H2O_NN_DENSE_H
