/**
 * @file
 * Per-column feature standardization (z-scoring) for the performance
 * model: architecture hyper-parameters span many orders of magnitude
 * (embedding vocab sizes vs layer counts), so inputs and regression
 * targets are standardized before training and predictions un-scaled
 * after.
 */

#ifndef H2O_NN_NORMALIZER_H
#define H2O_NN_NORMALIZER_H

#include <vector>

#include "nn/tensor.h"

namespace h2o::nn {

/** Fit-then-transform column standardizer. */
class Normalizer
{
  public:
    /** Fit per-column mean and stddev on a [n, d] design matrix. */
    void fit(const Tensor &data);

    /** Standardize in place using the fitted statistics. */
    void transform(Tensor &data) const;

    /** Invert the standardization for one column's worth of values. */
    double inverse(double value, size_t col) const;

    /** Standardize one value for a given column. */
    double apply(double value, size_t col) const;

    /** Whether fit() has been called. */
    bool fitted() const { return !_mean.empty(); }

    /** Fitted per-column means. */
    const std::vector<double> &means() const { return _mean; }

    /** Fitted per-column stddevs (floored at a small epsilon). */
    const std::vector<double> &stddevs() const { return _std; }

    /** Restore fitted statistics (checkpoint loading). */
    void restore(std::vector<double> means, std::vector<double> stddevs);

  private:
    std::vector<double> _mean;
    std::vector<double> _std;
};

} // namespace h2o::nn

#endif // H2O_NN_NORMALIZER_H
