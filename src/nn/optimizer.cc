#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::nn {

Optimizer::Optimizer(std::vector<ParamRef> params)
    : _params(std::move(params))
{
    for (const auto &p : _params) {
        h2o_assert(p.value && p.grad, "null ParamRef");
        h2o_assert(p.value->size() == p.grad->size(),
                   "param/grad size mismatch");
    }
}

void
Optimizer::zeroGrad()
{
    for (auto &p : _params)
        p.grad->zero();
}

double
Optimizer::gradNorm() const
{
    double acc = 0.0;
    for (const auto &p : _params)
        for (float g : p.grad->data())
            acc += static_cast<double>(g) * static_cast<double>(g);
    return std::sqrt(acc);
}

void
Optimizer::clipGradNorm(double max_norm)
{
    h2o_assert(max_norm > 0.0, "clipGradNorm with non-positive max");
    double norm = gradNorm();
    if (norm <= max_norm || norm == 0.0)
        return;
    float scale = static_cast<float>(max_norm / norm);
    for (auto &p : _params)
        for (auto &g : p.grad->data())
            g *= scale;
}

SgdOptimizer::SgdOptimizer(std::vector<ParamRef> params, double lr,
                           double momentum, double weight_decay)
    : Optimizer(std::move(params)), _momentum(momentum),
      _weightDecay(weight_decay)
{
    _lr = lr;
    _velocity.reserve(_params.size());
    for (const auto &p : _params)
        _velocity.emplace_back(p.value->shape());
}

void
SgdOptimizer::step()
{
    for (size_t i = 0; i < _params.size(); ++i) {
        auto &value = *_params[i].value;
        auto &grad = *_params[i].grad;
        auto &vel = _velocity[i];
        for (size_t j = 0; j < value.size(); ++j) {
            float g = grad[j];
            if (_weightDecay != 0.0)
                g += static_cast<float>(_weightDecay) * value[j];
            if (_momentum != 0.0) {
                vel[j] = static_cast<float>(_momentum) * vel[j] + g;
                g = vel[j];
            }
            value[j] -= static_cast<float>(_lr) * g;
        }
        grad.zero();
    }
}

AdamOptimizer::AdamOptimizer(std::vector<ParamRef> params, double lr,
                             double beta1, double beta2, double eps)
    : Optimizer(std::move(params)), _beta1(beta1), _beta2(beta2), _eps(eps)
{
    _lr = lr;
    _m.reserve(_params.size());
    _v.reserve(_params.size());
    for (const auto &p : _params) {
        _m.emplace_back(p.value->shape());
        _v.emplace_back(p.value->shape());
    }
}

void
AdamOptimizer::step()
{
    ++_t;
    double bc1 = 1.0 - std::pow(_beta1, static_cast<double>(_t));
    double bc2 = 1.0 - std::pow(_beta2, static_cast<double>(_t));
    for (size_t i = 0; i < _params.size(); ++i) {
        auto &value = *_params[i].value;
        auto &grad = *_params[i].grad;
        float *vp = value.data().data();
        const float *gp = grad.data().data();
        float *mp = _m[i].data().data();
        float *vvp = _v[i].data().data();
        size_t count = value.size();
        // Elementwise update: each lane is independent and keeps the
        // exact scalar expression order, so vectorization is
        // bit-identical to the serial loop.
#pragma omp simd
        for (size_t j = 0; j < count; ++j) {
            double g = gp[j];
            mp[j] = static_cast<float>(_beta1 * mp[j] + (1.0 - _beta1) * g);
            vvp[j] =
                static_cast<float>(_beta2 * vvp[j] + (1.0 - _beta2) * g * g);
            double mhat = mp[j] / bc1;
            double vhat = vvp[j] / bc2;
            vp[j] -= static_cast<float>(_lr * mhat /
                                        (std::sqrt(vhat) + _eps));
        }
        grad.zero();
    }
}

} // namespace h2o::nn
