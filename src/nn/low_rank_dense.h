/**
 * @file
 * Low-rank factorized dense layer with a searchable rank.
 *
 * y = act((x U) V + b) with U: max_in x max_rank, V: max_rank x max_out.
 * The active rank masks columns of U and rows of V (Figure 3, mask ④),
 * so the rank itself is a weight-shared categorical decision: as the
 * paper notes, both the rank and the low-rank weights are learned directly,
 * without ever materializing the full-rank matrix. Reducing rank cuts
 * compute; the search balances that against quality loss while keeping
 * every tensor dimension large enough to feed the hardware tensor units.
 */

#ifndef H2O_NN_LOW_RANK_DENSE_H
#define H2O_NN_LOW_RANK_DENSE_H

#include "nn/activation.h"
#include "nn/layer.h"

namespace h2o::common { class Rng; }

namespace h2o::nn {

/** Low-rank dense layer with runtime-selected rank and widths. */
class LowRankDenseLayer : public Layer
{
  public:
    LowRankDenseLayer(size_t max_in, size_t max_rank, size_t max_out,
                      Activation act, common::Rng &rng);

    /**
     * Select the active sub-network.
     * @pre dims positive and within the max bounds.
     */
    void setActive(size_t in, size_t rank, size_t out);

    /** Currently active rank. */
    size_t activeRank() const { return _activeRank; }

    /** Currently active input width. */
    size_t activeIn() const { return _activeIn; }

    /** Currently active output width. */
    size_t activeOut() const { return _activeOut; }

    /** Shared U factor storage [maxIn, maxRank] (packed eval access). */
    const Tensor &uTensor() const { return _u; }

    /** Shared V factor storage [maxRank, maxOut]. */
    const Tensor &vTensor() const { return _v; }

    /** Shared bias storage [maxOut]. */
    const Tensor &biasTensor() const { return _b; }

    /** The activation applied by forward(). */
    Activation activation() const { return _act; }

    const Tensor &forward(const Tensor &input) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;
    size_t activeParamCount() const override;
    std::string describe() const override;

  private:
    size_t _maxIn;
    size_t _maxRank;
    size_t _maxOut;
    size_t _activeIn;
    size_t _activeRank;
    size_t _activeOut;
    Activation _act;
    Tensor _u;      ///< max_in x max_rank
    Tensor _v;      ///< max_rank x max_out
    Tensor _b;
    Tensor _uGrad;
    Tensor _vGrad;
    Tensor _bGrad;
    const Tensor *_input = nullptr; ///< forward input (caller-owned)
    Tensor _hidden; ///< x U (batch x rank)
    Tensor _preact;
    Tensor _output;
    Tensor _dpre; ///< backward scratch (reused across calls)
    Tensor _dh;   ///< hidden gradient scratch
    Tensor _dx;   ///< input gradient returned by backward
};

} // namespace h2o::nn

#endif // H2O_NN_LOW_RANK_DENSE_H
