#include "nn/normalizer.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::nn {

namespace {
constexpr double kStdFloor = 1e-8;
} // namespace

void
Normalizer::fit(const Tensor &data)
{
    size_t n = data.rows(), d = data.cols();
    h2o_assert(n > 0 && d > 0, "Normalizer::fit on empty data");
    _mean.assign(d, 0.0);
    _std.assign(d, 0.0);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < d; ++j)
            _mean[j] += data.at(i, j);
    for (size_t j = 0; j < d; ++j)
        _mean[j] /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j) {
            double dv = data.at(i, j) - _mean[j];
            _std[j] += dv * dv;
        }
    }
    for (size_t j = 0; j < d; ++j)
        _std[j] = std::max(std::sqrt(_std[j] / static_cast<double>(n)),
                           kStdFloor);
}

void
Normalizer::transform(Tensor &data) const
{
    h2o_assert(fitted(), "transform before fit");
    h2o_assert(data.cols() == _mean.size(), "column count mismatch");
    for (size_t i = 0; i < data.rows(); ++i)
        for (size_t j = 0; j < data.cols(); ++j)
            data.at(i, j) = static_cast<float>(
                (data.at(i, j) - _mean[j]) / _std[j]);
}

double
Normalizer::inverse(double value, size_t col) const
{
    h2o_assert(fitted() && col < _mean.size(), "inverse on unfitted column");
    return value * _std[col] + _mean[col];
}

void
Normalizer::restore(std::vector<double> means, std::vector<double> stddevs)
{
    h2o_assert(means.size() == stddevs.size() && !means.empty(),
               "normalizer restore size mismatch");
    for (double s : stddevs)
        h2o_assert(s > 0.0, "non-positive stddev in restore");
    _mean = std::move(means);
    _std = std::move(stddevs);
}

double
Normalizer::apply(double value, size_t col) const
{
    h2o_assert(fitted() && col < _mean.size(), "apply on unfitted column");
    return (value - _mean[col]) / _std[col];
}

} // namespace h2o::nn
