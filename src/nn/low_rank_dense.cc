#include "nn/low_rank_dense.h"

#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "nn/ops.h"

namespace h2o::nn {

LowRankDenseLayer::LowRankDenseLayer(size_t max_in, size_t max_rank,
                                     size_t max_out, Activation act,
                                     common::Rng &rng)
    : _maxIn(max_in), _maxRank(max_rank), _maxOut(max_out),
      _activeIn(max_in), _activeRank(max_rank), _activeOut(max_out),
      _act(act), _u(max_in, max_rank), _v(max_rank, max_out),
      _b(std::vector<size_t>{max_out}), _uGrad(max_in, max_rank),
      _vGrad(max_rank, max_out), _bGrad(std::vector<size_t>{max_out})
{
    h2o_assert(max_in > 0 && max_rank > 0 && max_out > 0,
               "LowRankDense with zero max dims");
    _u.heInit(rng, max_in);
    _v.heInit(rng, max_rank);
}

void
LowRankDenseLayer::setActive(size_t in, size_t rank, size_t out)
{
    h2o_assert(in > 0 && in <= _maxIn, "active in out of range");
    h2o_assert(rank > 0 && rank <= _maxRank, "active rank out of range");
    h2o_assert(out > 0 && out <= _maxOut, "active out out of range");
    _activeIn = in;
    _activeRank = rank;
    _activeOut = out;
}

const Tensor &
LowRankDenseLayer::forward(const Tensor &input)
{
    h2o_assert(input.cols() >= _activeIn, "LowRankDense input too narrow");
    _input = _training ? &input : nullptr;
    _hidden.resizeUninitialized(input.rows(), _activeRank);
    matmulMasked(input, _u, _hidden, _activeIn, _activeRank);
    _preact.resizeUninitialized(input.rows(), _activeOut);
    matmulMasked(_hidden, _v, _preact, _activeRank, _activeOut);
    addBias(_preact, _b, _activeOut);
    if (!_training) {
        // Eval mode: activate in place (see MaskedDenseLayer::forward).
        activateTensor(_act, _preact, _preact);
        return _preact;
    }
    _output.resizeUninitialized(input.rows(), _activeOut);
    activateTensor(_act, _preact, _output);
    return _output;
}

const Tensor &
LowRankDenseLayer::backward(const Tensor &grad_out)
{
    h2o_assert(_input, "LowRankDense backward before forward");
    h2o_assert(grad_out.rows() == _preact.rows() &&
                   grad_out.cols() == _activeOut,
               "LowRankDense backward width mismatch");
    _dpre.resizeUninitialized(grad_out.rows(), _activeOut);
    activateGradTensor(_act, _preact, grad_out, _dpre);

    // dV += H^T dpre ; db += col-sums ; dH = dpre V^T
    matmulTransAMasked(_hidden, _dpre, _vGrad, _activeRank, _activeOut);
    for (size_t r = 0; r < _dpre.rows(); ++r)
        for (size_t c = 0; c < _activeOut; ++c)
            _bGrad[c] += _dpre.at(r, c);

    _dh.resizeUninitialized(_dpre.rows(), _activeRank);
    matmulTransBMasked(_dpre, _v, _dh, _activeOut, _activeRank);

    // dU += X^T dH ; dX = dH U^T
    matmulTransAMasked(*_input, _dh, _uGrad, _activeIn, _activeRank);
    _dx.resizeUninitialized(_dpre.rows(), _activeIn);
    matmulTransBMasked(_dh, _u, _dx, _activeRank, _activeIn);
    return _dx;
}

std::vector<ParamRef>
LowRankDenseLayer::params()
{
    return {{&_u, &_uGrad}, {&_v, &_vGrad}, {&_b, &_bGrad}};
}

size_t
LowRankDenseLayer::activeParamCount() const
{
    return _activeIn * _activeRank + _activeRank * _activeOut + _activeOut;
}

std::string
LowRankDenseLayer::describe() const
{
    std::ostringstream oss;
    oss << "LowRankDense(" << _activeIn << " -r" << _activeRank << "-> "
        << _activeOut << ", " << activationName(_act) << ")";
    return oss.str();
}

} // namespace h2o::nn
