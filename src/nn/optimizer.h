/**
 * @file
 * Optimizers operating on ParamRef registries: SGD with momentum (used for
 * super-network weight training, mirroring the cross-shard gradient update
 * of the paper's single-step algorithm) and Adam (used for the performance
 * model and the REINFORCE policy parameters).
 */

#ifndef H2O_NN_OPTIMIZER_H
#define H2O_NN_OPTIMIZER_H

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace h2o::nn {

/** Base optimizer interface over a fixed parameter registry. */
class Optimizer
{
  public:
    /** @param params Parameter/gradient pairs this optimizer owns updates
     *                for. The referenced tensors must outlive the optimizer. */
    explicit Optimizer(std::vector<ParamRef> params);
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated gradients, then zero them. */
    virtual void step() = 0;

    /** Zero all gradient accumulators without updating. */
    void zeroGrad();

    /** Set the learning rate (supports schedules driven by the caller). */
    void setLearningRate(double lr) { _lr = lr; }

    /** Current learning rate. */
    double learningRate() const { return _lr; }

    /** Global L2 norm of all gradients (diagnostics / clipping). */
    double gradNorm() const;

    /** Scale all gradients so the global norm is at most max_norm. */
    void clipGradNorm(double max_norm);

  protected:
    std::vector<ParamRef> _params;
    double _lr = 1e-3;
};

/** SGD with classical momentum. */
class SgdOptimizer : public Optimizer
{
  public:
    SgdOptimizer(std::vector<ParamRef> params, double lr,
                 double momentum = 0.0, double weight_decay = 0.0);

    void step() override;

  private:
    double _momentum;
    double _weightDecay;
    std::vector<Tensor> _velocity;
};

/** Adam (Kingma & Ba) with bias correction. */
class AdamOptimizer : public Optimizer
{
  public:
    AdamOptimizer(std::vector<ParamRef> params, double lr,
                  double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8);

    void step() override;

  private:
    double _beta1;
    double _beta2;
    double _eps;
    int64_t _t = 0;
    std::vector<Tensor> _m;
    std::vector<Tensor> _v;
};

} // namespace h2o::nn

#endif // H2O_NN_OPTIMIZER_H
