/**
 * @file
 * Matrix kernels for the training substrate. All kernels operate on
 * row-major Tensors and support the *masked* variants the weight-sharing
 * super-network needs: a sub-network with active dimensions (k_act, n_act)
 * of a larger shared weight matrix touches only the upper-left sub-matrix,
 * exactly as described for the DLRM super-network (Figure 3, mask (3)).
 *
 * Two implementations back every kernel:
 *
 *  - `Tiled` (default): register-tiled, cache-blocked loops with
 *    `omp simd` vectorization hints. The blocking schedule is fixed at
 *    compile time and never depends on runtime state, so results are
 *    deterministic run-to-run and bit-identical at any `--threads`
 *    setting (kernels are single-threaded; parallelism lives in
 *    `h2o::exec`, whose ordered aggregation preserves FP order).
 *  - `Reference`: the original scalar loops, kept for A/B testing and as
 *    the correctness oracle in `tests/test_nn_kernels.cc`.
 *
 * Select with setKernelImpl() or the H2O_KERNELS environment variable
 * ("tiled" / "reference", read once at startup). Tiled and reference
 * results agree to ~1e-5 relative (FP summation order differs), and each
 * implementation individually is exactly deterministic.
 */

#ifndef H2O_NN_OPS_H
#define H2O_NN_OPS_H

#include <cstddef>
#include <string>

#include "nn/tensor.h"

namespace h2o::nn {

/** Kernel implementation selector. */
enum class KernelImpl
{
    Tiled,     ///< register-tiled + vectorized (default)
    Reference, ///< original scalar loops (A/B oracle)
};

/** Select the implementation used by the dispatching kernels below. */
void setKernelImpl(KernelImpl impl);

/** The currently selected implementation. */
KernelImpl kernelImpl();

/** Parse "tiled" / "reference"; fatal on unknown names. */
KernelImpl kernelImplFromName(const std::string &name);

/** Human-readable implementation name. */
const char *kernelImplName(KernelImpl impl);

/**
 * C[m,n] = (or +=) A[m,k] * B[k,n], restricted to the active sub-ranges
 * m x k_act of A and k_act x n_act of B. C must be m x n with n >= n_act;
 * only columns [0, n_act) of C are written.
 *
 * @param accumulate When false, the active region of C is overwritten.
 */
void matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                  size_t n_act, bool accumulate = false);

/**
 * C[k,n] += A^T[k,m] * B[m,n] over active sub-ranges: used for weight
 * gradients dW = X^T * dY. Only the k_act x n_act region of C is updated.
 * Always accumulates: weight gradients sum across micro-batches.
 */
void matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t k_act, size_t n_act);

/**
 * C[m,k] = (or +=) A[m,n] * B^T[n,k] over active sub-ranges: used for
 * input gradients dX = dY * W^T. Only the first k_act columns of C are
 * written.
 *
 * @param accumulate When false (default), the active region of C is
 *        overwritten — callers no longer need to pre-zero C. Pass true
 *        for the historical read-modify-write behavior.
 */
void matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t n_act, size_t k_act,
                        bool accumulate = false);

/** Full (unmasked) C = A * B. Shapes must conform exactly. */
void matmul(const Tensor &a, const Tensor &b, Tensor &c);

/** Add bias vector b[0..n_act) to every row of x (first n_act columns). */
void addBias(Tensor &x, const Tensor &bias, size_t n_act);

/** axpy: y += alpha * x over whole storage. Sizes must match. */
void axpy(float alpha, const Tensor &x, Tensor &y);

/**
 * Reference (scalar) kernels, callable directly regardless of the
 * selected implementation — the A/B oracle for tests and benches.
 */
namespace reference {

void matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                  size_t n_act, bool accumulate = false);
void matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t k_act, size_t n_act);
void matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t n_act, size_t k_act,
                        bool accumulate = false);

} // namespace reference

/** Tiled kernels, callable directly (used by the A/B micro-benchmark). */
namespace tiled {

void matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                  size_t n_act, bool accumulate = false);
void matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t k_act, size_t n_act);
void matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t n_act, size_t k_act,
                        bool accumulate = false);

} // namespace tiled

} // namespace h2o::nn

#endif // H2O_NN_OPS_H
