/**
 * @file
 * Matrix kernels for the training substrate. All kernels operate on
 * row-major Tensors and support the *masked* variants the weight-sharing
 * super-network needs: a sub-network with active dimensions (k_act, n_act)
 * of a larger shared weight matrix touches only the upper-left sub-matrix,
 * exactly as described for the DLRM super-network (Figure 3, mask (3)).
 *
 * Two implementations back every kernel:
 *
 *  - `Tiled` (default): register-tiled, cache-blocked loops with
 *    `omp simd` vectorization hints. The blocking schedule is fixed at
 *    compile time and never depends on runtime state, so results are
 *    deterministic run-to-run and bit-identical at any `--threads`
 *    setting (kernels are single-threaded; parallelism lives in
 *    `h2o::exec`, whose ordered aggregation preserves FP order).
 *  - `Reference`: the original scalar loops, kept for A/B testing and as
 *    the correctness oracle in `tests/test_nn_kernels.cc`.
 *
 * Select with setKernelImpl() or the H2O_KERNELS environment variable
 * ("tiled" / "reference", read once at startup). Tiled and reference
 * results agree to ~1e-5 relative (FP summation order differs), and each
 * implementation individually is exactly deterministic.
 */

#ifndef H2O_NN_OPS_H
#define H2O_NN_OPS_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "nn/tensor.h"

namespace h2o::nn {

/** Kernel implementation selector. */
enum class KernelImpl
{
    Tiled,     ///< register-tiled + vectorized (default)
    Reference, ///< original scalar loops (A/B oracle)
};

/** Select the implementation used by the dispatching kernels below. */
void setKernelImpl(KernelImpl impl);

/** The currently selected implementation. */
KernelImpl kernelImpl();

/** Parse "tiled" / "reference"; fatal on unknown names. */
KernelImpl kernelImplFromName(const std::string &name);

/** Human-readable implementation name. */
const char *kernelImplName(KernelImpl impl);

/**
 * C[m,n] = (or +=) A[m,k] * B[k,n], restricted to the active sub-ranges
 * m x k_act of A and k_act x n_act of B. C must be m x n with n >= n_act;
 * only columns [0, n_act) of C are written.
 *
 * @param accumulate When false, the active region of C is overwritten.
 */
void matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                  size_t n_act, bool accumulate = false);

/**
 * C[k,n] += A^T[k,m] * B[m,n] over active sub-ranges: used for weight
 * gradients dW = X^T * dY. Only the k_act x n_act region of C is updated.
 * Always accumulates: weight gradients sum across micro-batches.
 */
void matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t k_act, size_t n_act);

/**
 * C[m,k] = (or +=) A[m,n] * B^T[n,k] over active sub-ranges: used for
 * input gradients dX = dY * W^T. Only the first k_act columns of C are
 * written.
 *
 * @param accumulate When false (default), the active region of C is
 *        overwritten — callers no longer need to pre-zero C. Pass true
 *        for the historical read-modify-write behavior.
 */
void matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t n_act, size_t k_act,
                        bool accumulate = false);

/**
 * One candidate's row range and active dimensions inside a *packed*
 * multi-candidate tensor (layout [n_cand * batch, max_width]): the
 * grouped kernels below run the corresponding masked kernel on rows
 * [rowBegin, rowBegin + rows) with this group's (kAct, nAct) masks.
 * Per output element the floating-point operation sequence is the one
 * the ungrouped kernel would use on that candidate's own tensor, so a
 * packed pass is bitwise identical to per-candidate calls.
 */
struct MaskGroup
{
    size_t rowBegin = 0; ///< first packed row of this candidate
    size_t rows = 0;     ///< rows (batch size) of this candidate
    size_t kAct = 0;     ///< active contraction width
    size_t nAct = 0;     ///< active output width
};

/**
 * Grouped-mask batched matmul: for every group g,
 * C[rows of g, 0..nAct) = A[rows of g, 0..kAct) * B[0..kAct, 0..nAct),
 * sharing one weight matrix B across all groups. Row ranges must not
 * overlap. Bitwise identical to calling matmulMasked per candidate.
 */
void matmulMaskedGrouped(const Tensor &a, const Tensor &b, Tensor &c,
                         std::span<const MaskGroup> groups,
                         bool accumulate = false);

/** Grouped addBias: rows of each group get bias[0..nAct). */
void addBiasGrouped(Tensor &x, const Tensor &bias,
                    std::span<const MaskGroup> groups);

/**
 * Mean-pooled embedding gather. For each example i (a row of `out`),
 * sums inv[i] * table[rows[p]] over p in [offsets[i], offsets[i+1]),
 * writing columns [0, width) of out; examples with an empty range get a
 * zero row. `rows` holds pre-hashed table row indices; `offsets` has
 * out.rows()+1 entries. Per element the adds run in id-list order from
 * a zero accumulator — both implementations share that order, so tiled
 * and reference results are bitwise identical here.
 */
void embeddingGatherPooled(const Tensor &table,
                           std::span<const uint32_t> rows,
                           std::span<const size_t> offsets,
                           std::span<const float> inv, Tensor &out,
                           size_t width);

/**
 * The matching scatter-add: grad_table[rows[p]][d] += inv[i] *
 * grad_out[i][d] for d < width, ids in list order. Bitwise identical
 * across implementations (the tiled path hoists the inv product per
 * example, which is value-identical).
 */
void embeddingScatterAdd(const Tensor &grad_out,
                         std::span<const uint32_t> rows,
                         std::span<const size_t> offsets,
                         std::span<const float> inv, Tensor &grad_table,
                         size_t width);

/** Full (unmasked) C = A * B. Shapes must conform exactly. */
void matmul(const Tensor &a, const Tensor &b, Tensor &c);

/** Add bias vector b[0..n_act) to every row of x (first n_act columns). */
void addBias(Tensor &x, const Tensor &bias, size_t n_act);

/** axpy: y += alpha * x over whole storage. Sizes must match. */
void axpy(float alpha, const Tensor &x, Tensor &y);

/**
 * Reference (scalar) kernels, callable directly regardless of the
 * selected implementation — the A/B oracle for tests and benches.
 */
namespace reference {

void matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                  size_t n_act, bool accumulate = false);
void matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t k_act, size_t n_act);
void matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t n_act, size_t k_act,
                        bool accumulate = false);
void matmulMaskedGrouped(const Tensor &a, const Tensor &b, Tensor &c,
                         std::span<const MaskGroup> groups,
                         bool accumulate = false);
void embeddingGatherPooled(const Tensor &table,
                           std::span<const uint32_t> rows,
                           std::span<const size_t> offsets,
                           std::span<const float> inv, Tensor &out,
                           size_t width);
void embeddingScatterAdd(const Tensor &grad_out,
                         std::span<const uint32_t> rows,
                         std::span<const size_t> offsets,
                         std::span<const float> inv, Tensor &grad_table,
                         size_t width);

} // namespace reference

/** Tiled kernels, callable directly (used by the A/B micro-benchmark). */
namespace tiled {

void matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                  size_t n_act, bool accumulate = false);
void matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t k_act, size_t n_act);
void matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t n_act, size_t k_act,
                        bool accumulate = false);
void matmulMaskedGrouped(const Tensor &a, const Tensor &b, Tensor &c,
                         std::span<const MaskGroup> groups,
                         bool accumulate = false);
void embeddingGatherPooled(const Tensor &table,
                           std::span<const uint32_t> rows,
                           std::span<const size_t> offsets,
                           std::span<const float> inv, Tensor &out,
                           size_t width);
void embeddingScatterAdd(const Tensor &grad_out,
                         std::span<const uint32_t> rows,
                         std::span<const size_t> offsets,
                         std::span<const float> inv, Tensor &grad_table,
                         size_t width);

} // namespace tiled

} // namespace h2o::nn

#endif // H2O_NN_OPS_H
