/**
 * @file
 * Matrix kernels for the training substrate. All kernels operate on
 * row-major Tensors and support the *masked* variants the weight-sharing
 * super-network needs: a sub-network with active dimensions (k_act, n_act)
 * of a larger shared weight matrix touches only the upper-left sub-matrix,
 * exactly as described for the DLRM super-network (Figure 3, mask (3)).
 */

#ifndef H2O_NN_OPS_H
#define H2O_NN_OPS_H

#include <cstddef>

#include "nn/tensor.h"

namespace h2o::nn {

/**
 * C[m,n] += A[m,k] * B[k,n], restricted to the active sub-ranges
 * m x k_act of A and k_act x n_act of B. C must be m x n with n >= n_act;
 * only columns [0, n_act) of C are written.
 *
 * @param accumulate When false, the active region of C is overwritten.
 */
void matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                  size_t n_act, bool accumulate = false);

/**
 * C[k,n] += A^T[k,m] * B[m,n] over active sub-ranges: used for weight
 * gradients dW = X^T * dY. Only the k_act x n_act region of C is updated.
 */
void matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t k_act, size_t n_act);

/**
 * C[m,k] += A[m,n] * B^T[n,k] over active sub-ranges: used for input
 * gradients dX = dY * W^T. Only the first k_act columns of C are written.
 */
void matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c,
                        size_t n_act, size_t k_act);

/** Full (unmasked) C = A * B. Shapes must conform exactly. */
void matmul(const Tensor &a, const Tensor &b, Tensor &c);

/** Add bias vector b[0..n_act) to every row of x (first n_act columns). */
void addBias(Tensor &x, const Tensor &bias, size_t n_act);

/** axpy: y += alpha * x over whole storage. Sizes must match. */
void axpy(float alpha, const Tensor &x, Tensor &y);

} // namespace h2o::nn

#endif // H2O_NN_OPS_H
