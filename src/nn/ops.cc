#include "nn/ops.h"

#include "common/logging.h"

namespace h2o::nn {

void
matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
             size_t n_act, bool accumulate)
{
    size_t m = a.rows();
    h2o_assert(k_act <= a.cols() && k_act <= b.rows(),
               "matmulMasked: k_act ", k_act, " exceeds A cols ", a.cols(),
               " or B rows ", b.rows());
    h2o_assert(n_act <= b.cols() && n_act <= c.cols(),
               "matmulMasked: n_act ", n_act, " exceeds B/C cols");
    h2o_assert(c.rows() == m, "matmulMasked: C rows mismatch");

    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t ka = a.cols(), nb = b.cols(), nc = c.cols();

    for (size_t i = 0; i < m; ++i) {
        float *crow = cd + i * nc;
        if (!accumulate) {
            for (size_t j = 0; j < n_act; ++j)
                crow[j] = 0.0f;
        }
        const float *arow = ad + i * ka;
        // ikj loop order: stream through B rows for cache locality.
        for (size_t k = 0; k < k_act; ++k) {
            float av = arow[k];
            if (av == 0.0f)
                continue;
            const float *brow = bd + k * nb;
            for (size_t j = 0; j < n_act; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                   size_t n_act)
{
    size_t m = a.rows();
    h2o_assert(b.rows() == m, "matmulTransAMasked: batch dim mismatch");
    h2o_assert(k_act <= a.cols() && k_act <= c.rows(),
               "matmulTransAMasked: k_act out of range");
    h2o_assert(n_act <= b.cols() && n_act <= c.cols(),
               "matmulTransAMasked: n_act out of range");

    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t ka = a.cols(), nb = b.cols(), nc = c.cols();

    for (size_t i = 0; i < m; ++i) {
        const float *arow = ad + i * ka;
        const float *brow = bd + i * nb;
        for (size_t k = 0; k < k_act; ++k) {
            float av = arow[k];
            if (av == 0.0f)
                continue;
            float *crow = cd + k * nc;
            for (size_t j = 0; j < n_act; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t n_act,
                   size_t k_act)
{
    size_t m = a.rows();
    h2o_assert(n_act <= a.cols() && n_act <= b.cols(),
               "matmulTransBMasked: n_act out of range");
    h2o_assert(k_act <= b.rows() && k_act <= c.cols(),
               "matmulTransBMasked: k_act out of range");
    h2o_assert(c.rows() == m, "matmulTransBMasked: C rows mismatch");

    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t na = a.cols(), nb = b.cols(), kc = c.cols();

    for (size_t i = 0; i < m; ++i) {
        const float *arow = ad + i * na;
        float *crow = cd + i * kc;
        for (size_t k = 0; k < k_act; ++k) {
            const float *brow = bd + k * nb;
            float acc = 0.0f;
            for (size_t j = 0; j < n_act; ++j)
                acc += arow[j] * brow[j];
            crow[k] += acc;
        }
    }
}

void
matmul(const Tensor &a, const Tensor &b, Tensor &c)
{
    h2o_assert(a.cols() == b.rows(), "matmul shape mismatch: ", a.shapeStr(),
               " x ", b.shapeStr());
    h2o_assert(c.rows() == a.rows() && c.cols() == b.cols(),
               "matmul output shape mismatch");
    matmulMasked(a, b, c, a.cols(), b.cols(), false);
}

void
addBias(Tensor &x, const Tensor &bias, size_t n_act)
{
    h2o_assert(n_act <= bias.size() && n_act <= x.cols(),
               "addBias: n_act out of range");
    float *xd = x.data().data();
    const float *bd = bias.data().data();
    size_t n = x.cols();
    for (size_t i = 0; i < x.rows(); ++i) {
        float *row = xd + i * n;
        for (size_t j = 0; j < n_act; ++j)
            row[j] += bd[j];
    }
}

void
axpy(float alpha, const Tensor &x, Tensor &y)
{
    h2o_assert(x.size() == y.size(), "axpy size mismatch");
    const float *xd = x.data().data();
    float *yd = y.data().data();
    for (size_t i = 0; i < x.size(); ++i)
        yd[i] += alpha * xd[i];
}

} // namespace h2o::nn
