#include "nn/ops.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"

namespace h2o::nn {

namespace {

/** Shape checks shared by every implementation of each kernel. */
void
checkMatmulMasked(const Tensor &a, const Tensor &b, const Tensor &c,
                  size_t k_act, size_t n_act)
{
    h2o_assert(k_act <= a.cols() && k_act <= b.rows(),
               "matmulMasked: k_act ", k_act, " exceeds A cols ", a.cols(),
               " or B rows ", b.rows());
    h2o_assert(n_act <= b.cols() && n_act <= c.cols(),
               "matmulMasked: n_act ", n_act, " exceeds B/C cols");
    h2o_assert(c.rows() == a.rows(), "matmulMasked: C rows mismatch");
}

void
checkMatmulTransAMasked(const Tensor &a, const Tensor &b, const Tensor &c,
                        size_t k_act, size_t n_act)
{
    h2o_assert(b.rows() == a.rows(),
               "matmulTransAMasked: batch dim mismatch");
    h2o_assert(k_act <= a.cols() && k_act <= c.rows(),
               "matmulTransAMasked: k_act out of range");
    h2o_assert(n_act <= b.cols() && n_act <= c.cols(),
               "matmulTransAMasked: n_act out of range");
}

void
checkMatmulTransBMasked(const Tensor &a, const Tensor &b, const Tensor &c,
                        size_t n_act, size_t k_act)
{
    h2o_assert(n_act <= a.cols() && n_act <= b.cols(),
               "matmulTransBMasked: n_act out of range");
    h2o_assert(k_act <= b.rows() && k_act <= c.cols(),
               "matmulTransBMasked: k_act out of range");
    h2o_assert(c.rows() == a.rows(), "matmulTransBMasked: C rows mismatch");
}

void
checkGrouped(const Tensor &a, const Tensor &b, const Tensor &c,
             std::span<const MaskGroup> groups)
{
    h2o_assert(c.rows() == a.rows(), "matmulMaskedGrouped: C rows mismatch");
    for (const MaskGroup &g : groups) {
        h2o_assert(g.rowBegin + g.rows <= a.rows(),
                   "matmulMaskedGrouped: group rows [", g.rowBegin, ", ",
                   g.rowBegin + g.rows, ") exceed A rows ", a.rows());
        h2o_assert(g.kAct <= a.cols() && g.kAct <= b.rows(),
                   "matmulMaskedGrouped: kAct ", g.kAct, " out of range");
        h2o_assert(g.nAct <= b.cols() && g.nAct <= c.cols(),
                   "matmulMaskedGrouped: nAct ", g.nAct, " out of range");
    }
}

void
checkEmbedding(const Tensor &table_like, std::span<const uint32_t> rows,
               std::span<const size_t> offsets, std::span<const float> inv,
               size_t batch, size_t batch_width, size_t width)
{
    h2o_assert(offsets.size() == batch + 1,
               "embedding kernel: offsets size ", offsets.size(),
               " != batch + 1 (", batch + 1, ")");
    h2o_assert(inv.size() == batch, "embedding kernel: inv size mismatch");
    h2o_assert(offsets.empty() || offsets.back() <= rows.size(),
               "embedding kernel: offsets exceed rows");
    h2o_assert(width <= table_like.cols(),
               "embedding kernel: width ", width, " exceeds table cols ",
               table_like.cols());
    h2o_assert(width <= batch_width,
               "embedding kernel: width exceeds batch tensor cols");
}

std::atomic<KernelImpl> g_impl{KernelImpl::Tiled};

/** One-time H2O_KERNELS env override, applied before first dispatch. */
bool
applyEnvOverride()
{
    if (const char *env = std::getenv("H2O_KERNELS"))
        g_impl.store(kernelImplFromName(env), std::memory_order_relaxed);
    return true;
}

} // namespace

void
setKernelImpl(KernelImpl impl)
{
    g_impl.store(impl, std::memory_order_relaxed);
}

KernelImpl
kernelImpl()
{
    static bool env_applied = applyEnvOverride();
    (void)env_applied;
    return g_impl.load(std::memory_order_relaxed);
}

KernelImpl
kernelImplFromName(const std::string &name)
{
    if (name == "tiled")
        return KernelImpl::Tiled;
    if (name == "reference")
        return KernelImpl::Reference;
    h2o_fatal("unknown kernel impl '", name, "' (want tiled|reference)");
}

const char *
kernelImplName(KernelImpl impl)
{
    return impl == KernelImpl::Tiled ? "tiled" : "reference";
}

// ---------------------------------------------------------------------------
// Reference kernels: the original scalar loops, kept as the A/B oracle.
// ---------------------------------------------------------------------------

namespace reference {

namespace {

/** The matmulMasked loops over an explicit row range — shared by the
 *  plain and grouped entry points so the two are bitwise identical. */
void
matmulMaskedRows(const Tensor &a, const Tensor &b, Tensor &c, size_t row0,
                 size_t rows, size_t k_act, size_t n_act, bool accumulate)
{
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t ka = a.cols(), nb = b.cols(), nc = c.cols();

    for (size_t i = row0; i < row0 + rows; ++i) {
        float *crow = cd + i * nc;
        if (!accumulate) {
            for (size_t j = 0; j < n_act; ++j)
                crow[j] = 0.0f;
        }
        const float *arow = ad + i * ka;
        // ikj loop order: stream through B rows for cache locality.
        for (size_t k = 0; k < k_act; ++k) {
            float av = arow[k];
            if (av == 0.0f)
                continue;
            const float *brow = bd + k * nb;
            for (size_t j = 0; j < n_act; ++j)
                crow[j] += av * brow[j];
        }
    }
}

} // namespace

void
matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
             size_t n_act, bool accumulate)
{
    checkMatmulMasked(a, b, c, k_act, n_act);
    matmulMaskedRows(a, b, c, 0, a.rows(), k_act, n_act, accumulate);
}

void
matmulMaskedGrouped(const Tensor &a, const Tensor &b, Tensor &c,
                    std::span<const MaskGroup> groups, bool accumulate)
{
    checkGrouped(a, b, c, groups);
    for (const MaskGroup &g : groups)
        matmulMaskedRows(a, b, c, g.rowBegin, g.rows, g.kAct, g.nAct,
                         accumulate);
}

void
embeddingGatherPooled(const Tensor &table, std::span<const uint32_t> rows,
                      std::span<const size_t> offsets,
                      std::span<const float> inv, Tensor &out, size_t width)
{
    checkEmbedding(table, rows, offsets, inv, out.rows(), out.cols(), width);
    const float *td = table.data().data();
    float *od = out.data().data();
    size_t tw = table.cols(), ow = out.cols();
    for (size_t i = 0; i < out.rows(); ++i) {
        float *dst = od + i * ow;
        for (size_t d = 0; d < width; ++d)
            dst[d] = 0.0f;
        float w = inv[i];
        for (size_t p = offsets[i]; p < offsets[i + 1]; ++p) {
            const float *src = td + rows[p] * tw;
            for (size_t d = 0; d < width; ++d)
                dst[d] += w * src[d];
        }
    }
}

void
embeddingScatterAdd(const Tensor &grad_out, std::span<const uint32_t> rows,
                    std::span<const size_t> offsets,
                    std::span<const float> inv, Tensor &grad_table,
                    size_t width)
{
    checkEmbedding(grad_table, rows, offsets, inv, grad_out.rows(),
                   grad_out.cols(), width);
    const float *gd = grad_out.data().data();
    float *td = grad_table.data().data();
    size_t tw = grad_table.cols(), gw = grad_out.cols();
    for (size_t i = 0; i < grad_out.rows(); ++i) {
        const float *src = gd + i * gw;
        float w = inv[i];
        for (size_t p = offsets[i]; p < offsets[i + 1]; ++p) {
            float *dst = td + rows[p] * tw;
            for (size_t d = 0; d < width; ++d)
                dst[d] += w * src[d];
        }
    }
}

void
matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                   size_t n_act)
{
    checkMatmulTransAMasked(a, b, c, k_act, n_act);
    size_t m = a.rows();
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t ka = a.cols(), nb = b.cols(), nc = c.cols();

    for (size_t i = 0; i < m; ++i) {
        const float *arow = ad + i * ka;
        const float *brow = bd + i * nb;
        for (size_t k = 0; k < k_act; ++k) {
            float av = arow[k];
            if (av == 0.0f)
                continue;
            float *crow = cd + k * nc;
            for (size_t j = 0; j < n_act; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t n_act,
                   size_t k_act, bool accumulate)
{
    checkMatmulTransBMasked(a, b, c, n_act, k_act);
    size_t m = a.rows();
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t na = a.cols(), nb = b.cols(), kc = c.cols();

    for (size_t i = 0; i < m; ++i) {
        const float *arow = ad + i * na;
        float *crow = cd + i * kc;
        for (size_t k = 0; k < k_act; ++k) {
            const float *brow = bd + k * nb;
            float acc = 0.0f;
            for (size_t j = 0; j < n_act; ++j)
                acc += arow[j] * brow[j];
            if (accumulate)
                crow[k] += acc;
            else
                crow[k] = acc;
        }
    }
}

} // namespace reference

// ---------------------------------------------------------------------------
// Tiled kernels.
//
// The blocking schedule is a compile-time constant (kRowTile rows of the
// left operand per micro-kernel, kColTile output columns per block, k
// strictly ascending inside each block), so for a given shape every run —
// at any thread count — performs the identical sequence of FP operations
// per output element. That is the determinism contract: bit-identical
// repeats for the tiled impl, ~1e-5 agreement vs the reference impl
// (whose summation order differs).
// ---------------------------------------------------------------------------

namespace tiled {

namespace {

/** Rows of the left operand processed together by a micro-kernel. */
constexpr size_t kRowTile = 4;
/** Output columns per register block; 64 floats = one cache-resident
 *  strip that still leaves room for kRowTile accumulator rows in L1. */
constexpr size_t kColTile = 64;

/** The tiled matmulMasked loops over an explicit row range. Row tiling
 *  restarts at row0, but per output element the contraction is k
 *  ascending regardless of tile position — so the grouped entry point
 *  is bitwise identical to per-candidate calls. */
void
matmulMaskedRows(const Tensor &a, const Tensor &b, Tensor &c, size_t row0,
                 size_t rows, size_t k_act, size_t n_act, bool accumulate)
{
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t ka = a.cols(), nb = b.cols(), nc = c.cols();

    for (size_t i0 = row0; i0 < row0 + rows; i0 += kRowTile) {
        size_t rt = std::min(kRowTile, row0 + rows - i0);
        for (size_t j0 = 0; j0 < n_act; j0 += kColTile) {
            size_t jt = std::min(kColTile, n_act - j0);
            float acc[kRowTile][kColTile];
            for (size_t r = 0; r < rt; ++r) {
                float *crow = cd + (i0 + r) * nc + j0;
                if (accumulate) {
                    for (size_t j = 0; j < jt; ++j)
                        acc[r][j] = crow[j];
                } else {
                    for (size_t j = 0; j < jt; ++j)
                        acc[r][j] = 0.0f;
                }
            }
            // k ascending for every C element: fixed summation order.
            for (size_t k = 0; k < k_act; ++k) {
                const float *brow = bd + k * nb + j0;
                for (size_t r = 0; r < rt; ++r) {
                    float av = ad[(i0 + r) * ka + k];
                    float *arow = acc[r];
#pragma omp simd
                    for (size_t j = 0; j < jt; ++j)
                        arow[j] += av * brow[j];
                }
            }
            for (size_t r = 0; r < rt; ++r) {
                float *crow = cd + (i0 + r) * nc + j0;
                for (size_t j = 0; j < jt; ++j)
                    crow[j] = acc[r][j];
            }
        }
    }
}

} // namespace

void
matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
             size_t n_act, bool accumulate)
{
    checkMatmulMasked(a, b, c, k_act, n_act);
    matmulMaskedRows(a, b, c, 0, a.rows(), k_act, n_act, accumulate);
}

void
matmulMaskedGrouped(const Tensor &a, const Tensor &b, Tensor &c,
                    std::span<const MaskGroup> groups, bool accumulate)
{
    checkGrouped(a, b, c, groups);
    for (const MaskGroup &g : groups)
        matmulMaskedRows(a, b, c, g.rowBegin, g.rows, g.kAct, g.nAct,
                         accumulate);
}

void
embeddingGatherPooled(const Tensor &table, std::span<const uint32_t> rows,
                      std::span<const size_t> offsets,
                      std::span<const float> inv, Tensor &out, size_t width)
{
    checkEmbedding(table, rows, offsets, inv, out.rows(), out.cols(), width);
    const float *td = table.data().data();
    float *od = out.data().data();
    size_t tw = table.cols(), ow = out.cols();
    // Blocked gather: the pooled row accumulates in registers per
    // kColTile strip (one store per strip instead of a read-modify-write
    // per id). Per element the adds still run in id-list order from a
    // zero accumulator — bitwise identical to the reference kernel.
    for (size_t i = 0; i < out.rows(); ++i) {
        float *dst = od + i * ow;
        float w = inv[i];
        size_t p0 = offsets[i], p1 = offsets[i + 1];
        for (size_t d0 = 0; d0 < width; d0 += kColTile) {
            size_t dt = std::min(kColTile, width - d0);
            float acc[kColTile];
            for (size_t j = 0; j < dt; ++j)
                acc[j] = 0.0f;
            for (size_t p = p0; p < p1; ++p) {
                const float *src = td + rows[p] * tw + d0;
#pragma omp simd
                for (size_t j = 0; j < dt; ++j)
                    acc[j] += w * src[j];
            }
            for (size_t j = 0; j < dt; ++j)
                dst[d0 + j] = acc[j];
        }
    }
}

void
embeddingScatterAdd(const Tensor &grad_out, std::span<const uint32_t> rows,
                    std::span<const size_t> offsets,
                    std::span<const float> inv, Tensor &grad_table,
                    size_t width)
{
    checkEmbedding(grad_table, rows, offsets, inv, grad_out.rows(),
                   grad_out.cols(), width);
    const float *gd = grad_out.data().data();
    float *td = grad_table.data().data();
    size_t tw = grad_table.cols(), gw = grad_out.cols();
    // Fused scatter: the example's scaled gradient inv * g is staged
    // once per strip (hoisting the multiply out of the id loop), then
    // added to each touched table row with simd. inv * g[d] is the same
    // IEEE product the reference computes per id, and adds run in
    // id-list order — bitwise identical results.
    for (size_t i = 0; i < grad_out.rows(); ++i) {
        const float *src = gd + i * gw;
        float w = inv[i];
        size_t p0 = offsets[i], p1 = offsets[i + 1];
        if (p0 == p1)
            continue;
        for (size_t d0 = 0; d0 < width; d0 += kColTile) {
            size_t dt = std::min(kColTile, width - d0);
            float tmp[kColTile];
#pragma omp simd
            for (size_t j = 0; j < dt; ++j)
                tmp[j] = w * src[d0 + j];
            for (size_t p = p0; p < p1; ++p) {
                float *dst = td + rows[p] * tw + d0;
#pragma omp simd
                for (size_t j = 0; j < dt; ++j)
                    dst[j] += tmp[j];
            }
        }
    }
}

void
matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                   size_t n_act)
{
    checkMatmulTransAMasked(a, b, c, k_act, n_act);
    size_t m = a.rows();
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t ka = a.cols(), nb = b.cols(), nc = c.cols();

    // C[k, j] += sum_i A[i, k] * B[i, j]; block (k, j) output tiles and
    // stream the batch dimension i through each tile, i ascending — the
    // same per-element order as the reference kernel.
    for (size_t k0 = 0; k0 < k_act; k0 += kRowTile) {
        size_t kt = std::min(kRowTile, k_act - k0);
        for (size_t j0 = 0; j0 < n_act; j0 += kColTile) {
            size_t jt = std::min(kColTile, n_act - j0);
            float acc[kRowTile][kColTile];
            for (size_t r = 0; r < kt; ++r) {
                const float *crow = cd + (k0 + r) * nc + j0;
                for (size_t j = 0; j < jt; ++j)
                    acc[r][j] = crow[j];
            }
            for (size_t i = 0; i < m; ++i) {
                const float *arow = ad + i * ka + k0;
                const float *brow = bd + i * nb + j0;
                for (size_t r = 0; r < kt; ++r) {
                    float av = arow[r];
                    float *accr = acc[r];
#pragma omp simd
                    for (size_t j = 0; j < jt; ++j)
                        accr[j] += av * brow[j];
                }
            }
            for (size_t r = 0; r < kt; ++r) {
                float *crow = cd + (k0 + r) * nc + j0;
                for (size_t j = 0; j < jt; ++j)
                    crow[j] = acc[r][j];
            }
        }
    }
}

void
matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t n_act,
                   size_t k_act, bool accumulate)
{
    checkMatmulTransBMasked(a, b, c, n_act, k_act);
    size_t m = a.rows();
    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *cd = c.data().data();
    size_t na = a.cols(), nb = b.cols(), kc = c.cols();

    // C[i, k] = dot(A row i, B row k): process kRowTile A-rows per pass so
    // each B row is loaded once per pass, with independent simd
    // reductions per dot product (fixed contraction order per element).
    for (size_t i0 = 0; i0 < m; i0 += kRowTile) {
        size_t rt = std::min(kRowTile, m - i0);
        if (rt == kRowTile) {
            const float *a0 = ad + (i0 + 0) * na;
            const float *a1 = ad + (i0 + 1) * na;
            const float *a2 = ad + (i0 + 2) * na;
            const float *a3 = ad + (i0 + 3) * na;
            for (size_t k = 0; k < k_act; ++k) {
                const float *brow = bd + k * nb;
                float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
#pragma omp simd reduction(+ : s0, s1, s2, s3)
                for (size_t j = 0; j < n_act; ++j) {
                    float bv = brow[j];
                    s0 += a0[j] * bv;
                    s1 += a1[j] * bv;
                    s2 += a2[j] * bv;
                    s3 += a3[j] * bv;
                }
                float *col = cd + i0 * kc + k;
                if (accumulate) {
                    col[0 * kc] += s0;
                    col[1 * kc] += s1;
                    col[2 * kc] += s2;
                    col[3 * kc] += s3;
                } else {
                    col[0 * kc] = s0;
                    col[1 * kc] = s1;
                    col[2 * kc] = s2;
                    col[3 * kc] = s3;
                }
            }
        } else {
            for (size_t r = 0; r < rt; ++r) {
                const float *arow = ad + (i0 + r) * na;
                float *crow = cd + (i0 + r) * kc;
                for (size_t k = 0; k < k_act; ++k) {
                    const float *brow = bd + k * nb;
                    float s = 0.0f;
#pragma omp simd reduction(+ : s)
                    for (size_t j = 0; j < n_act; ++j)
                        s += arow[j] * brow[j];
                    if (accumulate)
                        crow[k] += s;
                    else
                        crow[k] = s;
                }
            }
        }
    }
}

} // namespace tiled

// ---------------------------------------------------------------------------
// Dispatchers.
// ---------------------------------------------------------------------------

void
matmulMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
             size_t n_act, bool accumulate)
{
    if (kernelImpl() == KernelImpl::Tiled)
        tiled::matmulMasked(a, b, c, k_act, n_act, accumulate);
    else
        reference::matmulMasked(a, b, c, k_act, n_act, accumulate);
}

void
matmulTransAMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t k_act,
                   size_t n_act)
{
    if (kernelImpl() == KernelImpl::Tiled)
        tiled::matmulTransAMasked(a, b, c, k_act, n_act);
    else
        reference::matmulTransAMasked(a, b, c, k_act, n_act);
}

void
matmulTransBMasked(const Tensor &a, const Tensor &b, Tensor &c, size_t n_act,
                   size_t k_act, bool accumulate)
{
    if (kernelImpl() == KernelImpl::Tiled)
        tiled::matmulTransBMasked(a, b, c, n_act, k_act, accumulate);
    else
        reference::matmulTransBMasked(a, b, c, n_act, k_act, accumulate);
}

void
matmulMaskedGrouped(const Tensor &a, const Tensor &b, Tensor &c,
                    std::span<const MaskGroup> groups, bool accumulate)
{
    if (kernelImpl() == KernelImpl::Tiled)
        tiled::matmulMaskedGrouped(a, b, c, groups, accumulate);
    else
        reference::matmulMaskedGrouped(a, b, c, groups, accumulate);
}

void
embeddingGatherPooled(const Tensor &table, std::span<const uint32_t> rows,
                      std::span<const size_t> offsets,
                      std::span<const float> inv, Tensor &out, size_t width)
{
    if (kernelImpl() == KernelImpl::Tiled)
        tiled::embeddingGatherPooled(table, rows, offsets, inv, out, width);
    else
        reference::embeddingGatherPooled(table, rows, offsets, inv, out,
                                         width);
}

void
embeddingScatterAdd(const Tensor &grad_out, std::span<const uint32_t> rows,
                    std::span<const size_t> offsets,
                    std::span<const float> inv, Tensor &grad_table,
                    size_t width)
{
    if (kernelImpl() == KernelImpl::Tiled)
        tiled::embeddingScatterAdd(grad_out, rows, offsets, inv, grad_table,
                                   width);
    else
        reference::embeddingScatterAdd(grad_out, rows, offsets, inv,
                                       grad_table, width);
}

void
matmul(const Tensor &a, const Tensor &b, Tensor &c)
{
    h2o_assert(a.cols() == b.rows(), "matmul shape mismatch: ", a.shapeStr(),
               " x ", b.shapeStr());
    h2o_assert(c.rows() == a.rows() && c.cols() == b.cols(),
               "matmul output shape mismatch");
    matmulMasked(a, b, c, a.cols(), b.cols(), false);
}

void
addBias(Tensor &x, const Tensor &bias, size_t n_act)
{
    h2o_assert(n_act <= bias.size() && n_act <= x.cols(),
               "addBias: n_act out of range");
    float *xd = x.data().data();
    const float *bd = bias.data().data();
    size_t n = x.cols();
    for (size_t i = 0; i < x.rows(); ++i) {
        float *row = xd + i * n;
#pragma omp simd
        for (size_t j = 0; j < n_act; ++j)
            row[j] += bd[j];
    }
}

void
addBiasGrouped(Tensor &x, const Tensor &bias,
               std::span<const MaskGroup> groups)
{
    float *xd = x.data().data();
    const float *bd = bias.data().data();
    size_t n = x.cols();
    for (const MaskGroup &g : groups) {
        h2o_assert(g.rowBegin + g.rows <= x.rows() && g.nAct <= n &&
                       g.nAct <= bias.size(),
                   "addBiasGrouped: group out of range");
        for (size_t i = g.rowBegin; i < g.rowBegin + g.rows; ++i) {
            float *row = xd + i * n;
#pragma omp simd
            for (size_t j = 0; j < g.nAct; ++j)
                row[j] += bd[j];
        }
    }
}

void
axpy(float alpha, const Tensor &x, Tensor &y)
{
    h2o_assert(x.size() == y.size(), "axpy size mismatch");
    const float *xd = x.data().data();
    float *yd = y.data().data();
    size_t n = x.size();
#pragma omp simd
    for (size_t i = 0; i < n; ++i)
        yd[i] += alpha * xd[i];
}

} // namespace h2o::nn
