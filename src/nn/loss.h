/**
 * @file
 * Loss functions: binary cross-entropy with logits (DLRM click prediction),
 * mean squared error (performance-model regression), and helpers for
 * evaluation metrics (log-loss, AUC).
 */

#ifndef H2O_NN_LOSS_H
#define H2O_NN_LOSS_H

#include <vector>

#include "nn/tensor.h"

namespace h2o::nn {

/** Value and gradient of a loss over a batch. */
struct LossResult
{
    double value;  ///< mean loss over the batch
    Tensor grad;   ///< dL/dlogits, same shape as logits, already / batch
};

/**
 * Binary cross-entropy with logits. logits and labels are [batch, 1]
 * (or [batch, k] for multi-task), labels in {0, 1}.
 */
LossResult bceWithLogits(const Tensor &logits, const Tensor &labels);

/** Mean squared error. pred and target must be the same shape. */
LossResult mseLoss(const Tensor &pred, const Tensor &target);

/** Huber (smooth-L1) loss with threshold delta. */
LossResult huberLoss(const Tensor &pred, const Tensor &target, double delta);

/** Mean log-loss (same value as BCE) for evaluation without gradients. */
double logLoss(const std::vector<double> &probs,
               const std::vector<double> &labels);

/**
 * Area under the ROC curve via the rank statistic. Labels in {0, 1}.
 * Returns 0.5 when either class is absent.
 */
double auc(const std::vector<double> &scores,
           const std::vector<double> &labels);

/** Numerically-stable logistic function. */
double sigmoid(double x);

} // namespace h2o::nn

#endif // H2O_NN_LOSS_H
