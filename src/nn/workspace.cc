#include "nn/workspace.h"

namespace h2o::nn {

Tensor &
Workspace::scratch(const std::string &key, size_t rows, size_t cols)
{
    auto &slot = _buffers[key];
    if (!slot)
        slot = std::make_unique<Tensor>();
    slot->resizeUninitialized(rows, cols);
    return *slot;
}

Tensor &
Workspace::zeroed(const std::string &key, size_t rows, size_t cols)
{
    Tensor &t = scratch(key, rows, cols);
    t.zero();
    return t;
}

Workspace &
Workspace::forThread()
{
    thread_local Workspace ws;
    return ws;
}

} // namespace h2o::nn
