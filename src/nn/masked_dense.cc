#include "nn/masked_dense.h"

#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "nn/ops.h"

namespace h2o::nn {

MaskedDenseLayer::MaskedDenseLayer(size_t max_in, size_t max_out,
                                   Activation act, common::Rng &rng)
    : _maxIn(max_in), _maxOut(max_out), _activeIn(max_in),
      _activeOut(max_out), _act(act), _w(max_in, max_out),
      _b(std::vector<size_t>{max_out}), _wGrad(max_in, max_out),
      _bGrad(std::vector<size_t>{max_out})
{
    h2o_assert(max_in > 0 && max_out > 0, "MaskedDense with zero max dims");
    _w.heInit(rng, max_in);
}

void
MaskedDenseLayer::setActive(size_t in, size_t out)
{
    h2o_assert(in > 0 && in <= _maxIn, "active in ", in,
               " out of range (max ", _maxIn, ")");
    h2o_assert(out > 0 && out <= _maxOut, "active out ", out,
               " out of range (max ", _maxOut, ")");
    _activeIn = in;
    _activeOut = out;
}

const Tensor &
MaskedDenseLayer::forward(const Tensor &input)
{
    h2o_assert(input.cols() >= _activeIn,
               "MaskedDense input width ", input.cols(), " < active in ",
               _activeIn);
    _input = _training ? &input : nullptr;
    _preact.resizeUninitialized(input.rows(), _activeOut);
    matmulMasked(input, _w, _preact, _activeIn, _activeOut);
    addBias(_preact, _b, _activeOut);
    if (!_training) {
        // Eval mode: no backward will read the pre-activations, so
        // activate in place (bitwise-identical values; activateTensor
        // allows aliasing) and skip the separate output buffer.
        activateTensor(_act, _preact, _preact);
        return _preact;
    }
    _output.resizeUninitialized(input.rows(), _activeOut);
    activateTensor(_act, _preact, _output);
    return _output;
}

const Tensor &
MaskedDenseLayer::backward(const Tensor &grad_out)
{
    h2o_assert(_input, "MaskedDense backward before forward");
    h2o_assert(grad_out.rows() == _preact.rows() &&
                   grad_out.cols() == _activeOut,
               "MaskedDense backward width mismatch");
    _dpre.resizeUninitialized(grad_out.rows(), _activeOut);
    activateGradTensor(_act, _preact, grad_out, _dpre);

    matmulTransAMasked(*_input, _dpre, _wGrad, _activeIn, _activeOut);
    for (size_t r = 0; r < _dpre.rows(); ++r)
        for (size_t c = 0; c < _activeOut; ++c)
            _bGrad[c] += _dpre.at(r, c);

    _dx.resizeUninitialized(_dpre.rows(), _activeIn);
    matmulTransBMasked(_dpre, _w, _dx, _activeOut, _activeIn);
    return _dx;
}

std::vector<ParamRef>
MaskedDenseLayer::params()
{
    return {{&_w, &_wGrad}, {&_b, &_bGrad}};
}

size_t
MaskedDenseLayer::activeParamCount() const
{
    return _activeIn * _activeOut + _activeOut;
}

std::string
MaskedDenseLayer::describe() const
{
    std::ostringstream oss;
    oss << "MaskedDense(" << _activeIn << "/" << _maxIn << " -> "
        << _activeOut << "/" << _maxOut << ", " << activationName(_act)
        << ")";
    return oss.str();
}

} // namespace h2o::nn
