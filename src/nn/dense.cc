#include "nn/dense.h"

#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "nn/ops.h"

namespace h2o::nn {

DenseLayer::DenseLayer(size_t in, size_t out, Activation act,
                       common::Rng &rng)
    : _in(in), _out(out), _act(act), _w(in, out),
      _b(std::vector<size_t>{out}), _wGrad(in, out),
      _bGrad(std::vector<size_t>{out})
{
    h2o_assert(in > 0 && out > 0, "DenseLayer with zero dimension");
    _w.heInit(rng, in);
}

const Tensor &
DenseLayer::forward(const Tensor &input)
{
    h2o_assert(input.cols() == _in, "DenseLayer input width ", input.cols(),
               " != ", _in);
    _input = &input;
    _preact.resizeUninitialized(input.rows(), _out);
    matmul(input, _w, _preact);
    addBias(_preact, _b, _out);
    _output.resizeUninitialized(input.rows(), _out);
    activateTensor(_act, _preact, _output);
    return _output;
}

const Tensor &
DenseLayer::backward(const Tensor &grad_out)
{
    h2o_assert(_input, "DenseLayer backward before forward");
    h2o_assert(grad_out.rows() == _preact.rows() &&
                   grad_out.cols() == _out,
               "DenseLayer backward shape mismatch");
    // dL/dpre = dL/dy * act'(pre)
    _dpre.resizeUninitialized(grad_out.rows(), _out);
    activateGradTensor(_act, _preact, grad_out, _dpre);

    // dW += X^T dpre ; db += col-sums of dpre ; dX = dpre W^T
    matmulTransAMasked(*_input, _dpre, _wGrad, _in, _out);
    const float *dp = _dpre.data().data();
    float *bg = _bGrad.data().data();
    for (size_t r = 0; r < _dpre.rows(); ++r) {
        const float *row = dp + r * _out;
#pragma omp simd
        for (size_t c = 0; c < _out; ++c)
            bg[c] += row[c];
    }

    if (!_needInputGrad) {
        // First-layer fast path: nothing consumes dX, skip its matmul.
        _dx.resizeUninitialized(0, 0);
        return _dx;
    }
    _dx.resizeUninitialized(_dpre.rows(), _in);
    matmulTransBMasked(_dpre, _w, _dx, _out, _in);
    return _dx;
}

std::vector<ParamRef>
DenseLayer::params()
{
    return {{&_w, &_wGrad}, {&_b, &_bGrad}};
}

size_t
DenseLayer::activeParamCount() const
{
    return _in * _out + _out;
}

std::string
DenseLayer::describe() const
{
    std::ostringstream oss;
    oss << "Dense(" << _in << "->" << _out << ", "
        << activationName(_act) << ")";
    return oss.str();
}

} // namespace h2o::nn
