/**
 * @file
 * A keyed scratch-buffer pool for zero-allocation hot loops.
 *
 * Layers keep their own persistent buffers (resized in place via
 * Tensor::resizeUninitialized), but composite code — the supernet's
 * concat/split staging, bench drivers, the perf-model batch loop — needs
 * loose scratch tensors whose shapes vary call to call. A Workspace hands
 * out named buffers that keep their heap storage across calls: after the
 * first pass at a given shape, a steady-state step performs zero tensor
 * allocations (verify with tensorAllocCount()).
 *
 * Buffers are identified by string key; references returned by scratch()
 * remain valid for the Workspace's lifetime (buffers are never moved or
 * dropped). Not thread-safe — use one Workspace per thread, or the
 * per-thread instance from Workspace::forThread().
 */

#ifndef H2O_NN_WORKSPACE_H
#define H2O_NN_WORKSPACE_H

#include <memory>
#include <string>
#include <unordered_map>

#include "nn/tensor.h"

namespace h2o::nn {

/** Named scratch tensors with sticky heap storage. */
class Workspace
{
  public:
    /**
     * The scratch tensor registered under `key`, reshaped to rows x cols
     * with contents unspecified (write before read). Storage is reused
     * across calls; the reference stays valid for the Workspace's
     * lifetime.
     */
    Tensor &scratch(const std::string &key, size_t rows, size_t cols);

    /** As above, zero-filled (for accumulation targets). */
    Tensor &zeroed(const std::string &key, size_t rows, size_t cols);

    /** Number of distinct buffers allocated so far. */
    size_t buffers() const { return _buffers.size(); }

    /** Release all buffers (references become dangling). */
    void clear() { _buffers.clear(); }

    /** A per-thread Workspace for code without a natural owner. */
    static Workspace &forThread();

  private:
    // unique_ptr gives buffers stable addresses across rehashes.
    std::unordered_map<std::string, std::unique_ptr<Tensor>> _buffers;
};

} // namespace h2o::nn

#endif // H2O_NN_WORKSPACE_H
