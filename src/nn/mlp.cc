#include "nn/mlp.h"

#include "common/logging.h"
#include "common/rng.h"

namespace h2o::nn {

Mlp::Mlp(const std::vector<size_t> &dims, Activation hidden_act,
         Activation output_act, common::Rng &rng)
{
    h2o_assert(dims.size() >= 2, "Mlp needs at least input and output dims");
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        Activation act =
            (i + 2 == dims.size()) ? output_act : hidden_act;
        _layers.push_back(
            std::make_unique<DenseLayer>(dims[i], dims[i + 1], act, rng));
    }
}

const Tensor &
Mlp::forward(const Tensor &input)
{
    const Tensor *x = &input;
    for (auto &layer : _layers)
        x = &layer->forward(*x);
    _lastOutput = x;
    return *x;
}

const Tensor &
Mlp::backward(const Tensor &grad_out)
{
    h2o_assert(_lastOutput, "backward before forward");
    const Tensor *g = &grad_out;
    for (auto it = _layers.rbegin(); it != _layers.rend(); ++it)
        g = &(*it)->backward(*g);
    return *g;
}

std::vector<ParamRef>
Mlp::params()
{
    std::vector<ParamRef> out;
    for (auto &layer : _layers)
        for (auto &p : layer->params())
            out.push_back(p);
    return out;
}

size_t
Mlp::paramCount() const
{
    size_t n = 0;
    for (const auto &layer : _layers)
        n += layer->activeParamCount();
    return n;
}

} // namespace h2o::nn
