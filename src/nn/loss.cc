#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/stats.h"

namespace h2o::nn {

double
sigmoid(double x)
{
    if (x >= 0.0) {
        double e = std::exp(-x);
        return 1.0 / (1.0 + e);
    }
    double e = std::exp(x);
    return e / (1.0 + e);
}

LossResult
bceWithLogits(const Tensor &logits, const Tensor &labels)
{
    h2o_assert(logits.size() == labels.size() && logits.size() > 0,
               "bce shape mismatch");
    LossResult res;
    res.grad.resizeUninitialized(logits.shape()); // every element written
    double inv = 1.0 / static_cast<double>(logits.size());
    double total = 0.0;
    for (size_t i = 0; i < logits.size(); ++i) {
        double z = logits[i];
        double y = labels[i];
        // Stable formulation: max(z,0) - z*y + log(1 + exp(-|z|))
        double loss = std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
        total += loss;
        res.grad[i] = static_cast<float>((sigmoid(z) - y) * inv);
    }
    res.value = total * inv;
    return res;
}

LossResult
mseLoss(const Tensor &pred, const Tensor &target)
{
    h2o_assert(pred.size() == target.size() && pred.size() > 0,
               "mse shape mismatch");
    LossResult res;
    res.grad.resizeUninitialized(pred.shape()); // every element written
    double inv = 1.0 / static_cast<double>(pred.size());
    double total = 0.0;
    for (size_t i = 0; i < pred.size(); ++i) {
        double d = static_cast<double>(pred[i]) - target[i];
        total += d * d;
        res.grad[i] = static_cast<float>(2.0 * d * inv);
    }
    res.value = total * inv;
    return res;
}

LossResult
huberLoss(const Tensor &pred, const Tensor &target, double delta)
{
    h2o_assert(pred.size() == target.size() && pred.size() > 0,
               "huber shape mismatch");
    h2o_assert(delta > 0.0, "huber delta must be positive");
    LossResult res;
    res.grad.resizeUninitialized(pred.shape()); // every element written
    double inv = 1.0 / static_cast<double>(pred.size());
    double total = 0.0;
    for (size_t i = 0; i < pred.size(); ++i) {
        double d = static_cast<double>(pred[i]) - target[i];
        if (std::abs(d) <= delta) {
            total += 0.5 * d * d;
            res.grad[i] = static_cast<float>(d * inv);
        } else {
            total += delta * (std::abs(d) - 0.5 * delta);
            res.grad[i] = static_cast<float>((d > 0 ? delta : -delta) * inv);
        }
    }
    res.value = total * inv;
    return res;
}

double
logLoss(const std::vector<double> &probs, const std::vector<double> &labels)
{
    h2o_assert(probs.size() == labels.size() && !probs.empty(),
               "logLoss size mismatch");
    double total = 0.0;
    for (size_t i = 0; i < probs.size(); ++i) {
        double p = std::clamp(probs[i], 1e-12, 1.0 - 1e-12);
        total += -(labels[i] * std::log(p) +
                   (1.0 - labels[i]) * std::log(1.0 - p));
    }
    return total / static_cast<double>(probs.size());
}

double
auc(const std::vector<double> &scores, const std::vector<double> &labels)
{
    h2o_assert(scores.size() == labels.size() && !scores.empty(),
               "auc size mismatch");
    auto rk = common::ranks(scores);
    double pos = 0.0, pos_rank_sum = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] > 0.5) {
            pos += 1.0;
            pos_rank_sum += rk[i];
        }
    }
    double neg = static_cast<double>(labels.size()) - pos;
    if (pos == 0.0 || neg == 0.0)
        return 0.5;
    // Mann-Whitney U statistic.
    double u = pos_rank_sum - pos * (pos + 1.0) / 2.0;
    return u / (pos * neg);
}

} // namespace h2o::nn
