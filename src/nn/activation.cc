#include "nn/activation.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::nn {

namespace {

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

float
activate(Activation act, float x)
{
    switch (act) {
      case Activation::Identity:
        return x;
      case Activation::ReLU:
        return x > 0.0f ? x : 0.0f;
      case Activation::Swish:
        return x * sigmoidf(x);
      case Activation::GeLU:
        // tanh approximation of GeLU.
        return 0.5f * x *
               (1.0f + std::tanh(0.7978845608f * (x + 0.044715f * x * x * x)));
      case Activation::SquaredReLU: {
        float r = x > 0.0f ? x : 0.0f;
        return r * r;
      }
      case Activation::Sigmoid:
        return sigmoidf(x);
      case Activation::Tanh:
        return std::tanh(x);
    }
    h2o_panic("unhandled activation");
}

float
activateGrad(Activation act, float x)
{
    switch (act) {
      case Activation::Identity:
        return 1.0f;
      case Activation::ReLU:
        return x > 0.0f ? 1.0f : 0.0f;
      case Activation::Swish: {
        float s = sigmoidf(x);
        return s + x * s * (1.0f - s);
      }
      case Activation::GeLU: {
        // Derivative of the tanh approximation.
        float c = 0.7978845608f;
        float inner = c * (x + 0.044715f * x * x * x);
        float t = std::tanh(inner);
        float dinner = c * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      }
      case Activation::SquaredReLU:
        return x > 0.0f ? 2.0f * x : 0.0f;
      case Activation::Sigmoid: {
        float s = sigmoidf(x);
        return s * (1.0f - s);
      }
      case Activation::Tanh: {
        float t = std::tanh(x);
        return 1.0f - t * t;
      }
    }
    h2o_panic("unhandled activation");
}

std::string
activationName(Activation act)
{
    switch (act) {
      case Activation::Identity:
        return "identity";
      case Activation::ReLU:
        return "relu";
      case Activation::Swish:
        return "swish";
      case Activation::GeLU:
        return "gelu";
      case Activation::SquaredReLU:
        return "squared_relu";
      case Activation::Sigmoid:
        return "sigmoid";
      case Activation::Tanh:
        return "tanh";
    }
    h2o_panic("unhandled activation");
}

Activation
activationFromName(const std::string &name)
{
    if (name == "identity")
        return Activation::Identity;
    if (name == "relu")
        return Activation::ReLU;
    if (name == "swish")
        return Activation::Swish;
    if (name == "gelu")
        return Activation::GeLU;
    if (name == "squared_relu")
        return Activation::SquaredReLU;
    if (name == "sigmoid")
        return Activation::Sigmoid;
    if (name == "tanh")
        return Activation::Tanh;
    h2o_fatal("unknown activation '", name, "'");
}

double
activationVpuCost(Activation act)
{
    switch (act) {
      case Activation::Identity:
        return 0.0;
      case Activation::ReLU:
        return 1.0;
      case Activation::SquaredReLU:
        return 2.0; // compare + multiply
      case Activation::Sigmoid:
        return 4.0;
      case Activation::Tanh:
        return 4.0;
      case Activation::Swish:
        return 5.0; // sigmoid + multiply
      case Activation::GeLU:
        return 6.0; // tanh approximation + polynomial
    }
    h2o_panic("unhandled activation");
}

} // namespace h2o::nn
