#include "nn/activation.h"

#include <cmath>

#include "common/logging.h"
#include "nn/tensor.h"

namespace h2o::nn {

namespace {

float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/** Apply f element-wise: out[i] = f(pre[i]). */
template <typename F>
void
mapTensor(const Tensor &pre, Tensor &out, F f)
{
    const float *p = pre.data().data();
    float *o = out.data().data();
    size_t n = pre.size();
    for (size_t i = 0; i < n; ++i)
        o[i] = f(p[i]);
}

/** Fused backward map: dpre[i] = grad_out[i] * df(pre[i]). */
template <typename F>
void
mapGradTensor(const Tensor &pre, const Tensor &grad_out, Tensor &dpre, F df)
{
    const float *p = pre.data().data();
    const float *g = grad_out.data().data();
    float *d = dpre.data().data();
    size_t n = pre.size();
    for (size_t i = 0; i < n; ++i)
        d[i] = g[i] * df(p[i]);
}

/** Row-range, column-prefix map: out(i, j) = f(pre(i, j)). */
template <typename F>
void
mapTensorRows(const Tensor &pre, Tensor &out, size_t row0, size_t rows,
              size_t n_act, F f)
{
    const float *p = pre.data().data();
    float *o = out.data().data();
    size_t stride = pre.cols();
    for (size_t i = row0; i < row0 + rows; ++i) {
        const float *prow = p + i * stride;
        float *orow = o + i * stride;
        for (size_t j = 0; j < n_act; ++j)
            orow[j] = f(prow[j]);
    }
}

} // namespace

void
activateTensorRows(Activation act, const Tensor &pre, Tensor &out,
                   size_t row0, size_t rows, size_t n_act)
{
    h2o_assert(out.size() == pre.size() && out.cols() == pre.cols(),
               "activateTensorRows shape mismatch");
    h2o_assert(row0 + rows <= pre.rows() && n_act <= pre.cols(),
               "activateTensorRows range out of bounds");
    switch (act) {
      case Activation::Identity:
        if (&out != &pre)
            mapTensorRows(pre, out, row0, rows, n_act,
                          [](float x) { return x; });
        return;
      case Activation::ReLU:
        mapTensorRows(pre, out, row0, rows, n_act,
                      [](float x) { return x > 0.0f ? x : 0.0f; });
        return;
      case Activation::Swish:
        mapTensorRows(pre, out, row0, rows, n_act,
                      [](float x) { return x * sigmoidf(x); });
        return;
      case Activation::GeLU:
        mapTensorRows(pre, out, row0, rows, n_act, [](float x) {
            return 0.5f * x *
                   (1.0f +
                    std::tanh(0.7978845608f * (x + 0.044715f * x * x * x)));
        });
        return;
      case Activation::SquaredReLU:
        mapTensorRows(pre, out, row0, rows, n_act, [](float x) {
            float r = x > 0.0f ? x : 0.0f;
            return r * r;
        });
        return;
      case Activation::Sigmoid:
        mapTensorRows(pre, out, row0, rows, n_act,
                      [](float x) { return sigmoidf(x); });
        return;
      case Activation::Tanh:
        mapTensorRows(pre, out, row0, rows, n_act,
                      [](float x) { return std::tanh(x); });
        return;
    }
    h2o_panic("unhandled activation");
}

void
activateTensor(Activation act, const Tensor &pre, Tensor &out)
{
    h2o_assert(out.size() == pre.size(), "activateTensor size mismatch");
    switch (act) {
      case Activation::Identity:
        if (&out != &pre)
            mapTensor(pre, out, [](float x) { return x; });
        return;
      case Activation::ReLU:
        mapTensor(pre, out, [](float x) { return x > 0.0f ? x : 0.0f; });
        return;
      case Activation::Swish:
        mapTensor(pre, out, [](float x) { return x * sigmoidf(x); });
        return;
      case Activation::GeLU:
        mapTensor(pre, out, [](float x) {
            return 0.5f * x *
                   (1.0f +
                    std::tanh(0.7978845608f * (x + 0.044715f * x * x * x)));
        });
        return;
      case Activation::SquaredReLU:
        mapTensor(pre, out, [](float x) {
            float r = x > 0.0f ? x : 0.0f;
            return r * r;
        });
        return;
      case Activation::Sigmoid:
        mapTensor(pre, out, [](float x) { return sigmoidf(x); });
        return;
      case Activation::Tanh:
        mapTensor(pre, out, [](float x) { return std::tanh(x); });
        return;
    }
    h2o_panic("unhandled activation");
}

void
activateGradTensor(Activation act, const Tensor &pre, const Tensor &grad_out,
                   Tensor &dpre)
{
    h2o_assert(pre.size() == grad_out.size() && pre.size() == dpre.size(),
               "activateGradTensor size mismatch");
    switch (act) {
      case Activation::Identity:
        if (&dpre != &grad_out)
            mapGradTensor(pre, grad_out, dpre, [](float) { return 1.0f; });
        return;
      case Activation::ReLU:
        mapGradTensor(pre, grad_out, dpre,
                      [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
        return;
      case Activation::Swish:
        mapGradTensor(pre, grad_out, dpre, [](float x) {
            float s = sigmoidf(x);
            return s + x * s * (1.0f - s);
        });
        return;
      case Activation::GeLU:
        mapGradTensor(pre, grad_out, dpre, [](float x) {
            float c = 0.7978845608f;
            float inner = c * (x + 0.044715f * x * x * x);
            float t = std::tanh(inner);
            float dinner = c * (1.0f + 3.0f * 0.044715f * x * x);
            return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
        });
        return;
      case Activation::SquaredReLU:
        mapGradTensor(pre, grad_out, dpre,
                      [](float x) { return x > 0.0f ? 2.0f * x : 0.0f; });
        return;
      case Activation::Sigmoid:
        mapGradTensor(pre, grad_out, dpre, [](float x) {
            float s = sigmoidf(x);
            return s * (1.0f - s);
        });
        return;
      case Activation::Tanh:
        mapGradTensor(pre, grad_out, dpre, [](float x) {
            float t = std::tanh(x);
            return 1.0f - t * t;
        });
        return;
    }
    h2o_panic("unhandled activation");
}

float
activate(Activation act, float x)
{
    switch (act) {
      case Activation::Identity:
        return x;
      case Activation::ReLU:
        return x > 0.0f ? x : 0.0f;
      case Activation::Swish:
        return x * sigmoidf(x);
      case Activation::GeLU:
        // tanh approximation of GeLU.
        return 0.5f * x *
               (1.0f + std::tanh(0.7978845608f * (x + 0.044715f * x * x * x)));
      case Activation::SquaredReLU: {
        float r = x > 0.0f ? x : 0.0f;
        return r * r;
      }
      case Activation::Sigmoid:
        return sigmoidf(x);
      case Activation::Tanh:
        return std::tanh(x);
    }
    h2o_panic("unhandled activation");
}

float
activateGrad(Activation act, float x)
{
    switch (act) {
      case Activation::Identity:
        return 1.0f;
      case Activation::ReLU:
        return x > 0.0f ? 1.0f : 0.0f;
      case Activation::Swish: {
        float s = sigmoidf(x);
        return s + x * s * (1.0f - s);
      }
      case Activation::GeLU: {
        // Derivative of the tanh approximation.
        float c = 0.7978845608f;
        float inner = c * (x + 0.044715f * x * x * x);
        float t = std::tanh(inner);
        float dinner = c * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      }
      case Activation::SquaredReLU:
        return x > 0.0f ? 2.0f * x : 0.0f;
      case Activation::Sigmoid: {
        float s = sigmoidf(x);
        return s * (1.0f - s);
      }
      case Activation::Tanh: {
        float t = std::tanh(x);
        return 1.0f - t * t;
      }
    }
    h2o_panic("unhandled activation");
}

std::string
activationName(Activation act)
{
    switch (act) {
      case Activation::Identity:
        return "identity";
      case Activation::ReLU:
        return "relu";
      case Activation::Swish:
        return "swish";
      case Activation::GeLU:
        return "gelu";
      case Activation::SquaredReLU:
        return "squared_relu";
      case Activation::Sigmoid:
        return "sigmoid";
      case Activation::Tanh:
        return "tanh";
    }
    h2o_panic("unhandled activation");
}

Activation
activationFromName(const std::string &name)
{
    if (name == "identity")
        return Activation::Identity;
    if (name == "relu")
        return Activation::ReLU;
    if (name == "swish")
        return Activation::Swish;
    if (name == "gelu")
        return Activation::GeLU;
    if (name == "squared_relu")
        return Activation::SquaredReLU;
    if (name == "sigmoid")
        return Activation::Sigmoid;
    if (name == "tanh")
        return Activation::Tanh;
    h2o_fatal("unknown activation '", name, "'");
}

double
activationVpuCost(Activation act)
{
    switch (act) {
      case Activation::Identity:
        return 0.0;
      case Activation::ReLU:
        return 1.0;
      case Activation::SquaredReLU:
        return 2.0; // compare + multiply
      case Activation::Sigmoid:
        return 4.0;
      case Activation::Tanh:
        return 4.0;
      case Activation::Swish:
        return 5.0; // sigmoid + multiply
      case Activation::GeLU:
        return 6.0; // tanh approximation + polynomial
    }
    h2o_panic("unhandled activation");
}

} // namespace h2o::nn
