/**
 * @file
 * A minimal dense tensor: row-major float storage with an explicit shape.
 *
 * The library only needs rank-1 and rank-2 tensors (batches of feature
 * vectors and weight matrices), so Tensor optimizes for that case while
 * still carrying a general shape vector for clarity at call sites.
 */

#ifndef H2O_NN_TENSOR_H
#define H2O_NN_TENSOR_H

#include <cstddef>
#include <string>
#include <vector>

namespace h2o::common { class Rng; }

namespace h2o::nn {

/**
 * Dense row-major float tensor.
 */
class Tensor
{
  public:
    /** An empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** A zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<size_t> shape);

    /** Convenience rank-2 constructor (rows x cols), zero-initialized. */
    Tensor(size_t rows, size_t cols);

    // Copies are counted by the allocation tracker (see tensorAllocCount);
    // moves transfer storage and are free.
    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept = default;
    Tensor &operator=(Tensor &&other) noexcept = default;

    /**
     * Reshape to rows x cols, reusing existing capacity — the zero-alloc
     * path for per-step workspace buffers. Contents are unspecified
     * afterwards; every element must be overwritten before being read.
     */
    void resizeUninitialized(size_t rows, size_t cols);

    /** As above, for an arbitrary shape. */
    void resizeUninitialized(std::vector<size_t> shape);

    /** Become a copy of src, reusing existing capacity where possible. */
    void copyFrom(const Tensor &src);

    /** The shape vector. */
    const std::vector<size_t> &shape() const { return _shape; }

    /** Total number of elements. */
    size_t size() const { return _data.size(); }

    /** Number of rows; valid for rank-1 (returns 1) and rank-2 tensors. */
    size_t rows() const;

    /** Number of columns; valid for rank-1 and rank-2 tensors. */
    size_t cols() const;

    /** Mutable element access for rank-2 tensors. */
    float &at(size_t r, size_t c);

    /** Const element access for rank-2 tensors. */
    float at(size_t r, size_t c) const;

    /** Mutable flat access. */
    float &operator[](size_t i) { return _data[i]; }

    /** Const flat access. */
    float operator[](size_t i) const { return _data[i]; }

    /** Raw storage. */
    std::vector<float> &data() { return _data; }

    /** Raw storage (const). */
    const std::vector<float> &data() const { return _data; }

    /** Set all elements to zero. */
    void zero();

    /** Fill with a constant. */
    void fill(float v);

    /** Fill with He-normal noise (stddev sqrt(2/fan_in)). */
    void heInit(common::Rng &rng, size_t fan_in);

    /** Fill with Glorot-uniform noise. */
    void glorotInit(common::Rng &rng, size_t fan_in, size_t fan_out);

    /** Fill with N(0, stddev) noise. */
    void gaussianInit(common::Rng &rng, float stddev);

    /** Sum of all elements. */
    double sum() const;

    /** L2 norm of all elements. */
    double norm() const;

    /** Human-readable shape, e.g. "[32, 128]". */
    std::string shapeStr() const;

  private:
    std::vector<size_t> _shape;
    std::vector<float> _data;
};

/**
 * Number of float-buffer heap allocations (fresh buffers and capacity
 * growths) across all Tensors since the last reset. The allocs/step
 * metric for the zero-alloc workspace bench: a warmed-up layer stack
 * should add zero per forward/backward.
 */
size_t tensorAllocCount();

/** Reset the allocation counter to zero. */
void resetTensorAllocCount();

/**
 * Number of whole-buffer zero fills (zero-initializing constructions and
 * zero() calls) across all Tensors since the last reset. Redundant
 * zeroing — clearing a buffer every element of which is then
 * overwritten — shows up here; hot paths should prefer
 * resizeUninitialized and the kernels' explicit `accumulate` flag.
 */
size_t tensorZeroFillCount();

/** Reset the zero-fill counter to zero. */
void resetTensorZeroFillCount();

} // namespace h2o::nn

#endif // H2O_NN_TENSOR_H
