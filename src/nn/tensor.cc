#include "nn/tensor.h"

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace h2o::nn {

namespace {

size_t
shapeSize(const std::vector<size_t> &shape)
{
    size_t n = 1;
    for (size_t d : shape)
        n *= d;
    return shape.empty() ? 0 : n;
}

std::atomic<size_t> g_allocCount{0};
std::atomic<size_t> g_zeroFillCount{0};

/** Record a fresh float-buffer allocation (or capacity growth). */
void
countAlloc(size_t elements)
{
    if (elements > 0)
        g_allocCount.fetch_add(1, std::memory_order_relaxed);
}

/** Record a whole-buffer zero fill. */
void
countZeroFill(size_t elements)
{
    if (elements > 0)
        g_zeroFillCount.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

size_t
tensorAllocCount()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

void
resetTensorAllocCount()
{
    g_allocCount.store(0, std::memory_order_relaxed);
}

size_t
tensorZeroFillCount()
{
    return g_zeroFillCount.load(std::memory_order_relaxed);
}

void
resetTensorZeroFillCount()
{
    g_zeroFillCount.store(0, std::memory_order_relaxed);
}

Tensor::Tensor(std::vector<size_t> shape)
    : _shape(std::move(shape)), _data(shapeSize(_shape), 0.0f)
{
    countAlloc(_data.size());
    countZeroFill(_data.size());
}

Tensor::Tensor(size_t rows, size_t cols) : Tensor(std::vector<size_t>{rows, cols})
{
}

Tensor::Tensor(const Tensor &other)
    : _shape(other._shape), _data(other._data)
{
    countAlloc(_data.size());
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    if (other._data.size() > _data.capacity())
        countAlloc(other._data.size());
    _shape = other._shape;
    _data.assign(other._data.begin(), other._data.end());
    return *this;
}

void
Tensor::resizeUninitialized(size_t rows, size_t cols)
{
    resizeUninitialized(std::vector<size_t>{rows, cols});
}

void
Tensor::resizeUninitialized(std::vector<size_t> shape)
{
    size_t n = shapeSize(shape);
    if (n > _data.capacity())
        countAlloc(n);
    _shape = std::move(shape);
    _data.resize(n);
}

void
Tensor::copyFrom(const Tensor &src)
{
    if (this == &src)
        return;
    if (src._data.size() > _data.capacity())
        countAlloc(src._data.size());
    _shape = src._shape;
    _data.assign(src._data.begin(), src._data.end());
}

size_t
Tensor::rows() const
{
    h2o_assert(_shape.size() <= 2, "rows() on rank-", _shape.size(),
               " tensor");
    if (_shape.size() == 2)
        return _shape[0];
    return 1;
}

size_t
Tensor::cols() const
{
    h2o_assert(!_shape.empty() && _shape.size() <= 2,
               "cols() on rank-", _shape.size(), " tensor");
    return _shape.back();
}

float &
Tensor::at(size_t r, size_t c)
{
    h2o_assert(_shape.size() == 2, "at(r,c) on non-matrix tensor");
    h2o_assert(r < _shape[0] && c < _shape[1], "index (", r, ",", c,
               ") out of bounds for ", shapeStr());
    return _data[r * _shape[1] + c];
}

float
Tensor::at(size_t r, size_t c) const
{
    h2o_assert(_shape.size() == 2, "at(r,c) on non-matrix tensor");
    h2o_assert(r < _shape[0] && c < _shape[1], "index (", r, ",", c,
               ") out of bounds for ", shapeStr());
    return _data[r * _shape[1] + c];
}

void
Tensor::zero()
{
    countZeroFill(_data.size());
    std::fill(_data.begin(), _data.end(), 0.0f);
}

void
Tensor::fill(float v)
{
    std::fill(_data.begin(), _data.end(), v);
}

void
Tensor::heInit(common::Rng &rng, size_t fan_in)
{
    h2o_assert(fan_in > 0, "heInit with zero fan_in");
    float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    gaussianInit(rng, stddev);
}

void
Tensor::glorotInit(common::Rng &rng, size_t fan_in, size_t fan_out)
{
    h2o_assert(fan_in + fan_out > 0, "glorotInit with zero fans");
    float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    for (auto &v : _data)
        v = static_cast<float>(rng.uniform(-limit, limit));
}

void
Tensor::gaussianInit(common::Rng &rng, float stddev)
{
    for (auto &v : _data)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

double
Tensor::sum() const
{
    return std::accumulate(_data.begin(), _data.end(), 0.0);
}

double
Tensor::norm() const
{
    double acc = 0.0;
    for (float v : _data)
        acc += static_cast<double>(v) * static_cast<double>(v);
    return std::sqrt(acc);
}

std::string
Tensor::shapeStr() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < _shape.size(); ++i) {
        if (i)
            oss << ", ";
        oss << _shape[i];
    }
    oss << "]";
    return oss.str();
}

} // namespace h2o::nn
