/**
 * @file
 * Fine-grained weight-shared dense layer for the DLRM super-network.
 *
 * The super-network creates one weight matrix with the largest possible
 * input and output size for each MLP layer; smaller sub-networks retain
 * only the upper-left sub-matrix and mask out the rest (Figure 3, mask ③
 * in the paper). setActive() selects the sub-network before each
 * forward/backward, so successive search steps train different overlapping
 * regions of the same storage — this is exactly the interference-vs-
 * efficiency trade-off the paper's hybrid sharing design manages.
 */

#ifndef H2O_NN_MASKED_DENSE_H
#define H2O_NN_MASKED_DENSE_H

#include "nn/activation.h"
#include "nn/layer.h"

namespace h2o::common { class Rng; }

namespace h2o::nn {

/** Dense layer with a runtime-selected active sub-matrix. */
class MaskedDenseLayer : public Layer
{
  public:
    /**
     * @param max_in  Largest input width any sub-network may use.
     * @param max_out Largest output width any sub-network may use.
     */
    MaskedDenseLayer(size_t max_in, size_t max_out, Activation act,
                     common::Rng &rng);

    /**
     * Select the active sub-network dimensions.
     * @pre 0 < in <= max_in and 0 < out <= max_out.
     */
    void setActive(size_t in, size_t out);

    /** Set the activation used by the current sub-network. */
    void setActivation(Activation act) { _act = act; }

    /** Currently active input width. */
    size_t activeIn() const { return _activeIn; }

    /** Currently active output width. */
    size_t activeOut() const { return _activeOut; }

    /** Maximum (shared-storage) input width. */
    size_t maxIn() const { return _maxIn; }

    /** Maximum (shared-storage) output width. */
    size_t maxOut() const { return _maxOut; }

    /** Shared weight storage [maxIn, maxOut] (read-only access for the
     *  packed multi-candidate eval pass). */
    const Tensor &weightTensor() const { return _w; }

    /** Shared bias storage [maxOut]. */
    const Tensor &biasTensor() const { return _b; }

    /** The activation applied by forward(). */
    Activation activation() const { return _act; }

    const Tensor &forward(const Tensor &input) override;
    const Tensor &backward(const Tensor &grad_out) override;
    std::vector<ParamRef> params() override;
    size_t activeParamCount() const override;
    std::string describe() const override;

  private:
    size_t _maxIn;
    size_t _maxOut;
    size_t _activeIn;
    size_t _activeOut;
    Activation _act;
    Tensor _w;
    Tensor _b;
    Tensor _wGrad;
    Tensor _bGrad;
    const Tensor *_input = nullptr; ///< forward input (caller-owned)
    Tensor _preact;
    Tensor _output;
    Tensor _dpre; ///< backward scratch (reused across calls)
    Tensor _dx;   ///< input gradient returned by backward
};

} // namespace h2o::nn

#endif // H2O_NN_MASKED_DENSE_H
