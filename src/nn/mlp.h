/**
 * @file
 * A fixed-shape multi-layer perceptron built from DenseLayers.
 *
 * This is the workhorse for the two-phase hybrid performance model
 * (the paper's Table 1 uses a 2-layer, 512-neuron MLP) and for any
 * fixed-architecture network (e.g. the ground-truth teacher in the
 * synthetic traffic generator).
 */

#ifndef H2O_NN_MLP_H
#define H2O_NN_MLP_H

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/dense.h"

namespace h2o::common { class Rng; }

namespace h2o::nn {

/** Fully-connected feed-forward network. */
class Mlp
{
  public:
    /**
     * @param dims        Layer widths including input and output, e.g.
     *                    {in, 512, 512, out} builds a 2-hidden-layer MLP.
     * @param hidden_act  Activation for hidden layers.
     * @param output_act  Activation for the output layer (Identity for
     *                    regression, Sigmoid only if probabilities are
     *                    needed directly).
     */
    Mlp(const std::vector<size_t> &dims, Activation hidden_act,
        Activation output_act, common::Rng &rng);

    /**
     * Forward pass over a [batch, in] tensor. The first layer caches
     * `input` by pointer: keep it alive and unmodified until backward.
     */
    const Tensor &forward(const Tensor &input);

    /** Backward pass; returns the gradient w.r.t. the input — a
     *  reference to the first layer's buffer, valid until the next
     *  backward. */
    const Tensor &backward(const Tensor &grad_out);

    /** All parameters for optimizer construction. */
    std::vector<ParamRef> params();

    /** Total parameter count. */
    size_t paramCount() const;

    /** Number of layers. */
    size_t numLayers() const { return _layers.size(); }

    /** Access a layer (for tests / inspection). */
    DenseLayer &layer(size_t i) { return *_layers.at(i); }

    /**
     * Enable/disable the input-gradient matmul of the FIRST layer. When
     * the network's input is data (not an upstream layer's activation),
     * backward()'s return value is unused and the dX product is wasted
     * work; disabling it returns an empty tensor from backward().
     */
    void setInputGradEnabled(bool enabled)
    {
        _layers.front()->setNeedInputGrad(enabled);
    }

  private:
    std::vector<std::unique_ptr<DenseLayer>> _layers;
    const Tensor *_lastOutput = nullptr;
};

} // namespace h2o::nn

#endif // H2O_NN_MLP_H
