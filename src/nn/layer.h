/**
 * @file
 * The layer abstraction for the manual-backprop training substrate.
 *
 * Layers cache whatever they need during forward() so that backward() can
 * produce input gradients and accumulate parameter gradients. Parameters
 * are exposed through ParamRef so optimizers can update them in place
 * without knowing layer internals — essential for the weight-sharing
 * super-network where many sub-networks update the same storage.
 */

#ifndef H2O_NN_LAYER_H
#define H2O_NN_LAYER_H

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace h2o::nn {

/** A parameter tensor paired with its gradient accumulator. */
struct ParamRef
{
    Tensor *value;
    Tensor *grad;
};

/**
 * Base class for trainable layers.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Run the layer on a [batch, features] input, caching state for
     * backward. The returned reference stays valid until the next forward.
     *
     * Layers cache `input` by POINTER (no copy): the caller must keep the
     * input tensor alive and unmodified until the matching backward()
     * completes. Chained layers satisfy this naturally — each layer's
     * output is a member buffer that persists until its next forward.
     */
    virtual const Tensor &forward(const Tensor &input) = 0;

    /**
     * Backpropagate. Accumulates parameter gradients (into ParamRef::grad)
     * and returns the gradient with respect to the layer input — a
     * reference to a layer-owned buffer, valid until the next backward.
     *
     * @pre forward() was called, its input is still alive, and grad_out
     *      matches the forward output shape.
     */
    virtual const Tensor &backward(const Tensor &grad_out) = 0;

    /** All trainable parameters with their gradient accumulators. */
    virtual std::vector<ParamRef> params() = 0;

    /** Number of parameters actually used by the currently-active
     *  sub-network configuration (== total for non-shared layers). */
    virtual size_t activeParamCount() const = 0;

    /** Human-readable layer description. */
    virtual std::string describe() const = 0;

    /**
     * Training vs evaluation mode. In eval mode a layer skips backward
     * bookkeeping (input pointer caching, separate output buffers) —
     * forward VALUES are unchanged bit-for-bit, but calling backward()
     * after an eval-mode forward is an error. Default: training.
     */
    void setTraining(bool training) { _training = training; }

    /** Whether the layer is in training mode. */
    bool training() const { return _training; }

    /** Zero all gradient accumulators. */
    void zeroGrad();

  protected:
    bool _training = true;
};

} // namespace h2o::nn

#endif // H2O_NN_LAYER_H
