/**
 * @file
 * Embedding table with fine-grained width sharing.
 *
 * One embedding vector of the largest possible width is created per row;
 * smaller embedding widths reuse the first D components and mask the rest
 * (Figure 3, mask ① in the paper). Vocabulary-size search is NOT handled
 * here — that uses coarse-grained sharing with one separate EmbeddingTable
 * per vocabulary-size choice (mask ②), implemented in
 * supernet/dlrm_supernet.*, to avoid harmful interaction between
 * candidates that hash ids differently.
 *
 * Lookups are multivalent with mean pooling: each example supplies a small
 * list of ids for the feature and receives the average of their rows. The
 * pooled gather and the gradient scatter-add run through the tiled kernel
 * family in nn/ops.h (selectable via H2O_KERNELS, bitwise identical across
 * implementations); ids are staged into flat CSR-style buffers
 * (rows/offsets/inv) that are reused across calls.
 */

#ifndef H2O_NN_EMBEDDING_H
#define H2O_NN_EMBEDDING_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/tensor.h"

namespace h2o::common { class Rng; }

namespace h2o::nn {

/** One sparse feature's id list for one example. */
using IdList = std::vector<uint32_t>;

/** Embedding table with maskable width and mean-pooled multivalent lookup. */
class EmbeddingTable
{
  public:
    /**
     * @param vocab     Number of rows (ids hash into [0, vocab)).
     * @param max_width Largest embedding width any candidate may use.
     */
    EmbeddingTable(size_t vocab, size_t max_width, common::Rng &rng);

    /** Select the active embedding width. @pre 0 < width <= maxWidth. */
    void setActiveWidth(size_t width);

    /** Currently active width. */
    size_t activeWidth() const { return _activeWidth; }

    /** Maximum width of the shared storage. */
    size_t maxWidth() const { return _maxWidth; }

    /** Vocabulary (row) count. */
    size_t vocab() const { return _vocab; }

    /**
     * Mean-pooled lookup for a batch. Ids are reduced modulo vocab (the
     * hashing trick), matching how production DLRMs remap ids when the
     * vocabulary budget changes.
     *
     * @return [batch, activeWidth] pooled embeddings — a reference to a
     *         reused internal buffer, valid until the next forward.
     */
    const Tensor &forward(const std::vector<IdList> &batch_ids);

    /**
     * Same lookup over a span of id-list pointers — lets callers that
     * already hold per-example lists elsewhere (the packed multi-candidate
     * eval pass) avoid copying them into a contiguous vector.
     */
    const Tensor &forward(std::span<const IdList *const> batch_ids);

    /**
     * No-grad lookup at an explicit width into a caller-owned tensor,
     * for the batched eval path: `out` is resized to [batch, width] and
     * filled with the pooled rows (columns [0, width) of the shared
     * storage, independent of activeWidth). Overwrites the staging
     * buffers backward() reads, so a training forward/backward pair must
     * not straddle a lookup() call.
     *
     * @pre 0 < width <= maxWidth.
     */
    void lookup(std::span<const IdList *const> batch_ids, size_t width,
                Tensor &out);

    /**
     * Scatter gradients back into the rows touched by the last forward.
     * @param grad_out [batch, activeWidth] upstream gradient.
     */
    void backward(const Tensor &grad_out);

    /** Parameter/gradient storage for the optimizer. */
    std::vector<ParamRef> params();

    /** Zero the gradient accumulator. */
    void zeroGrad() { _grad.zero(); }

    /** Parameters used at the active width. */
    size_t activeParamCount() const { return _vocab * _activeWidth; }

    /** Human-readable description. */
    std::string describe() const;

  private:
    /** Hash ids into the flat CSR staging buffers (_rows/_offsets/_inv). */
    void stage(std::span<const IdList *const> batch_ids);

    size_t _vocab;
    size_t _maxWidth;
    size_t _activeWidth;
    Tensor _table;  ///< vocab x maxWidth
    Tensor _grad;
    Tensor _out; ///< pooled lookup output (reused across calls)
    std::vector<uint32_t> _rows;   ///< hashed table rows, all examples
    std::vector<size_t> _offsets;  ///< per-example [start, end) into _rows
    std::vector<float> _inv;       ///< per-example 1/|ids| (0 if empty)
    std::vector<const IdList *> _ptrScratch; ///< vector-overload adapter
};

} // namespace h2o::nn

#endif // H2O_NN_EMBEDDING_H
