#include "nn/embedding.h"

#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "nn/ops.h"

namespace h2o::nn {

EmbeddingTable::EmbeddingTable(size_t vocab, size_t max_width,
                               common::Rng &rng)
    : _vocab(vocab), _maxWidth(max_width), _activeWidth(max_width),
      _table(vocab, max_width), _grad(vocab, max_width)
{
    h2o_assert(vocab > 0 && max_width > 0, "EmbeddingTable with zero dims");
    // Embedding init: small gaussian, as in typical DLRM training.
    _table.gaussianInit(rng, 0.05f);
}

void
EmbeddingTable::setActiveWidth(size_t width)
{
    h2o_assert(width > 0 && width <= _maxWidth, "active width ", width,
               " out of range (max ", _maxWidth, ")");
    _activeWidth = width;
}

void
EmbeddingTable::stage(std::span<const IdList *const> batch_ids)
{
    size_t batch = batch_ids.size();
    h2o_assert(batch > 0, "embedding lookup with empty batch");
    size_t total = 0;
    for (const IdList *ids : batch_ids)
        total += ids->size();
    _rows.clear();
    _rows.reserve(total);
    _offsets.clear();
    _offsets.reserve(batch + 1);
    _inv.clear();
    _inv.reserve(batch);
    _offsets.push_back(0);
    uint32_t vocab = static_cast<uint32_t>(_vocab);
    for (const IdList *ids : batch_ids) {
        for (uint32_t id : *ids)
            _rows.push_back(id % vocab);
        _offsets.push_back(_rows.size());
        _inv.push_back(ids->empty()
                           ? 0.0f
                           : 1.0f / static_cast<float>(ids->size()));
    }
}

const Tensor &
EmbeddingTable::forward(const std::vector<IdList> &batch_ids)
{
    _ptrScratch.clear();
    _ptrScratch.reserve(batch_ids.size());
    for (const IdList &ids : batch_ids)
        _ptrScratch.push_back(&ids);
    return forward(std::span<const IdList *const>(_ptrScratch));
}

const Tensor &
EmbeddingTable::forward(std::span<const IdList *const> batch_ids)
{
    stage(batch_ids);
    _out.resizeUninitialized(batch_ids.size(), _activeWidth);
    embeddingGatherPooled(_table, _rows, _offsets, _inv, _out, _activeWidth);
    return _out;
}

void
EmbeddingTable::lookup(std::span<const IdList *const> batch_ids, size_t width,
                       Tensor &out)
{
    h2o_assert(width > 0 && width <= _maxWidth, "lookup width ", width,
               " out of range (max ", _maxWidth, ")");
    stage(batch_ids);
    out.resizeUninitialized(batch_ids.size(), width);
    embeddingGatherPooled(_table, _rows, _offsets, _inv, out, width);
}

void
EmbeddingTable::backward(const Tensor &grad_out)
{
    h2o_assert(grad_out.rows() + 1 == _offsets.size(),
               "embedding backward batch mismatch");
    h2o_assert(grad_out.cols() == _activeWidth,
               "embedding backward width mismatch");
    embeddingScatterAdd(grad_out, _rows, _offsets, _inv, _grad, _activeWidth);
}

std::vector<ParamRef>
EmbeddingTable::params()
{
    return {{&_table, &_grad}};
}

std::string
EmbeddingTable::describe() const
{
    std::ostringstream oss;
    oss << "Embedding(vocab=" << _vocab << ", width=" << _activeWidth << "/"
        << _maxWidth << ")";
    return oss.str();
}

} // namespace h2o::nn
