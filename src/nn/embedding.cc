#include "nn/embedding.h"

#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace h2o::nn {

EmbeddingTable::EmbeddingTable(size_t vocab, size_t max_width,
                               common::Rng &rng)
    : _vocab(vocab), _maxWidth(max_width), _activeWidth(max_width),
      _table(vocab, max_width), _grad(vocab, max_width)
{
    h2o_assert(vocab > 0 && max_width > 0, "EmbeddingTable with zero dims");
    // Embedding init: small gaussian, as in typical DLRM training.
    _table.gaussianInit(rng, 0.05f);
}

void
EmbeddingTable::setActiveWidth(size_t width)
{
    h2o_assert(width > 0 && width <= _maxWidth, "active width ", width,
               " out of range (max ", _maxWidth, ")");
    _activeWidth = width;
}

const Tensor &
EmbeddingTable::forward(const std::vector<IdList> &batch_ids)
{
    size_t batch = batch_ids.size();
    h2o_assert(batch > 0, "embedding lookup with empty batch");
    _out.resizeUninitialized(batch, _activeWidth);
    _out.zero(); // pooling accumulates; missing features stay zero
    _lastIds.assign(batch, IdList{});
    for (size_t i = 0; i < batch; ++i) {
        const IdList &ids = batch_ids[i];
        if (ids.empty())
            continue; // missing feature: zero vector
        IdList &hashed = _lastIds[i];
        hashed.reserve(ids.size());
        float inv = 1.0f / static_cast<float>(ids.size());
        for (uint32_t id : ids) {
            uint32_t row = id % static_cast<uint32_t>(_vocab);
            hashed.push_back(row);
            const float *src = _table.data().data() + row * _maxWidth;
            float *dst = _out.data().data() + i * _activeWidth;
            for (size_t d = 0; d < _activeWidth; ++d)
                dst[d] += inv * src[d];
        }
    }
    return _out;
}

void
EmbeddingTable::backward(const Tensor &grad_out)
{
    h2o_assert(grad_out.rows() == _lastIds.size(),
               "embedding backward batch mismatch");
    h2o_assert(grad_out.cols() == _activeWidth,
               "embedding backward width mismatch");
    for (size_t i = 0; i < _lastIds.size(); ++i) {
        const IdList &rows = _lastIds[i];
        if (rows.empty())
            continue;
        float inv = 1.0f / static_cast<float>(rows.size());
        const float *src = grad_out.data().data() + i * _activeWidth;
        for (uint32_t row : rows) {
            float *dst = _grad.data().data() + row * _maxWidth;
            for (size_t d = 0; d < _activeWidth; ++d)
                dst[d] += inv * src[d];
        }
    }
}

std::vector<ParamRef>
EmbeddingTable::params()
{
    return {{&_table, &_grad}};
}

std::string
EmbeddingTable::describe() const
{
    std::ostringstream oss;
    oss << "Embedding(vocab=" << _vocab << ", width=" << _activeWidth << "/"
        << _maxWidth << ")";
    return oss.str();
}

} // namespace h2o::nn
