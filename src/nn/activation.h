/**
 * @file
 * Activation functions searched over by the H2O-NAS search spaces.
 *
 * The paper's Table 5 lists ReLU and swish for the CNN space, and ReLU,
 * swish, GeLU and Squared ReLU for the transformer space; Squared ReLU is
 * the activation H2O-NAS substituted into CoAtNet-H (Table 3).
 */

#ifndef H2O_NN_ACTIVATION_H
#define H2O_NN_ACTIVATION_H

#include <cstddef>
#include <string>

namespace h2o::nn {

class Tensor;

/** Activation function identifiers. */
enum class Activation
{
    Identity,
    ReLU,
    Swish,
    GeLU,
    SquaredReLU,
    Sigmoid,
    Tanh,
};

/** Apply an activation to a scalar pre-activation. */
float activate(Activation act, float x);

/**
 * Derivative of the activation with respect to its input, evaluated at the
 * pre-activation value x.
 */
float activateGrad(Activation act, float x);

/**
 * out[i] = activate(act, pre[i]) over the whole storage, with the
 * activation dispatch hoisted out of the element loop (the scalar
 * activate() re-enters the switch per element — too slow for the layer
 * hot path). out must match pre's size; out may alias pre.
 */
void activateTensor(Activation act, const Tensor &pre, Tensor &out);

/**
 * Row-range, column-prefix variant of activateTensor for packed
 * multi-candidate tensors: out(i, j) = activate(act, pre(i, j)) for
 * i in [row0, row0 + rows) and j in [0, n_act); other elements are
 * untouched. pre and out must share shape; out may alias pre. Values
 * are bitwise identical to activateTensor over the same elements.
 */
void activateTensorRows(Activation act, const Tensor &pre, Tensor &out,
                        size_t row0, size_t rows, size_t n_act);

/**
 * dpre[i] = grad_out[i] * activateGrad(act, pre[i]) — the fused backward
 * step, dispatch hoisted. Sizes must match; dpre may alias grad_out.
 */
void activateGradTensor(Activation act, const Tensor &pre,
                        const Tensor &grad_out, Tensor &dpre);

/** Human-readable activation name. */
std::string activationName(Activation act);

/** Parse an activation name; fatal on unknown names. */
Activation activationFromName(const std::string &name);

/**
 * Relative hardware cost of one activation evaluation on a vector unit, in
 * "equivalent elementwise ops". Used by the performance simulator: swish /
 * GeLU need transcendental evaluations on the VPU while ReLU and Squared
 * ReLU are a compare / multiply — part of why the paper's searches favor
 * Squared ReLU on TPUs.
 */
double activationVpuCost(Activation act);

} // namespace h2o::nn

#endif // H2O_NN_ACTIVATION_H
