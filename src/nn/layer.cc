#include "nn/layer.h"

namespace h2o::nn {

void
Layer::zeroGrad()
{
    for (auto &p : params())
        p.grad->zero();
}

} // namespace h2o::nn
