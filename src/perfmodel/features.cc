#include "perfmodel/features.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::perfmodel {

namespace {

double
log1pSafe(double v)
{
    return std::log1p(std::max(v, 0.0));
}

} // namespace

DlrmFeatureEncoder::DlrmFeatureEncoder(
    const searchspace::DlrmSearchSpace &space)
    : _space(space)
{
    _dim = encode(space.baselineSample()).size();
}

std::vector<double>
DlrmFeatureEncoder::encode(const searchspace::Sample &s) const
{
    arch::DlrmArch a = _space.decode(s);
    std::vector<double> f;
    // Per-table hyper-parameters.
    for (const auto &t : a.tables) {
        f.push_back(static_cast<double>(t.width));
        f.push_back(log1pSafe(static_cast<double>(t.vocab)));
    }
    // Per-layer hyper-parameters, padded to the space's max depth so the
    // vector length is sample-independent.
    auto push_stack = [&](const std::vector<arch::MlpLayerConfig> &stack,
                          size_t max_depth) {
        for (size_t l = 0; l < max_depth; ++l) {
            if (l < stack.size()) {
                f.push_back(static_cast<double>(stack[l].width));
                f.push_back(static_cast<double>(
                    stack[l].rank == 0 ? stack[l].width : stack[l].rank));
            } else {
                f.push_back(0.0);
                f.push_back(0.0);
            }
        }
        f.push_back(static_cast<double>(stack.size()));
    };
    push_stack(a.bottomMlp, _space.maxMlpDepth(true));
    push_stack(a.topMlp, _space.maxMlpDepth(false));
    // Derived log-scale aggregates. The padded-FLOPs and traffic
    // features give the regressor near-direct access to the quantities
    // that bound DLRM step time (tensor-unit issue slots, gather
    // traffic, all-to-all bytes) — crucial for sample-efficient
    // pre-training.
    f.push_back(log1pSafe(a.embeddingParamCount()));
    f.push_back(log1pSafe(a.denseParamCount()));
    f.push_back(log1pSafe(a.flopsPerExample()));
    f.push_back(log1pSafe(a.paddedFlopsPerExample(128)));
    f.push_back(log1pSafe(a.lookupTrafficPerExample()));
    f.push_back(log1pSafe(static_cast<double>(a.totalEmbeddingWidth())));
    f.push_back(static_cast<double>(a.totalEmbeddingWidth()));
    return f;
}

ConvFeatureEncoder::ConvFeatureEncoder(
    const searchspace::ConvSearchSpace &space)
    : _space(space)
{
    _dim = encode(space.baselineSample()).size();
}

std::vector<double>
ConvFeatureEncoder::encode(const searchspace::Sample &s) const
{
    arch::ConvArch a = _space.decode(s);
    std::vector<double> f;
    f.push_back(static_cast<double>(a.resolution));
    f.push_back(a.spaceToDepthStem ? 1.0 : 0.0);
    for (const auto &st : a.stages) {
        f.push_back(st.type == arch::BlockType::MBConv ? 0.0 : 1.0);
        f.push_back(static_cast<double>(st.kernel));
        f.push_back(static_cast<double>(st.stride));
        f.push_back(st.expansion);
        f.push_back(st.seRatio);
        f.push_back(static_cast<double>(st.act));
        f.push_back(st.skip ? 1.0 : 0.0);
        f.push_back(static_cast<double>(st.layers));
        f.push_back(static_cast<double>(st.filters));
    }
    f.push_back(log1pSafe(a.flopsPerImage()));
    f.push_back(log1pSafe(a.paramCount()));
    return f;
}

VitFeatureEncoder::VitFeatureEncoder(const searchspace::VitSearchSpace &space)
    : _space(space)
{
    _dim = encode(space.baselineSample()).size();
}

std::vector<double>
VitFeatureEncoder::encode(const searchspace::Sample &s) const
{
    arch::VitArch a = _space.decode(s);
    std::vector<double> f;
    f.push_back(static_cast<double>(a.resolution));
    f.push_back(static_cast<double>(a.patch));
    for (const auto &st : a.convStages) {
        f.push_back(st.type == arch::BlockType::MBConv ? 0.0 : 1.0);
        f.push_back(static_cast<double>(st.kernel));
        f.push_back(st.expansion);
        f.push_back(static_cast<double>(st.layers));
        f.push_back(static_cast<double>(st.filters));
    }
    for (const auto &blk : a.tfmBlocks) {
        f.push_back(static_cast<double>(blk.hidden));
        f.push_back(blk.lowRank);
        f.push_back(static_cast<double>(blk.act));
        f.push_back(blk.seqPool ? 1.0 : 0.0);
        f.push_back(blk.primer ? 1.0 : 0.0);
        f.push_back(static_cast<double>(blk.layers));
    }
    f.push_back(log1pSafe(a.flopsPerImage()));
    f.push_back(log1pSafe(a.paramCount()));
    return f;
}

} // namespace h2o::perfmodel
