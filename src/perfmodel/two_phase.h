/**
 * @file
 * Two-phase performance-model training (Section 6.2.2, Table 1):
 *
 *   Pre-training: sample many candidates uniformly from the search
 *   space, simulate each on the performance simulator, and fit the MLP.
 *
 *   Fine-tuning: take O(20) measurements of full-size candidates on
 *   "real hardware" (the HardwareOracle here) and calibrate the
 *   pre-trained model against them. Calibration fits a low-degree
 *   polynomial, in log space, from the model's raw prediction to the
 *   measured value — exactly enough capacity to absorb the smooth
 *   systematic sim-to-hardware error while 20 points constrain it.
 *
 * The trainer is generic over search spaces: it needs only an encoder
 * (Sample -> features) and a simulation functor (Sample -> times).
 */

#ifndef H2O_PERFMODEL_TWO_PHASE_H
#define H2O_PERFMODEL_TWO_PHASE_H

#include <functional>
#include <span>
#include <vector>

#include "perfmodel/features.h"
#include "perfmodel/hardware_oracle.h"
#include "perfmodel/perf_model.h"
#include "searchspace/decision_space.h"

namespace h2o::perfmodel {

/** Simulated (train, serve) times for one candidate. */
struct SimTimes
{
    double trainSec;
    double serveSec;
};

/** Sample -> simulated times, supplied by the caller per domain. */
using SimulateFn = std::function<SimTimes(const searchspace::Sample &)>;

/** Batch of samples -> simulated times, one entry per sample. Callers
 *  with a batched simulator (Simulator::runBatch fronted by a SimCache)
 *  supply this to amortize lock traffic and workspace setup. */
using SimulateBatchFn = std::function<std::vector<SimTimes>(
    std::span<const searchspace::Sample>)>;

/** NRMSE of both heads against a reference set. */
struct EvalNrmse
{
    double train = 0.0;
    double serve = 0.0;
};

/** Two-phase trainer orchestrating pre-train / fine-tune / evaluate. */
class TwoPhaseTrainer
{
  public:
    /**
     * @param space    The search space to sample candidates from.
     * @param encoder  Feature encoder for the space.
     * @param simulate Pre-training label source (the simulator).
     * @param oracle   Fine-tuning label source ("real hardware").
     */
    TwoPhaseTrainer(const searchspace::DecisionSpace &space,
                    const FeatureEncoder &encoder, SimulateFn simulate,
                    HardwareOracle oracle);

    /** As above, with a batched label source: every internal loop
     *  (pretrain labels, fine-tune measurements, evaluation sets) issues
     *  one simulate call per phase instead of one per candidate. */
    TwoPhaseTrainer(const searchspace::DecisionSpace &space,
                    const FeatureEncoder &encoder,
                    SimulateBatchFn simulate_batch, HardwareOracle oracle);

    /**
     * Phase 1: sample `num_samples` candidates, simulate, fit the model.
     * @return NRMSE of the fitted model on a held-out simulated set.
     */
    EvalNrmse pretrain(PerfModel &model, size_t num_samples,
                       common::Rng &rng);

    /**
     * Phase 2: measure `num_samples` candidates on the oracle and fit
     * the calibration. @return nothing; see evaluateAgainstOracle.
     */
    void finetune(PerfModel &model, size_t num_samples, common::Rng &rng,
                  size_t polynomial_degree = 3);

    /**
     * NRMSE of the (possibly calibrated) model against fresh oracle
     * measurements — the "NRMSE on production measurements" rows of
     * Table 1.
     */
    EvalNrmse evaluateAgainstOracle(const PerfModel &model,
                                    size_t num_samples, common::Rng &rng);

    /** NRMSE of the model against fresh simulator labels. */
    EvalNrmse evaluateAgainstSimulator(const PerfModel &model,
                                       size_t num_samples,
                                       common::Rng &rng);

  private:
    /** Draw n candidates and simulate them in one batch. */
    std::vector<searchspace::Sample> drawSamples(size_t n,
                                                 common::Rng &rng) const;

    const searchspace::DecisionSpace &_space;
    const FeatureEncoder &_encoder;
    SimulateBatchFn _simulate;
    HardwareOracle _oracle;
};

/**
 * Least-squares fit of a degree-`degree` polynomial y ~ poly(x).
 * Returns coefficients lowest-degree first. Exposed for testing.
 */
std::vector<double> polyFit(const std::vector<double> &xs,
                            const std::vector<double> &ys, size_t degree);

} // namespace h2o::perfmodel

#endif // H2O_PERFMODEL_TWO_PHASE_H
