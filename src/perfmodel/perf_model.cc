#include "perfmodel/perf_model.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "nn/loss.h"

namespace h2o::perfmodel {

PerfModel::PerfModel(size_t input_dim, PerfModelConfig config,
                     common::Rng &rng)
    : _inputDim(input_dim), _config(config)
{
    h2o_assert(input_dim > 0, "perf model with zero input dim");
    std::vector<size_t> dims;
    dims.push_back(input_dim);
    for (size_t l = 0; l < config.hiddenLayers; ++l)
        dims.push_back(config.hiddenWidth);
    dims.push_back(2); // dual heads: training / serving
    _mlp = std::make_unique<nn::Mlp>(dims, nn::Activation::ReLU,
                                     nn::Activation::Identity, rng);
    // The inputs are encoded feature rows, not upstream activations:
    // nothing consumes d(loss)/d(input), so skip the first layer's dX
    // matmul in backward (~1/3 of that layer's backward FLOPs).
    _mlp->setInputGradEnabled(false);
    _optimizer = std::make_unique<nn::AdamOptimizer>(_mlp->params(),
                                                     config.learningRate);
    _calibration.assign(2, {});
    _calibrationDomain.assign(2, {-1e300, 1e300});
}

double
PerfModel::train(const std::vector<std::vector<double>> &features,
                 const std::vector<std::array<double, 2>> &targets,
                 common::Rng &rng)
{
    h2o_assert(features.size() == targets.size() && !features.empty(),
               "perf model training data mismatch");
    size_t n = features.size();

    nn::Tensor x(n, _inputDim);
    nn::Tensor y(n, 2);
    for (size_t i = 0; i < n; ++i) {
        h2o_assert(features[i].size() == _inputDim,
                   "feature dim mismatch at row ", i);
        for (size_t j = 0; j < _inputDim; ++j)
            x.at(i, j) = static_cast<float>(features[i][j]);
        for (size_t h = 0; h < 2; ++h) {
            h2o_assert(targets[i][h] > 0.0, "non-positive target at row ",
                       i);
            y.at(i, h) = static_cast<float>(std::log(targets[i][h]));
        }
    }
    _featureNorm.fit(x);
    _featureNorm.transform(x);
    _targetNorm.fit(y);
    _targetNorm.transform(y);

    double final_loss = 0.0;
    size_t bs = std::min(_config.batchSize, n);
    double lr = _config.learningRate;
    // Batch staging buffers hoisted out of the epoch loop: every element
    // is overwritten per batch, so steady-state training is alloc-free.
    nn::Tensor xb(bs, _inputDim), yb(bs, 2);
    for (size_t epoch = 0; epoch < _config.epochs; ++epoch) {
        _optimizer->setLearningRate(lr);
        lr *= _config.lrDecay;
        auto perm = rng.permutation(n);
        double epoch_loss = 0.0;
        size_t batches = 0;
        // Row gather through raw storage: at() is an out-of-line
        // bounds-checked call, far too slow for ~90 floats per row per
        // batch per epoch.
        const float *xd = x.data().data();
        const float *yd = y.data().data();
        float *xbd = xb.data().data();
        float *ybd = yb.data().data();
        for (size_t start = 0; start + bs <= n; start += bs) {
            for (size_t i = 0; i < bs; ++i) {
                size_t src = perm[start + i];
                std::copy_n(xd + src * _inputDim, _inputDim,
                            xbd + i * _inputDim);
                ybd[i * 2] = yd[src * 2];
                ybd[i * 2 + 1] = yd[src * 2 + 1];
            }
            const nn::Tensor &pred = _mlp->forward(xb);
            nn::LossResult loss = nn::mseLoss(pred, yb);
            _mlp->backward(loss.grad);
            _optimizer->step();
            epoch_loss += loss.value;
            ++batches;
        }
        final_loss = batches ? epoch_loss / double(batches) : 0.0;
    }
    _trained = true;
    return final_loss;
}

double
PerfModel::rawLogPrediction(const std::vector<double> &features,
                            size_t head) const
{
    h2o_assert(head < 2, "head out of range");
    return rawLogPredictionBatch({features})[0][head];
}

std::vector<std::array<double, 2>>
PerfModel::rawLogPredictionBatch(
    const std::vector<std::vector<double>> &features) const
{
    h2o_assert(_trained, "predict before train");
    size_t n = features.size();
    std::vector<std::array<double, 2>> out(n);
    if (n == 0)
        return out;
    nn::Tensor x;
    x.resizeUninitialized(n, _inputDim);
    for (size_t i = 0; i < n; ++i) {
        h2o_assert(features[i].size() == _inputDim,
                   "feature dim mismatch at row ", i);
        for (size_t j = 0; j < _inputDim; ++j)
            x.at(i, j) = static_cast<float>(features[i][j]);
    }
    _featureNorm.transform(x);
    // forward() mutates layer caches; the model is logically const for
    // prediction. One packed forward serves both heads for every row.
    const nn::Tensor &pred = const_cast<nn::Mlp &>(*_mlp).forward(x);
    for (size_t i = 0; i < n; ++i)
        for (size_t h = 0; h < 2; ++h)
            out[i][h] = _targetNorm.inverse(pred.at(i, h), h);
    return out;
}

double
PerfModel::applyCalibration(size_t head, double log_pred) const
{
    const auto &coef = _calibration[head];
    if (coef.empty())
        return log_pred;
    auto [lo, hi] = _calibrationDomain[head];
    double x = std::clamp(log_pred, lo, hi);
    double corrected = 0.0;
    double power = 1.0;
    for (double c : coef) {
        corrected += c * power;
        power *= x;
    }
    // Unit-slope extension outside the fitted domain.
    return corrected + (log_pred - x);
}

PerfPrediction
PerfModel::predict(const std::vector<double> &features) const
{
    return predictBatch({features})[0];
}

std::vector<PerfPrediction>
PerfModel::predictBatch(
    const std::vector<std::vector<double>> &features) const
{
    auto raw = rawLogPredictionBatch(features);
    std::vector<PerfPrediction> out(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
        out[i].trainStepTimeSec =
            std::exp(applyCalibration(0, raw[i][0]));
        out[i].servingTimeSec = std::exp(applyCalibration(1, raw[i][1]));
    }
    return out;
}

void
PerfModel::setCalibration(size_t head, std::vector<double> coefficients,
                          double domain_lo, double domain_hi)
{
    h2o_assert(head < 2, "head out of range");
    h2o_assert(domain_lo <= domain_hi, "inverted calibration domain");
    _calibration[head] = std::move(coefficients);
    _calibrationDomain[head] = {domain_lo, domain_hi};
}

void
PerfModel::clearCalibration()
{
    _calibration.assign(2, {});
    _calibrationDomain.assign(2, {-1e300, 1e300});
}

namespace {

std::vector<double>
tensorToVector(const nn::Tensor &t)
{
    return std::vector<double>(t.data().begin(), t.data().end());
}

void
vectorToTensor(const std::vector<double> &v, nn::Tensor &t,
               const char *what)
{
    if (v.size() != t.size())
        h2o_fatal("perf-model checkpoint ", what, " has ", v.size(),
                  " values, model expects ", t.size());
    for (size_t i = 0; i < v.size(); ++i)
        t[i] = static_cast<float>(v[i]);
}

} // namespace

void
PerfModel::save(std::ostream &os) const
{
    h2o_assert(_trained, "saving an untrained perf model");
    common::writeTaggedScalar(os, "input_dim",
                              static_cast<double>(_inputDim));
    common::writeTaggedScalar(os, "hidden_width",
                              static_cast<double>(_config.hiddenWidth));
    common::writeTaggedScalar(os, "hidden_layers",
                              static_cast<double>(_config.hiddenLayers));
    common::writeTagged(os, "feature_mean", _featureNorm.means());
    common::writeTagged(os, "feature_std", _featureNorm.stddevs());
    common::writeTagged(os, "target_mean", _targetNorm.means());
    common::writeTagged(os, "target_std", _targetNorm.stddevs());
    for (size_t l = 0; l < _mlp->numLayers(); ++l) {
        auto &layer = const_cast<nn::Mlp &>(*_mlp).layer(l);
        common::writeTagged(os, "w" + std::to_string(l),
                            tensorToVector(layer.weights()));
        common::writeTagged(os, "b" + std::to_string(l),
                            tensorToVector(layer.bias()));
    }
    for (size_t h = 0; h < 2; ++h) {
        common::writeTagged(os, "calib" + std::to_string(h),
                            _calibration[h]);
        common::writeTagged(os, "calib_domain" + std::to_string(h),
                            {_calibrationDomain[h].first,
                             _calibrationDomain[h].second});
    }
}

void
PerfModel::load(std::istream &is)
{
    size_t input_dim = static_cast<size_t>(
        common::readTaggedScalar(is, "input_dim"));
    size_t hidden_width = static_cast<size_t>(
        common::readTaggedScalar(is, "hidden_width"));
    size_t hidden_layers = static_cast<size_t>(
        common::readTaggedScalar(is, "hidden_layers"));
    if (input_dim != _inputDim || hidden_width != _config.hiddenWidth ||
        hidden_layers != _config.hiddenLayers) {
        h2o_fatal("perf-model checkpoint topology (", input_dim, "/",
                  hidden_width, "x", hidden_layers,
                  ") does not match this model (", _inputDim, "/",
                  _config.hiddenWidth, "x", _config.hiddenLayers, ")");
    }
    // Sequence the reads explicitly: function-argument evaluation
    // order is unspecified, and these reads consume a stream.
    auto feature_mean = common::readTagged(is, "feature_mean");
    auto feature_std = common::readTagged(is, "feature_std");
    _featureNorm.restore(std::move(feature_mean), std::move(feature_std));
    auto target_mean = common::readTagged(is, "target_mean");
    auto target_std = common::readTagged(is, "target_std");
    _targetNorm.restore(std::move(target_mean), std::move(target_std));
    for (size_t l = 0; l < _mlp->numLayers(); ++l) {
        auto &layer = _mlp->layer(l);
        vectorToTensor(common::readTagged(is, "w" + std::to_string(l)),
                       layer.weights(), "weights");
        vectorToTensor(common::readTagged(is, "b" + std::to_string(l)),
                       layer.bias(), "bias");
    }
    for (size_t h = 0; h < 2; ++h) {
        _calibration[h] =
            common::readTagged(is, "calib" + std::to_string(h));
        auto domain =
            common::readTagged(is, "calib_domain" + std::to_string(h));
        if (domain.size() != 2)
            h2o_fatal("perf-model checkpoint calibration domain malformed");
        _calibrationDomain[h] = {domain[0], domain[1]};
    }
    _trained = true;
}

} // namespace h2o::perfmodel
