/**
 * @file
 * The "real hardware" stand-in for performance-model fine-tuning.
 *
 * The paper fine-tunes its pre-trained performance model on O(20)
 * measurements from actual TPUs (Section 6.2.2); those measurements
 * differ from the pre-training simulator by systematic effects the
 * simulator does not capture (compiler/runtime behavior, congestion,
 * real p99 tails). With no hardware available, HardwareOracle composes
 * the simulator with:
 *
 *  - a deterministic, SMOOTH, NONLINEAR bias — a sinusoid in the log of
 *    the simulated time, plus a constant miscalibration — representing
 *    those systematic sim-to-silicon errors; and
 *  - small heteroscedastic measurement noise.
 *
 * Because the bias is systematic (not noise), a pre-trained model is
 * consistently wrong against the oracle (the paper's 14.7%-42.9% NRMSE)
 * while a handful of oracle measurements suffice to calibrate it back to
 * 1-3% — reproducing the Table 1 dynamic for real, not by construction.
 */

#ifndef H2O_PERFMODEL_HARDWARE_ORACLE_H
#define H2O_PERFMODEL_HARDWARE_ORACLE_H

#include <cstdint>
#include <functional>

#include "common/rng.h"

namespace h2o::perfmodel {

/** One "hardware measurement" of a candidate. */
struct Measurement
{
    double trainStepTimeSec = 0.0;
    double servingTimeSec = 0.0;
};

/** Oracle configuration. */
struct OracleConfig
{
    /** Amplitude of the systematic log-space sinusoidal bias. */
    double biasAmplitude = 0.35;
    /** Frequency of the bias in log-time. */
    double biasFrequency = 1.3;
    /** Constant log-space miscalibration. */
    double biasOffset = 0.12;
    /** Relative measurement noise (stddev as a fraction of the value). */
    double noiseRelStd = 0.01;
};

/**
 * Wraps a simulated (train, serve) time pair into a "hardware
 * measurement".
 */
class HardwareOracle
{
  public:
    /**
     * @param config Bias/noise parameters.
     * @param seed   Determines the bias phase and the noise stream.
     */
    HardwareOracle(OracleConfig config, uint64_t seed);

    /** Measure a candidate given its simulated times. */
    Measurement measure(double sim_train_sec, double sim_serve_sec);

    /** The noiseless systematic transform (for tests). */
    double systematic(double sim_sec) const;

  private:
    OracleConfig _config;
    double _phase;
    common::Rng _noise;
};

} // namespace h2o::perfmodel

#endif // H2O_PERFMODEL_HARDWARE_ORACLE_H
