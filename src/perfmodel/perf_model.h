/**
 * @file
 * The MLP performance model (Section 6.2.1): a small feed-forward
 * regressor with dual heads predicting training and serving performance
 * for the same target model, plus an analytical model-size output that
 * needs no learning. Targets are regressed in log space (execution times
 * span orders of magnitude across a 10^280 search space) with
 * standardized inputs/outputs.
 */

#ifndef H2O_PERFMODEL_PERF_MODEL_H
#define H2O_PERFMODEL_PERF_MODEL_H

#include <array>
#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "nn/mlp.h"
#include "nn/normalizer.h"
#include "nn/optimizer.h"

namespace h2o::common { class Rng; }

namespace h2o::perfmodel {

/** Prediction for one candidate. */
struct PerfPrediction
{
    double trainStepTimeSec = 0.0; ///< head 0
    double servingTimeSec = 0.0;   ///< head 1
    double modelBytes = 0.0;       ///< analytical head (copied through)
};

/** Training hyper-parameters. */
struct PerfModelConfig
{
    size_t hiddenWidth = 512; ///< Table 1: 2 layers x 512 neurons
    size_t hiddenLayers = 2;
    size_t epochs = 30;
    size_t batchSize = 256;
    double learningRate = 2e-3;
    /** Multiplicative learning-rate decay applied after each epoch. */
    double lrDecay = 0.95;
};

/** Dual-head MLP regressor over architecture features. */
class PerfModel
{
  public:
    /**
     * @param input_dim Feature dimensionality.
     * @param config    Topology / training hyper-parameters.
     * @param rng       Weight-initialization stream.
     */
    PerfModel(size_t input_dim, PerfModelConfig config, common::Rng &rng);

    /**
     * Fit on a design matrix. Targets are two columns:
     * {train step time, serving time}, both in seconds (positive).
     *
     * @return Final epoch's mean training loss.
     */
    double train(const std::vector<std::vector<double>> &features,
                 const std::vector<std::array<double, 2>> &targets,
                 common::Rng &rng);

    /** Predict both heads for one feature vector. Equivalent to (and
     *  implemented as) a one-row predictBatch. */
    PerfPrediction predict(const std::vector<double> &features) const;

    /**
     * Predict both heads for a batch of feature vectors with ONE packed
     * MLP forward over an [n, d] matrix — the tiled kernels' fixed
     * per-element contraction order makes every row bit-identical to a
     * one-row predict(), while the batch amortizes dispatch and runs at
     * matrix (not vector) arithmetic intensity.
     */
    std::vector<PerfPrediction>
    predictBatch(const std::vector<std::vector<double>> &features) const;

    /**
     * Apply a post-hoc calibration (from fine-tuning) to subsequent
     * predictions: per head, log-space polynomial in the model's own
     * log prediction. Coefficients are lowest-degree first.
     *
     * Outside [domain_lo, domain_hi] — the range the calibration was
     * fitted on — the polynomial is evaluated at the clamped edge and
     * extended with unit slope, so a cubic fitted on 20 points can
     * never extrapolate wildly.
     */
    void setCalibration(size_t head, std::vector<double> coefficients,
                        double domain_lo = -1e300,
                        double domain_hi = 1e300);

    /** Remove any calibration (predictions revert to the raw MLP). */
    void clearCalibration();

    /** The raw (uncalibrated) log-space prediction of one head. */
    double rawLogPrediction(const std::vector<double> &features,
                            size_t head) const;

    /** Raw log-space predictions of BOTH heads for a batch of feature
     *  vectors, via one packed forward; out[i] = {head 0, head 1}. */
    std::vector<std::array<double, 2>> rawLogPredictionBatch(
        const std::vector<std::vector<double>> &features) const;

    /** True once train() has run. */
    bool trained() const { return _trained; }

    /** Feature dimensionality. */
    size_t inputDim() const { return _inputDim; }

    /**
     * Checkpoint the trained model: topology, normalizers, weights and
     * calibration. Fatal when called before train().
     */
    void save(std::ostream &os) const;

    /**
     * Restore a checkpoint into a model constructed with the SAME
     * topology (input dim, hidden width/layers); fatal on mismatch.
     */
    void load(std::istream &is);

  private:
    double applyCalibration(size_t head, double log_pred) const;

    size_t _inputDim;
    PerfModelConfig _config;
    std::unique_ptr<nn::Mlp> _mlp;
    std::unique_ptr<nn::AdamOptimizer> _optimizer;
    nn::Normalizer _featureNorm;
    nn::Normalizer _targetNorm;
    std::vector<std::vector<double>> _calibration; ///< per head, may be empty
    std::vector<std::pair<double, double>> _calibrationDomain;
    bool _trained = false;
};

} // namespace h2o::perfmodel

#endif // H2O_PERFMODEL_PERF_MODEL_H
