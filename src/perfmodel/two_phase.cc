#include "perfmodel/two_phase.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"

namespace h2o::perfmodel {

std::vector<double>
polyFit(const std::vector<double> &xs, const std::vector<double> &ys,
        size_t degree)
{
    h2o_assert(xs.size() == ys.size() && !xs.empty(), "polyFit data mismatch");
    size_t n = degree + 1;
    h2o_assert(xs.size() >= n, "polyFit underdetermined: ", xs.size(),
               " points for degree ", degree);

    // Normal equations A c = b with A[i][j] = sum x^(i+j).
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    std::vector<double> b(n, 0.0);
    for (size_t k = 0; k < xs.size(); ++k) {
        double pow_i = 1.0;
        for (size_t i = 0; i < n; ++i) {
            double pow_ij = pow_i;
            for (size_t j = 0; j < n; ++j) {
                a[i][j] += pow_ij;
                pow_ij *= xs[k];
            }
            b[i] += pow_i * ys[k];
            pow_i *= xs[k];
        }
    }

    // Gaussian elimination with partial pivoting.
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t row = col + 1; row < n; ++row)
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        h2o_assert(std::abs(a[col][col]) > 1e-12,
                   "polyFit singular system (degenerate inputs)");
        for (size_t row = col + 1; row < n; ++row) {
            double f = a[row][col] / a[col][col];
            for (size_t j = col; j < n; ++j)
                a[row][j] -= f * a[col][j];
            b[row] -= f * b[col];
        }
    }
    std::vector<double> coef(n, 0.0);
    for (size_t row = n; row-- > 0;) {
        double acc = b[row];
        for (size_t j = row + 1; j < n; ++j)
            acc -= a[row][j] * coef[j];
        coef[row] = acc / a[row][row];
    }
    return coef;
}

TwoPhaseTrainer::TwoPhaseTrainer(const searchspace::DecisionSpace &space,
                                 const FeatureEncoder &encoder,
                                 SimulateFn simulate, HardwareOracle oracle)
    : _space(space), _encoder(encoder), _oracle(std::move(oracle))
{
    h2o_assert(simulate, "null simulate functor");
    _simulate = [fn = std::move(simulate)](
                    std::span<const searchspace::Sample> samples) {
        std::vector<SimTimes> times;
        times.reserve(samples.size());
        for (const auto &s : samples)
            times.push_back(fn(s));
        return times;
    };
}

TwoPhaseTrainer::TwoPhaseTrainer(const searchspace::DecisionSpace &space,
                                 const FeatureEncoder &encoder,
                                 SimulateBatchFn simulate_batch,
                                 HardwareOracle oracle)
    : _space(space), _encoder(encoder),
      _simulate(std::move(simulate_batch)), _oracle(std::move(oracle))
{
    h2o_assert(_simulate, "null simulate functor");
}

std::vector<searchspace::Sample>
TwoPhaseTrainer::drawSamples(size_t n, common::Rng &rng) const
{
    std::vector<searchspace::Sample> samples;
    samples.reserve(n);
    for (size_t i = 0; i < n; ++i)
        samples.push_back(_space.uniformSample(rng));
    return samples;
}

EvalNrmse
TwoPhaseTrainer::pretrain(PerfModel &model, size_t num_samples,
                          common::Rng &rng)
{
    h2o_assert(num_samples >= 20, "too few pre-training samples");
    size_t holdout = std::max<size_t>(num_samples / 10, 10);
    size_t train_n = num_samples - holdout;

    // Sampling first, then one batched simulate: the simulator never
    // consumes the RNG, so the draw sequence matches the historical
    // interleaved loop exactly.
    auto samples = drawSamples(num_samples, rng);
    auto times = _simulate(samples);
    h2o_assert(times.size() == num_samples, "simulate batch size mismatch");

    std::vector<std::vector<double>> features;
    std::vector<std::array<double, 2>> targets;
    features.reserve(num_samples);
    targets.reserve(num_samples);
    for (size_t i = 0; i < num_samples; ++i) {
        features.push_back(_encoder.encode(samples[i]));
        targets.push_back({times[i].trainSec, times[i].serveSec});
    }

    std::vector<std::vector<double>> train_x(features.begin(),
                                             features.begin() + train_n);
    std::vector<std::array<double, 2>> train_y(targets.begin(),
                                               targets.begin() + train_n);
    model.train(train_x, train_y, rng);

    std::vector<std::vector<double>> holdout_x(
        features.begin() + train_n, features.end());
    auto preds = model.predictBatch(holdout_x);
    std::vector<double> pred_t, pred_s, true_t, true_s;
    for (size_t i = train_n; i < num_samples; ++i) {
        const PerfPrediction &p = preds[i - train_n];
        pred_t.push_back(p.trainStepTimeSec);
        pred_s.push_back(p.servingTimeSec);
        true_t.push_back(targets[i][0]);
        true_s.push_back(targets[i][1]);
    }
    return {common::nrmse(pred_t, true_t), common::nrmse(pred_s, true_s)};
}

void
TwoPhaseTrainer::finetune(PerfModel &model, size_t num_samples,
                          common::Rng &rng, size_t polynomial_degree)
{
    h2o_assert(model.trained(), "finetune before pretrain");
    h2o_assert(num_samples >= 4, "too few fine-tuning measurements");
    size_t degree = std::min(polynomial_degree, num_samples - 1);

    auto samples = drawSamples(num_samples, rng);
    auto times = _simulate(samples);
    h2o_assert(times.size() == num_samples, "simulate batch size mismatch");

    std::vector<std::vector<double>> features;
    features.reserve(num_samples);
    for (const auto &s : samples)
        features.push_back(_encoder.encode(s));
    auto raw = model.rawLogPredictionBatch(features);

    std::vector<double> raw_t, raw_s, meas_t, meas_s;
    for (size_t i = 0; i < num_samples; ++i) {
        Measurement m =
            _oracle.measure(times[i].trainSec, times[i].serveSec);
        raw_t.push_back(raw[i][0]);
        raw_s.push_back(raw[i][1]);
        meas_t.push_back(std::log(m.trainStepTimeSec));
        meas_s.push_back(std::log(m.servingTimeSec));
    }
    auto domain = [](const std::vector<double> &xs) {
        auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
        return std::pair<double, double>{*lo, *hi};
    };
    auto [t_lo, t_hi] = domain(raw_t);
    model.setCalibration(0, polyFit(raw_t, meas_t, degree), t_lo, t_hi);
    auto [s_lo, s_hi] = domain(raw_s);
    model.setCalibration(1, polyFit(raw_s, meas_s, degree), s_lo, s_hi);
}

EvalNrmse
TwoPhaseTrainer::evaluateAgainstOracle(const PerfModel &model,
                                       size_t num_samples, common::Rng &rng)
{
    auto samples = drawSamples(num_samples, rng);
    auto times = _simulate(samples);
    h2o_assert(times.size() == num_samples, "simulate batch size mismatch");
    std::vector<std::vector<double>> features;
    features.reserve(num_samples);
    for (const auto &s : samples)
        features.push_back(_encoder.encode(s));
    auto preds = model.predictBatch(features);

    std::vector<double> pred_t, pred_s, true_t, true_s;
    for (size_t i = 0; i < num_samples; ++i) {
        Measurement m =
            _oracle.measure(times[i].trainSec, times[i].serveSec);
        pred_t.push_back(preds[i].trainStepTimeSec);
        pred_s.push_back(preds[i].servingTimeSec);
        true_t.push_back(m.trainStepTimeSec);
        true_s.push_back(m.servingTimeSec);
    }
    return {common::nrmse(pred_t, true_t), common::nrmse(pred_s, true_s)};
}

EvalNrmse
TwoPhaseTrainer::evaluateAgainstSimulator(const PerfModel &model,
                                          size_t num_samples,
                                          common::Rng &rng)
{
    auto samples = drawSamples(num_samples, rng);
    auto times = _simulate(samples);
    h2o_assert(times.size() == num_samples, "simulate batch size mismatch");
    std::vector<std::vector<double>> features;
    features.reserve(num_samples);
    for (const auto &s : samples)
        features.push_back(_encoder.encode(s));
    auto preds = model.predictBatch(features);

    std::vector<double> pred_t, pred_s, true_t, true_s;
    for (size_t i = 0; i < num_samples; ++i) {
        pred_t.push_back(preds[i].trainStepTimeSec);
        pred_s.push_back(preds[i].servingTimeSec);
        true_t.push_back(times[i].trainSec);
        true_s.push_back(times[i].serveSec);
    }
    return {common::nrmse(pred_t, true_t), common::nrmse(pred_s, true_s)};
}

} // namespace h2o::perfmodel
