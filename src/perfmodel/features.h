/**
 * @file
 * Architecture feature encoders for the performance model.
 *
 * The performance model's inputs "are the model architecture
 * hyper-parameters as shown in Table 5" (Section 6.2.1). Encoders map a
 * search-space Sample to a fixed-length numeric vector: the raw decoded
 * hyper-parameters (widths, ranks, depths, vocab scales, block choices)
 * plus a few derived log-scale aggregates (FLOPs, parameter counts) that
 * help the MLP resolve the many orders of magnitude the space spans.
 */

#ifndef H2O_PERFMODEL_FEATURES_H
#define H2O_PERFMODEL_FEATURES_H

#include <vector>

#include "searchspace/conv_space.h"
#include "searchspace/dlrm_space.h"
#include "searchspace/vit_space.h"

namespace h2o::perfmodel {

/** Abstract Sample -> feature-vector encoder. */
class FeatureEncoder
{
  public:
    virtual ~FeatureEncoder() = default;

    /** Encode a sample. The returned vector always has dim() entries. */
    virtual std::vector<double> encode(const searchspace::Sample &s) const = 0;

    /** Feature dimensionality. */
    virtual size_t dim() const = 0;
};

/** Encoder over the DLRM search space. */
class DlrmFeatureEncoder : public FeatureEncoder
{
  public:
    explicit DlrmFeatureEncoder(const searchspace::DlrmSearchSpace &space);
    std::vector<double> encode(const searchspace::Sample &s) const override;
    size_t dim() const override { return _dim; }

  private:
    const searchspace::DlrmSearchSpace &_space;
    size_t _dim;
};

/** Encoder over the convolutional search space. */
class ConvFeatureEncoder : public FeatureEncoder
{
  public:
    explicit ConvFeatureEncoder(const searchspace::ConvSearchSpace &space);
    std::vector<double> encode(const searchspace::Sample &s) const override;
    size_t dim() const override { return _dim; }

  private:
    const searchspace::ConvSearchSpace &_space;
    size_t _dim;
};

/** Encoder over the ViT search space. */
class VitFeatureEncoder : public FeatureEncoder
{
  public:
    explicit VitFeatureEncoder(const searchspace::VitSearchSpace &space);
    std::vector<double> encode(const searchspace::Sample &s) const override;
    size_t dim() const override { return _dim; }

  private:
    const searchspace::VitSearchSpace &_space;
    size_t _dim;
};

} // namespace h2o::perfmodel

#endif // H2O_PERFMODEL_FEATURES_H
