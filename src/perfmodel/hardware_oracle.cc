#include "perfmodel/hardware_oracle.h"

#include <cmath>

#include "common/logging.h"

namespace h2o::perfmodel {

HardwareOracle::HardwareOracle(OracleConfig config, uint64_t seed)
    : _config(config), _noise(seed)
{
    common::Rng phase_rng(seed ^ 0x0c0ffee0ULL);
    _phase = phase_rng.uniform(0.0, 2.0 * M_PI);
}

double
HardwareOracle::systematic(double sim_sec) const
{
    h2o_assert(sim_sec > 0.0, "oracle with non-positive simulated time");
    double log_t = std::log(sim_sec);
    double bias = _config.biasAmplitude *
                      std::sin(_config.biasFrequency * log_t + _phase) +
                  _config.biasOffset;
    return std::exp(log_t + bias);
}

Measurement
HardwareOracle::measure(double sim_train_sec, double sim_serve_sec)
{
    Measurement m;
    m.trainStepTimeSec =
        systematic(sim_train_sec) *
        (1.0 + _noise.normal(0.0, _config.noiseRelStd));
    m.servingTimeSec = systematic(sim_serve_sec) *
                       (1.0 + _noise.normal(0.0, _config.noiseRelStd));
    return m;
}

} // namespace h2o::perfmodel
