#include "hw/chip.h"

#include "common/logging.h"

namespace h2o::hw {

namespace {

constexpr double kTera = 1e12;
constexpr double kGiga = 1e9;
constexpr double kMebi = 1024.0 * 1024.0;
constexpr double kGibi = 1024.0 * kMebi;

} // namespace

ChipSpec
tpuV4()
{
    ChipSpec c;
    c.name = "TPUv4";
    c.peakTensorFlops = 275.0 * kTera;
    c.peakVectorFlops = 4.3 * kTera;
    c.tensorTile = 128;
    c.hbmCapacityBytes = 32.0 * kGibi;
    c.hbmBandwidth = 1200.0 * kGiga;
    c.onChipCapacityBytes = 128.0 * kMebi;
    c.onChipBandwidth = 12.0 * kTera; // ~10x HBM
    c.iciBandwidth = 300.0 * kGiga;
    c.idlePowerW = 60.0;
    c.computePowerW = 130.0; // dynamic compute power at full MXU load
    c.hbmEnergyPerByte = 56e-12;    // ~7 pJ/bit
    c.onChipEnergyPerByte = 8e-12;  // ~1 pJ/bit
    return c;
}

ChipSpec
tpuV4i()
{
    ChipSpec c;
    c.name = "TPUv4i";
    c.peakTensorFlops = 138.0 * kTera;
    c.peakVectorFlops = 2.2 * kTera;
    c.tensorTile = 128;
    c.hbmCapacityBytes = 8.0 * kGibi;
    c.hbmBandwidth = 614.0 * kGiga;
    c.onChipCapacityBytes = 128.0 * kMebi;
    c.onChipBandwidth = 6.1 * kTera;
    c.iciBandwidth = 100.0 * kGiga;
    c.idlePowerW = 55.0;
    c.computePowerW = 120.0;
    c.hbmEnergyPerByte = 56e-12;
    c.onChipEnergyPerByte = 8e-12;
    return c;
}

ChipSpec
gpuV100()
{
    ChipSpec c;
    c.name = "GPUv100";
    c.peakTensorFlops = 125.0 * kTera;
    c.peakVectorFlops = 15.7 * kTera; // fp32 CUDA cores
    c.tensorTile = 16;
    c.hbmCapacityBytes = 16.0 * kGibi;
    c.hbmBandwidth = 900.0 * kGiga;
    c.onChipCapacityBytes = 6.0 * kMebi; // L2
    c.onChipBandwidth = 4.0 * kTera;
    c.iciBandwidth = 300.0 * kGiga; // NVLink2 aggregate
    c.idlePowerW = 70.0;
    c.computePowerW = 230.0;
    c.hbmEnergyPerByte = 56e-12;
    c.onChipEnergyPerByte = 10e-12;
    return c;
}

ChipSpec
edgeCpu()
{
    ChipSpec c;
    c.name = "EdgeCPU";
    c.peakTensorFlops = 0.6 * kTera;  // int8/fp16 dot-product SIMD
    c.peakVectorFlops = 0.15 * kTera;
    c.tensorTile = 8; // SIMD lane width, not a systolic array
    c.hbmCapacityBytes = 8.0 * kGibi; // LPDDR4x, shared with the OS
    c.hbmBandwidth = 34.0 * kGiga;
    c.onChipCapacityBytes = 0.0; // no software-managed scratchpad
    c.onChipBandwidth = 200.0 * kGiga; // L2, only reached by spills
    c.iciBandwidth = 2.0 * kGiga; // PCIe/ethernet class
    c.idlePowerW = 2.0;
    c.computePowerW = 8.0;
    c.hbmEnergyPerByte = 150e-12; // LPDDR costs more than HBM per byte
    c.onChipEnergyPerByte = 10e-12;
    return c;
}

ChipSpec
edgeNpu()
{
    ChipSpec c;
    c.name = "EdgeNPU";
    c.peakTensorFlops = 4.0 * kTera;
    c.peakVectorFlops = 0.5 * kTera;
    c.tensorTile = 64;
    c.hbmCapacityBytes = 4.0 * kGibi; // dedicated LPDDR partition
    c.hbmBandwidth = 50.0 * kGiga;
    c.onChipCapacityBytes = 2.0 * kMebi; // tightly banked SRAM
    c.onChipBandwidth = 400.0 * kGiga;
    c.iciBandwidth = 5.0 * kGiga;
    c.idlePowerW = 1.0;
    c.computePowerW = 6.0;
    c.hbmEnergyPerByte = 150e-12;
    c.onChipEnergyPerByte = 12e-12;
    return c;
}

ChipSpec
chipSpec(ChipModel model)
{
    switch (model) {
      case ChipModel::TpuV4:
        return tpuV4();
      case ChipModel::TpuV4i:
        return tpuV4i();
      case ChipModel::GpuV100:
        return gpuV100();
      case ChipModel::EdgeCpu:
        return edgeCpu();
      case ChipModel::EdgeNpu:
        return edgeNpu();
    }
    h2o_panic("unhandled chip model");
}

namespace {

constexpr ChipModel kAllModels[] = {
    ChipModel::TpuV4,   ChipModel::TpuV4i,  ChipModel::GpuV100,
    ChipModel::EdgeCpu, ChipModel::EdgeNpu,
};

} // namespace

std::span<const ChipModel>
allChipModels()
{
    return kAllModels;
}

const char *
chipModelName(ChipModel model)
{
    switch (model) {
      case ChipModel::TpuV4:
        return "tpuv4";
      case ChipModel::TpuV4i:
        return "tpuv4i";
      case ChipModel::GpuV100:
        return "v100";
      case ChipModel::EdgeCpu:
        return "edgecpu";
      case ChipModel::EdgeNpu:
        return "edgenpu";
    }
    h2o_panic("unhandled chip model");
}

std::string
chipNamesHelp()
{
    std::string help;
    for (ChipModel model : allChipModels()) {
        if (!help.empty())
            help += '|';
        help += chipModelName(model);
    }
    return help;
}

ChipModel
chipModelFromName(const std::string &name)
{
    for (ChipModel model : allChipModels())
        if (name == chipModelName(model))
            return model;
    if (name == "gpuv100")
        return ChipModel::GpuV100;
    h2o_fatal("unknown chip '", name, "' (valid: ", chipNamesHelp(), ")");
}

Platform
trainingPlatform()
{
    return Platform{tpuV4(), 128};
}

Platform
servingPlatform()
{
    return Platform{tpuV4i(), 1};
}

} // namespace h2o::hw
