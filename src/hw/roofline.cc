#include "hw/roofline.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace h2o::hw {

RooflinePoint
rooflineTensor(const ChipSpec &chip, double flops, double hbm_bytes,
               double efficiency)
{
    h2o_assert(flops >= 0.0 && hbm_bytes >= 0.0, "negative op cost");
    h2o_assert(efficiency > 0.0 && efficiency <= 1.0,
               "efficiency out of (0,1]: ", efficiency);
    RooflinePoint p;
    double bytes = std::max(hbm_bytes, 1.0);
    p.operationalIntensity = flops / bytes;
    double compute_ceiling = chip.peakTensorFlops * efficiency;
    double memory_ceiling = p.operationalIntensity * chip.hbmBandwidth;
    if (memory_ceiling < compute_ceiling) {
        p.attainableFlops = memory_ceiling;
        p.boundBy = BoundBy::Memory;
    } else {
        p.attainableFlops = compute_ceiling;
        p.boundBy = BoundBy::TensorCompute;
    }
    p.utilization = p.attainableFlops / chip.peakTensorFlops;
    return p;
}

RooflinePoint
rooflineVector(const ChipSpec &chip, double flops, double hbm_bytes)
{
    h2o_assert(flops >= 0.0 && hbm_bytes >= 0.0, "negative op cost");
    RooflinePoint p;
    double bytes = std::max(hbm_bytes, 1.0);
    p.operationalIntensity = flops / bytes;
    double memory_ceiling = p.operationalIntensity * chip.hbmBandwidth;
    if (memory_ceiling < chip.peakVectorFlops) {
        p.attainableFlops = memory_ceiling;
        p.boundBy = BoundBy::Memory;
    } else {
        p.attainableFlops = chip.peakVectorFlops;
        p.boundBy = BoundBy::VectorCompute;
    }
    p.utilization = p.attainableFlops / chip.peakTensorFlops;
    return p;
}

double
tileEfficiency(const ChipSpec &chip, double m, double n, double k)
{
    h2o_assert(m > 0 && n > 0 && k > 0, "non-positive matmul dims");
    double tile = chip.tensorTile;
    auto pad = [tile](double d) {
        return std::ceil(d / tile) * tile;
    };
    double useful = m * n * k;
    double issued = pad(m) * pad(n) * pad(k);
    return std::clamp(useful / issued, 1e-3, 1.0);
}

const char *
boundName(BoundBy bound)
{
    switch (bound) {
      case BoundBy::TensorCompute:
        return "tensor-compute";
      case BoundBy::VectorCompute:
        return "vector-compute";
      case BoundBy::Memory:
        return "memory";
      case BoundBy::Network:
        return "network";
    }
    h2o_panic("unhandled bound");
}

} // namespace h2o::hw
