#include "hw/target_set.h"

#include "common/logging.h"

namespace h2o::hw {

TargetSet::TargetSet(std::vector<Target> targets)
    : _targets(std::move(targets))
{
    for (size_t i = 0; i < _targets.size(); ++i) {
        const Target &t = _targets[i];
        if (t.name.empty())
            h2o_fatal("target ", i, " has an empty name");
        if (t.platform.numChips == 0)
            h2o_fatal("target '", t.name, "' has zero chips");
        h2o_assert(t.platform.chip.peakTensorFlops > 0.0 &&
                       t.platform.chip.hbmBandwidth > 0.0 &&
                       t.platform.chip.onChipBandwidth > 0.0 &&
                       t.platform.chip.iciBandwidth > 0.0,
                   "target '", t.name, "' has non-positive hardware rates");
        for (size_t j = 0; j < i; ++j)
            if (_targets[j].name == t.name)
                h2o_fatal("duplicate target name '", t.name, "'");
    }
}

TargetSet
TargetSet::fromNames(const std::string &csv, uint32_t numChips)
{
    std::vector<Target> targets;
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string name = csv.substr(start, comma - start);
        if (!name.empty()) {
            ChipModel model = chipModelFromName(name);
            targets.push_back(Target{chipModelName(model),
                                     Platform{chipSpec(model), numChips}});
        }
        start = comma + 1;
    }
    return TargetSet(std::move(targets));
}

TargetSet
TargetSet::fromModels(std::span<const ChipModel> models, uint32_t numChips)
{
    std::vector<Target> targets;
    targets.reserve(models.size());
    for (ChipModel model : models)
        targets.push_back(Target{chipModelName(model),
                                 Platform{chipSpec(model), numChips}});
    return TargetSet(std::move(targets));
}

std::vector<std::string>
TargetSet::names() const
{
    std::vector<std::string> out;
    out.reserve(_targets.size());
    for (const Target &t : _targets)
        out.push_back(t.name);
    return out;
}

} // namespace h2o::hw
