#include "hw/power.h"

#include <algorithm>

#include "common/logging.h"

namespace h2o::hw {

double
averagePowerW(const ChipSpec &chip, const ActivityProfile &activity)
{
    h2o_assert(activity.tensorUtilization >= 0.0 &&
                   activity.tensorUtilization <= 1.0 + 1e-9,
               "utilization out of range: ", activity.tensorUtilization);
    h2o_assert(activity.hbmBytesPerSec >= 0.0 &&
                   activity.onChipBytesPerSec >= 0.0,
               "negative memory traffic");
    double util = std::clamp(activity.tensorUtilization, 0.0, 1.0);
    double compute = chip.computePowerW * util;
    double memory = activity.hbmBytesPerSec * chip.hbmEnergyPerByte +
                    activity.onChipBytesPerSec * chip.onChipEnergyPerByte;
    return chip.idlePowerW + compute + memory;
}

double
energyJ(const ChipSpec &chip, const ActivityProfile &activity,
        double seconds)
{
    h2o_assert(seconds >= 0.0, "negative duration");
    return averagePowerW(chip, activity) * seconds;
}

} // namespace h2o::hw
