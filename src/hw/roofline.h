/**
 * @file
 * Roofline evaluation: attainable compute rate for an op given its
 * operational intensity and the chip's compute/memory ceilings. This is
 * the analysis behind Figure 4b of the paper (MBConv vs fused MBConv on
 * TPUv4i) and the per-op timing inside the performance simulator.
 */

#ifndef H2O_HW_ROOFLINE_H
#define H2O_HW_ROOFLINE_H

#include "hw/chip.h"

namespace h2o::hw {

/** Which ceiling bounds an op under the roofline model. */
enum class BoundBy { TensorCompute, VectorCompute, Memory, Network };

/** Result of a roofline evaluation for one op. */
struct RooflinePoint
{
    double operationalIntensity; ///< FLOP per HBM byte
    double attainableFlops;      ///< FLOP/s under the roofline
    BoundBy boundBy;             ///< binding ceiling
    double utilization;          ///< attainable / peak tensor FLOPS
};

/**
 * Evaluate the roofline for a tensor-unit op.
 *
 * @param chip        Target chip.
 * @param flops       Total FLOPs of the op.
 * @param hbm_bytes   Bytes moved to/from HBM.
 * @param efficiency  Fraction of peak the op can reach even when
 *                    compute-bound (tile-quantization effects), in (0, 1].
 */
RooflinePoint rooflineTensor(const ChipSpec &chip, double flops,
                             double hbm_bytes, double efficiency = 1.0);

/**
 * Evaluate the roofline for a vector-unit op (elementwise, activations,
 * batch-norm): ceiling is peakVectorFlops instead of the tensor unit.
 */
RooflinePoint rooflineVector(const ChipSpec &chip, double flops,
                             double hbm_bytes);

/**
 * Tile-quantization efficiency for a matrix op with the given dims: each
 * dimension is padded up to the chip's tensorTile, so e.g. a 96-wide
 * matmul on a 128-lane MXU wastes a quarter of the lanes. Returns the
 * fraction of issued lanes doing useful work, in (0, 1].
 */
double tileEfficiency(const ChipSpec &chip, double m, double n, double k);

/** Human-readable name for a bound. */
const char *boundName(BoundBy bound);

} // namespace h2o::hw

#endif // H2O_HW_ROOFLINE_H
