/**
 * @file
 * Chip power/energy model used by the Figure 9 study.
 *
 * Power = idle + compute-dynamic (scales with tensor-unit utilization)
 *       + memory-dynamic (bytes/s times per-byte energy, split between
 *         cheap on-chip CMEM and expensive off-chip HBM).
 *
 * This reproduces the paper's counter-intuitive findings: CoAtNet-H5 runs
 * 1.84x faster *and* at lower power because its compute rate (utilization)
 * drops 14% while its extra memory traffic lands mostly in CMEM; and
 * memory-bound EfficientNet keeps utilization so low that idle power
 * dominates, making *performance* the only energy lever.
 */

#ifndef H2O_HW_POWER_H
#define H2O_HW_POWER_H

#include "hw/chip.h"

namespace h2o::hw {

/** Activity profile of a model execution on one chip. */
struct ActivityProfile
{
    double tensorUtilization;  ///< achieved / peak tensor FLOPS, [0, 1]
    double hbmBytesPerSec;     ///< average HBM traffic
    double onChipBytesPerSec;  ///< average CMEM traffic
};

/** Average power (watts) for a chip running at the given activity. */
double averagePowerW(const ChipSpec &chip, const ActivityProfile &activity);

/**
 * Energy (joules) for an execution of the given duration:
 * Energy = ExecutionTime x Power, exactly as Section 7.2 computes it.
 */
double energyJ(const ChipSpec &chip, const ActivityProfile &activity,
               double seconds);

} // namespace h2o::hw

#endif // H2O_HW_POWER_H
