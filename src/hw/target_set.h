/**
 * @file
 * Named deployment targets for joint multi-target search.
 *
 * A TargetSet is an ordered list of named Platforms a single search
 * scores every candidate against. Order is part of the contract: cost
 * vectors, reward combiners and Pareto fronts all index targets by
 * position, and checkpoints validate the list by name so a resumed
 * search cannot silently reinterpret its per-chip columns.
 */

#ifndef H2O_HW_TARGET_SET_H
#define H2O_HW_TARGET_SET_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "hw/chip.h"

namespace h2o::hw {

/** One named deployment target of a joint multi-target search. */
struct Target
{
    /** Registry name the target parses back from ("tpuv4i", "edgecpu"). */
    std::string name;
    /** The hardware a winning candidate would ship on. */
    Platform platform;
};

/**
 * Ordered, uniquely-named list of deployment targets.
 *
 * An empty set means "single-target mode" everywhere it is consumed; a
 * one-element set is required to behave byte-identically to the legacy
 * single-platform path (same SimCache keys, same reward arithmetic).
 */
class TargetSet
{
  public:
    TargetSet() = default;

    /** Validates: non-empty names, unique names, positive chip rates. */
    explicit TargetSet(std::vector<Target> targets);

    /** Build from a comma-separated list of registry chip names, e.g.
     *  "tpuv4i,edgecpu,edgenpu". Each target gets `numChips` chips.
     *  Fatal on unknown or duplicate names. */
    static TargetSet fromNames(const std::string &csv, uint32_t numChips = 1);

    /** Build from chip models; target names are the registry names. */
    static TargetSet fromModels(std::span<const ChipModel> models,
                                uint32_t numChips = 1);

    size_t size() const { return _targets.size(); }
    bool empty() const { return _targets.empty(); }
    const Target &operator[](size_t i) const { return _targets[i]; }

    std::vector<Target>::const_iterator begin() const
    {
        return _targets.begin();
    }
    std::vector<Target>::const_iterator end() const { return _targets.end(); }

    /** Target names in set order (the multi-target checkpoint identity). */
    std::vector<std::string> names() const;

  private:
    std::vector<Target> _targets;
};

} // namespace h2o::hw

#endif // H2O_HW_TARGET_SET_H
