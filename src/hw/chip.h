/**
 * @file
 * Datacenter ML accelerator descriptions.
 *
 * A ChipSpec captures the subsystems the paper's performance simulator
 * models (Section 6.2.3): matrix/tensor units (MXUs on TPUs, Tensor Cores
 * on GPUs), vector processing units, the two-level memory system
 * (on-chip CMEM-style SRAM plus off-chip HBM), and the chip-to-chip
 * interconnect used by distributed embedding layers. Numbers follow the
 * public TPUv4 / TPUv4i / V100 characterizations cited by the paper
 * (Jouppi et al. 2021/2022, NVIDIA whitepapers); exact magnitudes matter
 * less than the *ratios*, which determine roofline shape and crossovers.
 */

#ifndef H2O_HW_CHIP_H
#define H2O_HW_CHIP_H

#include <cstdint>
#include <span>
#include <string>

namespace h2o::hw {

/** Identifier for the built-in chip models. */
enum class ChipModel { TpuV4, TpuV4i, GpuV100, EdgeCpu, EdgeNpu };

/**
 * Static description of one accelerator chip.
 */
struct ChipSpec
{
    std::string name;

    // --- Compute ---
    /** Peak matrix-unit throughput (bf16/fp16 MAC), FLOP/s. */
    double peakTensorFlops;
    /** Peak vector-unit throughput, FLOP/s (elementwise / activations). */
    double peakVectorFlops;
    /** Systolic array edge (TPU MXU 128, GPU tensor tile 16): dimensions
     *  not a multiple of this waste lanes. */
    uint32_t tensorTile;

    // --- Memory ---
    /** Off-chip HBM capacity, bytes. */
    double hbmCapacityBytes;
    /** Off-chip HBM bandwidth, bytes/s. */
    double hbmBandwidth;
    /** On-chip scratchpad (CMEM/L2) capacity, bytes. */
    double onChipCapacityBytes;
    /** On-chip scratchpad bandwidth, bytes/s. */
    double onChipBandwidth;

    // --- Network ---
    /** Per-chip interconnect (ICI / NVLink) bandwidth, bytes/s. */
    double iciBandwidth;

    // --- Power ---
    /** Idle power draw, watts. */
    double idlePowerW;
    /** Power at full tensor-unit utilization, watts (excl. memory). */
    double computePowerW;
    /** HBM access energy, joules per byte. */
    double hbmEnergyPerByte;
    /** On-chip access energy, joules per byte (CMEM is far cheaper than
     *  HBM, which is why CoAtNet-H's 5.3x CMEM bandwidth increase does not
     *  cost power — Section 7.2). */
    double onChipEnergyPerByte;

    /** Machine-balance point: FLOP/byte where HBM roofline meets peak. */
    double ridgeIntensity() const { return peakTensorFlops / hbmBandwidth; }
};

/** The TPUv4 training chip (275 TFLOPS bf16, 1.2 TB/s HBM, 128 MB CMEM). */
ChipSpec tpuV4();

/** The TPUv4i inference chip (138 TFLOPS bf16, 614 GB/s HBM, 128 MB CMEM). */
ChipSpec tpuV4i();

/** The NVIDIA V100 (125 TFLOPS fp16 tensor core, 900 GB/s HBM2). */
ChipSpec gpuV100();

/** An edge CPU-class device: no dedicated on-chip scratchpad (the
 *  zero-byte CMEM budget makes the memory-placement pass spill every
 *  tensor to LPDDR), narrow SIMD tiles, tens of GB/s DRAM. */
ChipSpec edgeCpu();

/** A small edge NPU: real tensor unit but only a few MB of tightly
 *  banked SRAM, so CMEM residency decisions dominate its roofline. */
ChipSpec edgeNpu();

/** Fetch a built-in chip by model enum. */
ChipSpec chipSpec(ChipModel model);

/** Every built-in chip model, in registry (= parse help) order. */
std::span<const ChipModel> allChipModels();

/** Canonical parse name of a model ("tpuv4i", "edgecpu", ...). */
const char *chipModelName(ChipModel model);

/** Pipe-separated list of canonical chip names, for flag help text. */
std::string chipNamesHelp();

/** Parse a canonical chip name (see chipNamesHelp()); "gpuv100" is
 *  accepted as an alias for "v100". Fatal on unknown names, listing
 *  the valid ones. */
ChipModel chipModelFromName(const std::string &name);

/**
 * A deployment platform: N chips of one model connected by ICI.
 * The paper trains on 128 TPUv4 and serves on 1 TPUv4i (Table 2).
 */
struct Platform
{
    ChipSpec chip;
    uint32_t numChips;

    /** Aggregate tensor FLOP/s across the platform. */
    double totalTensorFlops() const
    {
        return chip.peakTensorFlops * numChips;
    }

    /** Aggregate HBM capacity across the platform. */
    double totalHbmCapacity() const
    {
        return chip.hbmCapacityBytes * numChips;
    }
};

/** The paper's training platform: 128x TPUv4. */
Platform trainingPlatform();

/** The paper's serving platform: 1x TPUv4i. */
Platform servingPlatform();

} // namespace h2o::hw

#endif // H2O_HW_CHIP_H
