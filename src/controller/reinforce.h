/**
 * @file
 * The REINFORCE controller (Williams 1992), as used by the paper's search
 * algorithm: rewards from the sampled architectures update the policy
 * with a moving-average baseline for variance reduction and an optional
 * entropy bonus to keep exploration alive early in the search.
 *
 * One-shot rewards are only comparable within a step (Section 2.1), so
 * the controller centers each step's rewards against the baseline before
 * the cross-shard gradient is applied.
 */

#ifndef H2O_CONTROLLER_REINFORCE_H
#define H2O_CONTROLLER_REINFORCE_H

#include <istream>
#include <ostream>
#include <vector>

#include "controller/policy.h"

namespace h2o::controller {

/** REINFORCE hyperparameters. */
struct ReinforceConfig
{
    double learningRate = 0.05;
    /** Exponential moving-average factor for the reward baseline. */
    double baselineMomentum = 0.9;
    /** Entropy-bonus weight; 0 disables it. */
    double entropyWeight = 1e-3;
};

/** Telemetry from one controller update. */
struct ControllerStats
{
    double meanReward = 0.0;
    double baseline = 0.0;
    double meanEntropy = 0.0;
};

/**
 * REINFORCE over a Policy. update() performs the cross-shard policy
 * update of Figure 2: all shards' (sample, reward) pairs contribute to
 * one aggregated gradient per step.
 */
class ReinforceController
{
  public:
    /**
     * @param space  Decision space of the search.
     * @param config Hyperparameters.
     */
    ReinforceController(const searchspace::DecisionSpace &space,
                        ReinforceConfig config = ReinforceConfig{});

    /** The current policy (sampling, argmax finalization). */
    Policy &policy() { return _policy; }

    /** The current policy (const). */
    const Policy &policy() const { return _policy; }

    /**
     * Apply one step's cross-shard update from all shards' samples and
     * rewards (parallel arrays, one entry per shard/candidate).
     */
    ControllerStats update(const std::vector<searchspace::Sample> &samples,
                           const std::vector<double> &rewards);

    /** Current moving-average reward baseline. */
    double baseline() const { return _baseline; }

    /**
     * Checkpoint the full controller state: policy logits plus the
     * moving-average baseline. The baseline matters for exact resume —
     * the first post-restart update must center rewards against the
     * same value the uninterrupted run would have used.
     */
    void save(std::ostream &os) const;

    /** Restore a checkpointed controller; fatal on mismatch. */
    void load(std::istream &is);

  private:
    Policy _policy;
    ReinforceConfig _config;
    double _baseline = 0.0;
    bool _baselineInit = false;
};

} // namespace h2o::controller

#endif // H2O_CONTROLLER_REINFORCE_H
