#include "controller/policy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace h2o::controller {

namespace {

/** Numerically-stable softmax. */
std::vector<double>
softmax(const std::vector<double> &logits)
{
    double mx = *std::max_element(logits.begin(), logits.end());
    std::vector<double> p(logits.size());
    double total = 0.0;
    for (size_t i = 0; i < logits.size(); ++i) {
        p[i] = std::exp(logits[i] - mx);
        total += p[i];
    }
    for (auto &v : p)
        v /= total;
    return p;
}

} // namespace

Policy::Policy(const searchspace::DecisionSpace &space)
{
    _logits.reserve(space.numDecisions());
    _grads.reserve(space.numDecisions());
    for (const auto &d : space.decisions()) {
        _logits.emplace_back(d.numChoices, 0.0);
        _grads.emplace_back(d.numChoices, 0.0);
    }
}

searchspace::Sample
Policy::sample(common::Rng &rng) const
{
    searchspace::Sample s(_logits.size());
    for (size_t d = 0; d < _logits.size(); ++d) {
        auto p = softmax(_logits[d]);
        s[d] = rng.categorical(p);
    }
    return s;
}

searchspace::Sample
Policy::argmax() const
{
    searchspace::Sample s(_logits.size());
    for (size_t d = 0; d < _logits.size(); ++d) {
        s[d] = static_cast<size_t>(
            std::max_element(_logits[d].begin(), _logits[d].end()) -
            _logits[d].begin());
    }
    return s;
}

double
Policy::logProb(const searchspace::Sample &sample) const
{
    h2o_assert(sample.size() == _logits.size(), "sample size mismatch");
    double total = 0.0;
    for (size_t d = 0; d < _logits.size(); ++d) {
        auto p = softmax(_logits[d]);
        h2o_assert(sample[d] < p.size(), "choice out of range");
        total += std::log(std::max(p[sample[d]], 1e-300));
    }
    return total;
}

std::vector<double>
Policy::probs(size_t decision) const
{
    h2o_assert(decision < _logits.size(), "decision index out of range");
    return softmax(_logits[decision]);
}

double
Policy::meanEntropy() const
{
    if (_logits.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &logits : _logits) {
        auto p = softmax(logits);
        double h = 0.0;
        for (double v : p)
            if (v > 0.0)
                h -= v * std::log(v);
        total += h;
    }
    return total / static_cast<double>(_logits.size());
}

void
Policy::accumulateGrad(const searchspace::Sample &sample, double advantage)
{
    h2o_assert(sample.size() == _logits.size(), "sample size mismatch");
    for (size_t d = 0; d < _logits.size(); ++d) {
        auto p = softmax(_logits[d]);
        for (size_t j = 0; j < p.size(); ++j) {
            double indicator = (j == sample[d]) ? 1.0 : 0.0;
            _grads[d][j] += advantage * (indicator - p[j]);
        }
    }
}

void
Policy::accumulateEntropyGrad(double weight)
{
    for (size_t d = 0; d < _logits.size(); ++d) {
        auto p = softmax(_logits[d]);
        double h = 0.0;
        for (double v : p)
            if (v > 0.0)
                h -= v * std::log(v);
        for (size_t j = 0; j < p.size(); ++j) {
            double logp = std::log(std::max(p[j], 1e-300));
            _grads[d][j] += weight * (-p[j] * (logp + h));
        }
    }
}

void
Policy::mergeGrad(const Policy &other)
{
    h2o_assert(other._grads.size() == _grads.size(),
               "merging incompatible policies");
    for (size_t d = 0; d < _grads.size(); ++d) {
        h2o_assert(other._grads[d].size() == _grads[d].size(),
                   "merging incompatible decision ", d);
        for (size_t j = 0; j < _grads[d].size(); ++j)
            _grads[d][j] += other._grads[d][j];
    }
}

void
Policy::applyGrad(double lr)
{
    for (size_t d = 0; d < _grads.size(); ++d) {
        for (size_t j = 0; j < _grads[d].size(); ++j) {
            _logits[d][j] += lr * _grads[d][j];
            _grads[d][j] = 0.0;
        }
    }
}

void
Policy::zeroGrad()
{
    for (auto &g : _grads)
        std::fill(g.begin(), g.end(), 0.0);
}

const std::vector<double> &
Policy::logits(size_t decision) const
{
    h2o_assert(decision < _logits.size(), "decision index out of range");
    return _logits[decision];
}

void
Policy::save(std::ostream &os) const
{
    common::writeTaggedScalar(os, "policy_decisions",
                              static_cast<double>(_logits.size()));
    for (size_t d = 0; d < _logits.size(); ++d)
        common::writeTagged(os, "logits" + std::to_string(d), _logits[d]);
}

void
Policy::load(std::istream &is)
{
    size_t decisions = static_cast<size_t>(
        common::readTaggedScalar(is, "policy_decisions"));
    if (decisions != _logits.size())
        h2o_fatal("policy checkpoint has ", decisions,
                  " decisions, space has ", _logits.size());
    for (size_t d = 0; d < _logits.size(); ++d) {
        auto values = common::readTagged(is, "logits" + std::to_string(d));
        if (values.size() != _logits[d].size())
            h2o_fatal("policy checkpoint decision ", d, " has ",
                      values.size(), " choices, space has ",
                      _logits[d].size());
        _logits[d] = std::move(values);
    }
}

} // namespace h2o::controller
