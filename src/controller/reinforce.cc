#include "controller/reinforce.h"

#include "common/logging.h"
#include "common/serialize.h"
#include "common/stats.h"

namespace h2o::controller {

ReinforceController::ReinforceController(
    const searchspace::DecisionSpace &space, ReinforceConfig config)
    : _policy(space), _config(config)
{
    h2o_assert(_config.learningRate > 0.0, "non-positive RL learning rate");
    h2o_assert(_config.baselineMomentum >= 0.0 &&
                   _config.baselineMomentum < 1.0,
               "baseline momentum out of [0, 1)");
}

ControllerStats
ReinforceController::update(
    const std::vector<searchspace::Sample> &samples,
    const std::vector<double> &rewards)
{
    h2o_assert(samples.size() == rewards.size() && !samples.empty(),
               "controller update with mismatched samples/rewards");

    double mean_reward = common::mean(rewards);
    if (!_baselineInit) {
        _baseline = mean_reward;
        _baselineInit = true;
    }

    double inv = 1.0 / static_cast<double>(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
        double advantage = (rewards[i] - _baseline) * inv;
        _policy.accumulateGrad(samples[i], advantage);
    }
    if (_config.entropyWeight > 0.0)
        _policy.accumulateEntropyGrad(_config.entropyWeight);
    _policy.applyGrad(_config.learningRate);

    _baseline = _config.baselineMomentum * _baseline +
                (1.0 - _config.baselineMomentum) * mean_reward;

    ControllerStats stats;
    stats.meanReward = mean_reward;
    stats.baseline = _baseline;
    stats.meanEntropy = _policy.meanEntropy();
    return stats;
}

void
ReinforceController::save(std::ostream &os) const
{
    _policy.save(os);
    common::writeTaggedScalar(os, "baseline", _baseline);
    common::writeTaggedScalar(os, "baseline_init",
                              _baselineInit ? 1.0 : 0.0);
}

void
ReinforceController::load(std::istream &is)
{
    _policy.load(is);
    _baseline = common::readTaggedScalar(is, "baseline");
    _baselineInit = common::readTaggedScalar(is, "baseline_init") != 0.0;
}

} // namespace h2o::controller
