/**
 * @file
 * The RL policy pi: a probability distribution over a collection of
 * independent multinomial variables, one per categorical decision of the
 * search space (Section 4.1). Parameterized by per-decision logits with
 * softmax sampling; at the end of a search the final architecture is the
 * per-decision argmax.
 */

#ifndef H2O_CONTROLLER_POLICY_H
#define H2O_CONTROLLER_POLICY_H

#include <istream>
#include <ostream>
#include <vector>

#include "searchspace/decision_space.h"

namespace h2o::common { class Rng; }

namespace h2o::controller {

/** Softmax policy over independent categorical decisions. */
class Policy
{
  public:
    /** Uniform-initialized policy over a decision space. */
    explicit Policy(const searchspace::DecisionSpace &space);

    /** Number of decisions. */
    size_t numDecisions() const { return _logits.size(); }

    /** Sample one architecture from pi. */
    searchspace::Sample sample(common::Rng &rng) const;

    /** Most probable value for each decision (search finalization). */
    searchspace::Sample argmax() const;

    /** log pi(sample). */
    double logProb(const searchspace::Sample &sample) const;

    /** Softmax probabilities for one decision. */
    std::vector<double> probs(size_t decision) const;

    /** Mean per-decision entropy (nats); uniform policy maximizes it. */
    double meanEntropy() const;

    /**
     * Accumulate the REINFORCE gradient of `advantage` x log pi(sample)
     * into the internal gradient buffer (d log pi / d logit_j =
     * 1[j = a] - p_j).
     */
    void accumulateGrad(const searchspace::Sample &sample, double advantage);

    /**
     * Accumulate the entropy-bonus gradient scaled by `weight`
     * (dH/d logit_j = -p_j (log p_j + H)).
     */
    void accumulateEntropyGrad(double weight);

    /**
     * Merge another policy's accumulated gradients into this one — the
     * cross-shard policy update of the parallel single-step algorithm.
     */
    void mergeGrad(const Policy &other);

    /** Gradient-ascent step with the given learning rate; zeroes grads. */
    void applyGrad(double lr);

    /** Zero the gradient buffer. */
    void zeroGrad();

    /** Raw logits for one decision (inspection / tests). */
    const std::vector<double> &logits(size_t decision) const;

    /**
     * Checkpoint the policy (Section 7.3: production searches must
     * survive restarts). Gradient accumulators are not persisted.
     */
    void save(std::ostream &os) const;

    /**
     * Restore a checkpoint. Fatal when the checkpoint's decision
     * structure does not match this policy's space.
     */
    void load(std::istream &is);

  private:
    std::vector<std::vector<double>> _logits;
    std::vector<std::vector<double>> _grads;
};

} // namespace h2o::controller

#endif // H2O_CONTROLLER_POLICY_H
