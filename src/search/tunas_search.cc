#include "search/tunas_search.h"

#include "common/logging.h"
#include "eval/eval_engine.h"
#include "exec/fault_injector.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"

namespace h2o::search {

TunasSearch::TunasSearch(const searchspace::DlrmSearchSpace &space,
                         supernet::DlrmSupernet &supernet,
                         pipeline::InMemoryPipeline &pipe, PerfFn perf,
                         const reward::RewardFunction &rewardf,
                         TunasSearchConfig config)
    : TunasSearch(space, supernet, pipe,
                  eval::PerfStage(std::move(perf)), rewardf, config)
{
}

TunasSearch::TunasSearch(const searchspace::DlrmSearchSpace &space,
                         supernet::DlrmSupernet &supernet,
                         pipeline::InMemoryPipeline &pipe,
                         PerfBatchFn perf_batch,
                         const reward::RewardFunction &rewardf,
                         TunasSearchConfig config)
    : TunasSearch(space, supernet, pipe,
                  eval::PerfStage(std::move(perf_batch)), rewardf, config)
{
}

TunasSearch::TunasSearch(const searchspace::DlrmSearchSpace &space,
                         supernet::DlrmSupernet &supernet,
                         pipeline::InMemoryPipeline &pipe,
                         eval::PerfStage perf,
                         const reward::RewardFunction &rewardf,
                         TunasSearchConfig config)
    : _space(space), _supernet(supernet), _pipeline(pipe),
      _perf(std::move(perf)), _reward(rewardf), _config(config)
{
    h2o_assert(_perf.perCandidate || _perf.batched,
               "null performance functor");
    h2o_assert(_config.numIterations > 0, "degenerate configuration");
}

SearchOutcome
TunasSearch::run(common::Rng &rng)
{
    controller::ReinforceController controller(_space.decisions(),
                                               _config.rl);
    SearchOutcome outcome;
    common::Rng sample_rng = rng.fork(1);

    // TuNAS "was not built for hyperscale deployments, and therefore
    // lacks parallelism": a single worker and a single shard. Running it
    // through the eval engine anyway gives the baseline the same
    // fault-tolerance story (retry with backoff; a preempted step is
    // simply lost) so head-to-head fleet experiments are fair. The
    // single-worker engine executes its shard inline on this thread
    // (no pool hand-off), which keeps the baseline's step loop honest:
    // its wall-clock contains no multithreading tax it never asked for.
    eval::EvalEngine engine(_perf, _reward,
                            {1, 1, false, _config.faults,
                             _config.maxShardAttempts,
                             _config.retryBackoffMs});
    exec::ShardRunner &runner = engine.runner();

    for (size_t step = 0; step < _config.warmupSteps; ++step) {
        runner.runStep(step, [&](size_t) {
            auto sample = _space.decisions().uniformSample(sample_rng);
            auto lease = _pipeline.lease();
            _supernet.configure(sample);
            _supernet.accumulateGradients(lease.batch());
            lease.markAlphaUse(); // satisfies the pipeline ordering contract
            lease.markWeightUse();
            _supernet.applyGradients(_config.weightLr);
        });
    }

    for (size_t iter = 0; iter < _config.numIterations; ++iter) {
        // --- W-step on a "training" batch (no candidate evaluation —
        // the runner alone keeps the fault-step sequence contiguous).
        runner.runStep(_config.warmupSteps + 2 * iter, [&](size_t) {
            auto sample = controller.policy().sample(sample_rng);
            auto lease = _pipeline.lease();
            _supernet.configure(sample);
            _supernet.accumulateGradients(lease.batch());
            lease.markAlphaUse();
            lease.markWeightUse();
            _supernet.applyGradients(_config.weightLr);
        });
        // --- pi-step on a separate "validation" batch (never trains W):
        // quality from the supernet inside the shard body, then the
        // engine's batched performance + reward stages.
        auto ev = engine.evaluate(
            _config.warmupSteps + 2 * iter + 1,
            [&](size_t, searchspace::Sample &sample, double &quality) {
                sample = controller.policy().sample(sample_rng);
                auto lease = _pipeline.lease();
                _supernet.configure(sample);
                auto eval_res = _supernet.evaluate(lease.batch());
                lease.markAlphaUse();
                quality = eval_res.quality();
            });
        if (ev.survivors.empty())
            continue; // preempted pi-step: the iteration is lost
        auto cstats = controller.update({ev.samples[0]}, {ev.rewards[0]});
        outcome.finalMeanReward = cstats.meanReward;
        outcome.finalEntropy = cstats.meanEntropy;
        outcome.history.push_back({std::move(ev.samples[0]),
                                   ev.qualities[0],
                                   std::move(ev.performance[0]),
                                   ev.rewards[0], iter});
    }
    outcome.finalSample = controller.policy().argmax();
    return outcome;
}

} // namespace h2o::search
