#include "search/tunas_search.h"

#include "common/logging.h"
#include "exec/fault_injector.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"

namespace h2o::search {

TunasSearch::TunasSearch(const searchspace::DlrmSearchSpace &space,
                         supernet::DlrmSupernet &supernet,
                         pipeline::InMemoryPipeline &pipe, PerfFn perf,
                         const reward::RewardFunction &rewardf,
                         TunasSearchConfig config)
    : _space(space), _supernet(supernet), _pipeline(pipe),
      _perf(std::move(perf)), _reward(rewardf), _config(config)
{
    h2o_assert(_perf, "null performance functor");
    h2o_assert(_config.numIterations > 0, "degenerate configuration");
}

SearchOutcome
TunasSearch::run(common::Rng &rng)
{
    controller::ReinforceController controller(_space.decisions(),
                                               _config.rl);
    SearchOutcome outcome;
    common::Rng sample_rng = rng.fork(1);

    // TuNAS "was not built for hyperscale deployments, and therefore
    // lacks parallelism": a single worker and a single shard. Running it
    // through the exec runtime anyway gives the baseline the same
    // fault-tolerance story (retry with backoff; a preempted step is
    // simply lost) so head-to-head fleet experiments are fair.
    exec::ThreadPool pool(1);
    exec::ShardRunner runner(pool,
                             {1, _config.maxShardAttempts,
                              _config.retryBackoffMs},
                             _config.faults);

    for (size_t step = 0; step < _config.warmupSteps; ++step) {
        runner.runStep(step, [&](size_t) {
            auto sample = _space.decisions().uniformSample(sample_rng);
            auto lease = _pipeline.lease();
            _supernet.configure(sample);
            _supernet.accumulateGradients(lease.batch());
            lease.markAlphaUse(); // satisfies the pipeline ordering contract
            lease.markWeightUse();
            _supernet.applyGradients(_config.weightLr);
        });
    }

    for (size_t iter = 0; iter < _config.numIterations; ++iter) {
        // --- W-step on a "training" batch.
        runner.runStep(_config.warmupSteps + 2 * iter, [&](size_t) {
            auto sample = controller.policy().sample(sample_rng);
            auto lease = _pipeline.lease();
            _supernet.configure(sample);
            _supernet.accumulateGradients(lease.batch());
            lease.markAlphaUse();
            lease.markWeightUse();
            _supernet.applyGradients(_config.weightLr);
        });
        // --- pi-step on a separate "validation" batch (never trains W).
        runner.runStep(_config.warmupSteps + 2 * iter + 1, [&](size_t) {
            auto sample = controller.policy().sample(sample_rng);
            auto lease = _pipeline.lease();
            _supernet.configure(sample);
            auto eval = _supernet.evaluate(lease.batch());
            lease.markAlphaUse();
            double quality = eval.quality();
            auto perf = _perf(sample);
            double rwd = _reward.compute({quality, perf});
            auto cstats = controller.update({sample}, {rwd});
            outcome.finalMeanReward = cstats.meanReward;
            outcome.finalEntropy = cstats.meanEntropy;
            outcome.history.push_back(
                {std::move(sample), quality, std::move(perf), rwd, iter});
        });
    }
    outcome.finalSample = controller.policy().argmax();
    return outcome;
}

} // namespace h2o::search
