#include "search/tunas_search.h"

#include "common/logging.h"
#include "common/serialize.h"
#include "eval/eval_engine.h"
#include "exec/fault_injector.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"
#include "search/stepwise.h"

namespace h2o::search {

/**
 * Step-wise TuNAS state. One step() is one alternating iteration (a
 * W-step plus a pi-step); the uniform-sampling warmup runs lazily
 * inside the first step() so a freshly constructed stepper is cheap and
 * a load()ed one (whose supernet weights already contain the warmup)
 * skips it.
 */
class TunasStepper final : public StepwiseSearch
{
  public:
    static eval::EvalEngineConfig
    engineConfig(const TunasSearchConfig &c)
    {
        if ((c.procs > 0 || !c.workers.empty()) && !c.batchedQuality)
            h2o_fatal("procs > 0 or remote workers require "
                      "batchedQuality: the per-shard quality body "
                      "closes over the shared supernet, which cannot "
                      "cross the process boundary");
        eval::EvalEngineConfig ec;
        ec.numShards = 1;
        ec.threads = 1;
        ec.multithread = false;
        ec.faults = c.faults;
        ec.maxShardAttempts = c.maxShardAttempts;
        ec.retryBackoffMs = c.retryBackoffMs;
        ec.procs = c.procs;
        ec.workers = c.workers;
        return ec;
    }

    TunasStepper(TunasSearch &owner, common::Rng &rng)
        : _owner(owner),
          _controller(owner._space.decisions(), owner._config.rl),
          _sampleRng(rng.fork(1)),
          // TuNAS "was not built for hyperscale deployments, and
          // therefore lacks parallelism": a single worker and a single
          // shard, executed inline on the calling thread (see run()).
          _engine(owner._perf, owner._reward,
                  engineConfig(owner._config))
    {
        _fronts.reset(owner._config.multiTarget);
    }

    bool step() override
    {
        if (done())
            return false;
        auto &cfg = _owner._config;
        exec::ShardRunner &runner = _engine.runner();

        if (!_warmed) {
            for (size_t step = 0; step < cfg.warmupSteps; ++step) {
                runner.runStep(step, [&](size_t) {
                    auto sample = _owner._space.decisions().uniformSample(
                        _sampleRng);
                    auto lease = _owner._pipeline.lease();
                    _owner._supernet.configure(sample);
                    _owner._supernet.accumulateGradients(lease.batch());
                    lease.markAlphaUse(); // pipeline ordering contract
                    lease.markWeightUse();
                    _owner._supernet.applyGradients(cfg.weightLr);
                });
            }
            _warmed = true;
        }

        const size_t iter = _next;
        // --- W-step on a "training" batch (no candidate evaluation —
        // the runner alone keeps the fault-step sequence contiguous).
        runner.runStep(cfg.warmupSteps + 2 * iter, [&](size_t) {
            auto sample = _controller.policy().sample(_sampleRng);
            auto lease = _owner._pipeline.lease();
            _owner._supernet.configure(sample);
            _owner._supernet.accumulateGradients(lease.batch());
            lease.markAlphaUse();
            lease.markWeightUse();
            _owner._supernet.applyGradients(cfg.weightLr);
        });
        // --- pi-step on a separate "validation" batch (never trains W):
        // pure no-grad candidate evaluation. In batched mode (default)
        // the shard body only draws the sample and the supernet's packed
        // multi-candidate pass computes the quality; per-candidate mode
        // calls evaluate() inside the shard body. Bit-identical.
        auto ev =
            cfg.batchedQuality
                ? _engine.evaluate(
                      cfg.warmupSteps + 2 * iter + 1,
                      [&](size_t, searchspace::Sample &sample) {
                          sample = _controller.policy().sample(_sampleRng);
                      },
                      [&](std::span<const size_t>,
                          std::span<const searchspace::Sample> samples) {
                          auto lease = _owner._pipeline.lease();
                          auto res = _owner._supernet.evaluateBatch(
                              samples, lease.batch());
                          lease.markAlphaUse();
                          std::vector<double> qs(res.size());
                          for (size_t i = 0; i < res.size(); ++i)
                              qs[i] = res[i].quality();
                          return qs;
                      })
                : _engine.evaluate(
                      cfg.warmupSteps + 2 * iter + 1,
                      [&](size_t, searchspace::Sample &sample,
                          double &quality) {
                          sample = _controller.policy().sample(_sampleRng);
                          auto lease = _owner._pipeline.lease();
                          _owner._supernet.configure(sample);
                          auto eval_res =
                              _owner._supernet.evaluate(lease.batch());
                          lease.markAlphaUse();
                          quality = eval_res.quality();
                      });
        ++_next;
        if (ev.survivors.empty())
            return !done(); // preempted pi-step: the iteration is lost
        auto cstats = _controller.update({ev.samples[0]},
                                         {ev.rewards[0]});
        _outcome.finalMeanReward = cstats.meanReward;
        _outcome.finalEntropy = cstats.meanEntropy;
        _outcome.history.push_back({std::move(ev.samples[0]),
                                    ev.qualities[0],
                                    std::move(ev.performance[0]),
                                    ev.rewards[0], iter});
        _fronts.absorb(_outcome);
        return !done();
    }

    size_t stepIndex() const override { return _next; }
    size_t totalSteps() const override
    {
        return _owner._config.numIterations;
    }
    double lastMeanReward() const override
    {
        return _outcome.finalMeanReward;
    }
    const SearchOutcome &partialOutcome() const override
    {
        return _outcome;
    }

    exec::ProcPoolStats transportStats() const override
    {
        return _engine.transportStats();
    }

    SearchOutcome finish() override
    {
        _fronts.emit(_outcome);
        _outcome.finalSample = _controller.policy().argmax();
        return std::move(_outcome);
    }

    void save(std::ostream &os) const override
    {
        // Version 2 + validation record when multi-target; historical
        // version-1 bytes otherwise.
        const bool multi = _fronts.enabled();
        common::writeTaggedU64(os, "tunas_stepper",
                               {multi ? kVersionMulti : kVersion, _next,
                                _owner._config.numIterations,
                                _owner._config.warmupSteps});
        if (multi)
            writeMultiTargetTagged(os, _fronts.spec());
        _controller.save(os);
        _sampleRng.save(os);
        _owner._supernet.save(os);
        _owner._pipeline.save(os);
        writeOutcomeTagged(os, _outcome);
    }

    void load(std::istream &is) override
    {
        const bool multi = _owner._config.multiTarget.enabled();
        auto header = common::readTaggedU64(is, "tunas_stepper");
        if (header.size() != 4 ||
            header[0] != (multi ? kVersionMulti : kVersion))
            h2o_fatal("unsupported tunas stepper checkpoint (single/"
                      "multi-target or version mismatch)");
        if (multi)
            readMultiTargetTagged(is, _owner._config.multiTarget);
        if (header[3] != _owner._config.warmupSteps)
            h2o_fatal("tunas checkpoint warmup mismatch: saved ",
                      header[3], ", configured ",
                      _owner._config.warmupSteps);
        _next = header[1];
        _controller.load(is);
        _sampleRng.load(is);
        _owner._supernet.load(is);
        _owner._pipeline.load(is);
        readOutcomeTagged(is, _owner._space.decisions().numDecisions(),
                          _outcome);
        // Fronts are a deterministic replay of the restored history.
        _fronts.reset(_owner._config.multiTarget);
        _fronts.absorb(_outcome);
        _warmed = true; // the restored weights already contain warmup
    }

  private:
    static constexpr uint64_t kVersion = 1;
    static constexpr uint64_t kVersionMulti = 2;

    TunasSearch &_owner;
    controller::ReinforceController _controller;
    common::Rng _sampleRng;
    eval::EvalEngine _engine;
    SearchOutcome _outcome;
    TargetFrontTracker _fronts;
    size_t _next = 0;
    bool _warmed = false;
};

TunasSearch::TunasSearch(const searchspace::DlrmSearchSpace &space,
                         supernet::DlrmSupernet &supernet,
                         pipeline::InMemoryPipeline &pipe, PerfFn perf,
                         const reward::RewardFunction &rewardf,
                         TunasSearchConfig config)
    : TunasSearch(space, supernet, pipe,
                  eval::PerfStage(std::move(perf)), rewardf, config)
{
}

TunasSearch::TunasSearch(const searchspace::DlrmSearchSpace &space,
                         supernet::DlrmSupernet &supernet,
                         pipeline::InMemoryPipeline &pipe,
                         PerfBatchFn perf_batch,
                         const reward::RewardFunction &rewardf,
                         TunasSearchConfig config)
    : TunasSearch(space, supernet, pipe,
                  eval::PerfStage(std::move(perf_batch)), rewardf, config)
{
}

TunasSearch::TunasSearch(const searchspace::DlrmSearchSpace &space,
                         supernet::DlrmSupernet &supernet,
                         pipeline::InMemoryPipeline &pipe,
                         eval::PerfStage perf,
                         const reward::RewardFunction &rewardf,
                         TunasSearchConfig config)
    : _space(space), _supernet(supernet), _pipeline(pipe),
      _perf(std::move(perf)), _reward(rewardf), _config(config)
{
    h2o_assert(_perf.perCandidate || _perf.batched,
               "null performance functor");
    h2o_assert(_config.numIterations > 0, "degenerate configuration");
}

SearchOutcome
TunasSearch::run(common::Rng &rng)
{
    TunasStepper stepper(*this, rng);
    while (stepper.step()) {
    }
    return stepper.finish();
}

std::unique_ptr<StepwiseSearch>
TunasSearch::makeStepper(common::Rng &rng)
{
    return std::make_unique<TunasStepper>(*this, rng);
}

} // namespace h2o::search
