#include "search/stepwise.h"

#include "common/logging.h"
#include "common/serialize.h"

namespace h2o::search {

void
writeOutcomeTagged(std::ostream &os, const SearchOutcome &outcome)
{
    common::writeTagged(os, "outcome_finals",
                        {outcome.finalMeanReward, outcome.finalEntropy});
    std::vector<uint64_t> hist_samples, hist_steps, hist_perf_lens;
    std::vector<double> hist_quality, hist_reward, hist_perfs;
    for (const auto &rec : outcome.history) {
        for (size_t v : rec.sample)
            hist_samples.push_back(v);
        hist_steps.push_back(rec.step);
        hist_quality.push_back(rec.quality);
        hist_reward.push_back(rec.reward);
        hist_perf_lens.push_back(rec.performance.size());
        for (double p : rec.performance)
            hist_perfs.push_back(p);
    }
    common::writeTaggedU64(os, "hist_count", {outcome.history.size()});
    common::writeTaggedU64(os, "hist_samples", hist_samples);
    common::writeTaggedU64(os, "hist_steps", hist_steps);
    common::writeTaggedU64(os, "hist_perf_lens", hist_perf_lens);
    common::writeTagged(os, "hist_quality", hist_quality);
    common::writeTagged(os, "hist_reward", hist_reward);
    common::writeTagged(os, "hist_perfs", hist_perfs);
}

void
readOutcomeTagged(std::istream &is, size_t num_decisions,
                  SearchOutcome &outcome)
{
    auto finals = common::readTagged(is, "outcome_finals");
    if (finals.size() != 2)
        h2o_fatal("malformed outcome finals in checkpoint");
    outcome.finalMeanReward = finals[0];
    outcome.finalEntropy = finals[1];

    auto hist_count = common::readTaggedU64(is, "hist_count");
    auto hist_samples = common::readTaggedU64(is, "hist_samples");
    auto hist_steps = common::readTaggedU64(is, "hist_steps");
    auto hist_perf_lens = common::readTaggedU64(is, "hist_perf_lens");
    auto hist_quality = common::readTagged(is, "hist_quality");
    auto hist_reward = common::readTagged(is, "hist_reward");
    auto hist_perfs = common::readTagged(is, "hist_perfs");
    if (hist_count.size() != 1)
        h2o_fatal("malformed history count in checkpoint");
    size_t records = hist_count[0];
    if (hist_samples.size() != records * num_decisions ||
        hist_steps.size() != records ||
        hist_perf_lens.size() != records ||
        hist_quality.size() != records || hist_reward.size() != records)
        h2o_fatal("inconsistent history arrays in checkpoint");

    outcome.history.clear();
    outcome.history.reserve(records);
    size_t perf_cursor = 0;
    for (size_t i = 0; i < records; ++i) {
        CandidateRecord rec;
        rec.sample.assign(
            hist_samples.begin() +
                static_cast<ptrdiff_t>(i * num_decisions),
            hist_samples.begin() +
                static_cast<ptrdiff_t>((i + 1) * num_decisions));
        rec.quality = hist_quality[i];
        rec.reward = hist_reward[i];
        rec.step = hist_steps[i];
        size_t len = hist_perf_lens[i];
        if (perf_cursor + len > hist_perfs.size())
            h2o_fatal("truncated history performance values");
        rec.performance.assign(
            hist_perfs.begin() + static_cast<ptrdiff_t>(perf_cursor),
            hist_perfs.begin() +
                static_cast<ptrdiff_t>(perf_cursor + len));
        perf_cursor += len;
        outcome.history.push_back(std::move(rec));
    }
}

void
TargetFrontTracker::reset(const MultiTargetSpec &spec)
{
    _spec = spec;
    _trackers.assign(_spec.numTargets(), ParetoTracker{});
    _cursor = 0;
}

void
TargetFrontTracker::absorb(const SearchOutcome &outcome)
{
    if (!_spec.enabled())
        return;
    const size_t k = _spec.numTargets();
    h2o_assert(_cursor <= outcome.history.size(),
               "front tracker cursor past history (history replaced "
               "without reset?)");
    for (; _cursor < outcome.history.size(); ++_cursor) {
        const CandidateRecord &rec = outcome.history[_cursor];
        h2o_assert(rec.performance.size() >= _spec.perfOffset + k,
                   "history record has ", rec.performance.size(),
                   " performance values; multi-target spec needs ",
                   _spec.perfOffset + k);
        for (size_t c = 0; c < k; ++c) {
            ParetoPoint p{rec.quality,
                          rec.performance[_spec.perfOffset + c]};
            _trackers[c].insert(_cursor, p);
        }
    }
}

void
TargetFrontTracker::emit(SearchOutcome &outcome) const
{
    outcome.targetFronts.clear();
    if (!_spec.enabled())
        return;
    outcome.targetFronts.reserve(_spec.numTargets());
    for (size_t c = 0; c < _spec.numTargets(); ++c)
        outcome.targetFronts.push_back(
            TargetFront{_spec.targetNames[c], _trackers[c].front()});
}

namespace {

/** 64-bit FNV-1a over a target name, for checkpoint validation. */
uint64_t
nameHash(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : name) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

void
writeMultiTargetTagged(std::ostream &os, const MultiTargetSpec &spec)
{
    std::vector<uint64_t> words;
    words.reserve(2 + spec.numTargets());
    words.push_back(spec.numTargets());
    words.push_back(spec.perfOffset);
    for (const std::string &name : spec.targetNames)
        words.push_back(nameHash(name));
    common::writeTaggedU64(os, "multi_targets", words);
}

void
readMultiTargetTagged(std::istream &is, const MultiTargetSpec &spec)
{
    auto words = common::readTaggedU64(is, "multi_targets");
    if (words.size() < 2)
        h2o_fatal("malformed multi-target record in checkpoint");
    if (words[0] != spec.numTargets() || words[1] != spec.perfOffset ||
        words.size() != 2 + spec.numTargets())
        h2o_fatal("checkpoint was written for ", words[0],
                  " targets; search is configured for ", spec.numTargets());
    for (size_t c = 0; c < spec.numTargets(); ++c)
        if (words[2 + c] != nameHash(spec.targetNames[c]))
            h2o_fatal("checkpoint target ", c, " does not match configured "
                      "target '", spec.targetNames[c], "'");
}

} // namespace h2o::search
