#include "search/stepwise.h"

#include "common/logging.h"
#include "common/serialize.h"

namespace h2o::search {

void
writeOutcomeTagged(std::ostream &os, const SearchOutcome &outcome)
{
    common::writeTagged(os, "outcome_finals",
                        {outcome.finalMeanReward, outcome.finalEntropy});
    std::vector<uint64_t> hist_samples, hist_steps, hist_perf_lens;
    std::vector<double> hist_quality, hist_reward, hist_perfs;
    for (const auto &rec : outcome.history) {
        for (size_t v : rec.sample)
            hist_samples.push_back(v);
        hist_steps.push_back(rec.step);
        hist_quality.push_back(rec.quality);
        hist_reward.push_back(rec.reward);
        hist_perf_lens.push_back(rec.performance.size());
        for (double p : rec.performance)
            hist_perfs.push_back(p);
    }
    common::writeTaggedU64(os, "hist_count", {outcome.history.size()});
    common::writeTaggedU64(os, "hist_samples", hist_samples);
    common::writeTaggedU64(os, "hist_steps", hist_steps);
    common::writeTaggedU64(os, "hist_perf_lens", hist_perf_lens);
    common::writeTagged(os, "hist_quality", hist_quality);
    common::writeTagged(os, "hist_reward", hist_reward);
    common::writeTagged(os, "hist_perfs", hist_perfs);
}

void
readOutcomeTagged(std::istream &is, size_t num_decisions,
                  SearchOutcome &outcome)
{
    auto finals = common::readTagged(is, "outcome_finals");
    if (finals.size() != 2)
        h2o_fatal("malformed outcome finals in checkpoint");
    outcome.finalMeanReward = finals[0];
    outcome.finalEntropy = finals[1];

    auto hist_count = common::readTaggedU64(is, "hist_count");
    auto hist_samples = common::readTaggedU64(is, "hist_samples");
    auto hist_steps = common::readTaggedU64(is, "hist_steps");
    auto hist_perf_lens = common::readTaggedU64(is, "hist_perf_lens");
    auto hist_quality = common::readTagged(is, "hist_quality");
    auto hist_reward = common::readTagged(is, "hist_reward");
    auto hist_perfs = common::readTagged(is, "hist_perfs");
    if (hist_count.size() != 1)
        h2o_fatal("malformed history count in checkpoint");
    size_t records = hist_count[0];
    if (hist_samples.size() != records * num_decisions ||
        hist_steps.size() != records ||
        hist_perf_lens.size() != records ||
        hist_quality.size() != records || hist_reward.size() != records)
        h2o_fatal("inconsistent history arrays in checkpoint");

    outcome.history.clear();
    outcome.history.reserve(records);
    size_t perf_cursor = 0;
    for (size_t i = 0; i < records; ++i) {
        CandidateRecord rec;
        rec.sample.assign(
            hist_samples.begin() +
                static_cast<ptrdiff_t>(i * num_decisions),
            hist_samples.begin() +
                static_cast<ptrdiff_t>((i + 1) * num_decisions));
        rec.quality = hist_quality[i];
        rec.reward = hist_reward[i];
        rec.step = hist_steps[i];
        size_t len = hist_perf_lens[i];
        if (perf_cursor + len > hist_perfs.size())
            h2o_fatal("truncated history performance values");
        rec.performance.assign(
            hist_perfs.begin() + static_cast<ptrdiff_t>(perf_cursor),
            hist_perfs.begin() +
                static_cast<ptrdiff_t>(perf_cursor + len));
        perf_cursor += len;
        outcome.history.push_back(std::move(rec));
    }
}

} // namespace h2o::search
