#include "search/surrogate_search.h"

#include <thread>

#include "common/logging.h"

namespace h2o::search {

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, PerfFn perf,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : _space(space), _quality(std::move(quality)), _perf(std::move(perf)),
      _reward(rewardf), _config(config)
{
    h2o_assert(_quality && _perf, "null quality/perf functor");
    h2o_assert(_config.numSteps > 0 && _config.samplesPerStep > 0,
               "degenerate search configuration");
}

SearchOutcome
SurrogateSearch::run(common::Rng &rng)
{
    controller::ReinforceController controller(_space, _config.rl);
    SearchOutcome outcome;
    outcome.history.reserve(_config.numSteps * _config.samplesPerStep);

    // Per-shard RNG streams, deterministic regardless of thread timing.
    std::vector<common::Rng> shard_rngs;
    for (size_t s = 0; s < _config.samplesPerStep; ++s)
        shard_rngs.push_back(rng.fork(s + 1));

    for (size_t step = 0; step < _config.numSteps; ++step) {
        size_t n = _config.samplesPerStep;
        std::vector<searchspace::Sample> samples(n);
        std::vector<double> qualities(n), rewards(n);
        std::vector<std::vector<double>> perfs(n);

        // Stage 1 (Figure 2): each shard samples its own candidate.
        for (size_t s = 0; s < n; ++s)
            samples[s] = controller.policy().sample(shard_rngs[s]);

        // Stage 2: evaluate quality + performance per shard.
        auto eval_shard = [&](size_t s) {
            qualities[s] = _quality(samples[s]);
            perfs[s] = _perf(samples[s]);
            rewards[s] = _reward.compute({qualities[s], perfs[s]});
        };
        if (_config.multithread && n > 1) {
            std::vector<std::thread> threads;
            threads.reserve(n);
            for (size_t s = 0; s < n; ++s)
                threads.emplace_back(eval_shard, s);
            for (auto &t : threads)
                t.join();
        } else {
            for (size_t s = 0; s < n; ++s)
                eval_shard(s);
        }

        // Stage 3: cross-shard policy update.
        auto stats = controller.update(samples, rewards);
        outcome.finalMeanReward = stats.meanReward;
        outcome.finalEntropy = stats.meanEntropy;

        for (size_t s = 0; s < n; ++s) {
            outcome.history.push_back({std::move(samples[s]), qualities[s],
                                       std::move(perfs[s]), rewards[s],
                                       step});
        }
    }
    outcome.finalSample = controller.policy().argmax();
    return outcome;
}

} // namespace h2o::search
