#include "search/surrogate_search.h"

#include "common/logging.h"
#include "common/serialize.h"
#include "eval/eval_engine.h"
#include "exec/fault_injector.h"
#include "exec/thread_pool.h"
#include "search/stepwise.h"

namespace h2o::search {

/**
 * Step-wise state of a SurrogateSearch: the policy, the per-shard RNG
 * streams, and the accumulated history — everything run() kept on its
 * stack, promoted to members so steps can interleave with other jobs
 * and survive save()/load() (see search/stepwise.h for the contract).
 */
class SurrogateStepper final : public StepwiseSearch
{
  public:
    static eval::EvalEngineConfig
    engineConfig(const SurrogateSearchConfig &c)
    {
        eval::EvalEngineConfig ec;
        ec.numShards = c.samplesPerStep;
        ec.threads = c.threads;
        ec.multithread = c.multithread;
        ec.faults = c.faults;
        ec.maxShardAttempts = c.maxShardAttempts;
        ec.retryBackoffMs = c.retryBackoffMs;
        ec.procs = c.procs;
        ec.workers = c.workers;
        return ec;
    }

    SurrogateStepper(SurrogateSearch &owner, common::Rng &rng)
        : _owner(owner),
          _controller(owner._space, owner._config.rl),
          _rngs(exec::ThreadPool::splitRngs(rng,
                                            owner._config.samplesPerStep)),
          _engine(owner._perf, owner._reward,
                  engineConfig(owner._config), owner._quality)
    {
        _outcome.history.reserve(owner._config.numSteps *
                                 owner._config.samplesPerStep);
        _fronts.reset(owner._config.multiTarget);
    }

    bool step() override
    {
        if (done())
            return false;
        const size_t step = _next;

        // Stages (1)-(2) of Figure 2, per shard: sample a candidate from
        // pi on the shard's own stream, then evaluate quality — inside
        // the shard body on the thread path, inside the worker processes
        // when procs > 0 (the engine holds the pure quality functor; the
        // draw stays coordinator-side either way). Shards share no
        // mutable state, so no ordered section is needed here.
        auto ev = _engine.evaluate(
            step, [&](size_t s, searchspace::Sample &sample) {
                sample = _controller.policy().sample(_rngs[s]);
            });
        ++_next;

        // Stage (3): cross-shard policy update over the survivors.
        if (ev.survivors.empty()) {
            common::warn("surrogate step ", step,
                         " lost all shards; skipping update");
            return !done();
        }
        std::vector<searchspace::Sample> live_samples;
        std::vector<double> live_rewards;
        live_samples.reserve(ev.survivors.size());
        for (size_t s : ev.survivors) {
            live_samples.push_back(ev.samples[s]);
            live_rewards.push_back(ev.rewards[s]);
        }
        auto stats = _controller.update(live_samples, live_rewards);
        _outcome.finalMeanReward = stats.meanReward;
        _outcome.finalEntropy = stats.meanEntropy;

        for (size_t s : ev.survivors) {
            _outcome.history.push_back({std::move(ev.samples[s]),
                                        ev.qualities[s],
                                        std::move(ev.performance[s]),
                                        ev.rewards[s], step});
        }
        _fronts.absorb(_outcome);
        return !done();
    }

    size_t stepIndex() const override { return _next; }
    size_t totalSteps() const override { return _owner._config.numSteps; }
    double lastMeanReward() const override
    {
        return _outcome.finalMeanReward;
    }
    const SearchOutcome &partialOutcome() const override
    {
        return _outcome;
    }

    exec::ProcPoolStats transportStats() const override
    {
        return _engine.transportStats();
    }

    SearchOutcome finish() override
    {
        _fronts.emit(_outcome);
        _outcome.finalSample = _controller.policy().argmax();
        return std::move(_outcome);
    }

    void save(std::ostream &os) const override
    {
        // Multi-target searches write version 2 with a validation
        // record appended to the header; single-target bytes are the
        // historical version-1 layout, unchanged.
        const bool multi = _fronts.enabled();
        common::writeTaggedU64(os, "surrogate_stepper",
                               {multi ? kVersionMulti : kVersion, _next,
                                _owner._config.samplesPerStep,
                                _owner._config.numSteps});
        if (multi)
            writeMultiTargetTagged(os, _fronts.spec());
        _controller.save(os);
        for (const auto &r : _rngs)
            r.save(os);
        writeOutcomeTagged(os, _outcome);
    }

    void load(std::istream &is) override
    {
        const bool multi = _owner._config.multiTarget.enabled();
        auto header = common::readTaggedU64(is, "surrogate_stepper");
        if (header.size() != 4 ||
            header[0] != (multi ? kVersionMulti : kVersion))
            h2o_fatal("unsupported surrogate stepper checkpoint (single/"
                      "multi-target or version mismatch)");
        if (header[2] != _owner._config.samplesPerStep)
            h2o_fatal("surrogate checkpoint shard count mismatch: saved ",
                      header[2], ", configured ",
                      _owner._config.samplesPerStep);
        if (multi)
            readMultiTargetTagged(is, _owner._config.multiTarget);
        _next = header[1];
        _controller.load(is);
        for (auto &r : _rngs)
            r.load(is);
        readOutcomeTagged(is, _owner._space.numDecisions(), _outcome);
        // Fronts are a deterministic function of the history: rebuild
        // instead of serializing them.
        _fronts.reset(_owner._config.multiTarget);
        _fronts.absorb(_outcome);
    }

  private:
    static constexpr uint64_t kVersion = 1;
    static constexpr uint64_t kVersionMulti = 2;

    SurrogateSearch &_owner;
    controller::ReinforceController _controller;
    std::vector<common::Rng> _rngs;
    eval::EvalEngine _engine;
    SearchOutcome _outcome;
    TargetFrontTracker _fronts;
    size_t _next = 0;
};

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, PerfFn perf,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : SurrogateSearch(space, std::move(quality),
                      eval::PerfStage(std::move(perf)), rewardf, config)
{
}

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, PerfBatchFn perf_batch,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : SurrogateSearch(space, std::move(quality),
                      eval::PerfStage(std::move(perf_batch)), rewardf,
                      config)
{
}

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, eval::PerfStage perf,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : _space(space), _quality(std::move(quality)), _perf(std::move(perf)),
      _reward(rewardf), _config(config)
{
    h2o_assert(_quality && (_perf.perCandidate || _perf.batched),
               "null quality/perf functor");
    h2o_assert(_config.numSteps > 0 && _config.samplesPerStep > 0,
               "degenerate search configuration");
}

SearchOutcome
SurrogateSearch::run(common::Rng &rng)
{
    SurrogateStepper stepper(*this, rng);
    while (stepper.step()) {
    }
    return stepper.finish();
}

std::unique_ptr<StepwiseSearch>
SurrogateSearch::makeStepper(common::Rng &rng)
{
    return std::make_unique<SurrogateStepper>(*this, rng);
}

} // namespace h2o::search
