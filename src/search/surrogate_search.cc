#include "search/surrogate_search.h"

#include "common/logging.h"
#include "eval/eval_engine.h"
#include "exec/fault_injector.h"
#include "exec/thread_pool.h"

namespace h2o::search {

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, PerfFn perf,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : SurrogateSearch(space, std::move(quality),
                      eval::PerfStage(std::move(perf)), rewardf, config)
{
}

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, PerfBatchFn perf_batch,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : SurrogateSearch(space, std::move(quality),
                      eval::PerfStage(std::move(perf_batch)), rewardf,
                      config)
{
}

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, eval::PerfStage perf,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : _space(space), _quality(std::move(quality)), _perf(std::move(perf)),
      _reward(rewardf), _config(config)
{
    h2o_assert(_quality && (_perf.perCandidate || _perf.batched),
               "null quality/perf functor");
    h2o_assert(_config.numSteps > 0 && _config.samplesPerStep > 0,
               "degenerate search configuration");
}

SearchOutcome
SurrogateSearch::run(common::Rng &rng)
{
    controller::ReinforceController controller(_space, _config.rl);
    SearchOutcome outcome;
    outcome.history.reserve(_config.numSteps * _config.samplesPerStep);
    const size_t n = _config.samplesPerStep;

    // Per-shard RNG streams, deterministic regardless of thread timing.
    auto shard_rngs = exec::ThreadPool::splitRngs(rng, n);

    // The candidate -> reward pipeline: per-shard quality on the worker
    // pool, the performance stage (batched per step, or per candidate
    // inside the shard body), then the reward pass in shard order.
    eval::EvalEngine engine(
        _perf, _reward,
        {n, _config.threads, _config.multithread, _config.faults,
         _config.maxShardAttempts, _config.retryBackoffMs});

    for (size_t step = 0; step < _config.numSteps; ++step) {
        // Stages (1)-(2) of Figure 2, per shard: sample a candidate from
        // pi on the shard's own stream, then evaluate quality. Shards
        // share no mutable state, so no ordered section is needed here.
        auto ev = engine.evaluate(
            step, [&](size_t s, searchspace::Sample &sample,
                      double &quality) {
                sample = controller.policy().sample(shard_rngs[s]);
                quality = _quality(sample);
            });

        // Stage (3): cross-shard policy update over the survivors.
        if (ev.survivors.empty()) {
            common::warn("surrogate step ", step,
                         " lost all shards; skipping update");
            continue;
        }
        std::vector<searchspace::Sample> live_samples;
        std::vector<double> live_rewards;
        live_samples.reserve(ev.survivors.size());
        for (size_t s : ev.survivors) {
            live_samples.push_back(ev.samples[s]);
            live_rewards.push_back(ev.rewards[s]);
        }
        auto stats = controller.update(live_samples, live_rewards);
        outcome.finalMeanReward = stats.meanReward;
        outcome.finalEntropy = stats.meanEntropy;

        for (size_t s : ev.survivors) {
            outcome.history.push_back({std::move(ev.samples[s]),
                                       ev.qualities[s],
                                       std::move(ev.performance[s]),
                                       ev.rewards[s], step});
        }
    }
    outcome.finalSample = controller.policy().argmax();
    return outcome;
}

} // namespace h2o::search
