#include "search/surrogate_search.h"

#include "common/logging.h"
#include "exec/fault_injector.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"

namespace h2o::search {

SurrogateSearch::SurrogateSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, PerfFn perf,
                                 const reward::RewardFunction &rewardf,
                                 SurrogateSearchConfig config)
    : _space(space), _quality(std::move(quality)), _perf(std::move(perf)),
      _reward(rewardf), _config(config)
{
    h2o_assert(_quality && _perf, "null quality/perf functor");
    h2o_assert(_config.numSteps > 0 && _config.samplesPerStep > 0,
               "degenerate search configuration");
}

SearchOutcome
SurrogateSearch::run(common::Rng &rng)
{
    controller::ReinforceController controller(_space, _config.rl);
    SearchOutcome outcome;
    outcome.history.reserve(_config.numSteps * _config.samplesPerStep);
    const size_t n = _config.samplesPerStep;

    // Per-shard RNG streams, deterministic regardless of thread timing.
    auto shard_rngs = exec::ThreadPool::splitRngs(rng, n);

    exec::ThreadPool pool(
        _config.multithread ? exec::ThreadPool::resolve(_config.threads, n)
                            : 1);
    exec::ShardRunner runner(pool,
                             {n, _config.maxShardAttempts,
                              _config.retryBackoffMs},
                             _config.faults);

    for (size_t step = 0; step < _config.numSteps; ++step) {
        std::vector<searchspace::Sample> samples(n);
        std::vector<double> qualities(n, 0.0), rewards(n, 0.0);
        std::vector<std::vector<double>> perfs(n);

        // Stages (1)-(2) of Figure 2, per shard: sample a candidate from
        // pi on the shard's own stream, then evaluate quality +
        // performance. Shards share no mutable state, so no ordered
        // section is needed here.
        auto report = runner.runStep(step, [&](size_t s) {
            samples[s] = controller.policy().sample(shard_rngs[s]);
            qualities[s] = _quality(samples[s]);
            perfs[s] = _perf(samples[s]);
            rewards[s] = _reward.compute({qualities[s], perfs[s]});
        });

        // Stage (3): cross-shard policy update over the survivors.
        auto live = report.survivors();
        if (live.empty()) {
            common::warn("surrogate step ", step,
                         " lost all shards; skipping update");
            continue;
        }
        std::vector<searchspace::Sample> live_samples;
        std::vector<double> live_rewards;
        live_samples.reserve(live.size());
        for (size_t s : live) {
            live_samples.push_back(samples[s]);
            live_rewards.push_back(rewards[s]);
        }
        auto stats = controller.update(live_samples, live_rewards);
        outcome.finalMeanReward = stats.meanReward;
        outcome.finalEntropy = stats.meanEntropy;

        for (size_t s : live) {
            outcome.history.push_back({std::move(samples[s]), qualities[s],
                                       std::move(perfs[s]), rewards[s],
                                       step});
        }
    }
    outcome.finalSample = controller.policy().argmax();
    return outcome;
}

} // namespace h2o::search
