#include "search/telemetry.h"

#include <fstream>

#include "common/logging.h"

namespace h2o::search {

void
writeHistoryCsv(const SearchOutcome &outcome, std::ostream &os)
{
    size_t perf_dims = 0;
    for (const auto &c : outcome.history)
        perf_dims = std::max(perf_dims, c.performance.size());

    os << "step,quality";
    for (size_t i = 0; i < perf_dims; ++i)
        os << ",perf" << i;
    os << ",reward\n";
    for (const auto &c : outcome.history) {
        os << c.step << "," << c.quality;
        for (size_t i = 0; i < perf_dims; ++i) {
            os << ",";
            if (i < c.performance.size())
                os << c.performance[i];
        }
        os << "," << c.reward << "\n";
    }
}

void
writeStepStatsCsv(const std::vector<H2oStepStats> &stats, std::ostream &os)
{
    os << "step,mean_reward,mean_quality,mean_entropy,train_loss\n";
    for (const auto &s : stats) {
        os << s.step << "," << s.meanReward << "," << s.meanQuality << ","
           << s.meanEntropy << "," << s.trainLoss << "\n";
    }
}

void
writeHistoryCsvFile(const SearchOutcome &outcome, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        h2o_fatal("cannot open telemetry file '", path, "'");
    writeHistoryCsv(outcome, os);
}

void
writeSimCacheStatsCsv(const sim::SimCacheStats &stats, std::ostream &os)
{
    os << "hits,misses,evictions,entries,hit_rate\n";
    os << stats.hits << "," << stats.misses << "," << stats.evictions
       << "," << stats.entries << "," << stats.hitRate() << "\n";
}

void
writeSimCacheStatsCsvFile(const sim::SimCacheStats &stats,
                          const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        h2o_fatal("cannot open telemetry file '", path, "'");
    writeSimCacheStatsCsv(stats, os);
}

void
writeTransportStatsCsv(const exec::ProcPoolStats &stats, std::ostream &os)
{
    os << "worker,pid,alive,tasks_served,respawns,bytes_sent,"
          "bytes_received,endpoint\n";
    for (size_t w = 0; w < stats.workers.size(); ++w) {
        const auto &ws = stats.workers[w];
        os << w << "," << ws.pid << "," << (ws.alive ? 1 : 0) << ","
           << ws.tasksServed << "," << ws.respawns << "," << ws.bytesSent
           << "," << ws.bytesReceived << "," << ws.endpoint << "\n";
    }
}

void
writeTransportStatsCsvFile(const exec::ProcPoolStats &stats,
                           const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        h2o_fatal("cannot open telemetry file '", path, "'");
    writeTransportStatsCsv(stats, os);
}

} // namespace h2o::search
