/**
 * @file
 * Surrogate-quality H2O-NAS search.
 *
 * For the vision domains (CNN / ViT) this repository cannot train real
 * ImageNet-scale networks, so quality comes from a calibrated analytical
 * quality model while performance comes honestly from the hardware
 * simulator / performance model (see DESIGN.md, substitution table).
 * The NAS machinery — sampling from pi, the multi-objective reward, the
 * massively parallel cross-shard REINFORCE update, argmax finalization —
 * is the same code path the DLRM search uses.
 *
 * Each step draws `samplesPerStep` candidates (the virtual accelerator
 * shards of Figure 2), evaluates them concurrently on the h2o::exec
 * runtime's persistent worker pool, and applies one aggregated policy
 * update over the shards that survived the step (all of them unless a
 * FaultInjector is attached).
 */

#ifndef H2O_SEARCH_SURROGATE_SEARCH_H
#define H2O_SEARCH_SURROGATE_SEARCH_H

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "controller/reinforce.h"
#include "eval/eval_engine.h"
#include "reward/reward.h"
#include "search/pareto.h"
#include "searchspace/decision_space.h"

namespace h2o::exec { class FaultInjector; }

namespace h2o::search {

class StepwiseSearch;

/** Sample -> quality signal (higher is better). */
using QualityFn = std::function<double(const searchspace::Sample &)>;

/** Sample -> performance objective values (parallel to the reward's). */
using PerfFn = eval::PerfFn;

/** Batched performance stage (see eval::PerfBatchFn). */
using PerfBatchFn = eval::PerfBatchFn;

/** One evaluated candidate. */
struct CandidateRecord
{
    searchspace::Sample sample;
    double quality = 0.0;
    std::vector<double> performance;
    double reward = 0.0;
    size_t step = 0;
};

/**
 * Annotation that a search scores each candidate across k deployment
 * targets (hw::TargetSet order). Costs live in the usual per-candidate
 * performance vector: performance[perfOffset + c] is target c's cost.
 * An empty name list means single-target mode — every stepper then
 * behaves (and checkpoints) exactly as before this field existed.
 */
struct MultiTargetSpec
{
    std::vector<std::string> targetNames; ///< ordered; empty = disabled
    size_t perfOffset = 0; ///< index of target 0's cost in performance

    bool enabled() const { return !targetNames.empty(); }
    size_t numTargets() const { return targetNames.size(); }
};

/** One target's Pareto front (quality vs that target's cost) over a
 *  search history. */
struct TargetFront
{
    std::string target;          ///< target name (chip registry name)
    std::vector<size_t> indices; ///< into history, cost ascending
};

/** Search outcome. */
struct SearchOutcome
{
    searchspace::Sample finalSample;   ///< per-decision argmax of pi
    std::vector<CandidateRecord> history;
    double finalEntropy = 0.0;
    double finalMeanReward = 0.0;
    /** Per-target Pareto fronts, one per MultiTargetSpec entry (empty
     *  for single-target searches). Derived from history by finish() —
     *  never serialized, so checkpoint bytes are unchanged. */
    std::vector<TargetFront> targetFronts;
};

/** Search configuration. */
struct SurrogateSearchConfig
{
    size_t numSteps = 200;
    size_t samplesPerStep = 16; ///< parallel shards per step
    controller::ReinforceConfig rl{};
    /** Evaluate shards on the worker pool; false forces a pool of one
     *  worker (results are bit-identical either way). */
    bool multithread = true;
    /** Worker threads when multithread; 0 = one per hardware thread.
     *  Clamped to samplesPerStep. When the pool resolves to ONE worker
     *  the engine runs shard bodies inline on the caller's thread
     *  (eval::EvalEngineConfig::inlineSingleThread) — same results,
     *  no cross-thread dispatch. */
    size_t threads = 0;
    /** Worker PROCESSES for the shard stage (multi-process transport;
     *  see eval::EvalEngineConfig::procs). 0 = in-process threads.
     *  Quality and per-candidate performance must be pure — they run
     *  inside forked workers. Any value is byte-identical. */
    size_t procs = 0;
    /** Remote worker daemons for the shard stage, comma-separated
     *  ("host:port" or "local"; eval::EvalEngineConfig::workers).
     *  Combines with procs into one mixed pool. Empty = none; any
     *  fleet shape is byte-identical. */
    std::string workers;
    /** Optional fault oracle (preemptible-fleet emulation); not owned. */
    exec::FaultInjector *faults = nullptr;
    /** Max attempts per shard per step before it is dropped. */
    size_t maxShardAttempts = 3;
    /** Exponential retry backoff base, in milliseconds. */
    double retryBackoffMs = 0.5;
    /** Joint multi-target annotation; disabled (empty) by default. */
    MultiTargetSpec multiTarget{};
};

/** The surrogate-quality searcher. */
class SurrogateSearch
{
  public:
    /**
     * @param space   Decision space.
     * @param quality Quality signal (must be thread-safe if multithread).
     * @param perf    Performance signal (same thread-safety requirement).
     *                Runs per candidate INSIDE the shard body, so a
     *                blocking function (device-in-the-loop) overlaps
     *                across worker threads.
     * @param rewardf Multi-objective reward combining the two.
     */
    SurrogateSearch(const searchspace::DecisionSpace &space,
                    QualityFn quality, PerfFn perf,
                    const reward::RewardFunction &rewardf,
                    SurrogateSearchConfig config);

    /** As above with a batched performance stage: one coordinator-side
     *  call per step over the step's surviving candidates (perf-model /
     *  simulator batch entry points) instead of one call per candidate. */
    SurrogateSearch(const searchspace::DecisionSpace &space,
                    QualityFn quality, PerfBatchFn perf_batch,
                    const reward::RewardFunction &rewardf,
                    SurrogateSearchConfig config);

    /** Run the search to completion. */
    SearchOutcome run(common::Rng &rng);

    /** Step-wise execution of the same search: driving the stepper to
     *  exhaustion then calling finish() is bit-identical to run() (see
     *  search/stepwise.h). @p rng seeds the per-shard streams; it is
     *  forked up front, not referenced afterwards. The searcher must
     *  outlive the stepper. */
    std::unique_ptr<StepwiseSearch> makeStepper(common::Rng &rng);

  private:
    friend class SurrogateStepper;

    SurrogateSearch(const searchspace::DecisionSpace &space,
                    QualityFn quality, eval::PerfStage perf,
                    const reward::RewardFunction &rewardf,
                    SurrogateSearchConfig config);

    const searchspace::DecisionSpace &_space;
    QualityFn _quality;
    eval::PerfStage _perf;
    const reward::RewardFunction &_reward;
    SurrogateSearchConfig _config;
};

} // namespace h2o::search

#endif // H2O_SEARCH_SURROGATE_SEARCH_H
