/**
 * @file
 * The TuNAS baseline search algorithm (left side of Figure 2): the
 * state-of-the-art alternating two-step RL one-shot search the paper
 * compares against.
 *
 * Each iteration alternates:
 *   W-step: sample alpha from pi, train the shared weights W on a batch
 *           of TRAINING data;
 *   pi-step: sample alpha from pi, evaluate quality on a SEPARATE batch
 *           of VALIDATION data, and apply a REINFORCE update.
 *
 * Differences from the H2O unified single-step algorithm, faithfully
 * reproduced here: two data consumers instead of one (the validation
 * stream is modeled as additional leased batches that never train
 * weights), one candidate per step rather than one per shard (TuNAS "was
 * not built for hyperscale deployments, and therefore lacks
 * parallelism"), and twice the steps for the same number of updates.
 */

#ifndef H2O_SEARCH_TUNAS_SEARCH_H
#define H2O_SEARCH_TUNAS_SEARCH_H

#include "common/rng.h"
#include "controller/reinforce.h"
#include "pipeline/pipeline.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_supernet.h"

namespace h2o::exec { class FaultInjector; }

namespace h2o::search {

/** Configuration of the alternating baseline. */
struct TunasSearchConfig
{
    size_t numIterations = 200; ///< one W-step + one pi-step each
    double weightLr = 0.05;
    size_t warmupSteps = 30;
    controller::ReinforceConfig rl{};
    /** Run the pi-step's candidate evaluation through the supernet's
     *  packed multi-candidate pass (DlrmSupernet::evaluateBatch) instead
     *  of a per-candidate evaluate() call. Bit-identical results (TuNAS
     *  evaluates one candidate per step, so this exercises the n=1
     *  packed path); disable to A/B. */
    bool batchedQuality = true;
    /** Worker PROCESSES for the pi-step's shard stage (multi-process
     *  transport; clamped to the single TuNAS shard, so at most one
     *  worker forks). Requires batchedQuality — the supernet lives
     *  coordinator-side. 0 = in-process. Byte-identical either way. */
    size_t procs = 0;
    /** Remote worker daemons for the pi-step's shard stage,
     *  comma-separated ("host:port" or "local";
     *  eval::EvalEngineConfig::workers). Requires batchedQuality like
     *  procs. Empty = none; byte-identical either way. */
    std::string workers;
    /** Optional fault oracle; TuNAS has a single (non-sharded) worker,
     *  so a preempted step is simply lost. Not owned. */
    exec::FaultInjector *faults = nullptr;
    /** Max attempts per step before it is dropped. */
    size_t maxShardAttempts = 3;
    /** Exponential retry backoff base, in milliseconds. */
    double retryBackoffMs = 0.5;
    /** Joint multi-target annotation; disabled (empty) by default. */
    MultiTargetSpec multiTarget{};
};

/** The TuNAS alternating two-step searcher. */
class TunasSearch
{
  public:
    TunasSearch(const searchspace::DlrmSearchSpace &space,
                supernet::DlrmSupernet &supernet,
                pipeline::InMemoryPipeline &pipe, PerfFn perf,
                const reward::RewardFunction &rewardf,
                TunasSearchConfig config);

    /** As above with a batched performance stage. */
    TunasSearch(const searchspace::DlrmSearchSpace &space,
                supernet::DlrmSupernet &supernet,
                pipeline::InMemoryPipeline &pipe, PerfBatchFn perf_batch,
                const reward::RewardFunction &rewardf,
                TunasSearchConfig config);

    /** Run the search to completion. */
    SearchOutcome run(common::Rng &rng);

    /** Step-wise execution (one W-step + one pi-step per call);
     *  bit-identical to run() — see search/stepwise.h. The searcher and
     *  its supernet/pipeline must outlive the stepper. */
    std::unique_ptr<StepwiseSearch> makeStepper(common::Rng &rng);

  private:
    friend class TunasStepper;

    TunasSearch(const searchspace::DlrmSearchSpace &space,
                supernet::DlrmSupernet &supernet,
                pipeline::InMemoryPipeline &pipe, eval::PerfStage perf,
                const reward::RewardFunction &rewardf,
                TunasSearchConfig config);

    const searchspace::DlrmSearchSpace &_space;
    supernet::DlrmSupernet &_supernet;
    pipeline::InMemoryPipeline &_pipeline;
    eval::PerfStage _perf;
    const reward::RewardFunction &_reward;
    TunasSearchConfig _config;
};

} // namespace h2o::search

#endif // H2O_SEARCH_TUNAS_SEARCH_H
