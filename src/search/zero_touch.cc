#include "search/zero_touch.h"

#include "common/logging.h"
#include "reward/reward.h"

namespace h2o::search {

ZeroTouchOptimizer::ZeroTouchOptimizer(
    const searchspace::DecisionSpace &space,
    searchspace::Sample baseline_sample, ScalarFn quality,
    ScalarFn step_time, ScalarFn model_bytes)
    : _space(space), _baselineSample(std::move(baseline_sample)),
      _quality(std::move(quality)), _stepTime(std::move(step_time)),
      _modelBytes(std::move(model_bytes))
{
    h2o_assert(_quality && _stepTime && _modelBytes,
               "null zero-touch functor");
    h2o_assert(_space.validSample(_baselineSample),
               "baseline sample invalid for this space");
}

ZeroTouchResult
ZeroTouchOptimizer::optimize(const LaunchCriteria &criteria,
                             const ZeroTouchConfig &config,
                             common::Rng &rng) const
{
    h2o_assert(criteria.stepTimeTargetRel > 0.0,
               "non-positive step-time target");

    ZeroTouchResult result;
    result.baselineQuality = _quality(_baselineSample);
    result.baselineStepSec = _stepTime(_baselineSample);
    result.baselineBytes = _modelBytes(_baselineSample);

    // Build the reward from the launch criteria.
    std::vector<reward::PerformanceObjective> objectives;
    objectives.push_back({"step_time",
                          criteria.stepTimeTargetRel *
                              result.baselineStepSec,
                          criteria.stepTimeBeta});
    bool size_constrained = criteria.modelSizeTargetRel > 0.0;
    if (size_constrained) {
        objectives.push_back({"model_size",
                              criteria.modelSizeTargetRel *
                                  result.baselineBytes,
                              criteria.modelSizeBeta});
    }
    reward::ReluReward rwd(std::move(objectives));

    auto perf_fn = [&](const searchspace::Sample &s) {
        std::vector<double> perf{_stepTime(s)};
        if (size_constrained)
            perf.push_back(_modelBytes(s));
        return perf;
    };

    SurrogateSearchConfig scfg;
    scfg.numSteps = config.numSteps;
    scfg.samplesPerStep = config.samplesPerStep;
    scfg.rl.learningRate = config.learningRate;
    scfg.rl.entropyWeight = config.entropyWeight;
    scfg.multithread = false; // deterministic; evaluation dominates
    SurrogateSearch search(_space, _quality, perf_fn, rwd, scfg);
    auto outcome = search.run(rng);

    // Deployment selection: best-reward candidate actually evaluated.
    const CandidateRecord *best = nullptr;
    for (const auto &c : outcome.history)
        if (!best || c.reward > best->reward)
            best = &c;
    h2o_assert(best, "search produced no candidates");

    // Never deploy a regression: if even the best candidate scores
    // below the baseline's own reward, keep the baseline (zero-touch
    // must be safe to run continuously).
    double baseline_reward = rwd.compute(
        {result.baselineQuality, perf_fn(_baselineSample)});
    if (best->reward >= baseline_reward) {
        result.deployed = best->sample;
    } else {
        result.deployed = _baselineSample;
    }

    result.deployedQuality = _quality(result.deployed);
    result.deployedStepSec = _stepTime(result.deployed);
    result.deployedBytes = _modelBytes(result.deployed);
    return result;
}

} // namespace h2o::search
