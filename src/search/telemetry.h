/**
 * @file
 * Search telemetry export: dump a search's evaluated-candidate history
 * and per-step statistics as CSV for offline analysis/plotting (the
 * data behind figures like the paper's Fig 5 scatter).
 */

#ifndef H2O_SEARCH_TELEMETRY_H
#define H2O_SEARCH_TELEMETRY_H

#include <ostream>
#include <string>

#include "exec/proc_transport.h"
#include "search/h2o_dlrm_search.h"
#include "search/surrogate_search.h"
#include "sim/sim_cache.h"

namespace h2o::search {

/**
 * Write the candidate history as CSV: one row per evaluated candidate
 * with step, quality, each performance objective (perf0, perf1, ...),
 * and reward.
 */
void writeHistoryCsv(const SearchOutcome &outcome, std::ostream &os);

/** Write per-step searcher statistics as CSV. */
void writeStepStatsCsv(const std::vector<H2oStepStats> &stats,
                       std::ostream &os);

/**
 * Convenience: write the history to a file path; fatal if the file
 * cannot be opened (user-provided path).
 */
void writeHistoryCsvFile(const SearchOutcome &outcome,
                         const std::string &path);

/**
 * Write a SimCache counter snapshot as one CSV row
 * (hits, misses, evictions, entries, hit_rate) — the memoization
 * telemetry the perf benches log alongside their wall-clock numbers.
 */
void writeSimCacheStatsCsv(const sim::SimCacheStats &stats,
                           std::ostream &os);

/** File variant of writeSimCacheStatsCsv; fatal if unopenable. */
void writeSimCacheStatsCsvFile(const sim::SimCacheStats &stats,
                               const std::string &path);

/**
 * Write the multi-process transport's per-worker liveness/telemetry
 * counters as CSV: one row per worker slot with its pid, liveness,
 * tasks served, respawns after detected deaths, and bytes over the
 * socket in each direction (see StepwiseSearch::transportStats). An
 * empty stats snapshot (thread-path search) writes the header only.
 */
void writeTransportStatsCsv(const exec::ProcPoolStats &stats,
                            std::ostream &os);

/** File variant of writeTransportStatsCsv; fatal if unopenable. */
void writeTransportStatsCsvFile(const exec::ProcPoolStats &stats,
                                const std::string &path);

} // namespace h2o::search

#endif // H2O_SEARCH_TELEMETRY_H
