/**
 * @file
 * Multi-trial baseline search algorithms from the paper's taxonomy
 * (Section 2.1): random search and regularized evolution (Real et al.
 * 2019). Both are MULTI-TRIAL strategies — each candidate is evaluated
 * independently with stable (architecture-determined) rewards, which is
 * exactly why they work here against the surrogate evaluators but, as
 * the paper notes, cannot drive one-shot NAS: one-shot rewards depend
 * on how much data the shared weights have seen and are only comparable
 * within a step.
 *
 * They share the SurrogateSearch functor interface so all four
 * algorithms (H2O single-step RL, TuNAS alternating RL, evolution,
 * random) can be compared on identical tasks and budgets
 * (bench_ablation_algorithms).
 */

#ifndef H2O_SEARCH_BASELINE_SEARCH_H
#define H2O_SEARCH_BASELINE_SEARCH_H

#include "common/rng.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "searchspace/decision_space.h"

namespace h2o::search {

/** Random-search budget. */
struct RandomSearchConfig
{
    size_t numCandidates = 1000;
};

/**
 * Uniform random search: sample candidates independently, return the
 * best-reward one. The simplest multi-trial baseline.
 */
class RandomSearch
{
  public:
    RandomSearch(const searchspace::DecisionSpace &space, QualityFn quality,
                 PerfFn perf, const reward::RewardFunction &rewardf,
                 RandomSearchConfig config);

    /** Run to completion. finalSample is the best evaluated candidate. */
    SearchOutcome run(common::Rng &rng);

  private:
    const searchspace::DecisionSpace &_space;
    QualityFn _quality;
    PerfFn _perf;
    const reward::RewardFunction &_reward;
    RandomSearchConfig _config;
};

/** Regularized-evolution hyperparameters. */
struct EvolutionSearchConfig
{
    size_t populationSize = 64;
    size_t tournamentSize = 8;
    size_t numCandidates = 1000; ///< total evaluations incl. seeding
    /** Per-decision mutation probability beyond the single guaranteed
     *  mutation. */
    double extraMutationRate = 0.02;
};

/**
 * Regularized evolution: age-based removal, tournament parent
 * selection, single-decision mutation.
 */
class EvolutionSearch
{
  public:
    EvolutionSearch(const searchspace::DecisionSpace &space,
                    QualityFn quality, PerfFn perf,
                    const reward::RewardFunction &rewardf,
                    EvolutionSearchConfig config);

    /** Run to completion. finalSample is the best evaluated candidate. */
    SearchOutcome run(common::Rng &rng);

    /** Mutate one (or occasionally more) decisions of a parent. */
    searchspace::Sample mutate(const searchspace::Sample &parent,
                               common::Rng &rng) const;

  private:
    const searchspace::DecisionSpace &_space;
    QualityFn _quality;
    PerfFn _perf;
    const reward::RewardFunction &_reward;
    EvolutionSearchConfig _config;
};

} // namespace h2o::search

#endif // H2O_SEARCH_BASELINE_SEARCH_H
