#include "search/baseline_search.h"

#include <deque>

#include "common/logging.h"

namespace h2o::search {

namespace {

/** Evaluate one candidate through the shared functor interface. */
CandidateRecord
evaluate(const searchspace::Sample &sample, size_t step,
         const QualityFn &quality, const PerfFn &perf,
         const reward::RewardFunction &rewardf)
{
    CandidateRecord rec;
    rec.sample = sample;
    rec.step = step;
    rec.quality = quality(sample);
    rec.performance = perf(sample);
    rec.reward = rewardf.compute({rec.quality, rec.performance});
    return rec;
}

} // namespace

RandomSearch::RandomSearch(const searchspace::DecisionSpace &space,
                           QualityFn quality, PerfFn perf,
                           const reward::RewardFunction &rewardf,
                           RandomSearchConfig config)
    : _space(space), _quality(std::move(quality)), _perf(std::move(perf)),
      _reward(rewardf), _config(config)
{
    h2o_assert(_quality && _perf, "null functor");
    h2o_assert(_config.numCandidates > 0, "empty budget");
}

SearchOutcome
RandomSearch::run(common::Rng &rng)
{
    SearchOutcome outcome;
    outcome.history.reserve(_config.numCandidates);
    const CandidateRecord *best = nullptr;
    for (size_t i = 0; i < _config.numCandidates; ++i) {
        outcome.history.push_back(evaluate(_space.uniformSample(rng), i,
                                           _quality, _perf, _reward));
        if (!best || outcome.history.back().reward > best->reward)
            best = &outcome.history.back();
        outcome.finalMeanReward = outcome.history.back().reward;
    }
    outcome.finalSample = best->sample;
    return outcome;
}

EvolutionSearch::EvolutionSearch(const searchspace::DecisionSpace &space,
                                 QualityFn quality, PerfFn perf,
                                 const reward::RewardFunction &rewardf,
                                 EvolutionSearchConfig config)
    : _space(space), _quality(std::move(quality)), _perf(std::move(perf)),
      _reward(rewardf), _config(config)
{
    h2o_assert(_quality && _perf, "null functor");
    h2o_assert(_config.populationSize >= 2, "population too small");
    h2o_assert(_config.tournamentSize >= 1 &&
                   _config.tournamentSize <= _config.populationSize,
               "bad tournament size");
    h2o_assert(_config.numCandidates >= _config.populationSize,
               "budget smaller than the seed population");
}

searchspace::Sample
EvolutionSearch::mutate(const searchspace::Sample &parent,
                        common::Rng &rng) const
{
    h2o_assert(_space.validSample(parent), "mutating invalid sample");
    searchspace::Sample child = parent;
    // One guaranteed mutation on a random decision...
    size_t target = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int64_t>(child.size()) - 1));
    for (size_t d = 0; d < child.size(); ++d) {
        bool mutate_this =
            d == target || rng.bernoulli(_config.extraMutationRate);
        if (!mutate_this)
            continue;
        size_t choices = _space.decision(d).numChoices;
        if (choices == 1)
            continue;
        // Draw a DIFFERENT choice.
        size_t next = static_cast<size_t>(
            rng.uniformInt(0, static_cast<int64_t>(choices) - 2));
        if (next >= child[d])
            ++next;
        child[d] = next;
    }
    return child;
}

SearchOutcome
EvolutionSearch::run(common::Rng &rng)
{
    SearchOutcome outcome;
    outcome.history.reserve(_config.numCandidates);
    // Population as (index into history) with age-ordered removal.
    std::deque<size_t> population;
    const CandidateRecord *best = nullptr;

    auto admit = [&](searchspace::Sample sample, size_t step) {
        outcome.history.push_back(evaluate(sample, step, _quality, _perf,
                                           _reward));
        population.push_back(outcome.history.size() - 1);
        if (population.size() > _config.populationSize)
            population.pop_front(); // regularized: remove the OLDEST
    };

    // Seed with random candidates.
    for (size_t i = 0; i < _config.populationSize; ++i)
        admit(_space.uniformSample(rng), 0);

    for (size_t i = _config.populationSize; i < _config.numCandidates;
         ++i) {
        // Tournament: best of a random subset becomes the parent.
        const CandidateRecord *parent = nullptr;
        for (size_t t = 0; t < _config.tournamentSize; ++t) {
            size_t pick = population[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(population.size()) - 1))];
            const CandidateRecord &cand = outcome.history[pick];
            if (!parent || cand.reward > parent->reward)
                parent = &cand;
        }
        admit(mutate(parent->sample, rng), i);
    }

    for (const auto &rec : outcome.history)
        if (!best || rec.reward > best->reward)
            best = &rec;
    outcome.finalSample = best->sample;
    outcome.finalMeanReward = best->reward;
    return outcome;
}

} // namespace h2o::search
