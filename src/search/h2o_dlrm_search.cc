#include "search/h2o_dlrm_search.h"

#include "common/logging.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "eval/eval_engine.h"
#include "exec/checkpoint.h"
#include "exec/fault_injector.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"

namespace h2o::search {

H2oDlrmSearch::H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                             supernet::DlrmSupernet &supernet,
                             pipeline::InMemoryPipeline &pipe,
                             DlrmPerfFn perf,
                             const reward::RewardFunction &rewardf,
                             H2oSearchConfig config)
    : H2oDlrmSearch(space, supernet, pipe,
                    eval::PerfStage(std::move(perf)), rewardf,
                    std::move(config))
{
}

H2oDlrmSearch::H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                             supernet::DlrmSupernet &supernet,
                             pipeline::InMemoryPipeline &pipe,
                             DlrmPerfBatchFn perf_batch,
                             const reward::RewardFunction &rewardf,
                             H2oSearchConfig config)
    : H2oDlrmSearch(space, supernet, pipe,
                    eval::PerfStage(std::move(perf_batch)), rewardf,
                    std::move(config))
{
}

H2oDlrmSearch::H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                             supernet::DlrmSupernet &supernet,
                             pipeline::InMemoryPipeline &pipe,
                             eval::PerfStage perf,
                             const reward::RewardFunction &rewardf,
                             H2oSearchConfig config)
    : _space(space), _supernet(supernet), _pipeline(pipe),
      _perf(std::move(perf)), _reward(rewardf),
      _config(std::move(config))
{
    h2o_assert(_perf.perCandidate || _perf.batched,
               "null performance functor");
    h2o_assert(_config.numShards > 0 && _config.numSteps > 0,
               "degenerate search configuration");
    h2o_assert(_config.checkpointEvery > 0, "zero checkpoint interval");
}

SearchOutcome
H2oDlrmSearch::run(common::Rng &rng)
{
    controller::ReinforceController controller(_space.decisions(),
                                               _config.rl);
    SearchOutcome outcome;
    _stats.clear();

    // Per-shard RNG streams: forked from the caller's stream exactly as
    // the serial implementation always did, independent of thread count.
    auto shard_rngs =
        exec::ThreadPool::splitRngs(rng, _config.numShards);

    // --- Resume: a pre-existing checkpoint replaces warm-up and the
    // already-completed steps with their exact recorded state.
    size_t start_step = 0;
    bool resumed = false;
    const bool checkpointing = !_config.checkpointPath.empty();
    if (checkpointing &&
        exec::CheckpointReader::exists(_config.checkpointPath)) {
        start_step = loadCheckpoint(controller, shard_rngs, outcome);
        resumed = true;
        common::inform("resumed search from '", _config.checkpointPath,
                       "' at step ", start_step);
    }

    // The candidate -> reward pipeline: per-shard quality (supernet
    // forward in the ordered section) on the engine's worker pool, then
    // one batched performance + reward pass per step.
    eval::EvalEngine engine(_perf, _reward,
                            {_config.numShards, _config.threads, true,
                             _config.faults, _config.maxShardAttempts,
                             _config.retryBackoffMs});
    exec::ShardRunner &runner = engine.runner();

    // --- Warm-up: train shared weights on uniformly-sampled candidates
    // so early rewards reflect architecture, not initialization. Shards
    // run concurrently; the shared supernet + pipeline region is entered
    // in shard-index order, so batches and gradient accumulation match
    // the serial schedule exactly. Warm-up shares the engine's runner so
    // the fault-injection step sequence stays contiguous.
    if (!resumed) {
        for (size_t step = 0; step < _config.warmupSteps; ++step) {
            auto report = runner.runStep(step, [&](size_t s) {
                auto sample =
                    _space.decisions().uniformSample(shard_rngs[s]);
                exec::OrderedSection::Guard guard(runner.ordered(), s);
                auto lease = _pipeline.lease();
                _supernet.configure(sample);
                (void)_supernet.accumulateGradients(lease.batch());
                lease.markAlphaUse();
                lease.markWeightUse();
            });
            size_t live = report.numOk();
            if (live > 0) {
                _supernet.applyGradients(_config.weightLr /
                                         static_cast<double>(live));
            }
        }
    }

    // --- Unified single-step search (Figure 2, right).
    for (size_t step = start_step; step < _config.numSteps; ++step) {
        std::vector<double> losses(_config.numShards, 0.0);

        // Stage (1) per shard, concurrently. Sampling draws from the
        // shard's own stream; the forward pass on a FRESH batch yields
        // the quality signal (alpha use) and the gradients for the
        // weight update (W use) — in that mandatory order — inside the
        // deterministic ordered section. The engine then runs the
        // batched performance stage and the reward over the survivors.
        auto ev = engine.evaluate(
            _config.warmupSteps + step,
            [&](size_t s, searchspace::Sample &sample, double &quality) {
                sample = controller.policy().sample(shard_rngs[s]);
                {
                    exec::OrderedSection::Guard guard(runner.ordered(),
                                                      s);
                    auto lease = _pipeline.lease();
                    _supernet.configure(sample);
                    losses[s] =
                        _supernet.accumulateGradients(lease.batch());
                    lease.markAlphaUse();
                    lease.markWeightUse();
                }
                quality = -losses[s]; // quality = negated log-loss
            });

        // Graceful degradation: aggregate over the shards that survived
        // this step; baselines scale with the live shard count.
        const auto &live = ev.survivors;
        H2oStepStats st;
        st.step = step;
        st.liveShards = live.size();
        if (!live.empty()) {
            std::vector<searchspace::Sample> live_samples;
            std::vector<double> live_rewards, live_qualities,
                live_losses;
            live_samples.reserve(live.size());
            for (size_t s : live) {
                live_samples.push_back(ev.samples[s]);
                live_rewards.push_back(ev.rewards[s]);
                live_qualities.push_back(ev.qualities[s]);
                live_losses.push_back(losses[s]);
            }

            // Stage (2): cross-shard policy update over survivors.
            auto cstats = controller.update(live_samples, live_rewards);

            // Stage (3): cross-shard (merged) weight update, scaled by
            // the number of shards that actually contributed gradients.
            _supernet.applyGradients(
                _config.weightLr / static_cast<double>(live.size()));

            st.meanReward = cstats.meanReward;
            st.meanQuality = common::mean(live_qualities);
            st.meanEntropy = cstats.meanEntropy;
            st.trainLoss = common::mean(live_losses);
            outcome.finalMeanReward = cstats.meanReward;
            outcome.finalEntropy = cstats.meanEntropy;

            for (size_t s : live) {
                outcome.history.push_back({std::move(ev.samples[s]),
                                           ev.qualities[s],
                                           std::move(ev.performance[s]),
                                           ev.rewards[s], step});
            }
        } else {
            // Every shard lost: the step is skipped entirely (no policy
            // or weight update), which a preemptible fleet survives.
            st.meanEntropy = controller.policy().meanEntropy();
            common::warn("search step ", step,
                         " lost all shards; skipping update");
        }
        _stats.push_back(st);

        if (checkpointing && ((step + 1) % _config.checkpointEvery == 0 ||
                              step + 1 == _config.numSteps)) {
            saveCheckpoint(step + 1, controller, shard_rngs, outcome);
        }
    }
    outcome.finalSample = controller.policy().argmax();
    return outcome;
}

// ------------------------------------------------------- checkpointing

namespace {
constexpr uint64_t kCheckpointVersion = 1;
} // namespace

void
H2oDlrmSearch::saveCheckpoint(
    size_t next_step, const controller::ReinforceController &controller,
    const std::vector<common::Rng> &shard_rngs,
    const SearchOutcome &outcome) const
{
    exec::CheckpointWriter writer;
    std::ostream &os = writer.stream();

    common::writeTaggedU64(os, "h2o_search_ckpt",
                           {kCheckpointVersion, next_step,
                            _config.numShards, _config.numSteps,
                            _config.warmupSteps});
    controller.save(os);
    _supernet.save(os);
    _pipeline.save(os);
    for (const auto &r : shard_rngs)
        r.save(os);

    // Step telemetry.
    std::vector<uint64_t> stat_steps, stat_live;
    std::vector<double> stat_reward, stat_quality, stat_entropy,
        stat_loss;
    for (const auto &st : _stats) {
        stat_steps.push_back(st.step);
        stat_live.push_back(st.liveShards);
        stat_reward.push_back(st.meanReward);
        stat_quality.push_back(st.meanQuality);
        stat_entropy.push_back(st.meanEntropy);
        stat_loss.push_back(st.trainLoss);
    }
    common::writeTaggedU64(os, "stat_steps", stat_steps);
    common::writeTaggedU64(os, "stat_live", stat_live);
    common::writeTagged(os, "stat_reward", stat_reward);
    common::writeTagged(os, "stat_quality", stat_quality);
    common::writeTagged(os, "stat_entropy", stat_entropy);
    common::writeTagged(os, "stat_loss", stat_loss);

    // Search outcome so far. Samples all have numDecisions entries and
    // rewards have a fixed objective count, so the history flattens into
    // parallel arrays.
    common::writeTagged(os, "outcome_finals",
                        {outcome.finalMeanReward, outcome.finalEntropy});
    std::vector<uint64_t> hist_samples, hist_steps, hist_perf_lens;
    std::vector<double> hist_quality, hist_reward, hist_perfs;
    for (const auto &rec : outcome.history) {
        for (size_t v : rec.sample)
            hist_samples.push_back(v);
        hist_steps.push_back(rec.step);
        hist_quality.push_back(rec.quality);
        hist_reward.push_back(rec.reward);
        hist_perf_lens.push_back(rec.performance.size());
        for (double p : rec.performance)
            hist_perfs.push_back(p);
    }
    common::writeTaggedU64(os, "hist_count", {outcome.history.size()});
    common::writeTaggedU64(os, "hist_samples", hist_samples);
    common::writeTaggedU64(os, "hist_steps", hist_steps);
    common::writeTaggedU64(os, "hist_perf_lens", hist_perf_lens);
    common::writeTagged(os, "hist_quality", hist_quality);
    common::writeTagged(os, "hist_reward", hist_reward);
    common::writeTagged(os, "hist_perfs", hist_perfs);

    writer.commit(_config.checkpointPath);
}

size_t
H2oDlrmSearch::loadCheckpoint(controller::ReinforceController &controller,
                              std::vector<common::Rng> &shard_rngs,
                              SearchOutcome &outcome)
{
    exec::CheckpointReader reader(_config.checkpointPath);
    std::istream &is = reader.stream();

    auto header = common::readTaggedU64(is, "h2o_search_ckpt");
    if (header.size() != 5 || header[0] != kCheckpointVersion)
        h2o_fatal("unsupported search checkpoint header in '",
                  _config.checkpointPath, "'");
    if (header[2] != _config.numShards ||
        header[4] != _config.warmupSteps) {
        h2o_fatal("checkpoint was taken with ", header[2], " shards / ",
                  header[4], " warmup steps; config has ",
                  _config.numShards, " / ", _config.warmupSteps);
    }
    size_t next_step = header[1];

    controller.load(is);
    _supernet.load(is);
    _pipeline.load(is);
    for (auto &r : shard_rngs)
        r.load(is);

    auto stat_steps = common::readTaggedU64(is, "stat_steps");
    auto stat_live = common::readTaggedU64(is, "stat_live");
    auto stat_reward = common::readTagged(is, "stat_reward");
    auto stat_quality = common::readTagged(is, "stat_quality");
    auto stat_entropy = common::readTagged(is, "stat_entropy");
    auto stat_loss = common::readTagged(is, "stat_loss");
    if (stat_live.size() != stat_steps.size() ||
        stat_reward.size() != stat_steps.size() ||
        stat_quality.size() != stat_steps.size() ||
        stat_entropy.size() != stat_steps.size() ||
        stat_loss.size() != stat_steps.size())
        h2o_fatal("inconsistent telemetry arrays in checkpoint");
    _stats.clear();
    for (size_t i = 0; i < stat_steps.size(); ++i) {
        _stats.push_back({stat_steps[i], stat_reward[i], stat_quality[i],
                          stat_entropy[i], stat_loss[i],
                          static_cast<size_t>(stat_live[i])});
    }

    auto finals = common::readTagged(is, "outcome_finals");
    if (finals.size() != 2)
        h2o_fatal("malformed outcome finals in checkpoint");
    outcome.finalMeanReward = finals[0];
    outcome.finalEntropy = finals[1];

    size_t decisions = _space.decisions().numDecisions();
    auto hist_count = common::readTaggedU64(is, "hist_count");
    auto hist_samples = common::readTaggedU64(is, "hist_samples");
    auto hist_steps = common::readTaggedU64(is, "hist_steps");
    auto hist_perf_lens = common::readTaggedU64(is, "hist_perf_lens");
    auto hist_quality = common::readTagged(is, "hist_quality");
    auto hist_reward = common::readTagged(is, "hist_reward");
    auto hist_perfs = common::readTagged(is, "hist_perfs");
    if (hist_count.size() != 1)
        h2o_fatal("malformed history count in checkpoint");
    size_t records = hist_count[0];
    if (hist_samples.size() != records * decisions ||
        hist_steps.size() != records ||
        hist_perf_lens.size() != records ||
        hist_quality.size() != records || hist_reward.size() != records)
        h2o_fatal("inconsistent history arrays in checkpoint");

    outcome.history.clear();
    outcome.history.reserve(records);
    size_t perf_cursor = 0;
    for (size_t i = 0; i < records; ++i) {
        CandidateRecord rec;
        rec.sample.assign(hist_samples.begin() +
                              static_cast<ptrdiff_t>(i * decisions),
                          hist_samples.begin() +
                              static_cast<ptrdiff_t>((i + 1) * decisions));
        rec.quality = hist_quality[i];
        rec.reward = hist_reward[i];
        rec.step = hist_steps[i];
        size_t len = hist_perf_lens[i];
        if (perf_cursor + len > hist_perfs.size())
            h2o_fatal("truncated history performance values");
        rec.performance.assign(
            hist_perfs.begin() + static_cast<ptrdiff_t>(perf_cursor),
            hist_perfs.begin() + static_cast<ptrdiff_t>(perf_cursor + len));
        perf_cursor += len;
        outcome.history.push_back(std::move(rec));
    }
    return next_step;
}

} // namespace h2o::search
