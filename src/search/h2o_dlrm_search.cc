#include "search/h2o_dlrm_search.h"

#include "common/logging.h"
#include "common/stats.h"

namespace h2o::search {

H2oDlrmSearch::H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                             supernet::DlrmSupernet &supernet,
                             pipeline::InMemoryPipeline &pipe,
                             DlrmPerfFn perf,
                             const reward::RewardFunction &rewardf,
                             H2oSearchConfig config)
    : _space(space), _supernet(supernet), _pipeline(pipe),
      _perf(std::move(perf)), _reward(rewardf), _config(config)
{
    h2o_assert(_perf, "null performance functor");
    h2o_assert(_config.numShards > 0 && _config.numSteps > 0,
               "degenerate search configuration");
}

SearchOutcome
H2oDlrmSearch::run(common::Rng &rng)
{
    controller::ReinforceController controller(_space.decisions(),
                                               _config.rl);
    SearchOutcome outcome;
    _stats.clear();

    std::vector<common::Rng> shard_rngs;
    for (size_t s = 0; s < _config.numShards; ++s)
        shard_rngs.push_back(rng.fork(s + 1));

    // --- Warm-up: train shared weights on uniformly-sampled candidates
    // so early rewards reflect architecture, not initialization.
    for (size_t step = 0; step < _config.warmupSteps; ++step) {
        for (size_t s = 0; s < _config.numShards; ++s) {
            auto sample = _space.decisions().uniformSample(shard_rngs[s]);
            auto lease = _pipeline.lease();
            _supernet.configure(sample);
            double loss = _supernet.accumulateGradients(lease.batch());
            (void)loss;
            lease.markAlphaUse();
            lease.markWeightUse();
        }
        _supernet.applyGradients(_config.weightLr /
                                 static_cast<double>(_config.numShards));
    }

    // --- Unified single-step search (Figure 2, right).
    for (size_t step = 0; step < _config.numSteps; ++step) {
        size_t n = _config.numShards;
        std::vector<searchspace::Sample> samples(n);
        std::vector<double> qualities(n), rewards(n);
        std::vector<std::vector<double>> perfs(n);
        double step_loss = 0.0;

        // Stage (1): each shard samples its own candidate from pi.
        for (size_t s = 0; s < n; ++s)
            samples[s] = controller.policy().sample(shard_rngs[s]);

        // Stages (1)-(3) per shard: one forward pass on a FRESH batch
        // yields the quality signal (alpha use) and the gradients for
        // the weight update (W use) — in that mandatory order.
        for (size_t s = 0; s < n; ++s) {
            auto lease = _pipeline.lease();
            _supernet.configure(samples[s]);
            double loss = _supernet.accumulateGradients(lease.batch());
            lease.markAlphaUse();
            qualities[s] = -loss; // quality = negated log-loss
            perfs[s] = _perf(samples[s]);
            rewards[s] = _reward.compute({qualities[s], perfs[s]});
            lease.markWeightUse();
            step_loss += loss;
        }

        // Stage (2): cross-shard policy update.
        auto cstats = controller.update(samples, rewards);

        // Stage (3): cross-shard (merged) weight update.
        _supernet.applyGradients(_config.weightLr / static_cast<double>(n));

        H2oStepStats st;
        st.step = step;
        st.meanReward = cstats.meanReward;
        st.meanQuality = common::mean(qualities);
        st.meanEntropy = cstats.meanEntropy;
        st.trainLoss = step_loss / static_cast<double>(n);
        _stats.push_back(st);
        outcome.finalMeanReward = cstats.meanReward;
        outcome.finalEntropy = cstats.meanEntropy;

        for (size_t s = 0; s < n; ++s) {
            outcome.history.push_back({std::move(samples[s]), qualities[s],
                                       std::move(perfs[s]), rewards[s],
                                       step});
        }
    }
    outcome.finalSample = controller.policy().argmax();
    return outcome;
}

} // namespace h2o::search
