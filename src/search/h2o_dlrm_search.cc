#include "search/h2o_dlrm_search.h"

#include "common/logging.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "eval/eval_engine.h"
#include "exec/checkpoint.h"
#include "exec/fault_injector.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"
#include "search/stepwise.h"

namespace h2o::search {

/**
 * Step-wise state of the unified single-step search: the policy, the
 * per-shard RNG streams, the eval engine and the accumulated outcome.
 * Warm-up runs lazily inside the first step(); a load()ed stepper
 * skips it because the restored supernet weights already contain it.
 * save()/load() speak the pre-existing H2oDlrmSearch checkpoint format
 * (version 1), so checkpoints written before the stepper refactor keep
 * loading byte-for-byte.
 */
class H2oDlrmStepper final : public StepwiseSearch
{
  public:
    static eval::EvalEngineConfig
    engineConfig(const H2oSearchConfig &c)
    {
        if ((c.procs > 0 || !c.workers.empty()) && !c.batchedQuality)
            h2o_fatal("procs > 0 or remote workers require "
                      "batchedQuality: the per-shard quality body "
                      "closes over the shared supernet, which cannot "
                      "cross the process boundary");
        eval::EvalEngineConfig ec;
        ec.numShards = c.numShards;
        ec.threads = c.threads;
        ec.multithread = true;
        ec.faults = c.faults;
        ec.maxShardAttempts = c.maxShardAttempts;
        ec.retryBackoffMs = c.retryBackoffMs;
        ec.procs = c.procs;
        ec.workers = c.workers;
        return ec;
    }

    H2oDlrmStepper(H2oDlrmSearch &owner, common::Rng &rng)
        : _owner(owner),
          _controller(owner._space.decisions(), owner._config.rl),
          // Per-shard RNG streams: forked from the caller's stream
          // exactly as the serial implementation always did,
          // independent of thread count.
          _rngs(exec::ThreadPool::splitRngs(rng, owner._config.numShards)),
          // The candidate -> reward pipeline: per-shard quality
          // (supernet forward in the ordered section) on the engine's
          // worker pool, then one batched performance + reward pass per
          // step.
          _engine(owner._perf, owner._reward,
                  engineConfig(owner._config))
    {
        owner._stats.clear();
        _fronts.reset(owner._config.multiTarget);
    }

    bool step() override
    {
        if (done())
            return false;
        auto &cfg = _owner._config;
        exec::ShardRunner &runner = _engine.runner();

        // --- Warm-up: train shared weights on uniformly-sampled
        // candidates so early rewards reflect architecture, not
        // initialization. Shards run concurrently; the shared supernet
        // + pipeline region is entered in shard-index order, so batches
        // and gradient accumulation match the serial schedule exactly.
        // Warm-up shares the engine's runner so the fault-injection
        // step sequence stays contiguous.
        if (!_warmed) {
            for (size_t w = 0; w < cfg.warmupSteps; ++w) {
                auto report = runner.runStep(w, [&](size_t s) {
                    auto sample =
                        _owner._space.decisions().uniformSample(_rngs[s]);
                    exec::OrderedSection::Guard guard(runner.ordered(),
                                                      s);
                    auto lease = _owner._pipeline.lease();
                    _owner._supernet.configure(sample);
                    (void)_owner._supernet.accumulateGradients(
                        lease.batch());
                    lease.markAlphaUse();
                    lease.markWeightUse();
                });
                size_t live = report.numOk();
                if (live > 0) {
                    _owner._supernet.applyGradients(
                        cfg.weightLr / static_cast<double>(live));
                }
            }
            _warmed = true;
        }

        // --- One step of the unified single-step search (Figure 2,
        // right).
        const size_t step = _next;
        std::vector<double> losses(cfg.numShards, 0.0);

        // Stage (1). The H2O quality signal is GRAD-CARRYING: each
        // candidate's forward+backward on a FRESH batch both measures
        // quality (alpha use) and accumulates the shared-weight
        // gradients (W use), in that mandatory order. Two execution
        // modes, bit-identical at the same seed:
        //
        //  - batched (default): shard bodies only draw their samples
        //    (per-shard RNG streams and fault semantics unchanged);
        //    the lease/configure/accumulate sequence then runs as ONE
        //    coordinator-side pass over the survivors in ascending
        //    shard order — the order the ordered section admits shards
        //    — with no per-shard ordered-section hand-offs.
        //  - per-shard: the sequence runs inside each shard body under
        //    the ordered section (the historical path, kept for A/B).
        auto ev =
            cfg.batchedQuality
                ? _engine.evaluate(
                      cfg.warmupSteps + step,
                      [&](size_t s, searchspace::Sample &sample) {
                          sample = _controller.policy().sample(_rngs[s]);
                      },
                      [&](std::span<const size_t> shards,
                          std::span<const searchspace::Sample> samples) {
                          std::vector<double> qs(samples.size());
                          for (size_t i = 0; i < samples.size(); ++i) {
                              auto lease = _owner._pipeline.lease();
                              _owner._supernet.configure(samples[i]);
                              losses[shards[i]] =
                                  _owner._supernet.accumulateGradients(
                                      lease.batch());
                              lease.markAlphaUse();
                              lease.markWeightUse();
                              qs[i] = -losses[shards[i]];
                          }
                          return qs;
                      })
                : _engine.evaluate(
                      cfg.warmupSteps + step,
                      [&](size_t s, searchspace::Sample &sample,
                          double &quality) {
                          sample = _controller.policy().sample(_rngs[s]);
                          {
                              exec::OrderedSection::Guard guard(
                                  runner.ordered(), s);
                              auto lease = _owner._pipeline.lease();
                              _owner._supernet.configure(sample);
                              losses[s] =
                                  _owner._supernet.accumulateGradients(
                                      lease.batch());
                              lease.markAlphaUse();
                              lease.markWeightUse();
                          }
                          quality = -losses[s]; // negated log-loss
                      });
        ++_next;

        // Graceful degradation: aggregate over the shards that survived
        // this step; baselines scale with the live shard count.
        const auto &live = ev.survivors;
        H2oStepStats st;
        st.step = step;
        st.liveShards = live.size();
        if (!live.empty()) {
            std::vector<searchspace::Sample> live_samples;
            std::vector<double> live_rewards, live_qualities,
                live_losses;
            live_samples.reserve(live.size());
            for (size_t s : live) {
                live_samples.push_back(ev.samples[s]);
                live_rewards.push_back(ev.rewards[s]);
                live_qualities.push_back(ev.qualities[s]);
                live_losses.push_back(losses[s]);
            }

            // Stage (2): cross-shard policy update over survivors.
            auto cstats = _controller.update(live_samples, live_rewards);

            // Stage (3): cross-shard (merged) weight update, scaled by
            // the number of shards that actually contributed gradients.
            _owner._supernet.applyGradients(
                cfg.weightLr / static_cast<double>(live.size()));

            st.meanReward = cstats.meanReward;
            st.meanQuality = common::mean(live_qualities);
            st.meanEntropy = cstats.meanEntropy;
            st.trainLoss = common::mean(live_losses);
            _outcome.finalMeanReward = cstats.meanReward;
            _outcome.finalEntropy = cstats.meanEntropy;

            for (size_t s : live) {
                _outcome.history.push_back({std::move(ev.samples[s]),
                                            ev.qualities[s],
                                            std::move(ev.performance[s]),
                                            ev.rewards[s], step});
            }
            _fronts.absorb(_outcome);
        } else {
            // Every shard lost: the step is skipped entirely (no policy
            // or weight update), which a preemptible fleet survives.
            st.meanEntropy = _controller.policy().meanEntropy();
            common::warn("search step ", step,
                         " lost all shards; skipping update");
        }
        _owner._stats.push_back(st);
        return !done();
    }

    size_t stepIndex() const override { return _next; }
    size_t totalSteps() const override { return _owner._config.numSteps; }
    double lastMeanReward() const override
    {
        return _outcome.finalMeanReward;
    }
    const SearchOutcome &partialOutcome() const override
    {
        return _outcome;
    }

    exec::ProcPoolStats transportStats() const override
    {
        return _engine.transportStats();
    }

    SearchOutcome finish() override
    {
        _fronts.emit(_outcome);
        _outcome.finalSample = _controller.policy().argmax();
        return std::move(_outcome);
    }

    void save(std::ostream &os) const override
    {
        // Multi-target searches write version 2 with a validation
        // record after the header; single-target checkpoints keep the
        // historical version-1 bytes exactly.
        const bool multi = _fronts.enabled();
        common::writeTaggedU64(os, "h2o_search_ckpt",
                               {multi ? kCheckpointVersionMulti
                                      : kCheckpointVersion,
                                _next, _owner._config.numShards,
                                _owner._config.numSteps,
                                _owner._config.warmupSteps});
        if (multi)
            writeMultiTargetTagged(os, _fronts.spec());
        _controller.save(os);
        _owner._supernet.save(os);
        _owner._pipeline.save(os);
        for (const auto &r : _rngs)
            r.save(os);

        // Step telemetry.
        std::vector<uint64_t> stat_steps, stat_live;
        std::vector<double> stat_reward, stat_quality, stat_entropy,
            stat_loss;
        for (const auto &st : _owner._stats) {
            stat_steps.push_back(st.step);
            stat_live.push_back(st.liveShards);
            stat_reward.push_back(st.meanReward);
            stat_quality.push_back(st.meanQuality);
            stat_entropy.push_back(st.meanEntropy);
            stat_loss.push_back(st.trainLoss);
        }
        common::writeTaggedU64(os, "stat_steps", stat_steps);
        common::writeTaggedU64(os, "stat_live", stat_live);
        common::writeTagged(os, "stat_reward", stat_reward);
        common::writeTagged(os, "stat_quality", stat_quality);
        common::writeTagged(os, "stat_entropy", stat_entropy);
        common::writeTagged(os, "stat_loss", stat_loss);

        // Search outcome so far (samples all have numDecisions entries,
        // so the history flattens into parallel arrays).
        writeOutcomeTagged(os, _outcome);
    }

    void load(std::istream &is) override
    {
        const bool multi = _owner._config.multiTarget.enabled();
        auto header = common::readTaggedU64(is, "h2o_search_ckpt");
        if (header.size() != 5 ||
            header[0] !=
                (multi ? kCheckpointVersionMulti : kCheckpointVersion))
            h2o_fatal("unsupported search checkpoint header (single/"
                      "multi-target or version mismatch)");
        if (multi)
            readMultiTargetTagged(is, _owner._config.multiTarget);
        if (header[2] != _owner._config.numShards ||
            header[4] != _owner._config.warmupSteps) {
            h2o_fatal("checkpoint was taken with ", header[2],
                      " shards / ", header[4],
                      " warmup steps; config has ",
                      _owner._config.numShards, " / ",
                      _owner._config.warmupSteps);
        }
        _next = header[1];

        _controller.load(is);
        _owner._supernet.load(is);
        _owner._pipeline.load(is);
        for (auto &r : _rngs)
            r.load(is);

        auto stat_steps = common::readTaggedU64(is, "stat_steps");
        auto stat_live = common::readTaggedU64(is, "stat_live");
        auto stat_reward = common::readTagged(is, "stat_reward");
        auto stat_quality = common::readTagged(is, "stat_quality");
        auto stat_entropy = common::readTagged(is, "stat_entropy");
        auto stat_loss = common::readTagged(is, "stat_loss");
        if (stat_live.size() != stat_steps.size() ||
            stat_reward.size() != stat_steps.size() ||
            stat_quality.size() != stat_steps.size() ||
            stat_entropy.size() != stat_steps.size() ||
            stat_loss.size() != stat_steps.size())
            h2o_fatal("inconsistent telemetry arrays in checkpoint");
        _owner._stats.clear();
        for (size_t i = 0; i < stat_steps.size(); ++i) {
            _owner._stats.push_back(
                {stat_steps[i], stat_reward[i], stat_quality[i],
                 stat_entropy[i], stat_loss[i],
                 static_cast<size_t>(stat_live[i])});
        }

        readOutcomeTagged(is, _owner._space.decisions().numDecisions(),
                          _outcome);
        // Fronts are a deterministic replay of the restored history.
        _fronts.reset(_owner._config.multiTarget);
        _fronts.absorb(_outcome);
        _warmed = true; // the restored weights already contain warm-up
    }

  private:
    static constexpr uint64_t kCheckpointVersion = 1;
    static constexpr uint64_t kCheckpointVersionMulti = 2;

    H2oDlrmSearch &_owner;
    controller::ReinforceController _controller;
    std::vector<common::Rng> _rngs;
    eval::EvalEngine _engine;
    SearchOutcome _outcome;
    TargetFrontTracker _fronts;
    size_t _next = 0;
    bool _warmed = false;
};

H2oDlrmSearch::H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                             supernet::DlrmSupernet &supernet,
                             pipeline::InMemoryPipeline &pipe,
                             DlrmPerfFn perf,
                             const reward::RewardFunction &rewardf,
                             H2oSearchConfig config)
    : H2oDlrmSearch(space, supernet, pipe,
                    eval::PerfStage(std::move(perf)), rewardf,
                    std::move(config))
{
}

H2oDlrmSearch::H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                             supernet::DlrmSupernet &supernet,
                             pipeline::InMemoryPipeline &pipe,
                             DlrmPerfBatchFn perf_batch,
                             const reward::RewardFunction &rewardf,
                             H2oSearchConfig config)
    : H2oDlrmSearch(space, supernet, pipe,
                    eval::PerfStage(std::move(perf_batch)), rewardf,
                    std::move(config))
{
}

H2oDlrmSearch::H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                             supernet::DlrmSupernet &supernet,
                             pipeline::InMemoryPipeline &pipe,
                             eval::PerfStage perf,
                             const reward::RewardFunction &rewardf,
                             H2oSearchConfig config)
    : _space(space), _supernet(supernet), _pipeline(pipe),
      _perf(std::move(perf)), _reward(rewardf),
      _config(std::move(config))
{
    h2o_assert(_perf.perCandidate || _perf.batched,
               "null performance functor");
    h2o_assert(_config.numShards > 0 && _config.numSteps > 0,
               "degenerate search configuration");
    h2o_assert(_config.checkpointEvery > 0, "zero checkpoint interval");
}

SearchOutcome
H2oDlrmSearch::run(common::Rng &rng)
{
    H2oDlrmStepper stepper(*this, rng);

    // --- Resume: a pre-existing checkpoint replaces warm-up and the
    // already-completed steps with their exact recorded state.
    const bool checkpointing = !_config.checkpointPath.empty();
    if (checkpointing &&
        exec::CheckpointReader::exists(_config.checkpointPath)) {
        exec::CheckpointReader reader(_config.checkpointPath);
        stepper.load(reader.stream());
        common::inform("resumed search from '", _config.checkpointPath,
                       "' at step ", stepper.stepIndex());
    }

    while (!stepper.done()) {
        stepper.step();
        if (checkpointing &&
            (stepper.stepIndex() % _config.checkpointEvery == 0 ||
             stepper.stepIndex() == _config.numSteps)) {
            exec::CheckpointWriter writer;
            stepper.save(writer.stream());
            writer.commit(_config.checkpointPath);
        }
    }
    return stepper.finish();
}

std::unique_ptr<StepwiseSearch>
H2oDlrmSearch::makeStepper(common::Rng &rng)
{
    return std::make_unique<H2oDlrmStepper>(*this, rng);
}

} // namespace h2o::search
