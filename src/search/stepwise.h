/**
 * @file
 * Step-wise (resumable) search execution.
 *
 * The run-to-completion searchers (`SurrogateSearch`, `TunasSearch`,
 * `H2oDlrmSearch`) all advance in discrete steps: evaluate a batch of
 * candidates, update the policy, append to the candidate history. The
 * NAS job server (`h2o::serve`) needs to own that loop — interleaving
 * many tenants' searches on one worker pool, checkpointing between
 * steps, pausing and resuming jobs — so each searcher exposes a
 * stepper: an object holding the search's complete evolving state
 * (policy, RNG streams, history, and for the supernet searches the
 * shared weights and pipeline cursor) behind this interface.
 *
 * Contract: driving a stepper with `while (step());` then `finish()`
 * is bit-identical to the searcher's own `run()` — run() is in fact
 * implemented exactly that way. `save()`/`load()` serialize the full
 * state in the strict tagged format of common/serialize, so a stepper
 * reloaded in a fresh process continues to the same SearchOutcome a
 * never-interrupted run produces.
 */

#ifndef H2O_SEARCH_STEPWISE_H
#define H2O_SEARCH_STEPWISE_H

#include <cstddef>
#include <istream>
#include <ostream>

#include "exec/proc_transport.h"
#include "search/surrogate_search.h"

namespace h2o::search {

/** The resumable step-wise search interface (see file comment). */
class StepwiseSearch
{
  public:
    virtual ~StepwiseSearch() = default;

    /**
     * Execute the next search step (candidate evaluation + policy
     * update). Returns true while more steps remain afterwards; calling
     * step() once the budget is exhausted is a no-op returning false.
     */
    virtual bool step() = 0;

    /** Index of the next step to execute (== steps completed). */
    virtual size_t stepIndex() const = 0;

    /** Total step budget. */
    virtual size_t totalSteps() const = 0;

    /** Whether the step budget is exhausted. */
    bool done() const { return stepIndex() >= totalSteps(); }

    /** Mean reward of the most recent completed step (0 before any). */
    virtual double lastMeanReward() const = 0;

    /** The outcome accumulated so far (history grows per step;
     *  finalSample is only set by finish()). */
    virtual const SearchOutcome &partialOutcome() const = 0;

    /**
     * Finalize: compute the per-decision argmax sample and hand the
     * outcome out. Call once, after the last step (the stepper's
     * history is moved out, so the stepper is spent afterwards).
     */
    virtual SearchOutcome finish() = 0;

    /** Per-worker-process transport/liveness counters (tasks served,
     *  respawns, bytes over the wire). Empty unless the stepper's
     *  engine runs the multi-process transport (procs > 0). */
    virtual exec::ProcPoolStats transportStats() const { return {}; }

    /** Serialize the complete search state (tagged text). */
    virtual void save(std::ostream &os) const = 0;

    /** Restore state saved by save(); strict — malformed or mismatched
     *  streams are fatal. Replaces any progress made so far. */
    virtual void load(std::istream &is) = 0;
};

/**
 * Tagged serialization of a SearchOutcome-in-progress (finals +
 * flattened candidate history; finalSample is NOT persisted — it is
 * recomputed by finish()). Shared by every stepper's checkpoint format
 * and byte-compatible with the pre-existing H2oDlrmSearch checkpoint
 * layout.
 */
void writeOutcomeTagged(std::ostream &os, const SearchOutcome &outcome);

/** Inverse of writeOutcomeTagged; fatal on malformed streams.
 *  @param num_decisions Expected sample width (history records are
 *         flattened; the width recovers the record boundaries). */
void readOutcomeTagged(std::istream &is, size_t num_decisions,
                       SearchOutcome &outcome);

/**
 * Incremental per-target Pareto fronts over a growing search history —
 * the shared multi-target plumbing of all three steppers. absorb()
 * scans the records appended since the last call and feeds each
 * target's (quality, cost) into its ParetoTracker; emit() fills
 * SearchOutcome::targetFronts. Fronts are deterministic replays of the
 * history, so load() rebuilds them by re-absorbing the restored
 * history instead of deserializing anything.
 */
class TargetFrontTracker
{
  public:
    /** Reconfigure (and clear). A disabled spec makes absorb()/emit()
     *  no-ops, which is the single-target mode. */
    void reset(const MultiTargetSpec &spec);

    /** Absorb history records appended since the last absorb(). */
    void absorb(const SearchOutcome &outcome);

    /** Fill outcome.targetFronts from the current trackers. */
    void emit(SearchOutcome &outcome) const;

    bool enabled() const { return _spec.enabled(); }
    const MultiTargetSpec &spec() const { return _spec; }

  private:
    MultiTargetSpec _spec;
    std::vector<ParetoTracker> _trackers; ///< one per target
    size_t _cursor = 0; ///< history records absorbed so far
};

/**
 * Checkpoint extension shared by the steppers' multi-target (version 2)
 * format: a tagged u64 record holding [numTargets, perfOffset,
 * hash(name_0) .. hash(name_{k-1})]. The strict tagged format has no
 * string payloads, so names are validated by 64-bit FNV-1a hash —
 * enough to refuse resuming a checkpoint under a different target list.
 */
void writeMultiTargetTagged(std::ostream &os, const MultiTargetSpec &spec);

/** Validate a multi-target record against the configured spec; fatal on
 *  count, offset or name-hash mismatch (checkpoint/config divergence). */
void readMultiTargetTagged(std::istream &is, const MultiTargetSpec &spec);

} // namespace h2o::search

#endif // H2O_SEARCH_STEPWISE_H
