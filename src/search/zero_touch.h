/**
 * @file
 * Zero-touch model optimization — the paper's production deployment
 * story (Section 7.3): point H2O-NAS at a production model, give it
 * the launch constraints, and get back a deployable architecture with
 * no manual intervention.
 *
 * ZeroTouchOptimizer wraps the whole flow behind one call:
 *
 *   - build the reward from the model's launch criteria (step-time
 *     target relative to the measured baseline, optional model-size
 *     and serving-throughput constraints), quality always first;
 *   - run the parallel one-shot search;
 *   - select the deployment candidate: the best-reward candidate the
 *     search actually evaluated (the paper retrains the selected
 *     architecture from scratch anyway, so joint evaluation beats a
 *     per-decision argmax that may compose untested combinations);
 *   - report quality / performance / size gains against the baseline.
 *
 * The optimizer is domain-agnostic: it sees only functors, so the same
 * code drives CV, DLRM and ViT fleets (bench_fig10_production uses it
 * for all eight models).
 */

#ifndef H2O_SEARCH_ZERO_TOUCH_H
#define H2O_SEARCH_ZERO_TOUCH_H

#include <functional>
#include <string>

#include "common/rng.h"
#include "search/surrogate_search.h"

namespace h2o::search {

/** Launch criteria for one production model (Section 2.2). */
struct LaunchCriteria
{
    /** Step-time target relative to the measured baseline: < 1 demands
     *  a speedup, 1 holds the line, > 1 allows a quality-driven
     *  slowdown. */
    double stepTimeTargetRel = 1.0;
    /** Penalty weight for the step-time objective (negative). */
    double stepTimeBeta = -4.0;
    /** Model-size target relative to baseline; 0 disables the
     *  constraint. */
    double modelSizeTargetRel = 1.0;
    /** Penalty weight for the size objective (negative). */
    double modelSizeBeta = -2.0;
};

/** Search-budget knobs. */
struct ZeroTouchConfig
{
    size_t numSteps = 150;
    size_t samplesPerStep = 8;
    double learningRate = 0.08;
    double entropyWeight = 5e-3;
};

/** Outcome of one zero-touch optimization. */
struct ZeroTouchResult
{
    searchspace::Sample deployed;    ///< selected candidate
    double baselineQuality = 0.0;
    double deployedQuality = 0.0;
    double baselineStepSec = 0.0;
    double deployedStepSec = 0.0;
    double baselineBytes = 0.0;
    double deployedBytes = 0.0;

    /** Speedup of the deployed model (baseline / deployed step time). */
    double perfGain() const { return baselineStepSec / deployedStepSec; }

    /** Absolute quality delta. */
    double qualityGain() const
    {
        return deployedQuality - baselineQuality;
    }

    /** Deployed / baseline model size. */
    double sizeRatio() const { return deployedBytes / baselineBytes; }
};

/**
 * The zero-touch optimizer over an arbitrary decision space.
 *
 * The three functors fully describe the model domain:
 *  - quality(sample): the quality signal, higher is better;
 *  - stepTime(sample): simulated training step time, seconds;
 *  - modelBytes(sample): serving model size, bytes.
 */
class ZeroTouchOptimizer
{
  public:
    using ScalarFn = std::function<double(const searchspace::Sample &)>;

    /**
     * @param space           Decision space around the baseline.
     * @param baseline_sample The sample decoding to the baseline.
     */
    ZeroTouchOptimizer(const searchspace::DecisionSpace &space,
                       searchspace::Sample baseline_sample,
                       ScalarFn quality, ScalarFn step_time,
                       ScalarFn model_bytes);

    /** Run one zero-touch optimization. */
    ZeroTouchResult optimize(const LaunchCriteria &criteria,
                             const ZeroTouchConfig &config,
                             common::Rng &rng) const;

  private:
    const searchspace::DecisionSpace &_space;
    searchspace::Sample _baselineSample;
    ScalarFn _quality;
    ScalarFn _stepTime;
    ScalarFn _modelBytes;
};

} // namespace h2o::search

#endif // H2O_SEARCH_ZERO_TOUCH_H
