#include "search/pareto.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace h2o::search {

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    bool no_worse = a.quality >= b.quality && a.cost <= b.cost;
    bool strictly_better = a.quality > b.quality || a.cost < b.cost;
    return no_worse && strictly_better;
}

std::vector<size_t>
paretoFront(const std::vector<ParetoPoint> &points)
{
    std::vector<size_t> idx(points.size());
    std::iota(idx.begin(), idx.end(), size_t{0});
    // Sort by cost ascending, quality descending for ties.
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        if (points[a].cost != points[b].cost)
            return points[a].cost < points[b].cost;
        return points[a].quality > points[b].quality;
    });
    std::vector<size_t> front;
    double best_quality = -1e300;
    for (size_t i : idx) {
        if (points[i].quality > best_quality) {
            front.push_back(i);
            best_quality = points[i].quality;
        }
    }
    return front;
}

bool
ParetoTracker::insert(size_t index, ParetoPoint point)
{
    for (const Member &m : _members) {
        if (dominates(m.point, point))
            return false;
        if (m.point.quality == point.quality && m.point.cost == point.cost)
            return false; // exact tie: first insertion wins
    }
    std::erase_if(_members, [&](const Member &m) {
        return dominates(point, m.point);
    });
    _members.push_back(Member{index, point});
    return true;
}

std::vector<size_t>
ParetoTracker::sortedOrder() const
{
    std::vector<size_t> order(_members.size());
    std::iota(order.begin(), order.end(), size_t{0});
    // Cost ascending, quality descending, insertion index ascending —
    // a total order, so the emitted front is sequence-deterministic.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const Member &ma = _members[a];
        const Member &mb = _members[b];
        if (ma.point.cost != mb.point.cost)
            return ma.point.cost < mb.point.cost;
        if (ma.point.quality != mb.point.quality)
            return ma.point.quality > mb.point.quality;
        return ma.index < mb.index;
    });
    return order;
}

std::vector<size_t>
ParetoTracker::front() const
{
    std::vector<size_t> out;
    out.reserve(_members.size());
    for (size_t i : sortedOrder())
        out.push_back(_members[i].index);
    return out;
}

std::vector<ParetoPoint>
ParetoTracker::frontPoints() const
{
    std::vector<ParetoPoint> pts;
    pts.reserve(_members.size());
    for (size_t i : sortedOrder())
        pts.push_back(_members[i].point);
    return pts;
}

double
hypervolume(const std::vector<ParetoPoint> &points,
            const ParetoPoint &reference)
{
    auto front = paretoFront(points);
    double volume = 0.0;
    double prev_cost = reference.cost;
    // Walk the front from highest cost down; each segment contributes
    // (cost span) x (quality above reference).
    for (size_t k = front.size(); k-- > 0;) {
        const auto &p = points[front[k]];
        if (p.cost >= prev_cost || p.quality <= reference.quality)
            continue;
        volume += (prev_cost - p.cost) * (p.quality - reference.quality);
        prev_cost = p.cost;
    }
    return volume;
}

} // namespace h2o::search
