/**
 * @file
 * The full H2O-NAS search for DLRM: the massively parallel UNIFIED
 * single-step algorithm of Section 4 (right side of Figure 2), wired to
 * the real weight-sharing super-network and the in-memory production
 * traffic pipeline.
 *
 * Each search step runs three stages across N virtual accelerator
 * shards:
 *
 *  (1) each shard samples its own candidate alpha_i from pi and runs a
 *      forward pass with the shared weights W on a FRESH batch from the
 *      pipeline to estimate the quality Q(alpha_i);
 *  (2) Q(alpha_i) and the performance model's T(alpha_i) form the reward
 *      R(alpha_i); all shards' rewards feed ONE cross-shard REINFORCE
 *      update of pi;
 *  (3) in parallel (same step, same batches), all shards backpropagate
 *      their candidates and the merged cross-shard gradient updates the
 *      shared weights W.
 *
 * The pipeline's BatchLease enforces the alpha-before-W invariant: the
 * batch informs the architecture decision before it trains weights, so
 * pi is always learned on data W has never seen — the property that
 * replaces the train/validation split (Section 4.1).
 *
 * Execution model: steps run on the h2o::exec runtime. Shards of one
 * step execute concurrently on a persistent worker pool (threads stand
 * in for TPU cores); policy sampling, perf-model queries and reward
 * computation are fully parallel, while the shared super-network and the
 * batch pipeline are entered through a deterministic shard-index-ordered
 * critical section. The cross-shard aggregation therefore stays
 * bit-for-bit identical to a serial run at any thread count. With a
 * FaultInjector attached, the runtime also reproduces the paper's
 * preemptible-fleet reality: failed shards retry with backoff, preempted
 * shards are dropped and the step aggregates over the survivors with
 * scaled baselines. With a checkpoint path configured, the full search
 * state (policy, baseline, supernet weights, pipeline cursor, shard RNG
 * streams, telemetry, candidate history) is committed atomically every
 * few steps, and a restarted search resumes to an identical
 * SearchOutcome.
 */

#ifndef H2O_SEARCH_H2O_DLRM_SEARCH_H
#define H2O_SEARCH_H2O_DLRM_SEARCH_H

#include <functional>
#include <string>

#include "common/rng.h"
#include "controller/reinforce.h"
#include "pipeline/pipeline.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_supernet.h"

namespace h2o::exec { class FaultInjector; }

namespace h2o::search {

/** Sample -> performance objective values (e.g. via the perf model). */
using DlrmPerfFn = PerfFn;

/** Batched performance stage (one call per step over the survivors). */
using DlrmPerfBatchFn = PerfBatchFn;

/** Configuration of the unified single-step search. */
struct H2oSearchConfig
{
    size_t numShards = 8;      ///< virtual accelerators per step
    size_t numSteps = 200;
    double weightLr = 0.05;    ///< shared-weight SGD learning rate
    /** Steps of pure weight warm-up (uniform sampling, no policy
     *  updates) so early rewards are not dominated by random init. */
    size_t warmupSteps = 30;
    controller::ReinforceConfig rl{};

    /**
     * Batched quality stage: shard bodies only DRAW their candidates
     * (so fault/RNG semantics are unchanged), and the step's gradient
     * accumulation runs as one coordinator-side pass over the survivors
     * in ascending shard order — exactly the order the per-shard path's
     * ordered section serializes to, so results are bit-identical at
     * any thread count. Disable to A/B against the per-shard path.
     */
    bool batchedQuality = true;

    // --- Execution runtime (h2o::exec).
    /** Worker threads for shard evaluation; 0 = one per hardware
     *  thread. Clamped to numShards. Any value yields bit-identical
     *  results at the same seed. */
    size_t threads = 0;
    /** Worker PROCESSES for the shard stage (multi-process transport,
     *  see eval::EvalEngineConfig::procs). 0 = in-process threads.
     *  Requires batchedQuality — the supernet forward needs the shared
     *  weights, which live coordinator-side; shard bodies then only
     *  draw (coordinator) while workers run the pure per-candidate
     *  work. Any value is byte-identical. */
    size_t procs = 0;
    /** Remote worker daemons for the shard stage, comma-separated
     *  ("host:port" or "local"; eval::EvalEngineConfig::workers).
     *  Combines with procs into one mixed pool. Requires
     *  batchedQuality for the same reason procs does. Empty = none;
     *  any fleet shape is byte-identical. */
    std::string workers;
    /** Optional fault oracle (preemptible-fleet emulation); not owned. */
    exec::FaultInjector *faults = nullptr;
    /** Max attempts per shard per step before it is dropped. */
    size_t maxShardAttempts = 3;
    /** Exponential retry backoff base, in milliseconds. */
    double retryBackoffMs = 0.5;

    // --- Checkpoint/resume.
    /** Checkpoint file; empty disables checkpointing. When the file
     *  already exists, run() resumes from it instead of starting over. */
    std::string checkpointPath;
    /** Steps between checkpoint commits. */
    size_t checkpointEvery = 1;

    /** Joint multi-target annotation (per-chip costs in the
     *  performance vectors, per-chip Pareto fronts in the outcome,
     *  checkpoint version 2); disabled (empty) by default — checkpoint
     *  bytes are then exactly the historical version-1 layout. */
    MultiTargetSpec multiTarget{};
};

/** Step-level telemetry. */
struct H2oStepStats
{
    size_t step = 0;
    double meanReward = 0.0;
    double meanQuality = 0.0;
    double meanEntropy = 0.0;
    double trainLoss = 0.0;
    /** Shards that survived this step (== numShards without faults). */
    size_t liveShards = 0;
};

/** The unified single-step DLRM searcher. */
class H2oDlrmSearch
{
  public:
    /**
     * @param space    DLRM search space.
     * @param supernet Trainable weight-sharing super-network.
     * @param pipe     In-memory production-traffic pipeline.
     * @param perf     Performance signal (thread-safe). Runs per
     *                 candidate INSIDE the shard body, so a blocking
     *                 function (device-in-the-loop) overlaps across
     *                 worker threads.
     * @param rewardf  Multi-objective reward.
     */
    H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                  supernet::DlrmSupernet &supernet,
                  pipeline::InMemoryPipeline &pipe, DlrmPerfFn perf,
                  const reward::RewardFunction &rewardf,
                  H2oSearchConfig config);

    /** As above with a batched performance stage (perf-model /
     *  simulator batch entry points, one coordinator-side call per
     *  step over the survivors). */
    H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                  supernet::DlrmSupernet &supernet,
                  pipeline::InMemoryPipeline &pipe,
                  DlrmPerfBatchFn perf_batch,
                  const reward::RewardFunction &rewardf,
                  H2oSearchConfig config);

    /** Run the search to completion (resuming from the configured
     *  checkpoint when one exists). */
    SearchOutcome run(common::Rng &rng);

    /** Step-wise execution; bit-identical to run() (see
     *  search/stepwise.h). Warm-up runs lazily inside the first step();
     *  a load()ed stepper skips it (the restored weights contain it).
     *  stepStats() accumulates as the stepper advances. The searcher
     *  and its supernet/pipeline must outlive the stepper. Unlike
     *  run(), makeStepper ignores checkpointPath — the caller owns
     *  persistence via save()/load(). */
    std::unique_ptr<StepwiseSearch> makeStepper(common::Rng &rng);

    /** Per-step telemetry from the last run(). */
    const std::vector<H2oStepStats> &stepStats() const { return _stats; }

  private:
    friend class H2oDlrmStepper;

    H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                  supernet::DlrmSupernet &supernet,
                  pipeline::InMemoryPipeline &pipe, eval::PerfStage perf,
                  const reward::RewardFunction &rewardf,
                  H2oSearchConfig config);

    const searchspace::DlrmSearchSpace &_space;
    supernet::DlrmSupernet &_supernet;
    pipeline::InMemoryPipeline &_pipeline;
    eval::PerfStage _perf;
    const reward::RewardFunction &_reward;
    H2oSearchConfig _config;
    std::vector<H2oStepStats> _stats;
};

} // namespace h2o::search

#endif // H2O_SEARCH_H2O_DLRM_SEARCH_H
