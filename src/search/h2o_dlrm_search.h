/**
 * @file
 * The full H2O-NAS search for DLRM: the massively parallel UNIFIED
 * single-step algorithm of Section 4 (right side of Figure 2), wired to
 * the real weight-sharing super-network and the in-memory production
 * traffic pipeline.
 *
 * Each search step runs three stages across N virtual accelerator
 * shards:
 *
 *  (1) each shard samples its own candidate alpha_i from pi and runs a
 *      forward pass with the shared weights W on a FRESH batch from the
 *      pipeline to estimate the quality Q(alpha_i);
 *  (2) Q(alpha_i) and the performance model's T(alpha_i) form the reward
 *      R(alpha_i); all shards' rewards feed ONE cross-shard REINFORCE
 *      update of pi;
 *  (3) in parallel (same step, same batches), all shards backpropagate
 *      their candidates and the merged cross-shard gradient updates the
 *      shared weights W.
 *
 * The pipeline's BatchLease enforces the alpha-before-W invariant: the
 * batch informs the architecture decision before it trains weights, so
 * pi is always learned on data W has never seen — the property that
 * replaces the train/validation split (Section 4.1).
 *
 * Substitution note: the shards share one in-memory super-network
 * (threads stand in for TPU cores), so stages serialize around the
 * supernet while preserving the exact cross-shard aggregation semantics.
 */

#ifndef H2O_SEARCH_H2O_DLRM_SEARCH_H
#define H2O_SEARCH_H2O_DLRM_SEARCH_H

#include <functional>

#include "common/rng.h"
#include "controller/reinforce.h"
#include "pipeline/pipeline.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_supernet.h"

namespace h2o::search {

/** Sample -> performance objective values (e.g. via the perf model). */
using DlrmPerfFn = PerfFn;

/** Configuration of the unified single-step search. */
struct H2oSearchConfig
{
    size_t numShards = 8;      ///< virtual accelerators per step
    size_t numSteps = 200;
    double weightLr = 0.05;    ///< shared-weight SGD learning rate
    /** Steps of pure weight warm-up (uniform sampling, no policy
     *  updates) so early rewards are not dominated by random init. */
    size_t warmupSteps = 30;
    controller::ReinforceConfig rl{};
};

/** Step-level telemetry. */
struct H2oStepStats
{
    size_t step = 0;
    double meanReward = 0.0;
    double meanQuality = 0.0;
    double meanEntropy = 0.0;
    double trainLoss = 0.0;
};

/** The unified single-step DLRM searcher. */
class H2oDlrmSearch
{
  public:
    /**
     * @param space    DLRM search space.
     * @param supernet Trainable weight-sharing super-network.
     * @param pipe     In-memory production-traffic pipeline.
     * @param perf     Performance signal (thread-safe).
     * @param rewardf  Multi-objective reward.
     */
    H2oDlrmSearch(const searchspace::DlrmSearchSpace &space,
                  supernet::DlrmSupernet &supernet,
                  pipeline::InMemoryPipeline &pipe, DlrmPerfFn perf,
                  const reward::RewardFunction &rewardf,
                  H2oSearchConfig config);

    /** Run the search to completion. */
    SearchOutcome run(common::Rng &rng);

    /** Per-step telemetry from the last run(). */
    const std::vector<H2oStepStats> &stepStats() const { return _stats; }

  private:
    const searchspace::DlrmSearchSpace &_space;
    supernet::DlrmSupernet &_supernet;
    pipeline::InMemoryPipeline &_pipeline;
    DlrmPerfFn _perf;
    const reward::RewardFunction &_reward;
    H2oSearchConfig _config;
    std::vector<H2oStepStats> _stats;
};

} // namespace h2o::search

#endif // H2O_SEARCH_H2O_DLRM_SEARCH_H
