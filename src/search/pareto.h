/**
 * @file
 * Pareto-front utilities for quality/performance trade-off analysis
 * (Figures 5a and 6 of the paper plot exactly these fronts).
 *
 * Convention: quality is maximized, cost (step time, model size) is
 * minimized. A point dominates another when it is no worse in both
 * coordinates and strictly better in at least one.
 */

#ifndef H2O_SEARCH_PARETO_H
#define H2O_SEARCH_PARETO_H

#include <cstddef>
#include <vector>

namespace h2o::search {

/** One candidate's (quality, cost) outcome. */
struct ParetoPoint
{
    double quality; ///< maximized
    double cost;    ///< minimized
};

/**
 * Indices of the non-dominated points, sorted by increasing cost.
 */
std::vector<size_t> paretoFront(const std::vector<ParetoPoint> &points);

/** True when a dominates b. */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * Hypervolume (2-D: summed dominated area) of a front against a
 * reference point with quality <= all and cost >= all points. Larger is
 * a better front.
 */
double hypervolume(const std::vector<ParetoPoint> &points,
                   const ParetoPoint &reference);

} // namespace h2o::search

#endif // H2O_SEARCH_PARETO_H
