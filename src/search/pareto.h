/**
 * @file
 * Pareto-front utilities for quality/performance trade-off analysis
 * (Figures 5a and 6 of the paper plot exactly these fronts).
 *
 * Convention: quality is maximized, cost (step time, model size) is
 * minimized. A point dominates another when it is no worse in both
 * coordinates and strictly better in at least one.
 */

#ifndef H2O_SEARCH_PARETO_H
#define H2O_SEARCH_PARETO_H

#include <cstddef>
#include <vector>

namespace h2o::search {

/** One candidate's (quality, cost) outcome. */
struct ParetoPoint
{
    double quality; ///< maximized
    double cost;    ///< minimized
};

/**
 * Indices of the non-dominated points, sorted by increasing cost.
 */
std::vector<size_t> paretoFront(const std::vector<ParetoPoint> &points);

/** True when a dominates b. */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * Hypervolume (2-D: summed dominated area) of a front against a
 * reference point with quality <= all and cost >= all points. Larger is
 * a better front.
 */
double hypervolume(const std::vector<ParetoPoint> &points,
                   const ParetoPoint &reference);

/**
 * Incrementally maintained Pareto front over a stream of indexed
 * points — multi-target searches keep one per deployment chip and feed
 * every evaluated candidate through insert() as the history grows.
 *
 * Deterministic by construction: a point exactly equal to a retained
 * member in both coordinates is rejected (first insertion wins), and
 * front() orders by increasing cost (quality descending, then index
 * ascending on remaining ties), so the emitted front depends only on
 * the insertion sequence, which is itself a pure function of the
 * search seed.
 */
class ParetoTracker
{
  public:
    /** Offer one point. @return true when it joined the front (any
     *  members it dominates are evicted). */
    bool insert(size_t index, ParetoPoint point);

    /** Number of points currently on the front. */
    size_t size() const { return _members.size(); }
    bool empty() const { return _members.empty(); }

    /** Indices of the current front, sorted by increasing cost. */
    std::vector<size_t> front() const;

    /** The (quality, cost) pairs matching front() order. */
    std::vector<ParetoPoint> frontPoints() const;

    void clear() { _members.clear(); }

  private:
    struct Member
    {
        size_t index;
        ParetoPoint point;
    };

    /** Positions into _members in front() order. */
    std::vector<size_t> sortedOrder() const;

    std::vector<Member> _members; ///< unordered; sorted on demand
};

} // namespace h2o::search

#endif // H2O_SEARCH_PARETO_H
