/**
 * @file
 * The DLRM search space — the paper's first-of-a-kind search space for
 * RL-based one-shot NAS on recommendation models (Section 5.1, Table 5):
 *
 *   Embedding (per table):
 *     width:      [-3, +3] x increment (8), w.r.t. baseline
 *                 (a width of 0 removes the table)
 *     vocabulary: 50% / 75% / 100% / 125% / 150% / 175% / 200% of baseline
 *   DNN (per MLP layer):
 *     width:      [-5, +5] x increment (8) excluding a zero width
 *     low rank:   1/10, 2/10, ..., 10/10 of layer width
 *   DNN (per MLP stack):
 *     depth:      -3 ... +3 layers w.r.t. baseline
 *
 * With the paper's production model (O(300) tables, O(10) MLP layers)
 * this space has ~10^282 candidates; log10Size() reports the cardinality
 * of the instantiated configuration.
 */

#ifndef H2O_SEARCHSPACE_DLRM_SPACE_H
#define H2O_SEARCHSPACE_DLRM_SPACE_H

#include <cstdint>
#include <vector>

#include "arch/dlrm_arch.h"
#include "searchspace/decision_space.h"

namespace h2o::searchspace {

/** Knobs controlling the DLRM space shape. */
struct DlrmSpaceConfig
{
    uint32_t widthIncrement = 8;  ///< minimal width step (Table 5)
    int32_t embWidthDeltaMin = -3;
    int32_t embWidthDeltaMax = 3;
    int32_t mlpWidthDeltaMin = -5;
    int32_t mlpWidthDeltaMax = 5;
    int32_t depthDeltaMin = -3;
    int32_t depthDeltaMax = 3;
    bool allowTableRemoval = true; ///< permit embedding width 0
};

/** The DLRM search space around a baseline architecture. */
class DlrmSearchSpace
{
  public:
    /**
     * @param baseline Architecture the deltas are relative to.
     * @param config   Space-shape knobs.
     */
    explicit DlrmSearchSpace(arch::DlrmArch baseline,
                             DlrmSpaceConfig config = DlrmSpaceConfig{});

    /** The categorical decisions. */
    const DecisionSpace &decisions() const { return _space; }

    /** Decode a sample into a concrete architecture. */
    arch::DlrmArch decode(const Sample &sample) const;

    /** The baseline (also the decode of the all-baseline sample). */
    const arch::DlrmArch &baseline() const { return _baseline; }

    /** The sample whose decode reproduces the baseline. */
    Sample baselineSample() const;

    /** log10 cardinality of this space. */
    double log10Size() const { return _space.log10Size(); }

    /** Vocabulary scale corresponding to a vocab choice index. */
    double vocabScale(size_t choice) const;

    /** Number of vocabulary-scale choices (coarse-grained sharing width). */
    size_t numVocabChoices() const { return 7; }

    /**
     * Largest embedding width any candidate can select for a table —
     * the fine-grained shared storage width in the super-network.
     */
    uint32_t maxEmbeddingWidth(size_t table) const;

    /** Largest width any candidate can select for MLP layer position
     *  `layer` of the bottom (is_bottom) or top stack. */
    uint32_t maxMlpWidth(bool is_bottom, size_t layer) const;

    /** Maximum bottom/top MLP depth (baseline depth + max delta). */
    size_t maxMlpDepth(bool is_bottom) const;

    /** Decision index carrying table `t`'s vocabulary-size choice (the
     *  coarse-grained sharing selector in the super-network). */
    size_t vocabDecisionIndex(size_t table) const;

  private:
    /** Decision indices for one embedding table. */
    struct TableDecisions
    {
        size_t width;
        size_t vocab;
    };

    /** Decision indices for one MLP layer slot. */
    struct LayerDecisions
    {
        size_t width;
        size_t rank;
    };

    uint32_t widthFromChoice(uint32_t base, size_t choice, int32_t dmin,
                             bool allow_zero) const;

    arch::DlrmArch _baseline;
    DlrmSpaceConfig _config;
    DecisionSpace _space;
    std::vector<TableDecisions> _tableDecisions;
    std::vector<LayerDecisions> _bottomDecisions; ///< sized to max depth
    std::vector<LayerDecisions> _topDecisions;    ///< sized to max depth
    size_t _bottomDepthDecision = 0;
    size_t _topDepthDecision = 0;
};

} // namespace h2o::searchspace

#endif // H2O_SEARCHSPACE_DLRM_SPACE_H
