/**
 * @file
 * The vision-transformer / hybrid search space (Table 5, "Vision
 * Transformer Models"):
 *
 *   Per transformer block:
 *     hidden size:      multiples of 64 up to 1024 (16 choices)
 *     FFN low rank:     1/10 ... 10/10 of layer width (10 choices)
 *     activation:       ReLU, swish, GeLU, Squared ReLU
 *     sequence pooling: with / without (funnel transformer)
 *     primer dconv:     with / without
 *     layers delta:     -3 ... +3
 *   => 16*10*4*2*2*7 = 17920 per block; two blocks give ~O(10^8),
 *      matching the paper's transformer-space accounting.
 *
 *   Hybrid stem:
 *     patch size:        4, 7, 8, 14, 16, 28, 32
 *     initial resolution: 21 choices in 112..448
 *     conv stages:        searched with the convolutional space
 */

#ifndef H2O_SEARCHSPACE_VIT_SPACE_H
#define H2O_SEARCHSPACE_VIT_SPACE_H

#include "arch/vit_arch.h"
#include "searchspace/decision_space.h"

namespace h2o::searchspace {

/** The ViT search space around a baseline architecture. */
class VitSearchSpace
{
  public:
    /** @param baseline Architecture the deltas are relative to. */
    explicit VitSearchSpace(arch::VitArch baseline);

    /** The categorical decisions. */
    const DecisionSpace &decisions() const { return _space; }

    /** Decode a sample into a concrete architecture. */
    arch::VitArch decode(const Sample &sample) const;

    /** The baseline architecture. */
    const arch::VitArch &baseline() const { return _baseline; }

    /** The sample whose decode reproduces the baseline. */
    Sample baselineSample() const;

    /** log10 cardinality. */
    double log10Size() const { return _space.log10Size(); }

  private:
    struct BlockDecisions
    {
        size_t hidden;
        size_t lowRank;
        size_t activation;
        size_t seqPool;
        size_t primer;
        size_t depth;
    };

    struct ConvStageDecisions
    {
        size_t blockType;
        size_t kernel;
        size_t expansion;
        size_t depth;
        size_t width;
    };

    arch::VitArch _baseline;
    DecisionSpace _space;
    std::vector<BlockDecisions> _blockDecisions;
    std::vector<ConvStageDecisions> _convDecisions;
    size_t _patchDecision = 0;
    size_t _resolutionDecision = 0;
};

} // namespace h2o::searchspace

#endif // H2O_SEARCHSPACE_VIT_SPACE_H
