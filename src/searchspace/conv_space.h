/**
 * @file
 * The convolutional search space (Table 5, "Convolutional Models"):
 *
 *   Per stage (7 stages in the paper's accounting):
 *     block type:        MBConv, Fused MBConv
 *     kernel size:       3x3, 5x5, 7x7
 *     stride:            1, 2, 4 (first layer of the stage)
 *     expansion ratio:   1, 3, 4, 6
 *     activation:        ReLU, swish
 *     squeeze-excite:    0, 1.0, 0.5, 0.25, 0.125
 *     skip connection:   none, identity
 *     tensor reshaping:  none, space-to-depth, space-to-batch
 *     depth delta:       -3 ... +3 layers
 *     width delta:       [-5, +5] x increment, excluding zero (10 choices)
 *   Global:
 *     initial resolution: 8 choices in 224..600
 *
 * Per-stage cardinality 2*3*3*4*2*5*2*3*7*10 = 302400 and 7 stages give
 * (302400)^7 * 8 ~ O(10^39), matching the paper's accounting.
 */

#ifndef H2O_SEARCHSPACE_CONV_SPACE_H
#define H2O_SEARCHSPACE_CONV_SPACE_H

#include "arch/conv_arch.h"
#include "searchspace/decision_space.h"

namespace h2o::searchspace {

/** Knobs controlling the conv space shape. */
struct ConvSpaceConfig
{
    /**
     * When false, the input resolution stays pinned to the baseline's —
     * production vision models often cannot change their input pipeline
     * (Section 2.2's deployment constraints).
     */
    bool searchResolution = true;
};

/** The CNN search space around a baseline architecture. */
class ConvSearchSpace
{
  public:
    /** @param baseline Architecture the deltas are relative to. */
    explicit ConvSearchSpace(arch::ConvArch baseline,
                             ConvSpaceConfig config = ConvSpaceConfig{});

    /** The categorical decisions. */
    const DecisionSpace &decisions() const { return _space; }

    /** Decode a sample into a concrete architecture. */
    arch::ConvArch decode(const Sample &sample) const;

    /** The baseline architecture. */
    const arch::ConvArch &baseline() const { return _baseline; }

    /** The sample whose decode reproduces the baseline. */
    Sample baselineSample() const;

    /** log10 cardinality. */
    double log10Size() const { return _space.log10Size(); }

  private:
    struct StageDecisions
    {
        size_t blockType;
        size_t kernel;
        size_t stride;
        size_t expansion;
        size_t activation;
        size_t seRatio;
        size_t skip;
        size_t reshape;
        size_t depth;
        size_t width;
    };

    arch::ConvArch _baseline;
    ConvSpaceConfig _config;
    DecisionSpace _space;
    std::vector<StageDecisions> _stageDecisions;
    size_t _resolutionDecision = 0;
    uint32_t _widthIncrement = 8;
};

} // namespace h2o::searchspace

#endif // H2O_SEARCHSPACE_CONV_SPACE_H
