/**
 * @file
 * The categorical decision space an RL search optimizes over.
 *
 * As Section 4.1 of the paper describes, "the search space consists of a
 * set of categorical decisions, where each decision controls a different
 * aspect of the network architecture", and the policy pi is a probability
 * distribution over a collection of independent multinomial variables.
 * DecisionSpace is that set; a Sample assigns one choice per decision.
 */

#ifndef H2O_SEARCHSPACE_DECISION_SPACE_H
#define H2O_SEARCHSPACE_DECISION_SPACE_H

#include <cstddef>
#include <string>
#include <vector>

namespace h2o::common { class Rng; }

namespace h2o::searchspace {

/** One categorical decision. */
struct Decision
{
    std::string name;
    size_t numChoices;
};

/** One sampled architecture: a choice index per decision. */
using Sample = std::vector<size_t>;

/** An ordered collection of categorical decisions. */
class DecisionSpace
{
  public:
    /** Register a decision; returns its index. @pre num_choices >= 1. */
    size_t add(std::string name, size_t num_choices);

    /** Number of decisions. */
    size_t numDecisions() const { return _decisions.size(); }

    /** Access a decision. */
    const Decision &decision(size_t i) const;

    /** All decisions. */
    const std::vector<Decision> &decisions() const { return _decisions; }

    /** log10 of the cardinality of the full space (product of choices). */
    double log10Size() const;

    /** Validate that a sample is well-formed for this space. */
    bool validSample(const Sample &sample) const;

    /** Uniform random sample (useful for pre-training the perf model). */
    Sample uniformSample(common::Rng &rng) const;

    /** Look up a decision index by name; fatal if absent. */
    size_t indexOf(const std::string &name) const;

  private:
    std::vector<Decision> _decisions;
};

} // namespace h2o::searchspace

#endif // H2O_SEARCHSPACE_DECISION_SPACE_H
