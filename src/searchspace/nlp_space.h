/**
 * @file
 * The transformer search space in isolation (Appendix A): the exact
 * per-block decisions of the ViT space — hidden size (16), FFN low
 * rank (10), activation (4), sequence pooling (2), Primer dconv (2),
 * layer-count delta (7); 17920 candidates per block — applied to a
 * pure-transformer LM instead of a hybrid vision model.
 */

#ifndef H2O_SEARCHSPACE_NLP_SPACE_H
#define H2O_SEARCHSPACE_NLP_SPACE_H

#include "arch/nlp_arch.h"
#include "searchspace/decision_space.h"

namespace h2o::searchspace {

/** The NLP (transformer-only) search space around a baseline LM. */
class NlpSearchSpace
{
  public:
    /** @param baseline Architecture the deltas are relative to. */
    explicit NlpSearchSpace(arch::NlpArch baseline);

    /** The categorical decisions. */
    const DecisionSpace &decisions() const { return _space; }

    /** Decode a sample into a concrete architecture. */
    arch::NlpArch decode(const Sample &sample) const;

    /** The baseline architecture. */
    const arch::NlpArch &baseline() const { return _baseline; }

    /** The sample whose decode reproduces the baseline. */
    Sample baselineSample() const;

    /** log10 cardinality (17920 per block). */
    double log10Size() const { return _space.log10Size(); }

  private:
    struct BlockDecisions
    {
        size_t hidden;
        size_t lowRank;
        size_t activation;
        size_t seqPool;
        size_t primer;
        size_t depth;
    };

    arch::NlpArch _baseline;
    DecisionSpace _space;
    std::vector<BlockDecisions> _blockDecisions;
};

} // namespace h2o::searchspace

#endif // H2O_SEARCHSPACE_NLP_SPACE_H
