#include "searchspace/nlp_space.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace h2o::searchspace {

namespace {

constexpr nn::Activation kActivations[] = {
    nn::Activation::ReLU, nn::Activation::Swish, nn::Activation::GeLU,
    nn::Activation::SquaredReLU};

} // namespace

NlpSearchSpace::NlpSearchSpace(arch::NlpArch baseline)
    : _baseline(std::move(baseline))
{
    h2o_assert(!_baseline.blocks.empty(),
               "NLP baseline with no transformer blocks");
    for (size_t b = 0; b < _baseline.blocks.size(); ++b) {
        std::string p = "blk" + std::to_string(b) + "_";
        BlockDecisions bd;
        bd.hidden = _space.add(p + "hidden", 16);
        bd.lowRank = _space.add(p + "low_rank", 10);
        bd.activation = _space.add(p + "activation", 4);
        bd.seqPool = _space.add(p + "seq_pool", 2);
        bd.primer = _space.add(p + "primer", 2);
        bd.depth = _space.add(p + "depth", 7);
        _blockDecisions.push_back(bd);
    }
}

arch::NlpArch
NlpSearchSpace::decode(const Sample &sample) const
{
    h2o_assert(_space.validSample(sample), "malformed NLP sample");
    arch::NlpArch out = _baseline;
    out.name = _baseline.name + "_candidate";
    for (size_t b = 0; b < _blockDecisions.size(); ++b) {
        const auto &bd = _blockDecisions[b];
        auto &blk = out.blocks[b];
        const auto &base = _baseline.blocks[b];

        blk.hidden = 64 * static_cast<uint32_t>(sample[bd.hidden] + 1);
        blk.heads = std::max(1u, blk.hidden / 64);
        blk.lowRank = static_cast<double>(sample[bd.lowRank] + 1) / 10.0;
        blk.act = kActivations[sample[bd.activation]];
        blk.seqPool = sample[bd.seqPool] == 1;
        blk.primer = sample[bd.primer] == 1;
        int64_t depth = static_cast<int64_t>(base.layers) +
                        (static_cast<int64_t>(sample[bd.depth]) - 3);
        blk.layers = static_cast<uint32_t>(std::max<int64_t>(depth, 1));
    }
    return out;
}

Sample
NlpSearchSpace::baselineSample() const
{
    Sample s(_space.numDecisions(), 0);
    for (size_t b = 0; b < _blockDecisions.size(); ++b) {
        const auto &bd = _blockDecisions[b];
        const auto &base = _baseline.blocks[b];
        s[bd.hidden] = std::clamp<size_t>(base.hidden / 64, 1, 16) - 1;
        s[bd.lowRank] = 9;
        size_t act = 2;
        for (size_t i = 0; i < 4; ++i)
            if (kActivations[i] == base.act)
                act = i;
        s[bd.activation] = act;
        s[bd.seqPool] = base.seqPool ? 1 : 0;
        s[bd.primer] = base.primer ? 1 : 0;
        s[bd.depth] = 3;
    }
    h2o_assert(_space.validSample(s), "baseline NLP sample malformed");
    return s;
}

} // namespace h2o::searchspace
