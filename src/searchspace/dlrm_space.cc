#include "searchspace/dlrm_space.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace h2o::searchspace {

namespace {

/** Base width for an MLP layer slot, extending past the baseline depth
 *  by replicating the last baseline layer. */
uint32_t
slotBaseWidth(const std::vector<arch::MlpLayerConfig> &layers, size_t slot)
{
    if (layers.empty())
        return 64;
    if (slot < layers.size())
        return layers[slot].width;
    return layers.back().width;
}

constexpr double kVocabScales[] = {0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0};

} // namespace

DlrmSearchSpace::DlrmSearchSpace(arch::DlrmArch baseline,
                                 DlrmSpaceConfig config)
    : _baseline(std::move(baseline)), _config(config)
{
    h2o_assert(!_baseline.topMlp.empty(), "baseline DLRM without top MLP");
    size_t emb_width_choices =
        static_cast<size_t>(config.embWidthDeltaMax - config.embWidthDeltaMin)
        + 1;
    size_t mlp_width_choices =
        static_cast<size_t>(config.mlpWidthDeltaMax - config.mlpWidthDeltaMin)
        + 1;
    size_t depth_choices =
        static_cast<size_t>(config.depthDeltaMax - config.depthDeltaMin) + 1;

    for (size_t t = 0; t < _baseline.tables.size(); ++t) {
        TableDecisions td;
        td.width = _space.add("emb" + std::to_string(t) + "_width",
                              emb_width_choices);
        td.vocab = _space.add("emb" + std::to_string(t) + "_vocab",
                              numVocabChoices());
        _tableDecisions.push_back(td);
    }

    auto add_layer_slots = [&](const char *prefix,
                               const std::vector<arch::MlpLayerConfig> &base,
                               std::vector<LayerDecisions> &out,
                               size_t max_depth) {
        for (size_t l = 0; l < max_depth; ++l) {
            LayerDecisions ld;
            ld.width = _space.add(std::string(prefix) + std::to_string(l) +
                                      "_width",
                                  mlp_width_choices);
            ld.rank = _space.add(std::string(prefix) + std::to_string(l) +
                                     "_rank",
                                 10);
            out.push_back(ld);
        }
        (void)base;
    };
    add_layer_slots("bot", _baseline.bottomMlp, _bottomDecisions,
                    maxMlpDepth(true));
    add_layer_slots("top", _baseline.topMlp, _topDecisions,
                    maxMlpDepth(false));

    _bottomDepthDecision = _space.add("bot_depth", depth_choices);
    _topDepthDecision = _space.add("top_depth", depth_choices);
}

size_t
DlrmSearchSpace::maxMlpDepth(bool is_bottom) const
{
    size_t base = is_bottom ? _baseline.bottomMlp.size()
                            : _baseline.topMlp.size();
    return base + static_cast<size_t>(std::max(0, _config.depthDeltaMax));
}

uint32_t
DlrmSearchSpace::widthFromChoice(uint32_t base, size_t choice, int32_t dmin,
                                 bool allow_zero) const
{
    int64_t delta = dmin + static_cast<int64_t>(choice);
    int64_t width = static_cast<int64_t>(base) +
                    delta * static_cast<int64_t>(_config.widthIncrement);
    int64_t floor = allow_zero ? 0 : _config.widthIncrement;
    return static_cast<uint32_t>(std::max<int64_t>(width, floor));
}

uint32_t
DlrmSearchSpace::maxEmbeddingWidth(size_t table) const
{
    h2o_assert(table < _baseline.tables.size(), "table index out of range");
    return widthFromChoice(
        _baseline.tables[table].width,
        static_cast<size_t>(_config.embWidthDeltaMax - _config.embWidthDeltaMin),
        _config.embWidthDeltaMin, false);
}

uint32_t
DlrmSearchSpace::maxMlpWidth(bool is_bottom, size_t layer) const
{
    const auto &base = is_bottom ? _baseline.bottomMlp : _baseline.topMlp;
    return widthFromChoice(
        slotBaseWidth(base, layer),
        static_cast<size_t>(_config.mlpWidthDeltaMax - _config.mlpWidthDeltaMin),
        _config.mlpWidthDeltaMin, false);
}

size_t
DlrmSearchSpace::vocabDecisionIndex(size_t table) const
{
    h2o_assert(table < _tableDecisions.size(), "table index out of range");
    return _tableDecisions[table].vocab;
}

double
DlrmSearchSpace::vocabScale(size_t choice) const
{
    h2o_assert(choice < numVocabChoices(), "vocab choice out of range");
    return kVocabScales[choice];
}

arch::DlrmArch
DlrmSearchSpace::decode(const Sample &sample) const
{
    h2o_assert(_space.validSample(sample), "malformed DLRM sample");
    arch::DlrmArch out = _baseline;
    out.name = _baseline.name + "_candidate";

    for (size_t t = 0; t < _tableDecisions.size(); ++t) {
        const auto &td = _tableDecisions[t];
        uint32_t width = widthFromChoice(_baseline.tables[t].width,
                                         sample[td.width],
                                         _config.embWidthDeltaMin,
                                         _config.allowTableRemoval);
        out.tables[t].width = width;
        double scale = vocabScale(sample[td.vocab]);
        out.tables[t].vocab = static_cast<uint64_t>(std::max(
            1.0, std::round(static_cast<double>(_baseline.tables[t].vocab) *
                            scale)));
    }

    auto decode_stack = [&](const std::vector<arch::MlpLayerConfig> &base,
                            const std::vector<LayerDecisions> &slots,
                            size_t depth_decision, bool allow_empty) {
        int64_t depth_delta = _config.depthDeltaMin +
                              static_cast<int64_t>(sample[depth_decision]);
        int64_t depth = static_cast<int64_t>(base.size()) + depth_delta;
        int64_t min_depth = allow_empty ? 0 : 1;
        depth = std::clamp<int64_t>(depth, min_depth,
                                    static_cast<int64_t>(slots.size()));
        std::vector<arch::MlpLayerConfig> stack;
        for (int64_t l = 0; l < depth; ++l) {
            const auto &ld = slots[static_cast<size_t>(l)];
            uint32_t width = widthFromChoice(
                slotBaseWidth(base, static_cast<size_t>(l)),
                sample[ld.width], _config.mlpWidthDeltaMin, false);
            // Rank choice r selects (r+1)/10 of the layer width; the top
            // choice (10/10) means full rank (no factorization).
            uint32_t rank = 0;
            size_t rank_choice = sample[ld.rank];
            if (rank_choice + 1 < 10) {
                double frac = static_cast<double>(rank_choice + 1) / 10.0;
                rank = static_cast<uint32_t>(std::max(
                    8.0, std::floor(width * frac / 8.0) * 8.0));
            }
            stack.push_back({width, rank});
        }
        return stack;
    };

    out.bottomMlp = decode_stack(_baseline.bottomMlp, _bottomDecisions,
                                 _bottomDepthDecision, true);
    out.topMlp = decode_stack(_baseline.topMlp, _topDecisions,
                              _topDepthDecision, false);
    return out;
}

Sample
DlrmSearchSpace::baselineSample() const
{
    Sample s(_space.numDecisions(), 0);
    for (size_t t = 0; t < _tableDecisions.size(); ++t) {
        s[_tableDecisions[t].width] =
            static_cast<size_t>(-_config.embWidthDeltaMin);
        s[_tableDecisions[t].vocab] = 2; // 100%
    }
    auto fill_stack = [&](const std::vector<LayerDecisions> &slots) {
        for (const auto &ld : slots) {
            s[ld.width] = static_cast<size_t>(-_config.mlpWidthDeltaMin);
            s[ld.rank] = 9; // full rank
        }
    };
    fill_stack(_bottomDecisions);
    fill_stack(_topDecisions);
    s[_bottomDepthDecision] = static_cast<size_t>(-_config.depthDeltaMin);
    s[_topDepthDecision] = static_cast<size_t>(-_config.depthDeltaMin);
    h2o_assert(_space.validSample(s), "baseline sample malformed");
    return s;
}

} // namespace h2o::searchspace
