#include "searchspace/conv_space.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace h2o::searchspace {

namespace {

constexpr uint32_t kKernels[] = {3, 5, 7};
constexpr uint32_t kStrides[] = {1, 2, 4};
constexpr double kExpansions[] = {1.0, 3.0, 4.0, 6.0};
constexpr nn::Activation kActivations[] = {nn::Activation::ReLU,
                                           nn::Activation::Swish};
constexpr double kSeRatios[] = {0.0, 1.0, 0.5, 0.25, 0.125};
constexpr uint32_t kResolutions[] = {224, 240, 260, 300, 380,
                                     456, 528, 600};

template <typename T, size_t N>
size_t
indexOfValue(const T (&arr)[N], T value)
{
    for (size_t i = 0; i < N; ++i)
        if (arr[i] == value)
            return i;
    return 0;
}

} // namespace

ConvSearchSpace::ConvSearchSpace(arch::ConvArch baseline,
                                 ConvSpaceConfig config)
    : _baseline(std::move(baseline)), _config(config)
{
    h2o_assert(!_baseline.stages.empty(), "conv baseline with no stages");
    for (size_t s = 0; s < _baseline.stages.size(); ++s) {
        std::string p = "s" + std::to_string(s) + "_";
        StageDecisions sd;
        sd.blockType = _space.add(p + "block_type", 2);
        sd.kernel = _space.add(p + "kernel", 3);
        sd.stride = _space.add(p + "stride", 3);
        sd.expansion = _space.add(p + "expansion", 4);
        sd.activation = _space.add(p + "activation", 2);
        sd.seRatio = _space.add(p + "se_ratio", 5);
        sd.skip = _space.add(p + "skip", 2);
        sd.reshape = _space.add(p + "reshape", 3);
        sd.depth = _space.add(p + "depth", 7);
        sd.width = _space.add(p + "width", 10);
        _stageDecisions.push_back(sd);
    }
    _resolutionDecision =
        _space.add("resolution", _config.searchResolution ? 8 : 1);
}

arch::ConvArch
ConvSearchSpace::decode(const Sample &sample) const
{
    h2o_assert(_space.validSample(sample), "malformed conv sample");
    arch::ConvArch out = _baseline;
    out.name = _baseline.name + "_candidate";
    out.resolution = _config.searchResolution
                         ? kResolutions[sample[_resolutionDecision]]
                         : _baseline.resolution;

    for (size_t s = 0; s < _stageDecisions.size(); ++s) {
        const auto &sd = _stageDecisions[s];
        auto &stage = out.stages[s];
        const auto &base = _baseline.stages[s];

        stage.type = sample[sd.blockType] == 0 ? arch::BlockType::MBConv
                                               : arch::BlockType::FusedMBConv;
        stage.kernel = kKernels[sample[sd.kernel]];
        stage.stride = kStrides[sample[sd.stride]];
        stage.expansion = kExpansions[sample[sd.expansion]];
        stage.act = kActivations[sample[sd.activation]];
        stage.seRatio = kSeRatios[sample[sd.seRatio]];
        stage.skip = sample[sd.skip] == 1;
        // Reshape option 1 = space-to-depth at the stem; option 2
        // (space-to-batch) is cost-equivalent in this simulator.
        if (s == 0)
            out.spaceToDepthStem = sample[sd.reshape] != 0;

        int64_t depth_delta = static_cast<int64_t>(sample[sd.depth]) - 3;
        int64_t depth = static_cast<int64_t>(base.layers) + depth_delta;
        stage.layers = static_cast<uint32_t>(std::max<int64_t>(depth, 1));

        // Width deltas [-5, +5] excluding zero change: choices 0..9 map
        // to {-5..-1, +1..+5}.
        int64_t wd = static_cast<int64_t>(sample[sd.width]);
        int64_t delta = wd < 5 ? wd - 5 : wd - 4;
        int64_t width = static_cast<int64_t>(base.filters) +
                        delta * static_cast<int64_t>(_widthIncrement);
        stage.filters = static_cast<uint32_t>(
            std::max<int64_t>(width, _widthIncrement));
    }
    return out;
}

Sample
ConvSearchSpace::baselineSample() const
{
    Sample s(_space.numDecisions(), 0);
    for (size_t st = 0; st < _stageDecisions.size(); ++st) {
        const auto &sd = _stageDecisions[st];
        const auto &base = _baseline.stages[st];
        s[sd.blockType] = base.type == arch::BlockType::MBConv ? 0 : 1;
        s[sd.kernel] = indexOfValue(kKernels, base.kernel);
        s[sd.stride] = indexOfValue(kStrides, base.stride);
        s[sd.expansion] = indexOfValue(kExpansions, base.expansion);
        s[sd.activation] =
            base.act == nn::Activation::Swish ? size_t{1} : size_t{0};
        s[sd.seRatio] = indexOfValue(kSeRatios, base.seRatio);
        s[sd.skip] = base.skip ? 1 : 0;
        s[sd.reshape] = _baseline.spaceToDepthStem && st == 0 ? 1 : 0;
        s[sd.depth] = 3; // delta 0
        // Closest-to-zero width delta is +1 (choice index 5): the space
        // excludes an exact zero delta, as in Table 5. We still return
        // the minimal positive change.
        s[sd.width] = 5;
    }
    // Nearest resolution choice (pinned spaces have a single choice).
    if (_config.searchResolution) {
        size_t best = 0;
        double best_d = 1e18;
        for (size_t i = 0; i < 8; ++i) {
            double d = std::abs(static_cast<double>(kResolutions[i]) -
                                static_cast<double>(_baseline.resolution));
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        s[_resolutionDecision] = best;
    }
    h2o_assert(_space.validSample(s), "baseline conv sample malformed");
    return s;
}

} // namespace h2o::searchspace
