#include "searchspace/vit_space.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace h2o::searchspace {

namespace {

constexpr nn::Activation kActivations[] = {
    nn::Activation::ReLU, nn::Activation::Swish, nn::Activation::GeLU,
    nn::Activation::SquaredReLU};
constexpr uint32_t kPatches[] = {4, 7, 8, 14, 16, 28, 32};
constexpr uint32_t kKernels[] = {3, 5, 7};
constexpr double kExpansions[] = {1.0, 3.0, 4.0, 6.0};

uint32_t
resolutionChoice(size_t i)
{
    // 21 choices, 112..448 px in ~16px steps.
    return static_cast<uint32_t>(112 + 16 * i);
}

} // namespace

VitSearchSpace::VitSearchSpace(arch::VitArch baseline)
    : _baseline(std::move(baseline))
{
    h2o_assert(!_baseline.tfmBlocks.empty(),
               "ViT baseline with no transformer blocks");
    for (size_t b = 0; b < _baseline.tfmBlocks.size(); ++b) {
        std::string p = "tfm" + std::to_string(b) + "_";
        BlockDecisions bd;
        bd.hidden = _space.add(p + "hidden", 16);   // 64..1024 step 64
        bd.lowRank = _space.add(p + "low_rank", 10);
        bd.activation = _space.add(p + "activation", 4);
        bd.seqPool = _space.add(p + "seq_pool", 2);
        bd.primer = _space.add(p + "primer", 2);
        bd.depth = _space.add(p + "depth", 7);
        _blockDecisions.push_back(bd);
    }
    for (size_t s = 0; s < _baseline.convStages.size(); ++s) {
        std::string p = "conv" + std::to_string(s) + "_";
        ConvStageDecisions cd;
        cd.blockType = _space.add(p + "block_type", 2);
        cd.kernel = _space.add(p + "kernel", 3);
        cd.expansion = _space.add(p + "expansion", 4);
        cd.depth = _space.add(p + "depth", 7);
        cd.width = _space.add(p + "width", 10);
        _convDecisions.push_back(cd);
    }
    _patchDecision = _space.add("patch", 7);
    _resolutionDecision = _space.add("resolution", 21);
}

arch::VitArch
VitSearchSpace::decode(const Sample &sample) const
{
    h2o_assert(_space.validSample(sample), "malformed ViT sample");
    arch::VitArch out = _baseline;
    out.name = _baseline.name + "_candidate";
    out.patch = kPatches[sample[_patchDecision]];
    out.resolution = resolutionChoice(sample[_resolutionDecision]);

    for (size_t b = 0; b < _blockDecisions.size(); ++b) {
        const auto &bd = _blockDecisions[b];
        auto &blk = out.tfmBlocks[b];
        const auto &base = _baseline.tfmBlocks[b];

        blk.hidden = 64 * static_cast<uint32_t>(sample[bd.hidden] + 1);
        blk.heads = std::max(1u, blk.hidden / 64);
        size_t rank_choice = sample[bd.lowRank];
        blk.lowRank = static_cast<double>(rank_choice + 1) / 10.0;
        blk.act = kActivations[sample[bd.activation]];
        blk.seqPool = sample[bd.seqPool] == 1;
        blk.primer = sample[bd.primer] == 1;
        int64_t depth = static_cast<int64_t>(base.layers) +
                        (static_cast<int64_t>(sample[bd.depth]) - 3);
        blk.layers = static_cast<uint32_t>(std::max<int64_t>(depth, 1));
    }

    for (size_t s = 0; s < _convDecisions.size(); ++s) {
        const auto &cd = _convDecisions[s];
        auto &stage = out.convStages[s];
        const auto &base = _baseline.convStages[s];

        stage.type = sample[cd.blockType] == 0 ? arch::BlockType::MBConv
                                               : arch::BlockType::FusedMBConv;
        stage.kernel = kKernels[sample[cd.kernel]];
        stage.expansion = kExpansions[sample[cd.expansion]];
        int64_t depth = static_cast<int64_t>(base.layers) +
                        (static_cast<int64_t>(sample[cd.depth]) - 3);
        stage.layers = static_cast<uint32_t>(std::max<int64_t>(depth, 1));
        int64_t wd = static_cast<int64_t>(sample[cd.width]);
        int64_t delta = wd < 5 ? wd - 5 : wd - 4;
        int64_t width = static_cast<int64_t>(base.filters) + delta * 8;
        stage.filters =
            static_cast<uint32_t>(std::max<int64_t>(width, 8));
    }
    return out;
}

Sample
VitSearchSpace::baselineSample() const
{
    Sample s(_space.numDecisions(), 0);
    for (size_t b = 0; b < _blockDecisions.size(); ++b) {
        const auto &bd = _blockDecisions[b];
        const auto &base = _baseline.tfmBlocks[b];
        size_t hidden_choice = std::clamp<size_t>(base.hidden / 64, 1, 16) - 1;
        s[bd.hidden] = hidden_choice;
        s[bd.lowRank] = 9; // full rank
        size_t act = 2;    // GeLU default
        for (size_t i = 0; i < 4; ++i)
            if (kActivations[i] == base.act)
                act = i;
        s[bd.activation] = act;
        s[bd.seqPool] = base.seqPool ? 1 : 0;
        s[bd.primer] = base.primer ? 1 : 0;
        s[bd.depth] = 3;
    }
    for (size_t c = 0; c < _convDecisions.size(); ++c) {
        const auto &cd = _convDecisions[c];
        const auto &base = _baseline.convStages[c];
        s[cd.blockType] = base.type == arch::BlockType::MBConv ? 0 : 1;
        for (size_t i = 0; i < 3; ++i)
            if (kKernels[i] == base.kernel)
                s[cd.kernel] = i;
        for (size_t i = 0; i < 4; ++i)
            if (kExpansions[i] == base.expansion)
                s[cd.expansion] = i;
        s[cd.depth] = 3;
        s[cd.width] = 5;
    }
    size_t best = 0;
    double best_d = 1e18;
    for (size_t i = 0; i < 7; ++i) {
        double d = std::abs(static_cast<double>(kPatches[i]) -
                            static_cast<double>(_baseline.patch));
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    s[_patchDecision] = best;
    best = 0;
    best_d = 1e18;
    for (size_t i = 0; i < 21; ++i) {
        double d = std::abs(static_cast<double>(resolutionChoice(i)) -
                            static_cast<double>(_baseline.resolution));
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    s[_resolutionDecision] = best;
    h2o_assert(_space.validSample(s), "baseline ViT sample malformed");
    return s;
}

} // namespace h2o::searchspace
