#include "searchspace/decision_space.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace h2o::searchspace {

size_t
DecisionSpace::add(std::string name, size_t num_choices)
{
    h2o_assert(num_choices >= 1, "decision '", name, "' with no choices");
    _decisions.push_back(Decision{std::move(name), num_choices});
    return _decisions.size() - 1;
}

const Decision &
DecisionSpace::decision(size_t i) const
{
    h2o_assert(i < _decisions.size(), "decision index ", i, " out of range");
    return _decisions[i];
}

double
DecisionSpace::log10Size() const
{
    double total = 0.0;
    for (const auto &d : _decisions)
        total += std::log10(static_cast<double>(d.numChoices));
    return total;
}

bool
DecisionSpace::validSample(const Sample &sample) const
{
    if (sample.size() != _decisions.size())
        return false;
    for (size_t i = 0; i < sample.size(); ++i)
        if (sample[i] >= _decisions[i].numChoices)
            return false;
    return true;
}

Sample
DecisionSpace::uniformSample(common::Rng &rng) const
{
    Sample s(_decisions.size());
    for (size_t i = 0; i < _decisions.size(); ++i)
        s[i] = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(_decisions[i].numChoices) - 1));
    return s;
}

size_t
DecisionSpace::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < _decisions.size(); ++i)
        if (_decisions[i].name == name)
            return i;
    h2o_fatal("no decision named '", name, "'");
}

} // namespace h2o::searchspace
