#include "serve/job.h"

#include <span>
#include <utility>

#include "arch/dlrm_arch.h"
#include "baselines/quality_model.h"
#include "common/logging.h"
#include "common/rng.h"
#include "eval/dlrm_timer.h"
#include "hw/chip.h"
#include "hw/target_set.h"
#include "pipeline/pipeline.h"
#include "pipeline/traffic_generator.h"
#include "reward/reward.h"
#include "search/h2o_dlrm_search.h"
#include "search/pareto.h"
#include "search/surrogate_search.h"
#include "search/tunas_search.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_supernet.h"

namespace h2o::serve {

const char *
jobKindName(JobKind kind)
{
    switch (kind) {
    case JobKind::DlrmSurrogate: return "dlrm_surrogate";
    case JobKind::DlrmSupernet: return "dlrm_supernet";
    case JobKind::DlrmTunas: return "dlrm_tunas";
    }
    return "unknown";
}

TelemetryRow
makeProgressRow(uint64_t job_id, const search::StepwiseSearch &stepper,
                JobProgress &progress)
{
    progress.absorb(stepper.partialOutcome());
    TelemetryRow row;
    row.jobId = job_id;
    row.step = stepper.stepIndex() - 1; // the step just completed
    row.meanReward = stepper.lastMeanReward();
    row.bestReward = progress.bestReward;
    return row;
}

JobResult
makeJobResult(search::SearchOutcome outcome, const JobProgress &progress,
              size_t steps_run)
{
    JobResult result;
    result.bestReward = progress.bestReward;
    result.stepsRun = steps_run;
    std::vector<search::ParetoPoint> points;
    points.reserve(outcome.history.size());
    for (const auto &rec : outcome.history) {
        double cost = rec.performance.empty() ? 0.0 : rec.performance[0];
        points.push_back({rec.quality, cost});
    }
    result.paretoIndices = search::paretoFront(points);
    result.outcome = std::move(outcome);
    return result;
}

namespace {

/** Key-salt per search space sharing the server cache: the surrogate
 *  jobs search the production baselineDlrm() space with the historical
 *  tags (salt 0 — warm files from the benches stay warm), the supernet
 *  kinds search a distinct small space and must never alias. */
constexpr uint64_t kSurrogateSalt = 0;
constexpr uint64_t kSupernetSalt = 1;

/** The small DLRM the weight-sharing kinds train: big enough to have a
 *  real embedding/MLP trade-off, small enough that a supernet step is
 *  tens of microseconds — a thousand-job load test stays cheap. */
arch::DlrmArch
smallDlrm()
{
    arch::DlrmArch a;
    a.name = "dlrm-serve-small";
    a.numDenseFeatures = 4;
    a.tables = {{2048, 8, 1.0}, {512, 8, 1.0}};
    a.bottomMlp = {{16, 0}};
    a.topMlp = {{32, 0}, {16, 0}};
    a.globalBatch = 256;
    return a;
}

/** Shared plumbing of every DLRM job: space, shared-cache timer,
 *  baseline-relative reward targets. The timer resolves the baseline
 *  step time through the shared cache, so even the targets benefit
 *  from cross-tenant hits. With spec.targets set, the job runs in
 *  joint multi-target mode: per-chip serving step times as the
 *  performance stage, a min-combined per-chip reward, and the
 *  multi-target annotation on the search config. */
class DlrmJobBase : public SearchJob
{
  protected:
    DlrmJobBase(const JobSpec &spec, sim::SimCache &shared,
                arch::DlrmArch baseline, uint64_t key_salt)
        : _space(std::move(baseline)),
          _targets(spec.targets.empty()
                       ? hw::TargetSet()
                       : hw::TargetSet::fromNames(joinNames(spec.targets))),
          _timer(hw::trainingPlatform(), hw::servingPlatform(), shared,
                 1, key_salt),
          _baseTime(_timer.trainStepTime(_space, _space.baselineSample())),
          _baseBytes(_space.baseline().modelBytes()),
          _reward(makeJobReward(spec))
    {
    }

    /** Batched performance stage. Single-target: cached simulator step
     *  time + decoded model size, parallel to the reward's objectives.
     *  Multi-target: one serving step time per chip, in target order. */
    search::PerfBatchFn perfFn()
    {
        if (!_targets.empty()) {
            return [this](std::span<const searchspace::Sample> ss) {
                return _timer.serveStepTimesMulti(_space, ss, _targets);
            };
        }
        return [this](std::span<const searchspace::Sample> ss) {
            auto step_times = _timer.trainStepTimes(_space, ss);
            std::vector<std::vector<double>> out;
            out.reserve(ss.size());
            for (size_t i = 0; i < ss.size(); ++i)
                out.push_back(
                    {step_times[i], _space.decode(ss[i]).modelBytes()});
            return out;
        };
    }

    /** The search-config multi-target annotation matching perfFn()
     *  (canonical registry names, so checkpoint validation is
     *  alias-insensitive). Empty in single-target mode. */
    search::MultiTargetSpec multiTargetSpec() const
    {
        search::MultiTargetSpec mt;
        mt.targetNames = _targets.names();
        return mt;
    }

    searchspace::DlrmSearchSpace _space;
    hw::TargetSet _targets;
    eval::CachedDlrmTimer _timer;
    double _baseTime;
    double _baseBytes;
    std::unique_ptr<reward::RewardFunction> _reward;

  private:
    static std::string joinNames(const std::vector<std::string> &names)
    {
        std::string csv;
        for (const auto &n : names) {
            if (!csv.empty())
                csv += ',';
            csv += n;
        }
        return csv;
    }

    std::unique_ptr<reward::RewardFunction>
    makeJobReward(const JobSpec &spec)
    {
        if (_targets.empty()) {
            return std::make_unique<reward::ReluReward>(
                std::vector<reward::PerformanceObjective>{
                    {"step_time", spec.stepTimeTargetRel * _baseTime,
                     -2.0},
                    {"model_size", spec.modelSizeTargetRel * _baseBytes,
                     -2.0}});
        }
        // Per-chip latency targets: the baseline candidate's serving
        // step time on each chip (resolved through the shared cache),
        // scaled by the spec's relative target.
        std::vector<searchspace::Sample> base{_space.baselineSample()};
        auto base_times =
            _timer.serveStepTimesMulti(_space, base, _targets)[0];
        std::vector<reward::PerformanceObjective> objs;
        objs.reserve(_targets.size());
        for (size_t c = 0; c < _targets.size(); ++c)
            objs.push_back({_targets[c].name,
                            spec.stepTimeTargetRel * base_times[c], -2.0});
        return std::make_unique<reward::MultiTargetReward>(std::move(objs));
    }
};

class DlrmSurrogateJob final : public DlrmJobBase
{
  public:
    DlrmSurrogateJob(const JobSpec &spec, sim::SimCache &shared)
        : DlrmJobBase(spec, shared, arch::baselineDlrm(), kSurrogateSalt),
          _search(_space.decisions(),
                  [this](const searchspace::Sample &s) {
                      return 100.0 * baselines::dlrmQualitySurrogate(
                                         _space.decode(s));
                  },
                  perfFn(), *_reward, config(spec))
    {
        common::Rng rng(spec.seed);
        _stepper = _search.makeStepper(rng);
    }

    search::StepwiseSearch &stepper() override { return *_stepper; }

  private:
    search::SurrogateSearchConfig config(const JobSpec &spec) const
    {
        search::SurrogateSearchConfig cfg;
        cfg.numSteps = spec.numSteps;
        cfg.samplesPerStep = spec.samplesPerStep;
        cfg.rl.learningRate = spec.learningRate;
        cfg.rl.entropyWeight = spec.entropyWeight;
        // Steps run inline on the scheduler's worker: concurrency comes
        // from the server running MANY jobs, not from one job fanning
        // out (and the engine's inline path means no nested pools).
        cfg.multithread = false;
        cfg.threads = 1;
        cfg.procs = spec.procs;
        cfg.workers = spec.workers;
        cfg.multiTarget = multiTargetSpec();
        return cfg;
    }

    search::SurrogateSearch _search;
    std::unique_ptr<search::StepwiseSearch> _stepper;
};

/** Supernet + traffic pipeline shared by the two weight-sharing kinds,
 *  seeded exactly as examples/dlrm_search.cpp seeds them. */
class DlrmSupernetJobBase : public DlrmJobBase
{
  protected:
    DlrmSupernetJobBase(const JobSpec &spec, sim::SimCache &shared)
        : DlrmJobBase(spec, shared, smallDlrm(), kSupernetSalt),
          _netRng(spec.seed + 1), _supernet(_space, {}, _netRng),
          _pipeline(makePipeline(_space.baseline(), spec.seed + 2))
    {
    }

    static std::unique_ptr<pipeline::InMemoryPipeline>
    makePipeline(const arch::DlrmArch &baseline, uint64_t seed)
    {
        std::vector<uint64_t> vocabs;
        std::vector<double> avg_ids;
        for (const auto &t : baseline.tables) {
            vocabs.push_back(t.vocab);
            avg_ids.push_back(t.avgIds);
        }
        auto gen = std::make_unique<pipeline::TrafficGenerator>(
            pipeline::trafficConfigFor(baseline.numDenseFeatures, vocabs,
                                       avg_ids),
            seed);
        return std::make_unique<pipeline::InMemoryPipeline>(
            std::move(gen), 32);
    }

    common::Rng _netRng;
    supernet::DlrmSupernet _supernet;
    std::unique_ptr<pipeline::InMemoryPipeline> _pipeline;
};

class DlrmSupernetJob final : public DlrmSupernetJobBase
{
  public:
    DlrmSupernetJob(const JobSpec &spec, sim::SimCache &shared)
        : DlrmSupernetJobBase(spec, shared),
          _search(_space, _supernet, *_pipeline, perfFn(), *_reward,
                  config(spec))
    {
        common::Rng rng(spec.seed);
        _stepper = _search.makeStepper(rng);
    }

    search::StepwiseSearch &stepper() override { return *_stepper; }

  private:
    search::H2oSearchConfig config(const JobSpec &spec) const
    {
        search::H2oSearchConfig cfg;
        cfg.numShards = spec.samplesPerStep;
        cfg.numSteps = spec.numSteps;
        cfg.warmupSteps = 4;
        cfg.rl.learningRate = spec.learningRate;
        cfg.rl.entropyWeight = spec.entropyWeight;
        cfg.batchedQuality = spec.batchedQuality;
        cfg.threads = 1; // see DlrmSurrogateJob::config
        cfg.procs = spec.procs;
        cfg.workers = spec.workers;
        cfg.multiTarget = multiTargetSpec();
        return cfg;
    }

    search::H2oDlrmSearch _search;
    std::unique_ptr<search::StepwiseSearch> _stepper;
};

class DlrmTunasJob final : public DlrmSupernetJobBase
{
  public:
    DlrmTunasJob(const JobSpec &spec, sim::SimCache &shared)
        : DlrmSupernetJobBase(spec, shared),
          _search(_space, _supernet, *_pipeline, perfFn(), *_reward,
                  config(spec))
    {
        common::Rng rng(spec.seed);
        _stepper = _search.makeStepper(rng);
    }

    search::StepwiseSearch &stepper() override { return *_stepper; }

  private:
    search::TunasSearchConfig config(const JobSpec &spec) const
    {
        search::TunasSearchConfig cfg;
        cfg.numIterations = spec.numSteps;
        cfg.warmupSteps = 4;
        cfg.rl.learningRate = spec.learningRate;
        cfg.rl.entropyWeight = spec.entropyWeight;
        cfg.batchedQuality = spec.batchedQuality;
        cfg.procs = spec.procs;
        cfg.workers = spec.workers;
        cfg.multiTarget = multiTargetSpec();
        return cfg;
    }

    search::TunasSearch _search;
    std::unique_ptr<search::StepwiseSearch> _stepper;
};

} // namespace

std::unique_ptr<SearchJob>
makeDefaultJob(const JobSpec &spec, sim::SimCache &shared_cache)
{
    switch (spec.kind) {
    case JobKind::DlrmSurrogate:
        return std::make_unique<DlrmSurrogateJob>(spec, shared_cache);
    case JobKind::DlrmSupernet:
        return std::make_unique<DlrmSupernetJob>(spec, shared_cache);
    case JobKind::DlrmTunas:
        return std::make_unique<DlrmTunasJob>(spec, shared_cache);
    }
    h2o_fatal("unknown job kind ", static_cast<int>(spec.kind));
}

StandaloneRun
runStandalone(const JobSpec &spec, size_t cache_capacity)
{
    sim::SimCache private_cache(cache_capacity);
    auto job = makeDefaultJob(spec, private_cache);
    auto &stepper = job->stepper();

    StandaloneRun run;
    JobProgress progress;
    while (!stepper.done()) {
        stepper.step();
        run.rows.push_back(makeProgressRow(spec.id, stepper, progress));
    }
    size_t steps = stepper.stepIndex();
    run.result = makeJobResult(stepper.finish(), progress, steps);
    return run;
}

} // namespace h2o::serve
