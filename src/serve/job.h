/**
 * @file
 * NAS-as-a-service job definitions: the request a tenant submits
 * (`JobSpec`), the adapter wrapping one resumable search behind the
 * common `search::StepwiseSearch` interface (`SearchJob`), and the
 * result handed back when the job finishes (`JobResult`).
 *
 * A job bundles everything one search needs — search space, baseline
 * targets, supernet/pipeline for the weight-sharing kinds, reward —
 * built from the spec alone plus the server's SHARED `sim::SimCache`.
 * Step-time simulation goes through an `eval::CachedDlrmTimer` fronting
 * that shared cache, which is the cross-tenant scaling lever: every
 * candidate one tenant simulates is a free hit for every other tenant
 * exploring the same space. Sharing never changes results (the
 * simulator is pure; a hit returns exactly what a miss would compute),
 * so a job's outputs are a function of its spec and seed alone.
 */

#ifndef H2O_SERVE_JOB_H
#define H2O_SERVE_JOB_H

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "search/stepwise.h"
#include "serve/telemetry.h"
#include "sim/sim_cache.h"

namespace h2o::serve {

/** Which searcher the job runs. */
enum class JobKind
{
    /** SurrogateSearch over the DLRM space: analytic quality + cached
     *  simulator step time. Cheap; the load-generator workhorse. */
    DlrmSurrogate = 0,
    /** Full unified single-step search (H2oDlrmSearch) on a small
     *  weight-sharing supernet with synthetic production traffic. */
    DlrmSupernet = 1,
    /** TuNAS alternating baseline on the same small supernet. */
    DlrmTunas = 2,
};

const char *jobKindName(JobKind kind);

/** One tenant's search request. */
struct JobSpec
{
    /** Assigned by JobQueue::submit; 0 = not yet submitted. */
    uint64_t id = 0;
    std::string name;
    JobKind kind = JobKind::DlrmSurrogate;
    uint64_t seed = 1;
    size_t numSteps = 20;
    /** Parallel candidates per step (shards); the Tunas kind ignores
     *  it (one candidate per step by construction). */
    size_t samplesPerStep = 4;
    /** Step-time target, relative to the baseline architecture's
     *  simulated step time (1.0 = match the baseline). */
    double stepTimeTargetRel = 1.0;
    /** Model-size target, relative to the baseline's bytes. */
    double modelSizeTargetRel = 1.0;
    double learningRate = 0.08;
    double entropyWeight = 5e-3;
    /** Batched quality stage for the supernet kinds: one coordinator-
     *  side pass per step over the step's sampled candidates instead of
     *  per-shard supernet entry. Bit-identical results either way (the
     *  server's determinism contract is unaffected); disable to A/B. */
    bool batchedQuality = true;
    /** Worker PROCESSES for the job's shard stage (the multi-process
     *  transport; see eval::EvalEngineConfig::procs). 0 — the default,
     *  and the right choice for load tests — keeps the job in-process
     *  on the scheduler's worker. >= 1 forks that many workers for THIS
     *  job (clamped to samplesPerStep); results are byte-identical
     *  either way, so the server's determinism contract is unaffected.
     *  The supernet kinds additionally require batchedQuality (the
     *  shared weights live coordinator-side). */
    size_t procs = 0;
    /** Remote worker daemons for the job's shard stage, comma-separated
     *  ("host:port" or "local"; eval::EvalEngineConfig::workers).
     *  Combines with procs into one mixed pool for THIS job. Empty —
     *  the default — keeps the job local; results are byte-identical
     *  for any fleet shape, so the server's determinism contract is
     *  unaffected. */
    std::string workers;
    /** Joint multi-target mode: chip registry names ("tpuv4i",
     *  "edgecpu", "edgenpu", ...) every candidate must serve on. Empty
     *  (the default) is the classic single-platform search, bytes
     *  unchanged. Non-empty, the job's performance stage returns one
     *  serving step time per chip, the reward is the min over per-chip
     *  ReLU rewards (each against stepTimeTargetRel x that chip's
     *  baseline serve time), and the outcome carries one Pareto front
     *  per chip. */
    std::vector<std::string> targets;
};

/** A finished job's outputs. */
struct JobResult
{
    search::SearchOutcome outcome;
    /** Best single-candidate reward over the whole history. */
    double bestReward = -std::numeric_limits<double>::infinity();
    /** Pareto front over the history: quality maximized vs. the first
     *  performance objective (step time) minimized; indices into
     *  outcome.history sorted by increasing cost. */
    std::vector<size_t> paretoIndices;
    size_t stepsRun = 0;
};

/** Incremental scan of a stepper's growing history: tracks the best
 *  reward seen without rereading records. */
struct JobProgress
{
    size_t historyCursor = 0;
    double bestReward = -std::numeric_limits<double>::infinity();

    void absorb(const search::SearchOutcome &outcome)
    {
        for (; historyCursor < outcome.history.size(); ++historyCursor) {
            double r = outcome.history[historyCursor].reward;
            if (r > bestReward)
                bestReward = r;
        }
    }
};

/**
 * The deterministic part of one post-step telemetry row: absorbs the
 * stepper's new history into `progress` and fills the jobId/step/
 * reward fields. The scheduler and runStandalone() both record rows
 * through this helper, which is what makes a served job's telemetry
 * bitwise-comparable with the standalone run (the caller adds the
 * observational fields afterwards). Call exactly once per completed
 * step, immediately after step().
 */
TelemetryRow makeProgressRow(uint64_t job_id,
                             const search::StepwiseSearch &stepper,
                             JobProgress &progress);

/** Build a JobResult from a finished stepper's outcome. */
JobResult makeJobResult(search::SearchOutcome outcome,
                        const JobProgress &progress, size_t steps_run);

/** One live search job: owns the search space, timer, reward and
 *  searcher, and exposes the searcher's resumable stepper. */
class SearchJob
{
  public:
    virtual ~SearchJob() = default;

    /** The job's resumable search state. Owned by the job; save()/
     *  load() it for checkpoint/resume. */
    virtual search::StepwiseSearch &stepper() = 0;
};

/** Builds a job against the server's shared cache. Factories must be
 *  pure: the same spec yields an identically-behaving job. */
using JobFactoryFn = std::function<std::unique_ptr<SearchJob>(
    const JobSpec &, sim::SimCache &)>;

/** The default factory covering every JobKind. */
std::unique_ptr<SearchJob> makeDefaultJob(const JobSpec &spec,
                                          sim::SimCache &shared_cache);

/** A standalone (no server) run of one spec: the bitwise reference for
 *  the server's determinism contract. */
struct StandaloneRun
{
    JobResult result;
    /** Rows as the server would record them, observational fields 0. */
    std::vector<TelemetryRow> rows;
};

/** Run the spec to completion through makeDefaultJob with a PRIVATE
 *  cache of `cache_capacity` entries. */
StandaloneRun runStandalone(const JobSpec &spec,
                            size_t cache_capacity = 1 << 16);

} // namespace h2o::serve

#endif // H2O_SERVE_JOB_H
