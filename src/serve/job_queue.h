/**
 * @file
 * The server's job table + FIFO admission queue. Tracks every job ever
 * submitted (spec, lifecycle state, progress, error) under one mutex;
 * the scheduler pops queued jobs as concurrency slots free up and
 * reports state transitions back.
 *
 * Lifecycle: Queued -> Running -> {Done, Failed, Cancelled, Paused};
 * Paused -> Queued again via requeue() (the scheduler reloads the
 * job's checkpoint on re-admission). Cancellation of a job that never
 * started skips straight from Queued to Cancelled.
 */

#ifndef H2O_SERVE_JOB_QUEUE_H
#define H2O_SERVE_JOB_QUEUE_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.h"

namespace h2o::serve {

enum class JobState
{
    Queued,
    Running,
    Paused,
    Done,
    Failed,
    Cancelled,
};

const char *jobStateName(JobState state);

/** One job's queue-side record. */
struct JobInfo
{
    JobSpec spec;
    JobState state = JobState::Queued;
    size_t stepsDone = 0;
    double bestReward = 0.0;
    std::string error;
    /** Scheduling rounds observed at submit/finish (the server's round
     *  counter; wall-clock-free so runs stay reproducible). */
    uint64_t submittedRound = 0;
    uint64_t finishedRound = 0;
};

/** Thread-safe job table + FIFO of not-yet-admitted jobs. */
class JobQueue
{
  public:
    /** Register a job: assigns the next id (returned; also written to
     *  the stored spec), state Queued. */
    uint64_t submit(JobSpec spec, uint64_t round = 0);

    /** Pop the oldest queued job and mark it Running. Empty when no
     *  job is waiting. */
    std::optional<JobSpec> popQueued();

    /** Put a Paused job back at the END of the FIFO (fatal if the job
     *  is in any other state). */
    void requeue(uint64_t id);

    /** Cancel a job still in the FIFO: state Cancelled, removed from
     *  the FIFO. Returns false when the job is not Queued (a running
     *  job is cancelled through the scheduler instead). */
    bool cancelQueued(uint64_t id);

    /** Jobs waiting in the FIFO. */
    size_t depth() const;

    /** Jobs ever submitted. */
    size_t size() const;

    JobState state(uint64_t id) const;
    JobInfo info(uint64_t id) const;

    /** Every job's record, ascending id. */
    std::vector<JobInfo> snapshot() const;

    void setState(uint64_t id, JobState state, uint64_t round = 0);
    void setProgress(uint64_t id, size_t steps_done, double best_reward);
    void setError(uint64_t id, const std::string &error);

  private:
    JobInfo &infoLocked(uint64_t id);

    mutable std::mutex _mu;
    std::map<uint64_t, JobInfo> _jobs;
    std::deque<uint64_t> _fifo;
    uint64_t _nextId = 0;
};

} // namespace h2o::serve

#endif // H2O_SERVE_JOB_QUEUE_H
