/**
 * @file
 * The multi-tenant NAS job scheduler: runs up to k admitted jobs
 * concurrently on ONE shared `exec::ThreadPool`, fronting ONE shared
 * `sim::SimCache`, in round-based fair-share time slices.
 *
 * Scheduling model: each call to runRound() admits queued jobs into
 * free concurrency slots, then dispatches one slice task per active job
 * to the worker pool — a slice advances the job's resumable stepper by
 * up to `stepsPerSlice` search steps — and barriers on the round. Every
 * active job therefore advances the same step quantum per round
 * (round-robin fair share); a job's steps always execute sequentially
 * inside its own slice, never concurrently with each other.
 *
 * Determinism contract: a job's rewards, history, Pareto set and the
 * deterministic telemetry fields are bit-identical to the same spec run
 * standalone (serve::runStandalone), regardless of tenant mix, server
 * thread count, or slice quantum. Two mechanisms make this true: (1)
 * per-job sequential stepping means each search consumes its RNG
 * streams, supernet weights and pipeline cursor in exactly the
 * standalone order; (2) the shared SimCache only memoizes a PURE
 * simulator, so the tenant mix moves hit rates, never values.
 *
 * Deadlock-freedom: slices are the only tasks submitted to the server
 * pool, and a slice never blocks on another slice — jobs evaluate
 * candidates inline (their engines are configured single-threaded), the
 * shared cache computes misses on the calling thread, and every lock
 * (queue, telemetry, cache stripes) is leaf-level. The barrier in
 * runRound() runs on the coordinator thread, which is not a pool
 * worker.
 *
 * Lifecycle: pauseJob() checkpoints the job (exec::Checkpoint atomic
 * commit) at its next step boundary and unloads it; resumeJob()
 * requeues it, and admission reloads the checkpoint — as it also does
 * after a server crash/restart with the same checkpoint directory (the
 * kill-and-resume path). cancelJob() stops a running job at its next
 * step boundary, or retracts a queued one.
 */

#ifndef H2O_SERVE_SCHEDULER_H
#define H2O_SERVE_SCHEDULER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "serve/job.h"
#include "serve/job_queue.h"
#include "serve/telemetry.h"
#include "sim/sim_cache.h"

namespace h2o::serve {

/** Server configuration. */
struct ServeConfig
{
    /** Worker threads of the shared pool; 0 = one per hardware thread.
     *  Results are bit-identical at any value. */
    size_t threads = 0;
    /** Concurrency slots: jobs running per round (k). */
    size_t maxConcurrentJobs = 4;
    /** Search steps one job advances per scheduling round. */
    size_t stepsPerSlice = 8;
    /** Shared SimCache geometry. */
    size_t cacheCapacity = 1 << 16;
    size_t cacheShards = 16;
    /** Directory for per-job checkpoints (`job_<id>.ckpt`); empty
     *  disables pause/resume and crash recovery. */
    std::string checkpointDir;
    /** Extra step cadence for crash-safety checkpoints of RUNNING jobs
     *  (0 = checkpoint only on pause). Requires checkpointDir. */
    size_t checkpointEvery = 0;
    /** Optional sim-cache warm-start file (see warmSimCacheFromFile). */
    std::string warmCacheFile;
    /** Job factory; default makeDefaultJob. */
    JobFactoryFn factory;
};

/** The job server (see file comment). Public methods are meant for ONE
 *  coordinator thread; cross-thread control happens through the
 *  request flags they set, which slices poll at step boundaries. */
class Server
{
  public:
    explicit Server(ServeConfig config);

    /** Enqueue a job; returns its id. */
    uint64_t submit(JobSpec spec);

    /** One scheduling round: admit, slice every active job on the
     *  pool, barrier, finalize lifecycle transitions. Returns false
     *  when there was nothing to run (server idle). */
    bool runRound();

    /** Drive rounds until no job is active or queued. */
    void runUntilIdle();

    /** Request a running job be checkpointed and unloaded at its next
     *  step boundary. False when the job is not running or the server
     *  has no checkpointDir. Takes effect within the next round. */
    bool pauseJob(uint64_t id);

    /** Put a Paused job back in the admission queue. */
    void resumeJob(uint64_t id);

    /** Cancel a queued or running job. False when it already
     *  finished. */
    bool cancelJob(uint64_t id);

    /** Finished job's result; null until the job is Done. */
    const JobResult *result(uint64_t id) const;

    /** `<checkpointDir>/job_<id>.ckpt` (empty when disabled). */
    std::string checkpointPathFor(uint64_t id) const;

    /** Merge-save the shared cache to a file (saveSimCacheFileMerged). */
    void saveCacheFile(const std::string &path);

    JobQueue &queue() { return _queue; }
    const JobQueue &queue() const { return _queue; }
    TelemetryStream &telemetry() { return _telemetry; }
    sim::SimCache &cache() { return _cache; }
    /** Rounds executed so far (the queue's round stamps count these). */
    uint64_t round() const { return _round; }
    size_t activeJobs() const { return _active.size(); }

  private:
    struct ActiveJob
    {
        uint64_t id = 0;
        JobSpec spec;
        std::unique_ptr<SearchJob> job;
        JobProgress progress;
        /** Coordinator -> slice control; polled at step boundaries. */
        std::atomic<int> request{0}; // 0 none, 1 pause, 2 cancel
        /** Slice -> coordinator outcome of the round. */
        bool pausePending = false;
        bool cancelPending = false;
        bool failed = false;
        std::string error;
    };

    void admit();
    void slice(ActiveJob &aj, size_t running_jobs);
    void checkpointJob(ActiveJob &aj);
    void finalizeRound();

    ServeConfig _config;
    exec::ThreadPool _pool;
    sim::SimCache _cache;
    JobQueue _queue;
    TelemetryStream _telemetry;
    std::vector<std::unique_ptr<ActiveJob>> _active;
    std::map<uint64_t, JobResult> _results;
    uint64_t _round = 0;
};

} // namespace h2o::serve

#endif // H2O_SERVE_SCHEDULER_H
