/**
 * @file
 * Telemetry stream of the NAS job server: one row per completed search
 * step of every job, appended concurrently by the scheduler's slices
 * and flushed to CSV or JSON for dashboards.
 *
 * Determinism contract (see scheduler.h): a row's `jobId`, `step`,
 * `meanReward` and `bestReward` are functions of the job's spec and
 * seed ALONE — a job's row subsequence carries exactly the values the
 * same search produces standalone, regardless of the tenant mix. The
 * remaining fields (`cacheHitRate`, `cacheEntries`, `queueDepth`,
 * `runningJobs`) snapshot the shared server state at record time and
 * legitimately vary with scheduling: they are observational and
 * excluded from the contract, as is the global interleaving of rows
 * from different jobs.
 */

#ifndef H2O_SERVE_TELEMETRY_H
#define H2O_SERVE_TELEMETRY_H

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace h2o::serve {

/** One per-step telemetry record (see file comment for which fields
 *  are deterministic). */
struct TelemetryRow
{
    // --- Deterministic per (spec, seed).
    uint64_t jobId = 0;
    uint64_t step = 0;          ///< search step the row describes
    double meanReward = 0.0;    ///< step's mean reward across shards
    double bestReward = 0.0;    ///< best single-candidate reward so far

    // --- Observational (tenant-mix dependent).
    double cacheHitRate = 0.0;  ///< shared SimCache lifetime hit rate
    uint64_t cacheEntries = 0;  ///< shared SimCache live entries
    uint64_t queueDepth = 0;    ///< jobs still waiting in the queue
    uint64_t runningJobs = 0;   ///< jobs active this scheduling round
};

/** Thread-safe append-only row stream. */
class TelemetryStream
{
  public:
    void record(const TelemetryRow &row);

    /** Snapshot of every row recorded so far, in record order. */
    std::vector<TelemetryRow> rows() const;

    /** The rows of one job, in record (== step) order. */
    std::vector<TelemetryRow> rowsForJob(uint64_t job_id) const;

    size_t size() const;

    /** Flush as CSV (header + one line per row, 17 significant digits
     *  so reloaded values compare bitwise). */
    void writeCsv(std::ostream &os) const;

    /** Flush as a JSON array of row objects. */
    void writeJson(std::ostream &os) const;

    void writeCsvFile(const std::string &path) const;
    void writeJsonFile(const std::string &path) const;

  private:
    mutable std::mutex _mu;
    std::vector<TelemetryRow> _rows;
};

} // namespace h2o::serve

#endif // H2O_SERVE_TELEMETRY_H
