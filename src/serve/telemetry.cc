#include "serve/telemetry.h"

#include <fstream>
#include <iomanip>

#include "common/logging.h"

namespace h2o::serve {

void
TelemetryStream::record(const TelemetryRow &row)
{
    std::lock_guard<std::mutex> lock(_mu);
    _rows.push_back(row);
}

std::vector<TelemetryRow>
TelemetryStream::rows() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _rows;
}

std::vector<TelemetryRow>
TelemetryStream::rowsForJob(uint64_t job_id) const
{
    std::lock_guard<std::mutex> lock(_mu);
    std::vector<TelemetryRow> out;
    for (const TelemetryRow &r : _rows)
        if (r.jobId == job_id)
            out.push_back(r);
    return out;
}

size_t
TelemetryStream::size() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _rows.size();
}

void
TelemetryStream::writeCsv(std::ostream &os) const
{
    auto snapshot = rows();
    os << "job_id,step,mean_reward,best_reward,cache_hit_rate,"
          "cache_entries,queue_depth,running_jobs\n";
    os << std::setprecision(17);
    for (const TelemetryRow &r : snapshot) {
        os << r.jobId << ',' << r.step << ',' << r.meanReward << ','
           << r.bestReward << ',' << r.cacheHitRate << ','
           << r.cacheEntries << ',' << r.queueDepth << ','
           << r.runningJobs << '\n';
    }
}

void
TelemetryStream::writeJson(std::ostream &os) const
{
    auto snapshot = rows();
    os << std::setprecision(17);
    os << "[\n";
    for (size_t i = 0; i < snapshot.size(); ++i) {
        const TelemetryRow &r = snapshot[i];
        os << "  {\"job_id\": " << r.jobId << ", \"step\": " << r.step
           << ", \"mean_reward\": " << r.meanReward
           << ", \"best_reward\": " << r.bestReward
           << ", \"cache_hit_rate\": " << r.cacheHitRate
           << ", \"cache_entries\": " << r.cacheEntries
           << ", \"queue_depth\": " << r.queueDepth
           << ", \"running_jobs\": " << r.runningJobs << "}"
           << (i + 1 < snapshot.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

void
TelemetryStream::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        h2o_fatal("cannot write telemetry CSV '", path, "'");
    writeCsv(os);
}

void
TelemetryStream::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        h2o_fatal("cannot write telemetry JSON '", path, "'");
    writeJson(os);
}

} // namespace h2o::serve
