#include "serve/scheduler.h"

#include <cstdio>
#include <exception>
#include <future>
#include <utility>

#include "common/logging.h"
#include "exec/checkpoint.h"

namespace h2o::serve {

Server::Server(ServeConfig config)
    : _config(std::move(config)), _pool(_config.threads),
      _cache(_config.cacheCapacity, _config.cacheShards)
{
    h2o_assert(_config.maxConcurrentJobs > 0, "zero concurrency slots");
    h2o_assert(_config.stepsPerSlice > 0, "zero steps per slice");
    if (!_config.factory)
        _config.factory = makeDefaultJob;
    if (warmSimCacheFromFile(_cache, _config.warmCacheFile))
        common::inform("serve: warmed sim cache from '",
                       _config.warmCacheFile, "' (",
                       _cache.stats().entries, " entries)");
}

uint64_t
Server::submit(JobSpec spec)
{
    return _queue.submit(std::move(spec), _round);
}

std::string
Server::checkpointPathFor(uint64_t id) const
{
    if (_config.checkpointDir.empty())
        return {};
    return _config.checkpointDir + "/job_" + std::to_string(id) +
           ".ckpt";
}

void
Server::admit()
{
    while (_active.size() < _config.maxConcurrentJobs) {
        auto spec = _queue.popQueued();
        if (!spec)
            return;
        auto aj = std::make_unique<ActiveJob>();
        aj->id = spec->id;
        aj->spec = *spec;
        try {
            aj->job = _config.factory(*spec, _cache);
            // Crash recovery / resume-from-pause: a checkpoint written
            // for this job id replaces the fresh stepper state.
            std::string ckpt = checkpointPathFor(aj->id);
            if (!ckpt.empty() && exec::CheckpointReader::exists(ckpt)) {
                exec::CheckpointReader reader(ckpt);
                aj->job->stepper().load(reader.stream());
                aj->progress.absorb(
                    aj->job->stepper().partialOutcome());
                _queue.setProgress(aj->id,
                                   aj->job->stepper().stepIndex(),
                                   aj->progress.bestReward);
                common::inform("serve: job ", aj->id,
                               " resumed from '", ckpt, "' at step ",
                               aj->job->stepper().stepIndex());
            }
        } catch (const std::exception &e) {
            _queue.setError(aj->id, e.what());
            _queue.setState(aj->id, JobState::Failed, _round);
            continue;
        }
        _active.push_back(std::move(aj));
    }
}

void
Server::slice(ActiveJob &aj, size_t running_jobs)
{
    try {
        search::StepwiseSearch &st = aj.job->stepper();
        for (size_t i = 0; i < _config.stepsPerSlice; ++i) {
            if (st.done())
                return;
            int req = aj.request.load(std::memory_order_acquire);
            if (req == 1) {
                aj.pausePending = true;
                return;
            }
            if (req == 2) {
                aj.cancelPending = true;
                return;
            }
            st.step();
            // Deterministic fields first (a pure function of the job),
            // then the observational server-state snapshot.
            TelemetryRow row = makeProgressRow(aj.id, st, aj.progress);
            sim::SimCacheStats cs = _cache.stats();
            row.cacheHitRate = cs.hitRate();
            row.cacheEntries = cs.entries;
            row.queueDepth = _queue.depth();
            row.runningJobs = running_jobs;
            _telemetry.record(row);
            _queue.setProgress(aj.id, st.stepIndex(),
                               aj.progress.bestReward);
            if (!_config.checkpointDir.empty() &&
                _config.checkpointEvery > 0 && !st.done() &&
                st.stepIndex() % _config.checkpointEvery == 0)
                checkpointJob(aj);
        }
    } catch (const std::exception &e) {
        aj.failed = true;
        aj.error = e.what();
    } catch (...) {
        aj.failed = true;
        aj.error = "unknown job failure";
    }
}

void
Server::checkpointJob(ActiveJob &aj)
{
    exec::CheckpointWriter writer;
    aj.job->stepper().save(writer.stream());
    writer.commit(checkpointPathFor(aj.id));
}

void
Server::finalizeRound()
{
    std::vector<std::unique_ptr<ActiveJob>> still_active;
    still_active.reserve(_active.size());
    for (auto &aj : _active) {
        search::StepwiseSearch &st = aj->job->stepper();
        if (aj->failed) {
            _queue.setError(aj->id, aj->error);
            _queue.setState(aj->id, JobState::Failed, _round);
            common::warn("serve: job ", aj->id, " failed: ", aj->error);
        } else if (aj->cancelPending) {
            _queue.setState(aj->id, JobState::Cancelled, _round);
            std::string ckpt = checkpointPathFor(aj->id);
            if (!ckpt.empty())
                std::remove(ckpt.c_str());
        } else if (aj->pausePending) {
            checkpointJob(*aj);
            _queue.setState(aj->id, JobState::Paused, _round);
        } else if (st.done()) {
            size_t steps = st.stepIndex();
            JobResult res =
                makeJobResult(st.finish(), aj->progress, steps);
            _queue.setProgress(aj->id, steps, res.bestReward);
            _queue.setState(aj->id, JobState::Done, _round);
            _results.emplace(aj->id, std::move(res));
            std::string ckpt = checkpointPathFor(aj->id);
            if (!ckpt.empty())
                std::remove(ckpt.c_str());
        } else {
            still_active.push_back(std::move(aj));
        }
    }
    _active = std::move(still_active);
}

bool
Server::runRound()
{
    ++_round;
    admit();
    if (_active.empty())
        return false;

    // One fair-share slice per active job, all on the shared pool; the
    // round barrier below is the only wait, and it runs on this
    // (non-worker) coordinator thread.
    const size_t running = _active.size();
    std::vector<std::future<void>> futures;
    futures.reserve(running);
    for (auto &aj : _active) {
        ActiveJob *p = aj.get();
        futures.push_back(
            _pool.submit([this, p, running] { slice(*p, running); }));
    }
    for (auto &f : futures)
        f.get();

    finalizeRound();
    return true;
}

void
Server::runUntilIdle()
{
    while (runRound()) {
    }
}

bool
Server::pauseJob(uint64_t id)
{
    if (_config.checkpointDir.empty())
        return false;
    for (auto &aj : _active) {
        if (aj->id == id) {
            aj->request.store(1, std::memory_order_release);
            return true;
        }
    }
    return false;
}

void
Server::resumeJob(uint64_t id)
{
    _queue.requeue(id);
}

bool
Server::cancelJob(uint64_t id)
{
    for (auto &aj : _active) {
        if (aj->id == id) {
            aj->request.store(2, std::memory_order_release);
            return true;
        }
    }
    return _queue.cancelQueued(id);
}

const JobResult *
Server::result(uint64_t id) const
{
    auto it = _results.find(id);
    return it == _results.end() ? nullptr : &it->second;
}

void
Server::saveCacheFile(const std::string &path)
{
    saveSimCacheFileMerged(_cache, path);
}

} // namespace h2o::serve
