#include "serve/job_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace h2o::serve {

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Paused: return "paused";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    }
    return "unknown";
}

JobInfo &
JobQueue::infoLocked(uint64_t id)
{
    auto it = _jobs.find(id);
    if (it == _jobs.end())
        h2o_fatal("unknown job id ", id);
    return it->second;
}

uint64_t
JobQueue::submit(JobSpec spec, uint64_t round)
{
    std::lock_guard<std::mutex> lock(_mu);
    uint64_t id = ++_nextId;
    spec.id = id;
    JobInfo info;
    info.spec = std::move(spec);
    info.submittedRound = round;
    _jobs.emplace(id, std::move(info));
    _fifo.push_back(id);
    return id;
}

std::optional<JobSpec>
JobQueue::popQueued()
{
    std::lock_guard<std::mutex> lock(_mu);
    if (_fifo.empty())
        return std::nullopt;
    uint64_t id = _fifo.front();
    _fifo.pop_front();
    JobInfo &info = infoLocked(id);
    info.state = JobState::Running;
    return info.spec;
}

void
JobQueue::requeue(uint64_t id)
{
    std::lock_guard<std::mutex> lock(_mu);
    JobInfo &info = infoLocked(id);
    if (info.state != JobState::Paused)
        h2o_fatal("requeue of job ", id, " in state ",
                  jobStateName(info.state));
    info.state = JobState::Queued;
    _fifo.push_back(id);
}

bool
JobQueue::cancelQueued(uint64_t id)
{
    std::lock_guard<std::mutex> lock(_mu);
    JobInfo &info = infoLocked(id);
    if (info.state != JobState::Queued)
        return false;
    info.state = JobState::Cancelled;
    _fifo.erase(std::remove(_fifo.begin(), _fifo.end(), id),
                _fifo.end());
    return true;
}

size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _fifo.size();
}

size_t
JobQueue::size() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _jobs.size();
}

JobState
JobQueue::state(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(_mu);
    return const_cast<JobQueue *>(this)->infoLocked(id).state;
}

JobInfo
JobQueue::info(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(_mu);
    return const_cast<JobQueue *>(this)->infoLocked(id);
}

std::vector<JobInfo>
JobQueue::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mu);
    std::vector<JobInfo> out;
    out.reserve(_jobs.size());
    for (const auto &[id, info] : _jobs)
        out.push_back(info);
    return out;
}

void
JobQueue::setState(uint64_t id, JobState state, uint64_t round)
{
    std::lock_guard<std::mutex> lock(_mu);
    JobInfo &info = infoLocked(id);
    info.state = state;
    if (state == JobState::Done || state == JobState::Failed ||
        state == JobState::Cancelled)
        info.finishedRound = round;
}

void
JobQueue::setProgress(uint64_t id, size_t steps_done, double best_reward)
{
    std::lock_guard<std::mutex> lock(_mu);
    JobInfo &info = infoLocked(id);
    info.stepsDone = steps_done;
    info.bestReward = best_reward;
}

void
JobQueue::setError(uint64_t id, const std::string &error)
{
    std::lock_guard<std::mutex> lock(_mu);
    infoLocked(id).error = error;
}

} // namespace h2o::serve
