/**
 * @file
 * Shared lowering helpers: execution modes and the training-graph
 * transformation (append backward-pass ops and the cross-chip gradient
 * all-reduce to a forward graph).
 */

#ifndef H2O_ARCH_LOWERING_H
#define H2O_ARCH_LOWERING_H

#include "sim/graph.h"

namespace h2o::arch {

/** Whether a graph models a training step or a serving (inference) step. */
enum class ExecMode { Training, Serving };

/**
 * Append backward-pass ops for training.
 *
 * For every live forward op with FLOPs, a backward op with twice the
 * forward FLOPs (grad-input + grad-weight matmuls) and doubled activation
 * traffic is appended in reverse order, chained sequentially after the
 * forward ops. Finally a gradient all-reduce over the dense parameter
 * bytes is appended (data-parallel training across `num_chips`).
 *
 * @param graph            Forward graph, modified in place.
 * @param dense_param_bytes Dense (non-embedding) parameter bytes per chip.
 * @param num_chips        Data-parallel width; 1 disables the all-reduce.
 */
void appendBackwardOps(sim::Graph &graph, double dense_param_bytes,
                       uint32_t num_chips);

} // namespace h2o::arch

#endif // H2O_ARCH_LOWERING_H
