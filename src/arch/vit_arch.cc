#include "arch/vit_arch.h"

#include <cmath>

#include "common/logging.h"
#include "sim/ops.h"

namespace h2o::arch {

sim::Graph
buildVitGraph(const VitArch &arch, const hw::Platform &platform,
              ExecMode mode)
{
    h2o_assert(!arch.tfmBlocks.empty(), "ViT arch with no transformer blocks");
    h2o_assert(arch.patch >= 1 && arch.resolution >= arch.patch,
               "patch ", arch.patch, " larger than resolution ",
               arch.resolution);
    double batch = arch.perChipBatch;
    double res = arch.resolution;

    sim::Graph graph(arch.name);
    sim::Op source = sim::ops::reshape("image_input", 0.0, true);
    sim::OpId cur = graph.add(std::move(source));

    // --- Convolutional section (CoAtNet's early stages).
    double channels = 3.0;
    if (!arch.convStages.empty()) {
        // Standard stem in front of the conv stages.
        double stem_filters = arch.convStages.front().filters / 2.0;
        stem_filters = std::max(stem_filters, 16.0);
        sim::Op stem = sim::ops::conv2d("stem_conv", batch, res, res,
                                        channels, stem_filters, 3, 3, 2);
        stem.inputs = {cur};
        cur = graph.add(std::move(stem));
        res = std::ceil(res / 2.0);
        channels = stem_filters;
        // Reuse the conv-block emitter via a tiny local ConvArch lowering:
        // emit each stage inline with matched semantics.
        for (size_t s = 0; s < arch.convStages.size(); ++s) {
            ConvArch probe; // only used for emitBlock-equivalent emission
            (void)probe;
            const auto &stage = arch.convStages[s];
            for (uint32_t l = 0; l < stage.layers; ++l) {
                double stride = (l == 0) ? stage.stride : 1.0;
                double expanded =
                    std::max(channels * stage.expansion, channels);
                double out_res = std::ceil(res / stride);
                double act_cost = nn::activationVpuCost(stage.act);
                std::string name = "conv_s" + std::to_string(s) + "_b" +
                                   std::to_string(l);
                if (stage.type == BlockType::MBConv) {
                    sim::Op expand = sim::ops::conv2d(
                        name + "_expand", batch, res, res, channels,
                        expanded, 1, 1, 1);
                    expand.inputs = {cur};
                    cur = graph.add(std::move(expand));
                    sim::Op dw = sim::ops::depthwiseConv2d(
                        name + "_dw", batch, res, res, expanded,
                        stage.kernel, stage.kernel, stride);
                    dw.inputs = {cur};
                    cur = graph.add(std::move(dw));
                    sim::Op project = sim::ops::conv2d(
                        name + "_project", batch, out_res, out_res,
                        expanded, stage.filters, 1, 1, 1);
                    project.inputs = {cur};
                    cur = graph.add(std::move(project));
                } else {
                    sim::Op fused = sim::ops::conv2d(
                        name + "_fused", batch, res, res, channels,
                        stage.filters, stage.kernel, stage.kernel, stride);
                    fused.inputs = {cur};
                    cur = graph.add(std::move(fused));
                }
                sim::Op bn = sim::ops::norm(
                    name + "_bn", batch * out_res * out_res * stage.filters);
                bn.inputs = {cur};
                cur = graph.add(std::move(bn));
                sim::Op act = sim::ops::elementwise(
                    name + "_act", batch * out_res * out_res * stage.filters,
                    act_cost);
                act.inputs = {cur};
                cur = graph.add(std::move(act));
                res = out_res;
                channels = stage.filters;
            }
        }
    }

    // --- Patchify into a token sequence.
    double eff_patch = arch.convStages.empty()
                           ? static_cast<double>(arch.patch)
                           : 2.0; // conv section already downsampled
    double seq = std::ceil(res / eff_patch) * std::ceil(res / eff_patch);
    double hidden0 = arch.tfmBlocks.front().hidden;
    sim::Op patchify = sim::ops::conv2d("patchify", batch, res, res,
                                        channels, hidden0, eff_patch,
                                        eff_patch, eff_patch);
    patchify.inputs = {cur};
    cur = graph.add(std::move(patchify));

    // --- Transformer section.
    for (size_t b = 0; b < arch.tfmBlocks.size(); ++b) {
        const auto &blk = arch.tfmBlocks[b];
        double hidden = blk.hidden;
        double act_cost = nn::activationVpuCost(blk.act);
        for (uint32_t l = 0; l < blk.layers; ++l) {
            std::string name =
                "tfm" + std::to_string(b) + "_l" + std::to_string(l);
            sim::Op ln1 = sim::ops::norm(name + "_ln1",
                                         batch * seq * hidden);
            ln1.inputs = {cur};
            cur = graph.add(std::move(ln1));
            sim::Op attn = sim::ops::attention(name + "_attn", batch, seq,
                                               hidden, blk.heads);
            attn.inputs = {cur};
            cur = graph.add(std::move(attn));
            if (blk.primer) {
                // Primer: channel-wise depth conv after projections,
                // over the [batch, seq, hidden] token tensor.
                sim::Op dconv = sim::ops::depthwiseConv2d(
                    name + "_primer_dconv", batch, seq, 1.0, hidden, 3, 1,
                    1);
                dconv.inputs = {cur};
                cur = graph.add(std::move(dconv));
            }
            sim::Op ln2 = sim::ops::norm(name + "_ln2",
                                         batch * seq * hidden);
            ln2.inputs = {cur};
            cur = graph.add(std::move(ln2));
            // FFN: hidden -> mlpRatio*hidden -> hidden, optionally
            // low-rank factorized.
            double ffn = hidden * blk.mlpRatio;
            if (blk.lowRank < 1.0) {
                double rank = std::max(8.0, std::floor(hidden * blk.lowRank));
                sim::Op u = sim::ops::matmul(name + "_ffn1_u", batch * seq,
                                             rank, hidden);
                u.inputs = {cur};
                cur = graph.add(std::move(u));
                sim::Op v = sim::ops::matmul(name + "_ffn1_v", batch * seq,
                                             ffn, rank);
                v.inputs = {cur};
                cur = graph.add(std::move(v));
            } else {
                sim::Op fc1 = sim::ops::matmul(name + "_ffn1", batch * seq,
                                               ffn, hidden);
                fc1.inputs = {cur};
                cur = graph.add(std::move(fc1));
            }
            sim::Op act = sim::ops::elementwise(name + "_act",
                                                batch * seq * ffn, act_cost);
            act.inputs = {cur};
            cur = graph.add(std::move(act));
            sim::Op fc2 = sim::ops::matmul(name + "_ffn2", batch * seq,
                                           hidden, ffn);
            fc2.inputs = {cur};
            cur = graph.add(std::move(fc2));
        }
        if (blk.seqPool && seq > 1.0) {
            sim::Op sp = sim::ops::pool("funnel_pool" + std::to_string(b),
                                        batch * seq * hidden,
                                        batch * (seq / 2.0) * hidden);
            sp.inputs = {cur};
            cur = graph.add(std::move(sp));
            seq = std::ceil(seq / 2.0);
        }
        // Project to the next block's hidden size when it changes.
        if (b + 1 < arch.tfmBlocks.size() &&
            arch.tfmBlocks[b + 1].hidden != blk.hidden) {
            sim::Op proj = sim::ops::matmul(
                "block_proj" + std::to_string(b), batch * seq,
                arch.tfmBlocks[b + 1].hidden, hidden);
            proj.inputs = {cur};
            cur = graph.add(std::move(proj));
        }
    }

    double last_hidden = arch.tfmBlocks.back().hidden;
    sim::Op gp = sim::ops::pool("token_pool", batch * seq * last_hidden,
                                batch * last_hidden);
    gp.inputs = {cur};
    cur = graph.add(std::move(gp));
    sim::Op fc = sim::ops::matmul("classifier", batch, arch.numClasses,
                                  last_hidden);
    fc.inputs = {cur};
    graph.add(std::move(fc));

    if (mode == ExecMode::Training) {
        appendBackwardOps(graph, graph.totalParamBytes(),
                          platform.numChips);
    }
    graph.validate();
    return graph;
}

double
VitArch::flopsPerImage() const
{
    VitArch probe = *this;
    probe.perChipBatch = 1;
    hw::Platform one{hw::tpuV4(), 1};
    return buildVitGraph(probe, one, ExecMode::Serving).totalFlops();
}

double
VitArch::paramCount() const
{
    VitArch probe = *this;
    probe.perChipBatch = 1;
    hw::Platform one{hw::tpuV4(), 1};
    return buildVitGraph(probe, one, ExecMode::Serving).totalParamBytes() /
           sim::ops::kDtypeBytes;
}

} // namespace h2o::arch
