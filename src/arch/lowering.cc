#include "arch/lowering.h"

#include "sim/ops.h"

namespace h2o::arch {

void
appendBackwardOps(sim::Graph &graph, double dense_param_bytes,
                  uint32_t num_chips)
{
    size_t fwd_count = graph.size();
    sim::OpId prev = static_cast<sim::OpId>(fwd_count - 1);

    for (size_t idx = fwd_count; idx-- > 0;) {
        const sim::Op &fwd = graph.op(static_cast<sim::OpId>(idx));
        if (fwd.fusedAway || (fwd.flops == 0.0 && fwd.inputBytes == 0.0))
            continue;
        sim::Op bwd;
        bwd.kind = fwd.kind;
        bwd.name = fwd.name + "_bwd";
        bwd.flops = 2.0 * fwd.flops;
        bwd.inputBytes = fwd.inputBytes + fwd.outputBytes;
        bwd.outputBytes = fwd.inputBytes;
        bwd.paramBytes = fwd.paramBytes; // re-read weights for grad-input
        bwd.networkBytes = fwd.networkBytes; // collectives mirror
        bwd.dimM = fwd.dimM;
        bwd.dimN = fwd.dimN;
        bwd.dimK = fwd.dimK;
        bwd.onTensorUnit = fwd.onTensorUnit;
        bwd.fusable = fwd.fusable;
        bwd.inputs = {prev};
        prev = graph.add(std::move(bwd));
    }

    if (num_chips > 1 && dense_param_bytes > 0.0) {
        sim::Op ar = sim::ops::allReduce("grad_allreduce", dense_param_bytes);
        ar.inputs = {prev};
        graph.add(std::move(ar));
    }
}

} // namespace h2o::arch
