#include "arch/conv_arch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/ops.h"

namespace h2o::arch {

namespace {

/**
 * Emit one MBConv or fused-MBConv block. Returns {last op id, output
 * spatial size}.
 */
struct BlockResult
{
    sim::OpId last;
    double outRes;
};

BlockResult
emitBlock(sim::Graph &graph, const std::string &name,
          const ConvStageConfig &cfg, double batch, double res, double cin,
          double cout, double stride, sim::OpId input)
{
    double expanded = std::max(cin * cfg.expansion, cin);
    double out_res = std::ceil(res / stride);
    double act_cost = nn::activationVpuCost(cfg.act);
    sim::OpId cur = input;

    if (cfg.type == BlockType::MBConv) {
        // 1x1 expansion -> depthwise kxk -> (SE) -> 1x1 projection.
        if (cfg.expansion > 1.0) {
            sim::Op expand = sim::ops::conv2d(name + "_expand", batch, res,
                                              res, cin, expanded, 1, 1, 1);
            expand.inputs = {cur};
            cur = graph.add(std::move(expand));
            sim::Op bn = sim::ops::norm(name + "_bn0",
                                        batch * res * res * expanded);
            bn.inputs = {cur};
            cur = graph.add(std::move(bn));
            sim::Op act = sim::ops::elementwise(
                name + "_act0", batch * res * res * expanded, act_cost);
            act.inputs = {cur};
            cur = graph.add(std::move(act));
        }
        sim::Op dw = sim::ops::depthwiseConv2d(name + "_dw", batch, res, res,
                                               expanded, cfg.kernel,
                                               cfg.kernel, stride);
        dw.inputs = {cur};
        cur = graph.add(std::move(dw));
        sim::Op bn1 = sim::ops::norm(name + "_bn1",
                                     batch * out_res * out_res * expanded);
        bn1.inputs = {cur};
        cur = graph.add(std::move(bn1));
        sim::Op act1 = sim::ops::elementwise(
            name + "_act1", batch * out_res * out_res * expanded, act_cost);
        act1.inputs = {cur};
        cur = graph.add(std::move(act1));
        if (cfg.seRatio > 0.0) {
            sim::Op se = sim::ops::squeezeExcite(name + "_se", batch,
                                                 out_res, out_res, expanded,
                                                 cfg.seRatio);
            se.inputs = {cur};
            cur = graph.add(std::move(se));
        }
        sim::Op project = sim::ops::conv2d(name + "_project", batch, out_res,
                                           out_res, expanded, cout, 1, 1, 1);
        project.inputs = {cur};
        cur = graph.add(std::move(project));
    } else {
        // Fused MBConv: kxk expansion conv (vanilla convolution replacing
        // expand+depthwise) -> (SE) -> 1x1 projection.
        sim::Op fused = sim::ops::conv2d(name + "_fused", batch, res, res,
                                         cin, expanded, cfg.kernel,
                                         cfg.kernel, stride);
        fused.inputs = {cur};
        cur = graph.add(std::move(fused));
        sim::Op bn = sim::ops::norm(name + "_bn0",
                                    batch * out_res * out_res * expanded);
        bn.inputs = {cur};
        cur = graph.add(std::move(bn));
        sim::Op act = sim::ops::elementwise(
            name + "_act0", batch * out_res * out_res * expanded, act_cost);
        act.inputs = {cur};
        cur = graph.add(std::move(act));
        if (cfg.seRatio > 0.0) {
            sim::Op se = sim::ops::squeezeExcite(name + "_se", batch,
                                                 out_res, out_res, expanded,
                                                 cfg.seRatio);
            se.inputs = {cur};
            cur = graph.add(std::move(se));
        }
        if (cfg.expansion > 1.0) {
            sim::Op project = sim::ops::conv2d(name + "_project", batch,
                                               out_res, out_res, expanded,
                                               cout, 1, 1, 1);
            project.inputs = {cur};
            cur = graph.add(std::move(project));
        }
    }

    sim::Op bn2 = sim::ops::norm(name + "_bn2",
                                 batch * out_res * out_res * cout);
    bn2.inputs = {cur};
    cur = graph.add(std::move(bn2));

    if (cfg.skip && stride == 1.0 && cin == cout) {
        sim::Op add = sim::ops::elementwise(
            name + "_skip", batch * out_res * out_res * cout, 1.0);
        add.inputs = {cur, input};
        add.fusable = false; // two producers: keep as a live join
        cur = graph.add(std::move(add));
    }
    return {cur, out_res};
}

} // namespace

sim::Graph
buildConvGraph(const ConvArch &arch, const hw::Platform &platform,
               ExecMode mode)
{
    h2o_assert(!arch.stages.empty(), "conv arch with no stages");
    double batch = arch.perChipBatch;
    double res = arch.resolution;

    sim::Graph graph(arch.name);
    sim::Op source = sim::ops::reshape("image_input", 0.0, true);
    sim::OpId cur = graph.add(std::move(source));

    // Stem: 3x3 stride-2 conv; the space-to-depth variant re-lays the
    // image as res/2 x res/2 x 12 first, turning the stem into a
    // tile-friendlier 1x1-equivalent conv (free reshape, annotated HLO).
    double cin = 3.0;
    if (arch.spaceToDepthStem) {
        sim::Op s2d = sim::ops::reshape("stem_s2d",
                                        batch * res * res * 3.0 *
                                            sim::ops::kDtypeBytes,
                                        /*free=*/true);
        s2d.inputs = {cur};
        cur = graph.add(std::move(s2d));
        res = std::ceil(res / 2.0);
        cin = 12.0;
        sim::Op stem = sim::ops::conv2d("stem_conv", batch, res, res, cin,
                                        arch.stemFilters, 1, 1, 1);
        stem.inputs = {cur};
        cur = graph.add(std::move(stem));
    } else {
        sim::Op stem = sim::ops::conv2d("stem_conv", batch, res, res, cin,
                                        arch.stemFilters, 3, 3, 2);
        stem.inputs = {cur};
        cur = graph.add(std::move(stem));
        res = std::ceil(res / 2.0);
    }
    sim::Op stem_act = sim::ops::elementwise(
        "stem_act", batch * res * res * arch.stemFilters, 5.0);
    stem_act.inputs = {cur};
    cur = graph.add(std::move(stem_act));

    double channels = arch.stemFilters;
    for (size_t s = 0; s < arch.stages.size(); ++s) {
        const auto &stage = arch.stages[s];
        h2o_assert(stage.layers >= 1, "stage ", s, " with zero layers");
        for (uint32_t l = 0; l < stage.layers; ++l) {
            double stride = (l == 0) ? stage.stride : 1.0;
            std::string name =
                "s" + std::to_string(s) + "_b" + std::to_string(l);
            BlockResult br = emitBlock(graph, name, stage, batch, res,
                                       channels, stage.filters, stride, cur);
            cur = br.last;
            res = br.outRes;
            channels = stage.filters;
        }
    }

    // Head: 1x1 conv, global pool, classifier.
    sim::Op head = sim::ops::conv2d("head_conv", batch, res, res, channels,
                                    arch.headFilters, 1, 1, 1);
    head.inputs = {cur};
    cur = graph.add(std::move(head));
    sim::Op gp = sim::ops::pool("global_pool",
                                batch * res * res * arch.headFilters,
                                batch * arch.headFilters);
    gp.inputs = {cur};
    cur = graph.add(std::move(gp));
    sim::Op fc = sim::ops::matmul("classifier", batch, arch.numClasses,
                                  arch.headFilters);
    fc.inputs = {cur};
    graph.add(std::move(fc));

    if (mode == ExecMode::Training) {
        double dense_bytes = graph.totalParamBytes();
        appendBackwardOps(graph, dense_bytes, platform.numChips);
    }
    graph.validate();
    return graph;
}

double
ConvArch::flopsPerImage() const
{
    ConvArch probe = *this;
    probe.perChipBatch = 1;
    hw::Platform one{hw::tpuV4(), 1};
    return buildConvGraph(probe, one, ExecMode::Serving).totalFlops();
}

double
ConvArch::paramCount() const
{
    ConvArch probe = *this;
    probe.perChipBatch = 1;
    hw::Platform one{hw::tpuV4(), 1};
    return buildConvGraph(probe, one, ExecMode::Serving).totalParamBytes() /
           sim::ops::kDtypeBytes;
}

sim::Graph
buildSingleBlockGraph(BlockType type, uint32_t depth, uint32_t resolution,
                      uint32_t kernel, double expansion, uint32_t batch)
{
    ConvStageConfig cfg;
    cfg.type = type;
    cfg.kernel = kernel;
    cfg.stride = 1;
    cfg.expansion = expansion;
    cfg.seRatio = 0.0;
    cfg.act = nn::Activation::ReLU;
    cfg.layers = 1;
    cfg.filters = depth;
    cfg.skip = false;

    std::string name = (type == BlockType::MBConv ? "MBC(" : "F-MBC(") +
                       std::to_string(depth) + ")";
    sim::Graph graph(name);
    sim::Op source = sim::ops::reshape("input", 0.0, true);
    sim::OpId cur = graph.add(std::move(source));
    emitBlock(graph, "blk", cfg, batch, resolution, depth, depth, 1.0, cur);
    graph.validate();
    return graph;
}

} // namespace h2o::arch
