#include "arch/dlrm_arch.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/ops.h"

namespace h2o::arch {

namespace {

/** Per-layer dense FLOPs for one example, honoring low-rank splits. */
double
layerFlops(double in, const MlpLayerConfig &layer)
{
    double out = layer.width;
    bool low_rank =
        layer.rank > 0 && layer.rank < std::min<double>(in, out);
    if (low_rank)
        return 2.0 * in * layer.rank + 2.0 * layer.rank * out;
    return 2.0 * in * out;
}

/** Per-layer dense parameter count, honoring low-rank splits. */
double
layerParams(double in, const MlpLayerConfig &layer)
{
    double out = layer.width;
    bool low_rank =
        layer.rank > 0 && layer.rank < std::min<double>(in, out);
    if (low_rank)
        return in * layer.rank + layer.rank * out + out;
    return in * out + out;
}

} // namespace

double
DlrmArch::embeddingParamCount() const
{
    double total = 0.0;
    for (const auto &t : tables)
        total += static_cast<double>(t.vocab) * t.width;
    return total;
}

double
DlrmArch::denseParamCount() const
{
    double total = 0.0;
    double in = numDenseFeatures;
    for (const auto &l : bottomMlp) {
        total += layerParams(in, l);
        in = l.width;
    }
    in = static_cast<double>(topMlpInputWidth());
    for (const auto &l : topMlp) {
        total += layerParams(in, l);
        in = l.width;
    }
    total += in * 1.0 + 1.0; // final logit layer
    return total;
}

double
DlrmArch::paramCount() const
{
    return embeddingParamCount() + denseParamCount();
}

uint64_t
DlrmArch::totalEmbeddingWidth() const
{
    uint64_t total = 0;
    for (const auto &t : tables)
        total += t.width;
    return total;
}

uint64_t
DlrmArch::topMlpInputWidth() const
{
    uint64_t bottom_out =
        bottomMlp.empty() ? numDenseFeatures : bottomMlp.back().width;
    return totalEmbeddingWidth() + bottom_out;
}

double
DlrmArch::flopsPerExample() const
{
    double total = 0.0;
    double in = numDenseFeatures;
    for (const auto &l : bottomMlp) {
        total += layerFlops(in, l);
        in = l.width;
    }
    in = static_cast<double>(topMlpInputWidth());
    for (const auto &l : topMlp) {
        total += layerFlops(in, l);
        in = l.width;
    }
    total += 2.0 * in; // final logit layer
    // Embedding pooling adds.
    for (const auto &t : tables)
        total += t.avgIds * t.width;
    return total;
}

double
DlrmArch::paddedFlopsPerExample(uint32_t tile) const
{
    auto pad = [tile](double d) {
        return std::ceil(d / tile) * tile;
    };
    auto padded_layer = [&](double in, const MlpLayerConfig &layer) {
        double out = layer.width;
        bool low_rank =
            layer.rank > 0 && layer.rank < std::min<double>(in, out);
        if (low_rank) {
            return 2.0 * pad(in) * pad(layer.rank) +
                   2.0 * pad(layer.rank) * pad(out);
        }
        return 2.0 * pad(in) * pad(out);
    };
    double total = 0.0;
    double in = numDenseFeatures;
    for (const auto &l : bottomMlp) {
        total += padded_layer(in, l);
        in = l.width;
    }
    in = static_cast<double>(topMlpInputWidth());
    for (const auto &l : topMlp) {
        total += padded_layer(in, l);
        in = l.width;
    }
    total += 2.0 * pad(in) * tile; // logit layer pads to one tile column
    return total;
}

double
DlrmArch::lookupTrafficPerExample() const
{
    double total = 0.0;
    for (const auto &t : tables)
        total += t.avgIds * t.width;
    return total;
}

double
DlrmArch::modelBytes() const
{
    return paramCount() * sim::ops::kDtypeBytes;
}

namespace {

/**
 * Emit the matmul (or low-rank matmul pair) + fused activation for one
 * MLP layer. Returns the id of the last op emitted.
 */
sim::OpId
emitMlpLayer(sim::Graph &graph, const std::string &name, double batch,
             double in, const MlpLayerConfig &layer, sim::OpId input)
{
    double out = layer.width;
    bool low_rank =
        layer.rank > 0 && layer.rank < std::min<double>(in, out);
    sim::OpId last;
    if (low_rank) {
        sim::Op a = sim::ops::matmul(name + "_lr_u", batch, layer.rank, in);
        a.inputs = {input};
        sim::OpId au = graph.add(std::move(a));
        sim::Op b = sim::ops::matmul(name + "_lr_v", batch, out, layer.rank);
        b.inputs = {au};
        last = graph.add(std::move(b));
    } else {
        sim::Op a = sim::ops::matmul(name, batch, out, in);
        a.inputs = {input};
        last = graph.add(std::move(a));
    }
    sim::Op act = sim::ops::elementwise(name + "_relu", batch * out, 1.0);
    act.inputs = {last};
    return graph.add(std::move(act));
}

} // namespace

sim::Graph
buildDlrmGraph(const DlrmArch &arch, const hw::Platform &platform,
               ExecMode mode)
{
    h2o_assert(platform.numChips >= 1, "platform with no chips");
    h2o_assert(!arch.topMlp.empty(), "DLRM without a top MLP");
    double chips = platform.numChips;
    double local_batch = static_cast<double>(arch.globalBatch) / chips;
    h2o_assert(local_batch >= 1.0, "global batch ", arch.globalBatch,
               " smaller than chip count ", platform.numChips);

    sim::Graph graph(arch.name);

    // Dense-feature input placeholder (zero-cost source node).
    sim::Op source = sim::ops::reshape("dense_input", 0.0, true);
    sim::OpId dense_in = graph.add(std::move(source));

    // --- Embedding column: model-parallel tables + all-to-all. Each
    // chip owns 1/chips of every table's work (amortized view), gathers
    // for the global batch, and exchanges pooled vectors.
    std::vector<sim::OpId> branches;
    for (size_t t = 0; t < arch.tables.size(); ++t) {
        const auto &table = arch.tables[t];
        if (table.width == 0 || table.vocab == 0)
            continue; // table removed by the search
        double lookups =
            static_cast<double>(arch.globalBatch) * table.avgIds / chips;
        sim::Op lookup = sim::ops::embeddingLookup(
            "emb" + std::to_string(t), lookups, table.width);
        sim::OpId lk = graph.add(std::move(lookup));
        if (platform.numChips > 1) {
            double a2a_bytes = static_cast<double>(arch.globalBatch) *
                               table.width * sim::ops::kDtypeBytes / chips;
            sim::Op a2a = sim::ops::allToAll(
                "emb" + std::to_string(t) + "_a2a", a2a_bytes);
            a2a.inputs = {lk};
            branches.push_back(graph.add(std::move(a2a)));
        } else {
            branches.push_back(lk);
        }
    }

    // --- Bottom MLP on dense features (data-parallel).
    sim::OpId bottom_out = dense_in;
    double in_width = arch.numDenseFeatures;
    for (size_t l = 0; l < arch.bottomMlp.size(); ++l) {
        bottom_out = emitMlpLayer(graph, "bot" + std::to_string(l),
                                  local_batch, in_width, arch.bottomMlp[l],
                                  bottom_out);
        in_width = arch.bottomMlp[l].width;
    }
    branches.push_back(bottom_out);

    // --- Concatenate pooled embeddings with the bottom-MLP output.
    double top_in = static_cast<double>(arch.topMlpInputWidth());
    sim::Op cat = sim::ops::concat(
        "feature_concat", local_batch * top_in * sim::ops::kDtypeBytes);
    cat.inputs = branches;
    cat.fusable = false; // join point: keep it live for the DAG
    sim::OpId top = graph.add(std::move(cat));

    // --- Top MLP + logit + sigmoid.
    in_width = top_in;
    for (size_t l = 0; l < arch.topMlp.size(); ++l) {
        top = emitMlpLayer(graph, "top" + std::to_string(l), local_batch,
                           in_width, arch.topMlp[l], top);
        in_width = arch.topMlp[l].width;
    }
    sim::Op logit = sim::ops::matmul("logit", local_batch, 1.0, in_width);
    logit.inputs = {top};
    sim::OpId lg = graph.add(std::move(logit));
    sim::Op sg = sim::ops::elementwise("sigmoid", local_batch, 4.0);
    sg.inputs = {lg};
    graph.add(std::move(sg));

    if (mode == ExecMode::Training) {
        appendBackwardOps(graph,
                          arch.denseParamCount() * sim::ops::kDtypeBytes,
                          platform.numChips);
    }
    graph.validate();
    return graph;
}

DlrmArch
baselineDlrm()
{
    DlrmArch arch;
    arch.name = "dlrm_baseline";
    arch.numDenseFeatures = 13;
    arch.globalBatch = 65536;
    // 26 sparse features with a production-like skew of vocabulary sizes.
    const uint64_t vocabs[] = {
        10000000, 4000000, 2000000, 1500000, 1000000, 800000, 500000,
        300000,   200000,  150000,  100000,  80000,   50000,  30000,
        20000,    10000,   8000,    5000,    3000,    2000,   1000,
        500,      200,     100,     50,      20,
    };
    for (uint64_t v : vocabs) {
        EmbeddingConfig t;
        t.vocab = v;
        t.width = 32;
        t.avgIds = v > 100000 ? 1.0 : 2.0; // small features multivalent
        arch.tables.push_back(t);
    }
    // Intentionally MLP-heavy, as described in Section 7.1.2.
    arch.bottomMlp = {{512, 0}, {256, 0}, {128, 0}};
    arch.topMlp = {{1024, 0}, {1024, 0}, {512, 0}, {256, 0}};
    return arch;
}

} // namespace h2o::arch
