#include "arch/nlp_arch.h"

#include <cmath>

#include "common/logging.h"
#include "sim/ops.h"

namespace h2o::arch {

sim::Graph
buildNlpGraph(const NlpArch &arch, const hw::Platform &platform,
              ExecMode mode)
{
    h2o_assert(!arch.blocks.empty(), "NLP arch with no transformer blocks");
    h2o_assert(arch.vocab > 0 && arch.seqLen > 0, "degenerate LM shape");
    double batch = arch.perChipBatch;
    double seq = arch.seqLen;
    double hidden0 = arch.blocks.front().hidden;

    sim::Graph graph(arch.name);
    sim::Op source = sim::ops::reshape("token_input", 0.0, true);
    sim::OpId cur = graph.add(std::move(source));

    // Token embedding: one gather per token from the [vocab, hidden]
    // table.
    sim::Op embed =
        sim::ops::embeddingLookup("token_embedding", batch * seq, hidden0);
    embed.paramBytes = double(arch.vocab) * hidden0 * sim::ops::kDtypeBytes;
    embed.inputs = {cur};
    cur = graph.add(std::move(embed));

    double cur_seq = seq;
    for (size_t b = 0; b < arch.blocks.size(); ++b) {
        const auto &blk = arch.blocks[b];
        double hidden = blk.hidden;
        double act_cost = nn::activationVpuCost(blk.act);
        for (uint32_t l = 0; l < blk.layers; ++l) {
            std::string name =
                "blk" + std::to_string(b) + "_l" + std::to_string(l);
            sim::Op ln1 = sim::ops::norm(name + "_ln1",
                                         batch * cur_seq * hidden);
            ln1.inputs = {cur};
            cur = graph.add(std::move(ln1));
            sim::Op attn = sim::ops::attention(name + "_attn", batch,
                                               cur_seq, hidden, blk.heads);
            attn.inputs = {cur};
            cur = graph.add(std::move(attn));
            if (blk.primer) {
                sim::Op dconv = sim::ops::depthwiseConv2d(
                    name + "_primer_dconv", batch, cur_seq, 1.0, hidden, 3,
                    1, 1);
                dconv.inputs = {cur};
                cur = graph.add(std::move(dconv));
            }
            sim::Op ln2 = sim::ops::norm(name + "_ln2",
                                         batch * cur_seq * hidden);
            ln2.inputs = {cur};
            cur = graph.add(std::move(ln2));
            double ffn = hidden * blk.mlpRatio;
            if (blk.lowRank < 1.0) {
                double rank =
                    std::max(8.0, std::floor(hidden * blk.lowRank));
                sim::Op u = sim::ops::matmul(name + "_ffn1_u",
                                             batch * cur_seq, rank, hidden);
                u.inputs = {cur};
                cur = graph.add(std::move(u));
                sim::Op v = sim::ops::matmul(name + "_ffn1_v",
                                             batch * cur_seq, ffn, rank);
                v.inputs = {cur};
                cur = graph.add(std::move(v));
            } else {
                sim::Op fc1 = sim::ops::matmul(name + "_ffn1",
                                               batch * cur_seq, ffn,
                                               hidden);
                fc1.inputs = {cur};
                cur = graph.add(std::move(fc1));
            }
            sim::Op act = sim::ops::elementwise(
                name + "_act", batch * cur_seq * ffn, act_cost);
            act.inputs = {cur};
            cur = graph.add(std::move(act));
            sim::Op fc2 = sim::ops::matmul(name + "_ffn2", batch * cur_seq,
                                           hidden, ffn);
            fc2.inputs = {cur};
            cur = graph.add(std::move(fc2));
        }
        // Funnel pooling halves the sequence between blocks (the LM
        // variant of the paper's performance-aware funnel transformer).
        if (blk.seqPool && cur_seq > 1.0) {
            sim::Op sp = sim::ops::pool("funnel_pool" + std::to_string(b),
                                        batch * cur_seq * hidden,
                                        batch * (cur_seq / 2.0) * hidden);
            sp.inputs = {cur};
            cur = graph.add(std::move(sp));
            cur_seq = std::ceil(cur_seq / 2.0);
        }
        if (b + 1 < arch.blocks.size() &&
            arch.blocks[b + 1].hidden != blk.hidden) {
            sim::Op proj = sim::ops::matmul(
                "block_proj" + std::to_string(b), batch * cur_seq,
                arch.blocks[b + 1].hidden, hidden);
            proj.inputs = {cur};
            cur = graph.add(std::move(proj));
        }
    }

    // LM head: project every position onto the vocabulary.
    double last_hidden = arch.blocks.back().hidden;
    sim::Op head = sim::ops::matmul("lm_head", batch * cur_seq,
                                    arch.vocab, last_hidden);
    if (arch.tieEmbeddings)
        head.paramBytes = 0.0; // weights shared with token_embedding
    head.inputs = {cur};
    cur = graph.add(std::move(head));
    sim::Op softmax = sim::ops::elementwise(
        "softmax", batch * cur_seq * arch.vocab, 5.0, /*fusable=*/false);
    softmax.inputs = {cur};
    graph.add(std::move(softmax));

    if (mode == ExecMode::Training) {
        appendBackwardOps(graph, graph.totalParamBytes(),
                          platform.numChips);
    }
    graph.validate();
    return graph;
}

double
NlpArch::flopsPerSequence() const
{
    NlpArch probe = *this;
    probe.perChipBatch = 1;
    hw::Platform one{hw::tpuV4(), 1};
    return buildNlpGraph(probe, one, ExecMode::Serving).totalFlops();
}

double
NlpArch::paramCount() const
{
    NlpArch probe = *this;
    probe.perChipBatch = 1;
    hw::Platform one{hw::tpuV4(), 1};
    return buildNlpGraph(probe, one, ExecMode::Serving).totalParamBytes() /
           sim::ops::kDtypeBytes;
}

NlpArch
referenceLm()
{
    NlpArch a;
    a.name = "reference-lm";
    a.vocab = 32000;
    a.seqLen = 512;
    a.perChipBatch = 8;
    TfmBlockConfig blk;
    blk.hidden = 1024;
    blk.layers = 12;
    blk.heads = 16;
    blk.mlpRatio = 4.0;
    blk.act = nn::Activation::GeLU;
    a.blocks = {blk, blk};
    return a;
}

} // namespace h2o::arch
