/**
 * @file
 * Pure-transformer language-model architecture.
 *
 * Appendix A of the paper: "Our transformer search space can be used
 * [in] isolation to search for pure VIT or transformer based NLP
 * models", and Section 7.1.1 argues the CoAtNet results "provide
 * confidence in the effectiveness of the Pareto-optimizations of
 * H2O-NAS on transformer-based NLP models as well." This module is
 * that isolated path: a decoder-style LM (token embedding ->
 * transformer stack -> vocabulary projection) reusing the same
 * TfmBlockConfig the hybrid ViT search space optimizes.
 */

#ifndef H2O_ARCH_NLP_ARCH_H
#define H2O_ARCH_NLP_ARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/lowering.h"
#include "arch/vit_arch.h"
#include "hw/chip.h"
#include "sim/graph.h"

namespace h2o::arch {

/** Complete transformer LM architecture. */
struct NlpArch
{
    std::string name = "nlp";
    uint32_t vocab = 32000;   ///< sentencepiece-scale vocabulary
    uint32_t seqLen = 512;    ///< tokens per sequence
    std::vector<TfmBlockConfig> blocks; ///< same knobs as the ViT space
    uint32_t perChipBatch = 8; ///< sequences per chip per step
    /** Share the input embedding with the output projection (weight
     *  tying), the standard LM memory optimization. */
    bool tieEmbeddings = true;

    /** Forward FLOPs for one sequence (via lowering with batch 1). */
    double flopsPerSequence() const;

    /** Trainable parameter count (via lowering). */
    double paramCount() const;

    /** Tokens processed per step per chip. */
    double tokensPerStep() const
    {
        return static_cast<double>(perChipBatch) * seqLen;
    }
};

/**
 * Lower to a per-chip simulator graph (data-parallel; training mode
 * appends backward ops and the gradient all-reduce).
 */
sim::Graph buildNlpGraph(const NlpArch &arch, const hw::Platform &platform,
                         ExecMode mode);

/** A GPT-2-medium-scale reference LM (2 blocks x 12 layers, h=1024). */
NlpArch referenceLm();

} // namespace h2o::arch

#endif // H2O_ARCH_NLP_ARCH_H
