/**
 * @file
 * Deep Learning Recommendation Model architecture configuration and its
 * lowering to a simulator graph.
 *
 * Mirrors Figure 3 of the paper: sparse features feed embedding tables,
 * dense features feed an optional bottom MLP, the pooled embeddings and
 * bottom-MLP output concatenate into the top MLP, and a sigmoid produces
 * the prediction. Every searchable dimension from Table 5 appears here:
 * per-table embedding width and vocabulary size, MLP layer widths,
 * low-rank factorization, and depth.
 */

#ifndef H2O_ARCH_DLRM_ARCH_H
#define H2O_ARCH_DLRM_ARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/lowering.h"
#include "hw/chip.h"
#include "sim/graph.h"

namespace h2o::arch {

/** One embedding table's configuration. */
struct EmbeddingConfig
{
    /** Row count. Ids hash into [0, vocab). */
    uint64_t vocab = 0;
    /** Embedding width; 0 removes the table (Table 5 footnote 3). */
    uint32_t width = 0;
    /** Average ids per example for this feature (multivalent lookup). */
    double avgIds = 1.0;
};

/** One MLP layer's configuration. */
struct MlpLayerConfig
{
    /** Output width of the layer. */
    uint32_t width = 0;
    /**
     * Low-rank factorization rank; 0 or >= min(in, width) means full
     * rank (a single dense matmul).
     */
    uint32_t rank = 0;
};

/** Complete DLRM architecture. */
struct DlrmArch
{
    std::string name = "dlrm";
    uint32_t numDenseFeatures = 13;
    std::vector<EmbeddingConfig> tables;
    std::vector<MlpLayerConfig> bottomMlp;
    std::vector<MlpLayerConfig> topMlp; ///< final layer produces 1 logit
    uint32_t globalBatch = 65536;

    /** Total trainable parameters (embeddings + dense layers). */
    double paramCount() const;

    /** Embedding-only parameter count (the memorization capacity). */
    double embeddingParamCount() const;

    /** Dense (MLP-only) parameter count (the generalization capacity). */
    double denseParamCount() const;

    /** Forward FLOPs per example through the dense layers. */
    double flopsPerExample() const;

    /**
     * Forward FLOPs per example with every feature dimension padded up
     * to `tile` (the MXU lane count): the compute the tensor unit
     * actually issues after tile quantization. A much better
     * performance-model feature than raw FLOPs on 128-lane hardware.
     */
    double paddedFlopsPerExample(uint32_t tile) const;

    /** Embedding lookup traffic per example (gathered elements). */
    double lookupTrafficPerExample() const;

    /** Pooled embedding width summed over live tables. */
    uint64_t totalEmbeddingWidth() const;

    /** Serving-time model memory footprint in bytes (bf16 weights). */
    double modelBytes() const;

    /** Width of the concatenated top-MLP input. */
    uint64_t topMlpInputWidth() const;
};

/**
 * Lower a DLRM to a per-chip simulator graph.
 *
 * Embedding tables are model-parallel across the platform's chips (each
 * chip owns tables/chips of them and gathers for the *global* batch,
 * then an all-to-all redistributes pooled vectors); MLP layers are
 * data-parallel over per-chip batch shards, as in production DLRM
 * systems. Training mode appends backward ops and the gradient
 * all-reduce.
 */
sim::Graph buildDlrmGraph(const DlrmArch &arch, const hw::Platform &platform,
                          ExecMode mode);

/**
 * A production-like baseline DLRM, intentionally MLP-heavy/imbalanced the
 * way the paper describes the original production model (Section 7.1.2):
 * MLP compute time much longer than embedding time, skewing the model
 * toward generalization.
 */
DlrmArch baselineDlrm();

} // namespace h2o::arch

#endif // H2O_ARCH_DLRM_ARCH_H
