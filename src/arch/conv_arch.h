/**
 * @file
 * Convolutional model architecture (EfficientNet-style stacks of MBConv /
 * fused-MBConv blocks) and its lowering to a simulator graph.
 *
 * Covers every searchable dimension of the paper's convolutional search
 * space (Table 5): block type (MBConv vs Fused MBConv — Figure 4a), kernel
 * size, stride, expansion ratio, activation, squeeze-and-excite ratio,
 * skip connections, per-stage depth and width deltas, input resolution,
 * and the space-to-depth tensor-reshaping option.
 */

#ifndef H2O_ARCH_CONV_ARCH_H
#define H2O_ARCH_CONV_ARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/lowering.h"
#include "hw/chip.h"
#include "nn/activation.h"
#include "sim/graph.h"

namespace h2o::arch {

/** Block macro-structure (Figure 4a). */
enum class BlockType { MBConv, FusedMBConv };

/** One stage of identical blocks. */
struct ConvStageConfig
{
    BlockType type = BlockType::MBConv;
    uint32_t kernel = 3;      ///< depthwise / fused kernel size
    uint32_t stride = 1;      ///< stride of the stage's first layer
    double expansion = 6.0;   ///< channel expansion ratio R
    double seRatio = 0.25;    ///< squeeze-excite ratio; 0 removes SE
    nn::Activation act = nn::Activation::Swish;
    uint32_t layers = 1;      ///< blocks in this stage
    uint32_t filters = 16;    ///< output channels
    bool skip = true;         ///< identity skip when shapes match
};

/** Complete convolutional architecture. */
struct ConvArch
{
    std::string name = "cnn";
    uint32_t resolution = 224;   ///< input H = W
    uint32_t stemFilters = 32;
    bool spaceToDepthStem = false; ///< Table 5 tensor-reshaping option
    std::vector<ConvStageConfig> stages;
    uint32_t headFilters = 1280;
    uint32_t numClasses = 1000;
    uint32_t perChipBatch = 64;  ///< Table 3 uses per-chip batch 64

    /** Forward FLOPs for one image (via lowering with batch 1). */
    double flopsPerImage() const;

    /** Trainable parameter count (via lowering). */
    double paramCount() const;
};

/**
 * Lower to a per-chip simulator graph. Convolutional models are purely
 * data-parallel: the graph covers one chip's batch shard; training mode
 * appends backward ops and the gradient all-reduce across the platform.
 */
sim::Graph buildConvGraph(const ConvArch &arch, const hw::Platform &platform,
                          ExecMode mode);

/**
 * Build a single-block graph for roofline studies (Figure 4b/4c): one
 * MBConv or fused MBConv with equal input/output depth on a
 * `resolution` x `resolution` feature map.
 */
sim::Graph buildSingleBlockGraph(BlockType type, uint32_t depth,
                                 uint32_t resolution, uint32_t kernel,
                                 double expansion, uint32_t batch);

} // namespace h2o::arch

#endif // H2O_ARCH_CONV_ARCH_H
