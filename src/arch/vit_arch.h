/**
 * @file
 * Hybrid vision-transformer architecture (CoAtNet-style: convolutional
 * stages followed by transformer stages) and its lowering to a simulator
 * graph.
 *
 * Covers the paper's ViT search space (Table 5): self-attention hidden
 * size, low-rank projection option, activation function (incl. Squared
 * ReLU, the CoAtNet-H change), sequence-pooling layers (funnel
 * transformer), Primer-style depthwise convolutions after the attention
 * projections, per-block layer-count deltas, and the convolutional stem
 * with searchable patch size and input resolution.
 */

#ifndef H2O_ARCH_VIT_ARCH_H
#define H2O_ARCH_VIT_ARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/conv_arch.h"
#include "arch/lowering.h"
#include "hw/chip.h"
#include "nn/activation.h"
#include "sim/graph.h"

namespace h2o::arch {

/** One transformer stage of identical layers. */
struct TfmBlockConfig
{
    uint32_t hidden = 768;   ///< attention hidden size (multiple of 64)
    uint32_t layers = 2;     ///< transformer layers in this block
    uint32_t heads = 12;
    double mlpRatio = 4.0;   ///< FFN expansion
    /** FFN low-rank fraction of layer width; 1.0 = full rank. */
    double lowRank = 1.0;
    nn::Activation act = nn::Activation::GeLU;
    bool seqPool = false;    ///< funnel: halve sequence after this block
    bool primer = false;     ///< depthwise conv after QKV projections
};

/** Complete hybrid ViT architecture. */
struct VitArch
{
    std::string name = "vit";
    uint32_t resolution = 224;
    uint32_t patch = 16;             ///< stem patch size
    std::vector<ConvStageConfig> convStages; ///< optional conv section
    std::vector<TfmBlockConfig> tfmBlocks;
    uint32_t numClasses = 1000;
    uint32_t perChipBatch = 64;

    /** Forward FLOPs for one image (via lowering with batch 1). */
    double flopsPerImage() const;

    /** Trainable parameter count (via lowering). */
    double paramCount() const;
};

/**
 * Lower to a per-chip simulator graph (data-parallel; training mode
 * appends backward ops and the gradient all-reduce).
 */
sim::Graph buildVitGraph(const VitArch &arch, const hw::Platform &platform,
                         ExecMode mode);

} // namespace h2o::arch

#endif // H2O_ARCH_VIT_ARCH_H
