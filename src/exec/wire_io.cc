#include "exec/wire_io.h"

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <sys/socket.h>

#include "common/logging.h"

namespace h2o::exec::wire {

bool
sendAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
recvAll(int fd, void *data, size_t len)
{
    char *p = static_cast<char *>(data);
    while (len > 0) {
        ssize_t n = ::recv(fd, p, len, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN/EWOULDBLOCK = SO_RCVTIMEO expired: the remote
            // transport treats a silent peer like a dead one.
            return false;
        }
        if (n == 0)
            return false; // EOF: peer is gone
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload)
{
    h2o_assert(payload.size() < kMaxFrameBytes, "oversized frame");
    uint32_t len = static_cast<uint32_t>(payload.size());
    if (!sendAll(fd, &len, sizeof(len)))
        return false;
    return sendAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string &payload)
{
    uint32_t len = 0;
    if (!recvAll(fd, &len, sizeof(len)))
        return false;
    if (len >= kMaxFrameBytes)
        return false; // corrupt length: treat the peer as gone
    payload.resize(len);
    if (len > 0 && !recvAll(fd, payload.data(), len))
        return false;
    return true;
}

std::string
encodeRequest(const std::string &task, uint64_t step, uint64_t shard,
              const std::string &request)
{
    WireWriter msg;
    msg.putBytes(task);
    msg.putU64(step);
    msg.putU64(shard);
    msg.putBytes(request);
    return msg.take();
}

std::optional<std::string>
callOverFd(int fd, const std::string &task, uint64_t step, uint64_t shard,
           const std::string &request, uint64_t &bytesSent,
           uint64_t &bytesReceived)
{
    std::string msg = encodeRequest(task, step, shard, request);
    if (!writeFrame(fd, msg))
        return std::nullopt;
    bytesSent += sizeof(uint32_t) + msg.size();

    std::string reply;
    if (!readFrame(fd, reply))
        return std::nullopt;
    bytesReceived += sizeof(uint32_t) + reply.size();

    WireReader r(reply);
    uint32_t status = r.getU32();
    std::string payload = r.getBytes();
    if (status != kStatusOk)
        throw std::runtime_error("proc task '" + task + "' failed: " +
                                 payload);
    return payload;
}

void
serveRequestLoop(int fd, const std::map<std::string, ProcTaskFn> &tasks)
{
    // One request at a time, forever, until the coordinator hangs up.
    std::string frame;
    while (readFrame(fd, frame)) {
        WireWriter reply;
        try {
            WireReader req(frame);
            std::string task = req.getBytes();
            uint64_t step = req.getU64();
            uint64_t shard = req.getU64();
            std::string payload = req.getBytes();
            auto it = tasks.find(task);
            if (it == tasks.end())
                throw std::runtime_error("unknown proc task '" + task +
                                         "' (registered after fork?)");
            std::string result = it->second(step, shard, payload);
            reply.putU32(kStatusOk);
            reply.putBytes(result);
        } catch (const std::exception &e) {
            reply = WireWriter();
            reply.putU32(kStatusError);
            reply.putBytes(e.what());
        }
        if (!writeFrame(fd, reply.bytes()))
            break; // coordinator is gone
    }
}

uint64_t
taskSetDigest(std::vector<std::string> names)
{
    std::sort(names.begin(), names.end());
    uint64_t h = 14695981039346656037ull; // FNV-1a offset basis
    auto mix = [&h](char c) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV-1a prime
    };
    for (const auto &name : names) {
        for (char c : name)
            mix(c);
        mix('\0'); // unambiguous name boundary
    }
    return h;
}

} // namespace h2o::exec::wire
