/**
 * @file
 * Seeded fault injection for the search runtime.
 *
 * The paper runs on a preemptible fleet of accelerators: shards fail,
 * straggle, and get preempted mid-search. The in-process reproduction has
 * none of those hazards naturally, so the runtime injects them — which is
 * strictly better for testing, because the faults are SEEDED: every
 * decision is a pure hash of (seed, step, shard, attempt), independent of
 * thread count and wall-clock timing, so a faulty run is exactly
 * reproducible.
 *
 * Fault taxonomy (matching a preemptible accelerator fleet):
 *  - Fail:     transient shard failure; the attempt's work is lost and
 *              the runner retries with exponential backoff.
 *  - Straggle: the shard completes, but late (injected delay).
 *  - Preempt:  the shard is lost for the whole step (the VM was taken
 *              back); no retry, the step aggregates over survivors.
 */

#ifndef H2O_EXEC_FAULT_INJECTOR_H
#define H2O_EXEC_FAULT_INJECTOR_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace h2o::exec {

/** What the injector decided for one (step, shard, attempt). */
enum class FaultKind { None, Fail, Straggle, Preempt };

/** Injection rates and seed. All probabilities are per decision. */
struct FaultConfig
{
    /** Transient failure probability per attempt. */
    double failProb = 0.0;
    /** Straggler probability per executed attempt. */
    double stragglerProb = 0.0;
    /** Injected straggler delay, in milliseconds. */
    double stragglerDelayMs = 1.0;
    /** Whole-step preemption probability per shard per step. */
    double preemptProb = 0.0;
    /** Seed of the injection stream. */
    uint64_t seed = 0;
};

/** Cumulative injection/observation counters (thread-safe). */
struct FaultStats
{
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> straggles{0};
    std::atomic<uint64_t> preemptions{0};
};

/**
 * Deterministic fault oracle consulted by ShardRunner before every shard
 * attempt. decide() is const and thread-safe; the counters record what
 * was actually injected.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig config);

    /**
     * The fault, if any, striking this (step, shard, attempt). A pure
     * function of the config seed and the arguments. Preemption is only
     * decided on attempt 0 — a preempted shard never retries.
     */
    FaultKind decide(size_t step, size_t shard, size_t attempt) const;

    /** Record an injected fault (called by the runner). */
    void record(FaultKind kind);

    /** Injection counters so far. */
    const FaultStats &stats() const { return _stats; }

    /** Configuration in use. */
    const FaultConfig &config() const { return _config; }

  private:
    FaultConfig _config;
    FaultStats _stats;
};

} // namespace h2o::exec

#endif // H2O_EXEC_FAULT_INJECTOR_H
