/**
 * @file
 * Persistent fixed-size worker pool for the search runtime.
 *
 * The paper's searcher runs each step across 128 accelerator shards; this
 * repository's shards are tasks on a ThreadPool. Two properties matter
 * more than raw throughput:
 *
 *  1. FIFO dispatch: tasks start in submission order. ShardRunner's
 *     deterministic ordered sections rely on this to stay deadlock-free
 *     when there are more shards than workers (a shard only ever waits on
 *     lower-indexed shards, which were submitted — and therefore
 *     dispatched — earlier).
 *  2. Deterministic RNG splitting: splitRngs() derives the per-shard
 *     random streams from the parent stream alone, never from thread
 *     identity or timing, so a search produces bit-identical results at
 *     any pool size (including 1).
 *
 * Workers are created once and reused across all steps of a search,
 * replacing the per-step std::thread spawning the searchers used before.
 */

#ifndef H2O_EXEC_THREAD_POOL_H
#define H2O_EXEC_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace h2o::exec {

/** Fixed-size FIFO worker pool with task futures. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means one per hardware thread.
     */
    explicit ThreadPool(size_t threads = 0);

    /** Drains nothing: outstanding tasks finish, queued tasks run. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return _workers.size(); }

    /**
     * Enqueue a task; returns a future that completes when the task
     * returns (or holds its exception). Tasks start in FIFO order.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Resolve a --threads style request: 0 means all hardware threads;
     * the result is clamped to [1, work_items] so a search never holds
     * more workers than it has shards.
     */
    static size_t resolve(size_t requested, size_t work_items);

    /**
     * The deterministic per-shard RNG-splitting contract: fork `n`
     * independent child streams from `parent` exactly as the serial
     * searchers always have (salt s + 1), as a pure function of the
     * parent state. The parent advances identically no matter how many
     * worker threads later consume the children.
     */
    static std::vector<common::Rng> splitRngs(common::Rng &parent, size_t n);

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<std::packaged_task<void()>> _queue;
    std::mutex _mutex;
    std::condition_variable _cv;
    bool _stopping = false;
};

} // namespace h2o::exec

#endif // H2O_EXEC_THREAD_POOL_H
