/**
 * @file
 * ShardRunner: one search step across N virtual accelerator shards.
 *
 * runStep() dispatches one task per shard onto a persistent ThreadPool,
 * barrier-waits for all of them (the cross-shard all-reduce point of
 * Figure 2), and reports which shards survived. The caller then performs
 * the cross-shard REINFORCE / gradient aggregation over the survivors in
 * shard-index order on its own thread — which is what keeps the
 * aggregation bit-for-bit identical to a serial run at any thread count.
 *
 * Shared-resource regions (the weight-sharing super-network, the batch
 * pipeline) go through OrderedSection: a critical section that admits
 * shards strictly in index order. Execution inside the section is
 * therefore the exact serial order — same batches to the same shards,
 * same floating-point accumulation order into the shared gradients —
 * while everything outside the section (policy sampling from per-shard
 * streams, perf-model queries, reward computation) runs concurrently.
 *
 * Fault tolerance: when a FaultInjector is attached, each shard attempt
 * may be failed (retry with exponential backoff, up to maxAttempts),
 * straggled (delayed), or preempted (shard lost for the step). A shard
 * whose attempts are exhausted is reported Degraded; the caller
 * aggregates over the surviving shards with scaled baselines. Injected
 * faults strike BEFORE the shard body executes, so a failed attempt
 * leaves no partial side effects. Thrown exceptions from the body are
 * treated as real failures and retried the same way.
 */

#ifndef H2O_EXEC_SHARD_RUNNER_H
#define H2O_EXEC_SHARD_RUNNER_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "exec/fault_injector.h"
#include "exec/thread_pool.h"

namespace h2o::exec {

/**
 * Admits shards strictly in index order; used for the shared-supernet
 * and pipeline regions of a shard body. A degraded shard's turn is
 * skipped by the runner so later shards are not stuck waiting for it.
 */
class OrderedSection
{
  public:
    /** Prepare the section for a step over n shards. Not thread-safe. */
    void reset(size_t n);

    /** Mark a shard's turn as forfeited (it will never enter). */
    void skip(size_t shard);

    /** RAII turn: blocks until every lower-indexed shard is done. */
    class Guard
    {
      public:
        Guard(OrderedSection &section, size_t shard);
        ~Guard();
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        OrderedSection &_section;
        size_t _shard;
    };

  private:
    void markDone(size_t shard);
    void waitTurn(size_t shard);

    std::mutex _mutex;
    std::condition_variable _cv;
    std::vector<bool> _done;
};

/** Per-shard result of one step. */
enum class ShardState {
    Ok,       ///< completed on the first attempt
    Retried,  ///< completed after >= 1 failed attempt
    Degraded, ///< lost for this step (preempted or attempts exhausted)
};

/** One shard's step report. */
struct ShardResult
{
    ShardState state = ShardState::Ok;
    size_t attempts = 0; ///< attempts actually executed or injected-failed
};

/** One step's report across all shards. */
struct StepReport
{
    std::vector<ShardResult> shards;

    /** Indices of shards that completed (Ok or Retried), in order. */
    std::vector<size_t> survivors() const;

    /** Number of surviving shards. */
    size_t numOk() const { return survivors().size(); }

    /** True when at least one shard was lost this step. */
    bool degraded() const;
};

/** Runner configuration. */
struct ShardRunnerConfig
{
    size_t numShards = 1;
    /** Max attempts per shard per step (>= 1). */
    size_t maxAttempts = 3;
    /** Exponential backoff base between retries, in milliseconds. */
    double backoffBaseMs = 0.5;
    /**
     * On a pool of ONE worker, run the step's shards inline on the
     * calling thread in shard-index order instead of dispatching them
     * across threads. Semantically identical to dispatch — a single
     * FIFO worker also runs shards 0..N-1 sequentially, fault
     * decisions key on (step, shard, attempt) alone, and ordered
     * sections are entered in ascending order either way — but skips
     * the submit/future/wake-up round trip per shard, which is pure
     * overhead when there is nothing to overlap. Disable to force
     * dispatch (the equivalence tests A/B the two paths).
     */
    bool inlineSingleWorker = true;
};

/**
 * Runs the N shards of one search step concurrently and fault-tolerantly
 * on a caller-owned persistent pool.
 */
class ShardRunner
{
  public:
    /**
     * @param pool     Persistent worker pool (outlives the runner). The
     *                 pool must not run unrelated work during runStep():
     *                 ordered sections rely on FIFO dispatch of the
     *                 step's own shard tasks.
     * @param config   Shard count and retry policy.
     * @param injector Optional fault oracle; nullptr injects nothing.
     */
    ShardRunner(ThreadPool &pool, ShardRunnerConfig config,
                FaultInjector *injector = nullptr);

    /**
     * Execute `body(shard)` for every shard of one step and barrier-wait
     * for all of them. The body may carve out ordered sub-regions with
     * `OrderedSection::Guard guard(runner.ordered(), shard)`.
     *
     * @param step Step index, used to key fault-injection decisions.
     */
    StepReport runStep(size_t step,
                       const std::function<void(size_t shard)> &body);

    /** The step-scoped ordered section (reset by every runStep). */
    OrderedSection &ordered() { return _ordered; }

    /** Shard count. */
    size_t numShards() const { return _config.numShards; }

    /** Cumulative count of degraded (lost) shard-steps. */
    uint64_t degradedShardSteps() const { return _degradedShardSteps; }

    /** Steps executed inline on the caller's thread (single-worker
     *  fast path) / via pool dispatch — telemetry for the benches and
     *  the inline-equivalence tests. */
    uint64_t inlineSteps() const { return _inlineSteps; }
    uint64_t dispatchedSteps() const { return _dispatchedSteps; }

  private:
    ShardResult runShard(size_t step, size_t shard,
                         const std::function<void(size_t)> &body);

    ThreadPool &_pool;
    ShardRunnerConfig _config;
    FaultInjector *_injector;
    OrderedSection _ordered;
    uint64_t _degradedShardSteps = 0;
    uint64_t _inlineSteps = 0;
    uint64_t _dispatchedSteps = 0;
};

} // namespace h2o::exec

#endif // H2O_EXEC_SHARD_RUNNER_H
