/**
 * @file
 * Atomic checkpoint files for preemptible searches.
 *
 * A production search on a preemptible fleet must resume after losing the
 * whole job, not just a shard (Section 7.3's zero-touch loop runs
 * continuously). The searchers therefore periodically serialize their
 * complete evolving state — policy parameters, supernet weights, pipeline
 * cursor, per-shard RNG streams, step statistics — through these helpers,
 * and a restarted process resumes to a bit-identical SearchOutcome.
 *
 * Writers buffer the whole checkpoint in memory and commit() it with the
 * write-temp-fsync-then-rename idiom (temp file AND its directory are
 * fsynced before and after the rename), so a preemption or power loss
 * mid-write never leaves a truncated checkpoint behind: either the
 * previous complete checkpoint or the new complete one survives.
 * The payload format is the strict tagged text of common/serialize, plus
 * exact (non-double-roundtripped) encodings for 64-bit counters and
 * RNG engine state added alongside it.
 */

#ifndef H2O_EXEC_CHECKPOINT_H
#define H2O_EXEC_CHECKPOINT_H

#include <fstream>
#include <sstream>
#include <string>

namespace h2o::exec {

/** Buffered checkpoint writer with atomic commit. */
class CheckpointWriter
{
  public:
    /** The stream to serialize state into. */
    std::ostream &stream() { return _buf; }

    /**
     * Atomically AND durably publish the buffered payload at `path`:
     * write `path.tmp`, fsync the file and its directory, rename over
     * the destination, fsync the directory again. Fatal when the file
     * cannot be written or any fsync fails (a checkpoint that may
     * vanish on power loss is worse than a loud crash).
     */
    void commit(const std::string &path);

  private:
    std::ostringstream _buf;
};

/** Strict checkpoint reader. */
class CheckpointReader
{
  public:
    /** Whether a committed checkpoint exists at `path`. */
    static bool exists(const std::string &path);

    /** Open a checkpoint; fatal when missing or unreadable. */
    explicit CheckpointReader(const std::string &path);

    /** The stream to deserialize state from. */
    std::istream &stream() { return _in; }

  private:
    std::ifstream _in;
};

} // namespace h2o::exec

#endif // H2O_EXEC_CHECKPOINT_H
