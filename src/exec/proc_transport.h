/**
 * @file
 * Process-level shard transport: a pool of forked worker processes
 * executing registered PURE tasks over UNIX-domain socket pairs.
 *
 * The thread runtime (thread_pool.h / shard_runner.h) tops out at one
 * process's threads; the paper runs 128 accelerator shards. ProcPool is
 * the scale-out step: fork-per-worker with a length-framed
 * request/response protocol over socketpair(AF_UNIX, SOCK_STREAM).
 * Each worker inherits the coordinator's address space at fork time and
 * then only ever executes tasks from the process-global task registry —
 * pure functions of their request bytes (plus state that existed before
 * the fork and never mutates), so a worker's answer is bit-identical to
 * evaluating the same task in the coordinator. That purity is what lets
 * the search keep its determinism contract across process boundaries:
 * k workers, 1 worker and no workers all produce the same bytes.
 *
 * Fault model: a worker can die at any moment (kill -9, OOM, crash in a
 * task). The coordinator detects death as a transport error on the
 * worker's socket (EPIPE on send, EOF on recv), never blocks on a
 * corpse, and can respawn the worker with respawnDead() — a fresh fork
 * of the CURRENT coordinator state. In-flight requests on a dead worker
 * are simply lost; the caller (ProcRunner) owns retry/degradation
 * policy, mirroring the FaultInjector semantics of the thread runtime.
 *
 * Registration order matters: workers only know the tasks registered
 * BEFORE they were forked. Owners therefore register their task, then
 * construct their ProcPool (EvalEngine does exactly this).
 */

#ifndef H2O_EXEC_PROC_TRANSPORT_H
#define H2O_EXEC_PROC_TRANSPORT_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <sys/types.h>
#include <vector>

#include "exec/shard_transport.h"

namespace h2o::exec {

/**
 * A worker-side task: pure function of (step, shard, request bytes).
 * Runs inside the forked worker; may read any state that existed at
 * fork time but must not rely on coordinator-side mutations after it.
 * Throwing reports a task error to the coordinator (which treats it
 * like a thrown shard body: warn + retry).
 */
using ProcTaskFn = std::function<std::string(
    uint64_t step, uint64_t shard, const std::string &request)>;

/**
 * RAII registration of a named task in the process-global registry.
 * The name must be unique among live registrations; the registration
 * must outlive every ProcPool forked while it was registered (workers
 * resolve the name in their inherited copy of the registry).
 */
class ProcTaskRegistration
{
  public:
    ProcTaskRegistration(std::string name, ProcTaskFn fn);
    ~ProcTaskRegistration();
    ProcTaskRegistration(const ProcTaskRegistration &) = delete;
    ProcTaskRegistration &operator=(const ProcTaskRegistration &) = delete;

    const std::string &name() const { return _name; }

  private:
    std::string _name;
};

/** Locked copy of the process-global task registry (the tasks a worker
 *  forked or a daemon spawned RIGHT NOW would serve). */
std::map<std::string, ProcTaskFn> taskRegistrySnapshot();

/** Sorted names of the currently registered tasks. */
std::vector<std::string> registeredTaskNames();

/**
 * Fill the fork-time registry snapshot under the registry lock. Call
 * immediately before fork()ing a worker or daemon: the child resolves
 * tasks from forkTaskSnapshot() and never touches the registry mutex —
 * another coordinator thread could hold it at fork time, and a
 * copied-held mutex deadlocks the single-threaded child.
 */
void snapshotTaskRegistryForFork();

/** The fork-time snapshot (child side, lock-free). */
const std::map<std::string, ProcTaskFn> &forkTaskSnapshot();

/** Little-endian wire encoding for task payloads (bit-exact doubles). */
class WireWriter
{
  public:
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    /** IEEE-754 bits, so doubles round-trip exactly (incl. -0.0/NaN). */
    void putDouble(double v);
    void putBytes(const std::string &bytes); ///< u32 length + raw bytes

    const std::string &bytes() const { return _buf; }
    std::string take() { return std::move(_buf); }

  private:
    std::string _buf;
};

/** Strict reader over WireWriter output; throws std::runtime_error on
 *  truncated/malformed input (a worker turns that into a task error). */
class WireReader
{
  public:
    explicit WireReader(const std::string &bytes) : _buf(bytes) {}

    uint32_t getU32();
    uint64_t getU64();
    double getDouble();
    std::string getBytes();

    /** All bytes consumed? */
    bool atEnd() const { return _pos == _buf.size(); }

  private:
    void need(size_t n) const;

    const std::string &_buf;
    size_t _pos = 0;
};

/**
 * A fixed-size pool of forked worker processes (see file comment).
 * ProcWorkerStats / ProcPoolStats live in shard_transport.h, shared
 * with the remote transport.
 *
 * Thread-safety: call() may run concurrently for DIFFERENT worker
 * slots (one I/O thread per worker is the intended shape); calls for
 * the same slot must be serialized by the caller. spawn/respawn/dtor
 * are coordinator-thread only.
 */
class ProcPool final : public ShardTransport
{
  public:
    /** Fork `workers` processes (>= 1). */
    explicit ProcPool(size_t workers);

    /** Closes every socket (workers exit on EOF) and reaps them. */
    ~ProcPool() override;

    ProcPool(const ProcPool &) = delete;
    ProcPool &operator=(const ProcPool &) = delete;

    /** Worker slot count. */
    size_t size() const override { return _workers.size(); }

    /**
     * Execute one task round trip on a worker. Returns the response on
     * success; std::nullopt on a transport failure (worker died — the
     * slot is marked dead until respawnDead()). A task that THREW in
     * the worker raises std::runtime_error here, mirroring a thrown
     * shard body in the thread runtime.
     */
    std::optional<std::string> call(size_t worker,
                                    const std::string &task,
                                    uint64_t step, uint64_t shard,
                                    const std::string &request) override;

    /** Whether the slot's worker is (believed) alive. */
    bool alive(size_t worker) const override;

    /** Re-fork every dead worker slot from the CURRENT coordinator
     *  state. Coordinator thread only (never from an I/O thread). */
    void respawnDead() override;

    /** SIGKILL a worker (test/bench hook for the death-tolerance
     *  contract); the death is observed as a transport failure. */
    void killWorker(size_t worker) override;

    /** Current pid of a worker slot (0 when dead). */
    pid_t workerPid(size_t worker) const override;

    /** Counter snapshot. */
    ProcPoolStats stats() const override;

    /** Resolve a --procs style request against a shard count: procs
     *  are clamped to [1, work_items] like ThreadPool::resolve (a step
     *  never needs more workers than it has shards). */
    static size_t resolve(size_t requested, size_t work_items);

  private:
    struct Worker
    {
        pid_t pid = -1;
        int fd = -1; ///< coordinator end of the socketpair
        ProcWorkerStats stats;
    };

    void spawn(size_t slot);
    void markDead(size_t slot);
    [[noreturn]] static void workerMain(int fd);

    std::vector<Worker> _workers;
};

} // namespace h2o::exec

#endif // H2O_EXEC_PROC_TRANSPORT_H
