/**
 * @file
 * RemotePool: the TCP shard transport — one slot per remote worker
 * daemon connection, driving the SAME wire protocol as ProcPool
 * (wire_io.h), so the coordinator's frames are byte-identical whether a
 * shard runs in a forked child or on another host.
 *
 * Determinism across the host boundary rests on three pieces:
 *
 *  1. The handshake (magic, protocol version, task-registry digest)
 *     rejects mismatched binaries before any task traffic — a daemon
 *     built from different code fails FAST instead of answering with
 *     subtly different bytes.
 *  2. Reconnect-as-respawn: a lost connection (EOF, ECONNRESET, recv
 *     timeout) marks the slot dead exactly like a dead forked worker;
 *     respawnDead() reconnects, and the daemon forks a fresh
 *     single-threaded session for the new connection. Pure tasks make
 *     the fresh session byte-equivalent to a fresh fork.
 *  3. Cached-request retries (owned by ProcRunner): a shard whose
 *     transport died is retried with the SAME request bytes, so
 *     per-shard RNG streams never advance twice.
 *
 * Endpoint syntax ("--workers"): a comma-separated list of
 *   host:port — an external h2o_workerd-style daemon (same binary!)
 *   local     — fork a loopback daemon from THIS process at pool
 *               construction (same binary by construction); how the
 *               TCP path runs on a single host and in tests.
 */

#ifndef H2O_EXEC_REMOTE_TRANSPORT_H
#define H2O_EXEC_REMOTE_TRANSPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "exec/shard_transport.h"

namespace h2o::exec {

/** One remote worker endpoint. */
struct RemoteEndpoint
{
    std::string host;     ///< empty when forkLocal
    uint16_t port = 0;    ///< 0 when forkLocal (resolved at spawn)
    bool forkLocal = false;

    /** "host:port", or "local" for a fork-on-construction daemon. */
    std::string str() const;
};

/**
 * Parse a --workers / H2O_WORKERS list: comma-separated "host:port" or
 * "local" entries. Malformed input is FATAL (like H2O_PROCS — a wrong
 * fleet spec must never silently degrade to fewer workers). An empty
 * string parses to an empty list.
 */
std::vector<RemoteEndpoint> parseWorkerList(const std::string &csv);

struct RemotePoolConfig
{
    std::vector<RemoteEndpoint> endpoints; ///< one slot each; nonempty

    /** Task names this coordinator will call; verified (and digested)
     *  in the handshake so mismatched daemons fail fast. */
    std::vector<std::string> requiredTasks;

    /** Per-call receive timeout; 0 = wait forever. A timeout is a
     *  transport death (slot dead, shard retried elsewhere/later). */
    long callTimeoutMs = 0;

    /** Connection attempts per (re)connect, with linear backoff. */
    size_t connectAttempts = 10;
    long connectBackoffMs = 50;
};

/**
 * A fixed-size pool of TCP connections to worker daemons (see file
 * comment). Construction connects and handshakes every slot; an
 * endpoint that stays unreachable through the connect retries is fatal
 * (a mis-specified fleet should not quietly shrink), and a handshake
 * MISMATCH (version/digest/missing task) is always fatal. AFTER
 * construction, a lost slot only degrades: respawnDead() tries to
 * reconnect and a still-dead slot just keeps its shards retrying.
 *
 * Thread-safety: same contract as ProcPool — call() concurrently only
 * for different slots; respawnDead()/dtor on the coordinator thread.
 */
class RemotePool final : public ShardTransport
{
  public:
    explicit RemotePool(RemotePoolConfig config);

    /** Closes connections; SIGKILLs fork-local daemons and reaps them. */
    ~RemotePool() override;

    RemotePool(const RemotePool &) = delete;
    RemotePool &operator=(const RemotePool &) = delete;

    size_t size() const override { return _slots.size(); }
    std::optional<std::string> call(size_t worker, const std::string &task,
                                    uint64_t step, uint64_t shard,
                                    const std::string &request) override;
    bool alive(size_t worker) const override;
    void respawnDead() override;

    /** SIGKILL the slot's daemon SESSION process (pid from the
     *  handshake) — only meaningful when the daemon runs on this host
     *  (the "local" endpoints); the kill-tolerance test hook. */
    void killWorker(size_t worker) override;

    pid_t workerPid(size_t worker) const override;
    ProcPoolStats stats() const override;

    /** SIGKILL the slot's daemon PARENT process (fork-local slots
     *  only): the harsher failure where reconnecting needs a whole new
     *  daemon, which respawnDead() re-forks. */
    void killDaemon(size_t worker);

    /** Daemon parent pid of a fork-local slot (0 otherwise). */
    pid_t daemonPid(size_t worker) const;

  private:
    struct Slot
    {
        RemoteEndpoint endpoint;
        int fd = -1;
        pid_t sessionPid = 0; ///< daemon session serving this connection
        pid_t daemonPid = 0;  ///< fork-local daemon parent (else 0)
        uint16_t port = 0;    ///< resolved port (fork-local endpoints)
        ProcWorkerStats stats;
    };

    /** True if the fork-local daemon parent of `slot` still runs
     *  (reaps it when it exited). */
    bool localDaemonAlive(Slot &slot);

    /** Connect + handshake one slot. `initial` failures are fatal;
     *  later ones return false (slot stays dead). */
    bool connectSlot(size_t slot, bool initial);

    void markDead(size_t slot);

    RemotePoolConfig _config;
    std::vector<Slot> _slots;
};

} // namespace h2o::exec

#endif // H2O_EXEC_REMOTE_TRANSPORT_H
