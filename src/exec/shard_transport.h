/**
 * @file
 * ShardTransport: the unified coordinator-side interface over worker
 * transports — forked local processes (ProcPool), remote TCP worker
 * daemons (RemotePool), or a mix of both (MixedTransport).
 *
 * ProcRunner drives one search step across whatever implements this
 * interface; because worker tasks are PURE functions of their request
 * bytes (see proc_transport.h), any transport — and any mix of
 * transports — produces byte-identical results to evaluating the same
 * tasks in the coordinator. The interface therefore only has to expose
 * the fault contract the runner builds retries on:
 *
 *  - call() returns std::nullopt on a TRANSPORT failure (the worker
 *    died: EOF, EPIPE, ECONNRESET, recv timeout). The slot is dead
 *    until respawnDead().
 *  - call() throws std::runtime_error when the task itself threw in
 *    the worker — an application error; the worker keeps serving.
 *  - respawnDead() restores every dead slot from CURRENT coordinator
 *    state: a fresh fork for process slots, a fresh connection (to a
 *    fresh daemon session) for remote slots. Reconnect IS respawn.
 */

#ifndef H2O_EXEC_SHARD_TRANSPORT_H
#define H2O_EXEC_SHARD_TRANSPORT_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace h2o::exec {

/** Coordinator-side per-worker transport counters. */
struct ProcWorkerStats
{
    uint64_t pid = 0;          ///< current (or last) worker pid; for a
                               ///< remote slot, the daemon SESSION pid
                               ///< reported in the handshake
    bool alive = false;
    uint64_t tasksServed = 0;  ///< completed request/response round trips
    uint64_t respawns = 0;     ///< re-forks / reconnects after a death
    uint64_t bytesSent = 0;    ///< request bytes over the transport
    uint64_t bytesReceived = 0;///< response bytes over the transport
    /** Where the slot's worker runs: "fork" for a forked local process,
     *  "host:port" for a remote daemon ("local/host:port" when the
     *  daemon was forked by the coordinator for loopback testing). */
    std::string endpoint = "fork";
};

/** Pool-wide snapshot (one entry per worker slot). */
struct ProcPoolStats
{
    std::vector<ProcWorkerStats> workers;

    uint64_t totalTasksServed() const;
    uint64_t totalRespawns() const;
    uint64_t totalBytes() const; ///< sent + received, all workers
};

/** The unified worker-transport interface (see file comment). */
class ShardTransport
{
  public:
    virtual ~ShardTransport() = default;

    /** Worker slot count. */
    virtual size_t size() const = 0;

    /**
     * Execute one task round trip on a worker slot. Returns the
     * response on success; std::nullopt on a transport failure (the
     * slot is dead until respawnDead()). A task that THREW in the
     * worker raises std::runtime_error here, mirroring a thrown shard
     * body in the thread runtime.
     *
     * Thread-safety: call() may run concurrently for DIFFERENT slots
     * (one I/O lane per slot is the intended shape); calls for the
     * same slot must be serialized by the caller.
     */
    virtual std::optional<std::string> call(size_t worker,
                                            const std::string &task,
                                            uint64_t step, uint64_t shard,
                                            const std::string &request) = 0;

    /** Whether the slot's worker is (believed) alive. */
    virtual bool alive(size_t worker) const = 0;

    /** Restore every dead slot from CURRENT coordinator state (re-fork
     *  or reconnect). Coordinator thread only; a slot that cannot be
     *  restored (unreachable daemon) simply stays dead. */
    virtual void respawnDead() = 0;

    /** SIGKILL a slot's worker (test/bench hook for the
     *  death-tolerance contract); the death is observed as a transport
     *  failure on the slot's next call. Remote slots kill the daemon
     *  SESSION process by pid, so the hook only reaches workers on
     *  this host. */
    virtual void killWorker(size_t worker) = 0;

    /** Current worker pid of a slot (0 when dead); for remote slots
     *  the daemon session pid from the handshake. */
    virtual pid_t workerPid(size_t worker) const = 0;

    /** Counter snapshot. */
    virtual ProcPoolStats stats() const = 0;
};

/**
 * Concatenation of several transports into one slot space — the mixed
 * pool (some shards on forked workers, some on remote daemons). Slot
 * order is the concatenation order; purity of worker tasks makes the
 * composition byte-identical to any other arrangement of the same
 * shard count.
 */
class MixedTransport final : public ShardTransport
{
  public:
    /** At least one part; parts are owned. */
    explicit MixedTransport(
        std::vector<std::unique_ptr<ShardTransport>> parts);

    size_t size() const override { return _size; }
    std::optional<std::string> call(size_t worker, const std::string &task,
                                    uint64_t step, uint64_t shard,
                                    const std::string &request) override;
    bool alive(size_t worker) const override;
    void respawnDead() override;
    void killWorker(size_t worker) override;
    pid_t workerPid(size_t worker) const override;
    ProcPoolStats stats() const override;

    /** The underlying parts (telemetry / test hooks). */
    const std::vector<std::unique_ptr<ShardTransport>> &parts() const
    {
        return _parts;
    }

  private:
    /** Map a global slot to (part, local slot). */
    std::pair<ShardTransport *, size_t> route(size_t slot) const;

    std::vector<std::unique_ptr<ShardTransport>> _parts;
    size_t _size = 0;
};

} // namespace h2o::exec

#endif // H2O_EXEC_SHARD_TRANSPORT_H
