/**
 * @file
 * h2o_workerd — a standalone remote worker daemon.
 *
 * Serves the ProcShardTask wire protocol over TCP (see worker_daemon.h)
 * for coordinators started with --workers host:port. This generic shell
 * registers only the built-in "h2o/echo" task (wire-level smoke tests
 * and connectivity probes); real deployments embed exec::WorkerDaemon
 * in the APPLICATION binary after registering the application's tasks —
 * the same binary on every host, which is exactly what the handshake's
 * task-registry digest enforces.
 */

#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "exec/proc_transport.h"
#include "exec/wire_io.h"
#include "exec/worker_daemon.h"

int
main(int argc, char **argv)
{
    h2o::common::Flags flags;
    flags.defineString("host", "127.0.0.1",
                       "bind address (0.0.0.0 to accept from other hosts)");
    flags.defineInt("port", 9123, "TCP port to listen on (0 = ephemeral)");
    flags.defineInt("max_sessions", 0,
                    "exit after serving this many connections (0 = forever)");
    flags.parse(argc, argv);

    // The built-in connectivity-probe task: replies with its request.
    h2o::exec::ProcTaskRegistration echo(
        "h2o/echo", [](uint64_t, uint64_t, const std::string &request) {
            return request;
        });

    h2o::exec::WorkerDaemonConfig config;
    config.host = flags.getString("host");
    config.port = static_cast<uint16_t>(flags.getInt("port"));
    config.maxSessions = static_cast<size_t>(flags.getInt("max_sessions"));

    h2o::exec::WorkerDaemon daemon(config);
    auto tasks = h2o::exec::registeredTaskNames();
    h2o::common::inform("h2o_workerd listening on ", config.host, ":",
                        daemon.port(), " serving ", tasks.size(),
                        " task(s), registry digest ",
                        h2o::exec::wire::taskSetDigest(tasks));
    daemon.serve();
    return 0;
}
