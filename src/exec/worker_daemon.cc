#include "exec/worker_daemon.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdexcept>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.h"
#include "exec/wire_io.h"

namespace h2o::exec {

namespace {

/** Handshake reads time out so a silent connector can't wedge a
 *  session child forever. */
constexpr long kHandshakeTimeoutMs = 5000;

void
setRecvTimeout(int fd, long ms)
{
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/**
 * Server side of the one-frame-each handshake (client format in
 * remote_transport.cc::handshakeRequest). Returns true when the
 * connection may proceed to task traffic; on failure an error reply is
 * attempted and the session exits.
 */
bool
serverHandshake(int fd, const std::map<std::string, ProcTaskFn> &tasks)
{
    std::vector<std::string> served;
    served.reserve(tasks.size());
    for (const auto &[name, fn] : tasks)
        served.push_back(name);
    const uint64_t servedDigest = wire::taskSetDigest(served);

    auto reply = [&](uint32_t status, const std::string &message) {
        WireWriter w;
        w.putU32(wire::kHandshakeMagic);
        w.putU32(wire::kProtocolVersion);
        w.putU32(status);
        w.putBytes(message);
        w.putU64(static_cast<uint64_t>(::getpid()));
        w.putU64(servedDigest);
        return wire::writeFrame(fd, w.bytes());
    };

    std::string frame;
    setRecvTimeout(fd, kHandshakeTimeoutMs);
    if (!wire::readFrame(fd, frame))
        return false; // silent or vanished connector; nothing to reply to
    setRecvTimeout(fd, 0);

    try {
        WireReader r(frame);
        uint32_t magic = r.getU32();
        if (magic != wire::kHandshakeMagic) {
            reply(wire::kStatusError, "bad handshake magic");
            return false;
        }
        uint32_t version = r.getU32();
        if (version != wire::kProtocolVersion) {
            reply(wire::kStatusError,
                  "protocol version mismatch: coordinator speaks v" +
                      std::to_string(version) + ", daemon speaks v" +
                      std::to_string(wire::kProtocolVersion) +
                      " (redeploy the same binary everywhere)");
            return false;
        }
        uint64_t digest = r.getU64();
        uint32_t count = r.getU32();
        std::vector<std::string> required;
        required.reserve(count);
        for (uint32_t i = 0; i < count; ++i)
            required.push_back(r.getBytes());
        if (wire::taskSetDigest(required) != digest) {
            reply(wire::kStatusError, "corrupt handshake frame");
            return false;
        }
        for (const auto &name : required) {
            if (tasks.find(name) == tasks.end()) {
                reply(wire::kStatusError,
                      "task '" + name +
                          "' is not registered on this daemon "
                          "(mismatched binaries? deploy the same build "
                          "everywhere)");
                return false;
            }
        }
    } catch (const std::exception &e) {
        reply(wire::kStatusError,
              std::string("malformed handshake: ") + e.what());
        return false;
    }
    return reply(wire::kStatusOk, "");
}

} // namespace

int
listenTcp(const std::string &host, uint16_t port, int backlog,
          uint16_t *boundPort)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        h2o_fatal("socket failed for worker daemon: ", std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty() || host == "0.0.0.0") {
        addr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        h2o_fatal("worker daemon bind address '", host,
                  "' is not an IPv4 address");
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        h2o_fatal("bind ", host, ":", port, " failed for worker daemon: ",
                  std::strerror(errno));
    if (::listen(fd, backlog) != 0)
        h2o_fatal("listen failed for worker daemon: ", std::strerror(errno));

    if (boundPort != nullptr) {
        struct sockaddr_in bound;
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&bound),
                          &len) != 0)
            h2o_fatal("getsockname failed for worker daemon: ",
                      std::strerror(errno));
        *boundPort = ntohs(bound.sin_port);
    }
    return fd;
}

WorkerDaemon::WorkerDaemon(WorkerDaemonConfig config)
    : _config(std::move(config)), _tasks(taskRegistrySnapshot())
{
    _listenFd = listenTcp(_config.host, _config.port, _config.backlog, &_port);
}

WorkerDaemon::WorkerDaemon(int listenFd, std::map<std::string, ProcTaskFn> tasks,
                           WorkerDaemonConfig config)
    : _config(std::move(config)), _listenFd(listenFd),
      _port(_config.port), _tasks(std::move(tasks))
{
    h2o_assert(_listenFd >= 0, "worker daemon adopted an invalid socket");
}

WorkerDaemon::~WorkerDaemon()
{
    if (_listenFd >= 0)
        ::close(_listenFd);
    for (pid_t pid : _sessions) {
        if (pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == 0) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
        }
    }
}

void
WorkerDaemon::reapSessions()
{
    for (auto &pid : _sessions) {
        if (pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == pid)
            pid = 0;
    }
}

void
WorkerDaemon::serve()
{
    size_t served = 0;
    while (_config.maxSessions == 0 || served < _config.maxSessions) {
        reapSessions();
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            common::warn("worker daemon accept failed: ", std::strerror(errno));
            break;
        }
        // Flush stdio so buffered output is not duplicated into the
        // session child. The daemon process is single-threaded, so this
        // fork is safe under TSAN too (same argument as ProcPool).
        std::fflush(nullptr);
        pid_t pid = ::fork();
        if (pid < 0) {
            common::warn("worker daemon fork failed: ", std::strerror(errno));
            ::close(fd);
            continue;
        }
        if (pid == 0) {
            ::close(_listenFd);
            session(fd);
        }
        ::close(fd);
        _sessions.push_back(pid);
        ++served;
    }
}

void
WorkerDaemon::session(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (serverHandshake(fd, _tasks))
        wire::serveRequestLoop(fd, _tasks);
    ::close(fd);
    // _exit, not exit: never run the daemon's atexit handlers or static
    // destructors in the session copy.
    ::_exit(0);
}

LocalDaemon
spawnLocalWorkerDaemon()
{
    WorkerDaemonConfig config;
    config.host = "127.0.0.1";
    config.port = 0;

    uint16_t port = 0;
    int listenFd = listenTcp(config.host, config.port, config.backlog, &port);
    config.port = port;

    // Same pre-fork snapshot discipline as ProcPool::spawn — the daemon
    // child must never touch the registry mutex.
    snapshotTaskRegistryForFork();
    std::fflush(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        h2o_fatal("fork failed for local worker daemon: ",
                  std::strerror(errno));
    if (pid == 0) {
        // A fork-local daemon must never outlive its coordinator: fatal
        // exits skip the pool destructor, and an orphaned daemon would
        // sit in accept() forever holding inherited descriptors open.
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() == 1)
            ::_exit(0); // coordinator died before the prctl took effect
        WorkerDaemon daemon(listenFd, forkTaskSnapshot(), config);
        daemon.serve();
        ::_exit(0);
    }
    ::close(listenFd);
    return LocalDaemon{pid, port};
}

} // namespace h2o::exec
