#include "exec/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace h2o::exec {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    _workers.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _cv.notify_all();
    for (auto &w : _workers)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    h2o_assert(task, "null task submitted to thread pool");
    std::packaged_task<void()> packaged(std::move(task));
    auto future = packaged.get_future();
    {
        std::lock_guard<std::mutex> lock(_mutex);
        h2o_assert(!_stopping, "submit on a stopping thread pool");
        _queue.push_back(std::move(packaged));
    }
    _cv.notify_one();
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _cv.wait(lock, [this] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task(); // exceptions land in the task's future
    }
}

size_t
ThreadPool::resolve(size_t requested, size_t work_items)
{
    size_t threads = requested;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    return std::max<size_t>(1, std::min(threads, std::max<size_t>(
                                                     1, work_items)));
}

std::vector<common::Rng>
ThreadPool::splitRngs(common::Rng &parent, size_t n)
{
    std::vector<common::Rng> streams;
    streams.reserve(n);
    for (size_t s = 0; s < n; ++s)
        streams.push_back(parent.fork(s + 1));
    return streams;
}

} // namespace h2o::exec
