#include "exec/shard_transport.h"

#include "common/logging.h"

namespace h2o::exec {

// -------------------------------------------------------- ProcPoolStats

uint64_t
ProcPoolStats::totalTasksServed() const
{
    uint64_t n = 0;
    for (const auto &w : workers)
        n += w.tasksServed;
    return n;
}

uint64_t
ProcPoolStats::totalRespawns() const
{
    uint64_t n = 0;
    for (const auto &w : workers)
        n += w.respawns;
    return n;
}

uint64_t
ProcPoolStats::totalBytes() const
{
    uint64_t n = 0;
    for (const auto &w : workers)
        n += w.bytesSent + w.bytesReceived;
    return n;
}

// ------------------------------------------------------- MixedTransport

MixedTransport::MixedTransport(
    std::vector<std::unique_ptr<ShardTransport>> parts)
    : _parts(std::move(parts))
{
    h2o_assert(!_parts.empty(), "mixed transport with no parts");
    for (const auto &part : _parts) {
        h2o_assert(part != nullptr, "null transport part");
        _size += part->size();
    }
    h2o_assert(_size > 0, "mixed transport with zero worker slots");
}

std::pair<ShardTransport *, size_t>
MixedTransport::route(size_t slot) const
{
    h2o_assert(slot < _size, "mixed transport slot out of range");
    for (const auto &part : _parts) {
        if (slot < part->size())
            return {part.get(), slot};
        slot -= part->size();
    }
    h2o_panic("unreachable: mixed transport routing");
}

std::optional<std::string>
MixedTransport::call(size_t worker, const std::string &task, uint64_t step,
                     uint64_t shard, const std::string &request)
{
    auto [part, local] = route(worker);
    return part->call(local, task, step, shard, request);
}

bool
MixedTransport::alive(size_t worker) const
{
    auto [part, local] = route(worker);
    return part->alive(local);
}

void
MixedTransport::respawnDead()
{
    for (auto &part : _parts)
        part->respawnDead();
}

void
MixedTransport::killWorker(size_t worker)
{
    auto [part, local] = route(worker);
    part->killWorker(local);
}

pid_t
MixedTransport::workerPid(size_t worker) const
{
    auto [part, local] = route(worker);
    return part->workerPid(local);
}

ProcPoolStats
MixedTransport::stats() const
{
    ProcPoolStats s;
    s.workers.reserve(_size);
    for (const auto &part : _parts) {
        ProcPoolStats ps = part->stats();
        for (auto &w : ps.workers)
            s.workers.push_back(std::move(w));
    }
    return s;
}

} // namespace h2o::exec
