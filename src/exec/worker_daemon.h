/**
 * @file
 * WorkerDaemon: the remote end of the cross-host shard transport.
 *
 * A daemon listens on TCP and forks ONE single-threaded session process
 * per accepted connection. The session speaks exactly the ProcPool wire
 * protocol (wire_io.h) after a one-frame handshake, serving the tasks
 * that were registered in the daemon process when it started.
 *
 * Fork-per-connection is what makes "reconnect-as-respawn" literal: a
 * coordinator that loses its connection (session killed, network blip)
 * reconnects and gets a FRESH session forked from pristine daemon
 * state — the same guarantee ProcPool::respawnDead() gives for local
 * workers. Because tasks are pure functions of their request bytes,
 * a fresh session answers byte-identically to the lost one, and the
 * coordinator's cached-request retry resends the exact frame, so RNG
 * streams never advance twice.
 *
 * Deployment shape: the SAME application binary runs on every host —
 * the coordinator role on one, the daemon role (embedding WorkerDaemon
 * after registering the same tasks) on the rest. The handshake's
 * task-registry digest enforces that shape: mismatched binaries fail
 * fast instead of corrupting a search.
 */

#ifndef H2O_EXEC_WORKER_DAEMON_H
#define H2O_EXEC_WORKER_DAEMON_H

#include <cstdint>
#include <map>
#include <string>
#include <sys/types.h>
#include <vector>

#include "exec/proc_transport.h"

namespace h2o::exec {

struct WorkerDaemonConfig
{
    std::string host = "127.0.0.1"; ///< bind address
    uint16_t port = 0;              ///< 0 = kernel-assigned ephemeral port
    int backlog = 16;
    /** serve() returns after this many sessions were forked (0 = loop
     *  forever). Test hook; production daemons never stop accepting. */
    size_t maxSessions = 0;
};

/**
 * TCP worker daemon (see file comment). Sessions serve the task set
 * captured at construction time — register tasks FIRST, then construct,
 * exactly like ProcPool.
 */
class WorkerDaemon
{
  public:
    /** Bind + listen (fatal on failure); tasks = registry snapshot. */
    explicit WorkerDaemon(WorkerDaemonConfig config);

    /** Adopt an already-listening socket and an explicit task map (the
     *  spawnLocalWorkerDaemon() child path, where the snapshot was
     *  taken pre-fork). */
    WorkerDaemon(int listenFd, std::map<std::string, ProcTaskFn> tasks,
                 WorkerDaemonConfig config);

    /** Closes the listener and SIGKILLs outstanding session children. */
    ~WorkerDaemon();

    WorkerDaemon(const WorkerDaemon &) = delete;
    WorkerDaemon &operator=(const WorkerDaemon &) = delete;

    /** The bound port (resolved when config.port was 0). */
    uint16_t port() const { return _port; }

    /** Accept loop: fork a session per connection, reap finished
     *  sessions, until maxSessions (if set) or the listener fails. */
    void serve();

  private:
    /** Session child: handshake, then the shared serve loop. */
    [[noreturn]] void session(int fd);
    void reapSessions();

    WorkerDaemonConfig _config;
    int _listenFd = -1;
    uint16_t _port = 0;
    std::map<std::string, ProcTaskFn> _tasks;
    std::vector<pid_t> _sessions;
};

/** A coordinator-forked loopback daemon (the "local" worker endpoint). */
struct LocalDaemon
{
    pid_t pid = 0;   ///< daemon (accept-loop) process
    uint16_t port = 0; ///< loopback port it listens on
};

/**
 * Fork the CURRENT process into a loopback worker daemon serving the
 * tasks registered at call time. The listener is created (and the port
 * resolved) in the parent before forking, so the returned endpoint is
 * immediately connectable. This is how `--workers local` slots spawn:
 * same binary, same registered tasks, guaranteed digest parity — and
 * how the TCP path is exercised on a single host.
 */
LocalDaemon spawnLocalWorkerDaemon();

/**
 * Create a listening TCP socket (SO_REUSEADDR); fatal on failure.
 * `boundPort` (optional) receives the resolved port.
 */
int listenTcp(const std::string &host, uint16_t port, int backlog,
              uint16_t *boundPort);

} // namespace h2o::exec

#endif // H2O_EXEC_WORKER_DAEMON_H
