#include "exec/remote_transport.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "common/logging.h"
#include "exec/wire_io.h"
#include "exec/worker_daemon.h"

namespace h2o::exec {

namespace {

/** Handshake replies time out so a silent endpoint can't wedge the
 *  coordinator (matches the daemon's handshake timeout). */
constexpr long kHandshakeTimeoutMs = 5000;

void
setRecvTimeout(int fd, long ms)
{
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/** Blocking TCP connect; -1 on failure (caller owns retries). */
int
connectTcp(const std::string &host, uint16_t port)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                      &res) != 0)
        return -1;
    int fd = -1;
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
}

enum class HandshakeResult
{
    Ok,
    TransportFailed, ///< endpoint vanished mid-handshake: retryable
    Mismatch,        ///< wrong protocol/version/tasks: fatal, never retry
};

/**
 * Client side of the one-frame-each handshake (server side in
 * worker_daemon.cc::serverHandshake). On Ok, `sessionPid` holds the
 * daemon session pid now serving this connection; on Mismatch, `error`
 * explains the rejection.
 */
HandshakeResult
clientHandshake(int fd, const std::vector<std::string> &requiredTasks,
                pid_t *sessionPid, std::string *error)
{
    WireWriter hello;
    hello.putU32(wire::kHandshakeMagic);
    hello.putU32(wire::kProtocolVersion);
    hello.putU64(wire::taskSetDigest(requiredTasks));
    hello.putU32(static_cast<uint32_t>(requiredTasks.size()));
    for (const auto &name : requiredTasks)
        hello.putBytes(name);
    if (!wire::writeFrame(fd, hello.bytes()))
        return HandshakeResult::TransportFailed;

    std::string frame;
    setRecvTimeout(fd, kHandshakeTimeoutMs);
    bool got = wire::readFrame(fd, frame);
    setRecvTimeout(fd, 0);
    if (!got)
        return HandshakeResult::TransportFailed;

    try {
        WireReader r(frame);
        uint32_t magic = r.getU32();
        uint32_t version = r.getU32();
        if (magic != wire::kHandshakeMagic) {
            *error = "endpoint is not an h2o worker daemon (bad magic)";
            return HandshakeResult::Mismatch;
        }
        uint32_t status = r.getU32();
        std::string message = r.getBytes();
        uint64_t pid = r.getU64();
        r.getU64(); // daemon's full-registry digest (informational)
        if (version != wire::kProtocolVersion) {
            *error = "protocol version mismatch: daemon speaks v" +
                     std::to_string(version) + ", coordinator speaks v" +
                     std::to_string(wire::kProtocolVersion);
            return HandshakeResult::Mismatch;
        }
        if (status != wire::kStatusOk) {
            *error = message;
            return HandshakeResult::Mismatch;
        }
        *sessionPid = static_cast<pid_t>(pid);
    } catch (const std::exception &e) {
        *error = std::string("malformed handshake reply: ") + e.what();
        return HandshakeResult::Mismatch;
    }
    return HandshakeResult::Ok;
}

} // namespace

// ------------------------------------------------------- RemoteEndpoint

std::string
RemoteEndpoint::str() const
{
    if (forkLocal)
        return "local";
    return host + ":" + std::to_string(port);
}

std::vector<RemoteEndpoint>
parseWorkerList(const std::string &csv)
{
    std::vector<RemoteEndpoint> out;
    if (csv.empty())
        return out;

    auto bad = [&csv](const std::string &entry, const char *why) {
        h2o_fatal("malformed worker entry '", entry, "' in '", csv, "': ",
                  why, " (expected comma-separated host:port or 'local')");
    };

    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        std::string entry = csv.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (entry.empty())
            bad(entry, "empty entry");
        if (entry == "local") {
            RemoteEndpoint ep;
            ep.forkLocal = true;
            out.push_back(std::move(ep));
        } else {
            size_t colon = entry.rfind(':');
            if (colon == std::string::npos)
                bad(entry, "missing ':port'");
            if (colon == 0)
                bad(entry, "empty host");
            std::string portStr = entry.substr(colon + 1);
            if (portStr.empty())
                bad(entry, "empty port");
            for (char c : portStr) {
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    bad(entry, "port is not a number");
            }
            unsigned long port = 0;
            try {
                port = std::stoul(portStr);
            } catch (const std::exception &) {
                bad(entry, "port is not a number");
            }
            if (port < 1 || port > 65535)
                bad(entry, "port out of range [1, 65535]");
            RemoteEndpoint ep;
            ep.host = entry.substr(0, colon);
            ep.port = static_cast<uint16_t>(port);
            out.push_back(std::move(ep));
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

// ----------------------------------------------------------- RemotePool

RemotePool::RemotePool(RemotePoolConfig config) : _config(std::move(config))
{
    h2o_assert(!_config.endpoints.empty(), "remote pool with zero endpoints");
    _slots.resize(_config.endpoints.size());
    for (size_t i = 0; i < _slots.size(); ++i)
        _slots[i].endpoint = _config.endpoints[i];

    // Fork every local daemon BEFORE opening any TCP connection, so a
    // daemon never inherits another slot's connection fd (holding it
    // would mask that connection's EOF, like the sibling-fd discipline
    // in ProcPool::spawn).
    for (auto &slot : _slots) {
        if (slot.endpoint.forkLocal) {
            LocalDaemon daemon = spawnLocalWorkerDaemon();
            slot.daemonPid = daemon.pid;
            slot.port = daemon.port;
        }
    }
    for (size_t i = 0; i < _slots.size(); ++i)
        connectSlot(i, /*initial=*/true);
}

RemotePool::~RemotePool()
{
    for (auto &slot : _slots) {
        if (slot.fd >= 0)
            ::close(slot.fd);
    }
    for (auto &slot : _slots) {
        if (!slot.endpoint.forkLocal)
            continue;
        // Sessions are the daemon's children, not ours: SIGKILL by pid
        // (reaped by init), then kill + reap the daemon itself.
        if (slot.sessionPid > 0)
            ::kill(slot.sessionPid, SIGKILL);
        if (slot.daemonPid > 0) {
            ::kill(slot.daemonPid, SIGKILL);
            ::waitpid(slot.daemonPid, nullptr, 0);
        }
    }
}

bool
RemotePool::localDaemonAlive(Slot &slot)
{
    if (slot.daemonPid <= 0)
        return false;
    // Reap first: a zombie daemon still "exists" for kill(pid, 0).
    pid_t reaped = ::waitpid(slot.daemonPid, nullptr, WNOHANG);
    if (reaped == slot.daemonPid || (reaped < 0 && errno == ECHILD)) {
        slot.daemonPid = 0;
        return false;
    }
    return true;
}

bool
RemotePool::connectSlot(size_t index, bool initial)
{
    Slot &slot = _slots[index];
    h2o_assert(slot.fd < 0, "reconnecting a live remote slot");
    const std::string host =
        slot.endpoint.forkLocal ? "127.0.0.1" : slot.endpoint.host;
    const uint16_t port =
        slot.endpoint.forkLocal ? slot.port : slot.endpoint.port;
    const std::string label = slot.endpoint.forkLocal
                                  ? "local/" + host + ":" +
                                        std::to_string(port)
                                  : slot.endpoint.str();

    const size_t attempts = std::max<size_t>(1, _config.connectAttempts);
    for (size_t attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                _config.connectBackoffMs * static_cast<long>(attempt)));
        int fd = connectTcp(host, port);
        if (fd < 0)
            continue;
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        pid_t sessionPid = 0;
        std::string error;
        HandshakeResult hs =
            clientHandshake(fd, _config.requiredTasks, &sessionPid, &error);
        if (hs == HandshakeResult::Mismatch) {
            ::close(fd);
            h2o_fatal("worker daemon ", label,
                      " rejected the handshake: ", error);
        }
        if (hs == HandshakeResult::TransportFailed) {
            ::close(fd);
            continue;
        }
        if (_config.callTimeoutMs > 0)
            setRecvTimeout(fd, _config.callTimeoutMs);
        slot.fd = fd;
        slot.sessionPid = sessionPid;
        slot.stats.pid = static_cast<uint64_t>(sessionPid);
        slot.stats.alive = true;
        slot.stats.endpoint = label;
        return true;
    }
    if (initial)
        h2o_fatal("cannot reach worker daemon ", label, " after ", attempts,
                  " connection attempts");
    return false;
}

std::optional<std::string>
RemotePool::call(size_t worker, const std::string &task, uint64_t step,
                 uint64_t shard, const std::string &request)
{
    h2o_assert(worker < _slots.size(), "remote worker out of range");
    Slot &slot = _slots[worker];
    if (slot.fd < 0)
        return std::nullopt; // already known dead; await respawnDead()

    auto reply = wire::callOverFd(slot.fd, task, step, shard, request,
                                  slot.stats.bytesSent,
                                  slot.stats.bytesReceived);
    if (!reply) {
        markDead(worker);
        return std::nullopt;
    }
    ++slot.stats.tasksServed;
    return reply;
}

void
RemotePool::markDead(size_t index)
{
    Slot &slot = _slots[index];
    if (slot.fd >= 0) {
        ::close(slot.fd);
        slot.fd = -1;
    }
    slot.sessionPid = 0;
    slot.stats.alive = false;
    slot.stats.pid = 0;
}

bool
RemotePool::alive(size_t worker) const
{
    h2o_assert(worker < _slots.size(), "remote worker out of range");
    return _slots[worker].fd >= 0;
}

void
RemotePool::respawnDead()
{
    for (size_t i = 0; i < _slots.size(); ++i) {
        Slot &slot = _slots[i];
        if (slot.fd >= 0)
            continue;
        // A fork-local slot whose daemon died needs a whole new daemon
        // (fresh listener, fresh port) before reconnecting.
        if (slot.endpoint.forkLocal && !localDaemonAlive(slot)) {
            LocalDaemon daemon = spawnLocalWorkerDaemon();
            slot.daemonPid = daemon.pid;
            slot.port = daemon.port;
        }
        if (connectSlot(i, /*initial=*/false))
            ++slot.stats.respawns;
        // else: endpoint still unreachable; the slot stays dead and its
        // shards keep retrying (degrading on attempt exhaustion).
    }
}

void
RemotePool::killWorker(size_t worker)
{
    h2o_assert(worker < _slots.size(), "remote worker out of range");
    pid_t pid = _slots[worker].sessionPid;
    if (pid > 0)
        ::kill(pid, SIGKILL);
}

pid_t
RemotePool::workerPid(size_t worker) const
{
    h2o_assert(worker < _slots.size(), "remote worker out of range");
    return _slots[worker].sessionPid > 0 ? _slots[worker].sessionPid : 0;
}

void
RemotePool::killDaemon(size_t worker)
{
    h2o_assert(worker < _slots.size(), "remote worker out of range");
    pid_t pid = _slots[worker].daemonPid;
    if (pid > 0)
        ::kill(pid, SIGKILL);
}

pid_t
RemotePool::daemonPid(size_t worker) const
{
    h2o_assert(worker < _slots.size(), "remote worker out of range");
    return _slots[worker].daemonPid > 0 ? _slots[worker].daemonPid : 0;
}

ProcPoolStats
RemotePool::stats() const
{
    ProcPoolStats s;
    s.workers.reserve(_slots.size());
    for (const auto &slot : _slots)
        s.workers.push_back(slot.stats);
    return s;
}

} // namespace h2o::exec
