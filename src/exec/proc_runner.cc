#include "exec/proc_runner.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace h2o::exec {

ProcRunner::ProcRunner(ShardTransport &pool, ShardRunnerConfig config,
                       FaultInjector *injector)
    : _pool(pool), _config(config), _injector(injector),
      _io(pool.size())
{
    h2o_assert(_config.numShards > 0, "runner with zero shards");
    h2o_assert(_config.maxAttempts > 0, "runner with zero attempts");
    h2o_assert(_config.backoffBaseMs >= 0.0, "negative backoff");
}

bool
ProcRunner::runShardAttempts(size_t step, size_t shard, size_t worker,
                             const ProcShardTask &task, ShardAttempt &st)
{
    while (st.attemptsUsed < _config.maxAttempts) {
        const size_t attempt = st.attemptsUsed++;
        st.result.attempts = attempt + 1;

        // Injected faults strike before encode, mirroring the thread
        // runtime (a preempted shard never draws its sample).
        FaultKind fault = _injector
                              ? _injector->decide(step, shard, attempt)
                              : FaultKind::None;
        if (fault == FaultKind::Preempt) {
            _injector->record(fault);
            st.result.state = ShardState::Degraded;
            st.settled = true;
            return true;
        }
        if (fault == FaultKind::Fail) {
            _injector->record(fault);
            if (attempt + 1 < _config.maxAttempts &&
                _config.backoffBaseMs > 0.0) {
                auto delay = std::chrono::duration<double, std::milli>(
                    _config.backoffBaseMs *
                    static_cast<double>(1ULL << attempt));
                std::this_thread::sleep_for(delay);
            }
            continue;
        }
        if (fault == FaultKind::Straggle) {
            _injector->record(fault);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    _injector->config().stragglerDelayMs));
        }

        try {
            // Encode at most once per step: a transport retry must
            // resend the SAME bytes so the shard's RNG stream advances
            // exactly once, like an unkilled run.
            if (!st.request)
                st.request = task.encode(shard);
        } catch (const std::exception &e) {
            common::warn("shard ", shard, " attempt ", attempt,
                         " failed encoding: ", e.what());
            st.request.reset();
            continue;
        }

        std::optional<std::string> reply;
        try {
            reply = _pool.call(worker, task.name, step, shard,
                               *st.request);
        } catch (const std::exception &e) {
            // The worker task threw: same contract as a thrown shard
            // body — warn, consume the attempt, re-run from the draw.
            common::warn("shard ", shard, " attempt ", attempt,
                         " failed: ", e.what());
            st.request.reset();
            continue;
        }
        if (!reply) {
            // Worker death mid-call. The attempt is spent, the encoded
            // request is kept, and the shard (plus everything queued
            // behind it on this worker) waits for the respawn round.
            return false;
        }
        st.response = std::move(reply);
        st.result.state =
            attempt == 0 ? ShardState::Ok : ShardState::Retried;
        st.settled = true;
        return true;
    }
    st.result.state = ShardState::Degraded;
    st.settled = true;
    return true;
}

StepReport
ProcRunner::runStep(size_t step, const ProcShardTask &task)
{
    h2o_assert(!task.name.empty() && task.encode && task.decode,
               "malformed proc shard task");
    const size_t n = _config.numShards;
    const size_t procs = _pool.size();
    std::vector<ShardAttempt> shards(n);

    // Rounds: run every unsettled shard on its worker; a worker death
    // ends that worker's round early, and the next round begins by
    // re-forking every corpse from current coordinator state. Each
    // round with a dead worker consumes at least one attempt of its
    // first pending shard, so the loop terminates.
    bool pending = true;
    while (pending) {
        _pool.respawnDead();

        // Ascending shard lists per worker (shard s -> worker s % k):
        // each worker serves its shards in index order, every round.
        std::vector<std::vector<size_t>> assigned(procs);
        for (size_t s = 0; s < n; ++s)
            if (!shards[s].settled)
                assigned[s % procs].push_back(s);

        auto runWorkerLane = [&](size_t w) {
            for (size_t s : assigned[w]) {
                if (!runShardAttempts(step, s, w, task, shards[s])) {
                    ++_transportFailures;
                    break; // corpse: defer the rest of this lane
                }
            }
        };

        if (_config.inlineSingleWorker && procs == 1) {
            // One worker process: its lane is sequential anyway, so
            // drive the socket from the caller's thread directly.
            runWorkerLane(0);
        } else {
            std::vector<std::future<void>> lanes;
            lanes.reserve(procs);
            for (size_t w = 0; w < procs; ++w) {
                if (!assigned[w].empty())
                    lanes.push_back(
                        _io.submit([&, w] { runWorkerLane(w); }));
            }
            // The cross-shard barrier for this round.
            for (auto &f : lanes)
                f.get();
        }

        pending = false;
        for (const auto &st : shards)
            if (!st.settled) {
                pending = true;
                break;
            }
    }

    // Apply responses in ascending shard order on this thread — the
    // serialization order the thread path's OrderedSection admits
    // shards, so decoders that touch shared state see the serial
    // schedule.
    StepReport report;
    report.shards.reserve(n);
    for (size_t s = 0; s < n; ++s) {
        if (shards[s].response)
            task.decode(s, *shards[s].response);
        report.shards.push_back(shards[s].result);
    }
    for (const auto &r : report.shards)
        if (r.state == ShardState::Degraded)
            ++_degradedShardSteps;
    ++_stepsRun;
    return report;
}

} // namespace h2o::exec
