#include "exec/shard_runner.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace h2o::exec {

// ------------------------------------------------------ OrderedSection

void
OrderedSection::reset(size_t n)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _done.assign(n, false);
}

void
OrderedSection::waitTurn(size_t shard)
{
    std::unique_lock<std::mutex> lock(_mutex);
    h2o_assert(shard < _done.size(), "shard out of range in OrderedSection");
    _cv.wait(lock, [&] {
        for (size_t i = 0; i < shard; ++i)
            if (!_done[i])
                return false;
        return true;
    });
}

void
OrderedSection::markDone(size_t shard)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _done[shard] = true;
    }
    _cv.notify_all();
}

void
OrderedSection::skip(size_t shard)
{
    markDone(shard);
}

OrderedSection::Guard::Guard(OrderedSection &section, size_t shard)
    : _section(section), _shard(shard)
{
    _section.waitTurn(shard);
}

OrderedSection::Guard::~Guard()
{
    _section.markDone(_shard);
}

// ---------------------------------------------------------- StepReport

std::vector<size_t>
StepReport::survivors() const
{
    std::vector<size_t> ok;
    ok.reserve(shards.size());
    for (size_t s = 0; s < shards.size(); ++s)
        if (shards[s].state != ShardState::Degraded)
            ok.push_back(s);
    return ok;
}

bool
StepReport::degraded() const
{
    for (const auto &r : shards)
        if (r.state == ShardState::Degraded)
            return true;
    return false;
}

// --------------------------------------------------------- ShardRunner

ShardRunner::ShardRunner(ThreadPool &pool, ShardRunnerConfig config,
                         FaultInjector *injector)
    : _pool(pool), _config(config), _injector(injector)
{
    h2o_assert(_config.numShards > 0, "runner with zero shards");
    h2o_assert(_config.maxAttempts > 0, "runner with zero attempts");
    h2o_assert(_config.backoffBaseMs >= 0.0, "negative backoff");
}

ShardResult
ShardRunner::runShard(size_t step, size_t shard,
                      const std::function<void(size_t)> &body)
{
    ShardResult result;
    for (size_t attempt = 0; attempt < _config.maxAttempts; ++attempt) {
        result.attempts = attempt + 1;
        FaultKind fault = _injector
                              ? _injector->decide(step, shard, attempt)
                              : FaultKind::None;
        if (fault == FaultKind::Preempt) {
            _injector->record(fault);
            result.state = ShardState::Degraded;
            _ordered.skip(shard);
            return result;
        }
        if (fault == FaultKind::Fail) {
            _injector->record(fault);
            if (attempt + 1 < _config.maxAttempts &&
                _config.backoffBaseMs > 0.0) {
                auto delay = std::chrono::duration<double, std::milli>(
                    _config.backoffBaseMs *
                    static_cast<double>(1ULL << attempt));
                std::this_thread::sleep_for(delay);
            }
            continue;
        }
        if (fault == FaultKind::Straggle) {
            _injector->record(fault);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    _injector->config().stragglerDelayMs));
        }
        try {
            body(shard);
            result.state = attempt == 0 ? ShardState::Ok
                                        : ShardState::Retried;
            return result;
        } catch (const std::exception &e) {
            h2o::common::warn("shard ", shard, " attempt ", attempt,
                              " failed: ", e.what());
        }
    }
    result.state = ShardState::Degraded;
    _ordered.skip(shard);
    return result;
}

StepReport
ShardRunner::runStep(size_t step,
                     const std::function<void(size_t shard)> &body)
{
    h2o_assert(body, "null shard body");
    StepReport report;
    report.shards.assign(_config.numShards, ShardResult{});
    _ordered.reset(_config.numShards);

    if (_config.inlineSingleWorker && _pool.size() == 1) {
        // Single-worker fast path: run the shards inline in index
        // order on this thread — exactly the order one FIFO worker
        // would run them, with the same fault decisions and ordered-
        // section admissions — skipping the cross-thread dispatch.
        for (size_t s = 0; s < _config.numShards; ++s)
            report.shards[s] = runShard(step, s, body);
        ++_inlineSteps;
    } else {
        std::vector<std::future<void>> futures;
        futures.reserve(_config.numShards);
        for (size_t s = 0; s < _config.numShards; ++s) {
            futures.push_back(
                _pool.submit([this, step, s, &body, &report] {
                    report.shards[s] = runShard(step, s, body);
                }));
        }
        // The cross-shard barrier: aggregation must not start before
        // every shard has completed or been declared lost.
        for (auto &f : futures)
            f.get();
        ++_dispatchedSteps;
    }

    for (const auto &r : report.shards)
        if (r.state == ShardState::Degraded)
            ++_degradedShardSteps;
    return report;
}

} // namespace h2o::exec
