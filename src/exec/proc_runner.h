/**
 * @file
 * ProcRunner: one search step across N shards on a ProcPool of worker
 * PROCESSES — the multi-process counterpart of ShardRunner.
 *
 * The thread runtime executes an arbitrary shard body closure; a
 * process boundary cannot ship a closure, so ProcRunner executes a
 * ProcShardTask codec instead: `encode(shard)` runs coordinator-side at
 * the exact point the thread path would run the shard body (so it may
 * draw from the shard's policy stream), the named registered task runs
 * the pure heavy work inside a worker process, and `decode(shard,
 * response)` applies the result coordinator-side — after the step
 * barrier, in ascending shard order, which is the same serialization
 * order the thread path's OrderedSection admits shards. Worker tasks
 * are pure, so any worker count (including 1) produces byte-identical
 * results to the thread path.
 *
 * Fault semantics are the thread runtime's, extended across process
 * death:
 *  - Injected faults (FaultInjector) strike coordinator-side before
 *    encode, keyed on (step, shard, attempt) exactly as in
 *    ShardRunner::runShard — same decisions, same degradation pattern,
 *    same RNG non-advancement for preempted shards.
 *  - A task that THROWS in the worker counts as a thrown shard body:
 *    warn, consume the attempt, re-encode and retry (the thread path
 *    would also re-run the body).
 *  - Worker DEATH (kill -9, crash) is a transport failure: the
 *    in-flight shard consumes an attempt but keeps its encoded request
 *    (its RNG stream must not advance twice), the worker is respawned
 *    from current coordinator state between rounds, and the shard is
 *    retried with the SAME request bytes — a successful retry makes the
 *    whole run byte-identical to an unkilled one. Shards queued behind
 *    the corpse consume nothing and simply run in the next round. A
 *    shard whose attempts exhaust degrades exactly like an injected
 *    fault: excluded from the step's aggregation, search continues.
 */

#ifndef H2O_EXEC_PROC_RUNNER_H
#define H2O_EXEC_PROC_RUNNER_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/fault_injector.h"
#include "exec/proc_transport.h"
#include "exec/shard_runner.h"
#include "exec/thread_pool.h"

namespace h2o::exec {

/** The codec ProcRunner drives one step with (see file comment). */
struct ProcShardTask
{
    /** Registered task name (must predate the pool's forks). */
    std::string name;
    /** Coordinator-side: produce the shard's request bytes. Runs when
     *  the shard's attempt executes — exactly where the thread path
     *  runs the shard body — and at most once per step unless it (or
     *  the worker task) throws. May touch shard-local state only. */
    std::function<std::string(size_t shard)> encode;
    /** Coordinator-side: apply a surviving shard's response. Called
     *  after the step barrier, ascending shard order, caller's thread —
     *  free to touch shared state. */
    std::function<void(size_t shard, const std::string &response)> decode;
};

/**
 * Runs the N shards of one step across the transport's worker slots —
 * forked processes, remote daemons, or a mix — fault-tolerantly (see
 * file comment). Shard s is pinned to slot s % workers; each slot's
 * shards execute in ascending order.
 */
class ProcRunner
{
  public:
    /**
     * @param pool     Worker transport (caller-owned, outlives the
     *                 runner): a ProcPool, RemotePool or MixedTransport.
     *                 It must not serve unrelated calls during
     *                 runStep().
     * @param config   Shard count and retry policy (shared struct with
     *                 ShardRunner; inlineSingleWorker applies to a
     *                 1-worker pool the same way).
     * @param injector Optional fault oracle; nullptr injects nothing.
     */
    ProcRunner(ShardTransport &pool, ShardRunnerConfig config,
               FaultInjector *injector = nullptr);

    /** Execute one step of `task` across all shards and barrier-wait.
     *  @param step Step index keying fault-injection decisions. */
    StepReport runStep(size_t step, const ProcShardTask &task);

    /** Shard count. */
    size_t numShards() const { return _config.numShards; }

    /** Cumulative count of degraded (lost) shard-steps. */
    uint64_t degradedShardSteps() const { return _degradedShardSteps; }

    /** Transport failures observed (worker deaths mid-call). */
    uint64_t transportFailures() const { return _transportFailures; }

    /** Steps executed. */
    uint64_t stepsRun() const { return _stepsRun; }

    /** The underlying transport (telemetry, test kill hooks). */
    ShardTransport &pool() { return _pool; }
    const ShardTransport &pool() const { return _pool; }

  private:
    /** Per-shard, per-step retry state. */
    struct ShardAttempt
    {
        size_t attemptsUsed = 0;
        std::optional<std::string> request;  ///< cached encode() output
        std::optional<std::string> response; ///< set on success
        ShardResult result;
        bool settled = false; ///< responded or degraded
    };

    /** Drive one shard's attempt loop on its worker. Returns false
     *  when the worker died mid-call (shard left pending, queued
     *  shards behind it defer to the next round). */
    bool runShardAttempts(size_t step, size_t shard, size_t worker,
                          const ProcShardTask &task, ShardAttempt &st);

    ShardTransport &_pool;
    ShardRunnerConfig _config;
    FaultInjector *_injector;
    ThreadPool _io; ///< one blocking-I/O lane per worker process
    uint64_t _degradedShardSteps = 0;
    uint64_t _transportFailures = 0;
    uint64_t _stepsRun = 0;
};

} // namespace h2o::exec

#endif // H2O_EXEC_PROC_RUNNER_H
