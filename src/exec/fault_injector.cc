#include "exec/fault_injector.h"

#include "common/logging.h"
#include "common/rng.h"

namespace h2o::exec {

FaultInjector::FaultInjector(FaultConfig config) : _config(config)
{
    auto valid_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    h2o_assert(valid_prob(_config.failProb) &&
                   valid_prob(_config.stragglerProb) &&
                   valid_prob(_config.preemptProb),
               "fault probabilities must lie in [0, 1]");
    h2o_assert(_config.stragglerDelayMs >= 0.0,
               "negative straggler delay");
}

FaultKind
FaultInjector::decide(size_t step, size_t shard, size_t attempt) const
{
    // One hash per decision: timing- and thread-count-independent.
    uint64_t state = _config.seed ^
                     (0x9e3779b97f4a7c15ULL * (step + 1)) ^
                     (0xbf58476d1ce4e5b9ULL * (shard + 1)) ^
                     (0x94d049bb133111ebULL * (attempt + 1));
    uint64_t h = common::splitmix64(state);
    double u = static_cast<double>(h >> 11) /
               static_cast<double>(1ULL << 53);

    double preempt = (attempt == 0) ? _config.preemptProb : 0.0;
    if (u < preempt)
        return FaultKind::Preempt;
    if (u < preempt + _config.failProb)
        return FaultKind::Fail;
    if (u < preempt + _config.failProb + _config.stragglerProb)
        return FaultKind::Straggle;
    return FaultKind::None;
}

void
FaultInjector::record(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Fail:
        _stats.failures.fetch_add(1, std::memory_order_relaxed);
        break;
    case FaultKind::Straggle:
        _stats.straggles.fetch_add(1, std::memory_order_relaxed);
        break;
    case FaultKind::Preempt:
        _stats.preemptions.fetch_add(1, std::memory_order_relaxed);
        break;
    case FaultKind::None:
        break;
    }
}

} // namespace h2o::exec
