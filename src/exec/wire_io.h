/**
 * @file
 * Shared frame I/O for the shard transports.
 *
 * One u32-length-prefixed frame format, one request encoding, one
 * request/response round-trip helper and one worker-side serve loop —
 * used by BOTH the fork transport (proc_transport.cc, socketpair) and
 * the TCP transport (remote_transport.cc / worker_daemon.cc). Sharing
 * the code is the byte-identity argument: a ProcShardTask frame is the
 * same bytes whether it crosses a UNIX socketpair or a TCP connection,
 * because both paths run through these functions.
 *
 * Also home of the remote-worker handshake constants: a connecting
 * coordinator and a worker daemon exchange one frame each (magic,
 * protocol version, task-registry digest) before any task traffic, so
 * mismatched binaries fail fast instead of corrupting a search.
 */

#ifndef H2O_EXEC_WIRE_IO_H
#define H2O_EXEC_WIRE_IO_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/proc_transport.h"

namespace h2o::exec::wire {

/** Frames above this are a protocol bug, not a payload. */
inline constexpr uint32_t kMaxFrameBytes = 1u << 30;

/** Response status codes. */
inline constexpr uint32_t kStatusOk = 0;
inline constexpr uint32_t kStatusError = 1;

/** Handshake magic ("H2OW") and protocol version. Bump the version on
 *  ANY change to the frame format, request encoding or handshake. */
inline constexpr uint32_t kHandshakeMagic = 0x48324F57u;
inline constexpr uint32_t kProtocolVersion = 1;

/** Loop a full send over partial writes; MSG_NOSIGNAL so a dead peer
 *  surfaces as EPIPE instead of killing the process. */
bool sendAll(int fd, const void *data, size_t len);

/** Loop a full recv; false on EOF, error or recv timeout (peer death). */
bool recvAll(int fd, void *data, size_t len);

/** Write one length-prefixed frame. */
bool writeFrame(int fd, const std::string &payload);

/** Read one length-prefixed frame; false on EOF/error/corrupt length. */
bool readFrame(int fd, std::string &payload);

/** Encode one task request frame payload:
 *  [bytes task][u64 step][u64 shard][bytes request]. */
std::string encodeRequest(const std::string &task, uint64_t step,
                          uint64_t shard, const std::string &request);

/**
 * One request/response round trip over an already-established framed
 * channel (socketpair or TCP — identical bytes either way). Returns the
 * response payload on success; std::nullopt on transport failure (the
 * caller marks the slot dead); throws std::runtime_error when the
 * worker reported a task error. Byte counters are advanced for each
 * direction that completed, matching the coordinator-side telemetry
 * contract.
 */
std::optional<std::string> callOverFd(int fd, const std::string &task,
                                      uint64_t step, uint64_t shard,
                                      const std::string &request,
                                      uint64_t &bytesSent,
                                      uint64_t &bytesReceived);

/**
 * Worker-side serve loop: read request frames from `fd`, execute them
 * against `tasks`, reply status+payload, until the peer hangs up (or a
 * reply fails). Task exceptions are marshalled as kStatusError replies;
 * the loop keeps serving. Shared by ProcPool fork workers and daemon
 * session processes.
 */
void serveRequestLoop(int fd, const std::map<std::string, ProcTaskFn> &tasks);

/**
 * Order-independent digest of a task-name set (FNV-1a over the sorted
 * names). The handshake compares coordinator and daemon digests so a
 * coordinator never drives a daemon built from different task code.
 */
uint64_t taskSetDigest(std::vector<std::string> names);

} // namespace h2o::exec::wire

#endif // H2O_EXEC_WIRE_IO_H
