#include "exec/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"

namespace h2o::exec {

namespace {

/** The directory holding `path` ("." for bare filenames). */
std::string
parentDir(const std::string &path)
{
    auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** fsync a directory so a just-renamed entry survives power loss. */
void
syncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        h2o_fatal("cannot open checkpoint directory '", dir,
                  "' for fsync: ", std::strerror(errno));
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        h2o_fatal("fsync of checkpoint directory '", dir,
                  "' failed: ", std::strerror(err));
    }
    ::close(fd);
}

} // namespace

void
CheckpointWriter::commit(const std::string &path)
{
    // Durability order: write + fsync the temp FILE (its bytes are on
    // stable storage), fsync its DIRECTORY (the temp entry is durable),
    // rename over the destination, fsync the directory again (the
    // rename itself is durable). Any crash leaves either the previous
    // complete checkpoint or the new complete one — never a truncated
    // or lost file.
    const std::string tmp = path + ".tmp";
    const std::string payload = _buf.str();

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        h2o_fatal("cannot open checkpoint temp file '", tmp,
                  "': ", std::strerror(errno));
    size_t off = 0;
    while (off < payload.size()) {
        ssize_t n = ::write(fd, payload.data() + off,
                            payload.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            h2o_fatal("failed writing checkpoint temp file '", tmp,
                      "': ", std::strerror(err));
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        h2o_fatal("fsync of checkpoint temp file '", tmp,
                  "' failed: ", std::strerror(err));
    }
    if (::close(fd) != 0)
        h2o_fatal("close of checkpoint temp file '", tmp,
                  "' failed: ", std::strerror(errno));

    const std::string dir = parentDir(path);
    syncDir(dir);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        h2o_fatal("failed publishing checkpoint '", path,
                  "': ", std::strerror(errno));
    syncDir(dir);
}

bool
CheckpointReader::exists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

CheckpointReader::CheckpointReader(const std::string &path) : _in(path)
{
    if (!_in)
        h2o_fatal("cannot open checkpoint '", path, "'");
}

} // namespace h2o::exec
