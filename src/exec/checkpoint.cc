#include "exec/checkpoint.h"

#include <cstdio>

#include "common/logging.h"

namespace h2o::exec {

void
CheckpointWriter::commit(const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            h2o_fatal("cannot open checkpoint temp file '", tmp, "'");
        out << _buf.str();
        out.flush();
        if (!out)
            h2o_fatal("failed writing checkpoint temp file '", tmp, "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        h2o_fatal("failed publishing checkpoint '", path, "'");
}

bool
CheckpointReader::exists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

CheckpointReader::CheckpointReader(const std::string &path) : _in(path)
{
    if (!_in)
        h2o_fatal("cannot open checkpoint '", path, "'");
}

} // namespace h2o::exec
