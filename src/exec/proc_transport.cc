#include "exec/proc_transport.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.h"
#include "exec/wire_io.h"

namespace h2o::exec {

namespace {

/** Process-global task registry (coordinator side). */
std::map<std::string, ProcTaskFn> &
registry()
{
    static std::map<std::string, ProcTaskFn> tasks;
    return tasks;
}

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

/**
 * The registry snapshot a forked worker resolves tasks from. Filled by
 * snapshotTaskRegistryForFork() (under the registry lock) immediately
 * before fork so the child never touches the registry mutex — another
 * coordinator thread could hold it at fork time, and a copied-held
 * mutex deadlocks the single-threaded child.
 */
std::map<std::string, ProcTaskFn> g_forkSnapshot;

} // namespace

std::map<std::string, ProcTaskFn>
taskRegistrySnapshot()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    return registry();
}

std::vector<std::string>
registeredTaskNames()
{
    std::vector<std::string> names;
    std::lock_guard<std::mutex> lock(registryMutex());
    names.reserve(registry().size());
    for (const auto &[name, fn] : registry())
        names.push_back(name);
    return names; // std::map iteration order is already sorted
}

void
snapshotTaskRegistryForFork()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    g_forkSnapshot = registry();
}

const std::map<std::string, ProcTaskFn> &
forkTaskSnapshot()
{
    return g_forkSnapshot;
}

// ------------------------------------------------- ProcTaskRegistration

ProcTaskRegistration::ProcTaskRegistration(std::string name, ProcTaskFn fn)
    : _name(std::move(name))
{
    h2o_assert(fn, "null proc task");
    std::lock_guard<std::mutex> lock(registryMutex());
    auto [it, inserted] = registry().emplace(_name, std::move(fn));
    (void)it;
    h2o_assert(inserted, "duplicate proc task registration '", _name, "'");
}

ProcTaskRegistration::~ProcTaskRegistration()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().erase(_name);
}

// ---------------------------------------------------------- Wire codecs

void
WireWriter::putU32(uint32_t v)
{
    char b[sizeof(v)];
    std::memcpy(b, &v, sizeof(v));
    _buf.append(b, sizeof(v));
}

void
WireWriter::putU64(uint64_t v)
{
    char b[sizeof(v)];
    std::memcpy(b, &v, sizeof(v));
    _buf.append(b, sizeof(v));
}

void
WireWriter::putDouble(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
WireWriter::putBytes(const std::string &bytes)
{
    h2o_assert(bytes.size() < wire::kMaxFrameBytes, "oversized wire blob");
    putU32(static_cast<uint32_t>(bytes.size()));
    _buf.append(bytes);
}

void
WireReader::need(size_t n) const
{
    if (_pos + n > _buf.size())
        throw std::runtime_error("truncated wire payload");
}

uint32_t
WireReader::getU32()
{
    need(sizeof(uint32_t));
    uint32_t v;
    std::memcpy(&v, _buf.data() + _pos, sizeof(v));
    _pos += sizeof(v);
    return v;
}

uint64_t
WireReader::getU64()
{
    need(sizeof(uint64_t));
    uint64_t v;
    std::memcpy(&v, _buf.data() + _pos, sizeof(v));
    _pos += sizeof(v);
    return v;
}

double
WireReader::getDouble()
{
    uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::getBytes()
{
    uint32_t len = getU32();
    need(len);
    std::string out = _buf.substr(_pos, len);
    _pos += len;
    return out;
}

// ------------------------------------------------------------- ProcPool

ProcPool::ProcPool(size_t workers)
{
    h2o_assert(workers > 0, "proc pool with zero workers");
    _workers.resize(workers);
    for (size_t slot = 0; slot < workers; ++slot)
        spawn(slot);
}

ProcPool::~ProcPool()
{
    // Closing the coordinator end EOFs the worker's read loop; it
    // _exit(0)s and we reap it. A wedged worker (stuck in a task) is
    // killed so the destructor never blocks indefinitely.
    for (auto &w : _workers) {
        if (w.fd >= 0)
            ::close(w.fd);
    }
    for (auto &w : _workers) {
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
        }
    }
}

void
ProcPool::spawn(size_t slot)
{
    Worker &w = _workers[slot];
    h2o_assert(w.pid <= 0 && w.fd < 0, "respawning a live worker");

    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        h2o_fatal("socketpair failed for proc worker: ",
                  std::strerror(errno));

    // Snapshot the task registry for the child (see g_forkSnapshot).
    snapshotTaskRegistryForFork();
    // Flush stdio so buffered output is not duplicated into the child.
    std::fflush(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        h2o_fatal("fork failed for proc worker: ", std::strerror(errno));
    if (pid == 0) {
        // Worker: drop every coordinator-side fd we inherited — ours
        // and our siblings' (holding a sibling's coordinator end would
        // keep its socket open after the coordinator closes it, hiding
        // the EOF its worker shuts down on).
        for (const auto &other : _workers) {
            if (other.fd >= 0)
                ::close(other.fd);
        }
        ::close(fds[0]);
        workerMain(fds[1]);
    }
    ::close(fds[1]);
    w.pid = pid;
    w.fd = fds[0];
    w.stats.pid = static_cast<uint64_t>(pid);
    w.stats.alive = true;
}

void
ProcPool::workerMain(int fd)
{
    // Tasks resolve against the fork-time registry snapshot — lock-free,
    // because this process is single-threaded by construction. The loop
    // itself is the same code the TCP daemon sessions run.
    wire::serveRequestLoop(fd, g_forkSnapshot);
    // _exit, not exit: never run the coordinator's atexit handlers or
    // static destructors in the worker copy.
    ::_exit(0);
}

std::optional<std::string>
ProcPool::call(size_t worker, const std::string &task, uint64_t step,
               uint64_t shard, const std::string &request)
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    Worker &w = _workers[worker];
    if (w.fd < 0)
        return std::nullopt; // already known dead; await respawnDead()

    auto reply = wire::callOverFd(w.fd, task, step, shard, request,
                                  w.stats.bytesSent, w.stats.bytesReceived);
    if (!reply) {
        markDead(worker);
        return std::nullopt;
    }
    ++w.stats.tasksServed;
    return reply;
}

void
ProcPool::markDead(size_t slot)
{
    Worker &w = _workers[slot];
    if (w.fd >= 0) {
        ::close(w.fd);
        w.fd = -1;
    }
    if (w.pid > 0) {
        // The transport failed, so the worker is dead or wedged; make
        // it the former and reap it so respawnDead() can re-fork.
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        w.pid = -1;
    }
    w.stats.alive = false;
    w.stats.pid = 0;
}

bool
ProcPool::alive(size_t worker) const
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    return _workers[worker].fd >= 0;
}

void
ProcPool::respawnDead()
{
    for (size_t slot = 0; slot < _workers.size(); ++slot) {
        if (_workers[slot].fd >= 0)
            continue;
        spawn(slot);
        ++_workers[slot].stats.respawns;
    }
}

void
ProcPool::killWorker(size_t worker)
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    pid_t pid = _workers[worker].pid;
    if (pid > 0)
        ::kill(pid, SIGKILL);
}

pid_t
ProcPool::workerPid(size_t worker) const
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    return _workers[worker].pid > 0 ? _workers[worker].pid : 0;
}

ProcPoolStats
ProcPool::stats() const
{
    ProcPoolStats s;
    s.workers.reserve(_workers.size());
    for (const auto &w : _workers)
        s.workers.push_back(w.stats);
    return s;
}

size_t
ProcPool::resolve(size_t requested, size_t work_items)
{
    h2o_assert(requested > 0, "resolve() needs a positive proc count");
    if (work_items == 0)
        work_items = 1;
    return std::min(requested, work_items);
}

} // namespace h2o::exec
