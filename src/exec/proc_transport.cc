#include "exec/proc_transport.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <map>
#include <mutex>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.h"

namespace h2o::exec {

namespace {

/** Process-global task registry (coordinator side). */
std::map<std::string, ProcTaskFn> &
registry()
{
    static std::map<std::string, ProcTaskFn> tasks;
    return tasks;
}

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

/**
 * The registry snapshot a forked worker resolves tasks from. Filled by
 * spawn() (under the registry lock) immediately before fork so the
 * child never touches the registry mutex — another coordinator thread
 * could hold it at fork time, and a copied-held mutex deadlocks the
 * single-threaded child.
 */
std::map<std::string, ProcTaskFn> g_forkSnapshot;

/** Frames above this are a protocol bug, not a payload. */
constexpr uint32_t kMaxFrameBytes = 1u << 30;

/** Loop a full send over partial writes; MSG_NOSIGNAL so a dead peer
 *  surfaces as EPIPE instead of killing the process. */
bool
sendAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

/** Loop a full recv; false on EOF or error (peer death). */
bool
recvAll(int fd, void *data, size_t len)
{
    char *p = static_cast<char *>(data);
    while (len > 0) {
        ssize_t n = ::recv(fd, p, len, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF: peer is gone
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

/** Write one length-prefixed frame. */
bool
writeFrame(int fd, const std::string &payload)
{
    h2o_assert(payload.size() < kMaxFrameBytes, "oversized frame");
    uint32_t len = static_cast<uint32_t>(payload.size());
    if (!sendAll(fd, &len, sizeof(len)))
        return false;
    return sendAll(fd, payload.data(), payload.size());
}

/** Read one length-prefixed frame. */
bool
readFrame(int fd, std::string &payload)
{
    uint32_t len = 0;
    if (!recvAll(fd, &len, sizeof(len)))
        return false;
    if (len >= kMaxFrameBytes)
        return false; // corrupt length: treat the peer as gone
    payload.resize(len);
    if (len > 0 && !recvAll(fd, payload.data(), len))
        return false;
    return true;
}

/** Response status codes. */
constexpr uint32_t kStatusOk = 0;
constexpr uint32_t kStatusError = 1;

} // namespace

// ------------------------------------------------- ProcTaskRegistration

ProcTaskRegistration::ProcTaskRegistration(std::string name, ProcTaskFn fn)
    : _name(std::move(name))
{
    h2o_assert(fn, "null proc task");
    std::lock_guard<std::mutex> lock(registryMutex());
    auto [it, inserted] = registry().emplace(_name, std::move(fn));
    (void)it;
    h2o_assert(inserted, "duplicate proc task registration '", _name, "'");
}

ProcTaskRegistration::~ProcTaskRegistration()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().erase(_name);
}

// ---------------------------------------------------------- Wire codecs

void
WireWriter::putU32(uint32_t v)
{
    char b[sizeof(v)];
    std::memcpy(b, &v, sizeof(v));
    _buf.append(b, sizeof(v));
}

void
WireWriter::putU64(uint64_t v)
{
    char b[sizeof(v)];
    std::memcpy(b, &v, sizeof(v));
    _buf.append(b, sizeof(v));
}

void
WireWriter::putDouble(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
WireWriter::putBytes(const std::string &bytes)
{
    h2o_assert(bytes.size() < kMaxFrameBytes, "oversized wire blob");
    putU32(static_cast<uint32_t>(bytes.size()));
    _buf.append(bytes);
}

void
WireReader::need(size_t n) const
{
    if (_pos + n > _buf.size())
        throw std::runtime_error("truncated wire payload");
}

uint32_t
WireReader::getU32()
{
    need(sizeof(uint32_t));
    uint32_t v;
    std::memcpy(&v, _buf.data() + _pos, sizeof(v));
    _pos += sizeof(v);
    return v;
}

uint64_t
WireReader::getU64()
{
    need(sizeof(uint64_t));
    uint64_t v;
    std::memcpy(&v, _buf.data() + _pos, sizeof(v));
    _pos += sizeof(v);
    return v;
}

double
WireReader::getDouble()
{
    uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
WireReader::getBytes()
{
    uint32_t len = getU32();
    need(len);
    std::string out = _buf.substr(_pos, len);
    _pos += len;
    return out;
}

// -------------------------------------------------------- ProcPoolStats

uint64_t
ProcPoolStats::totalTasksServed() const
{
    uint64_t n = 0;
    for (const auto &w : workers)
        n += w.tasksServed;
    return n;
}

uint64_t
ProcPoolStats::totalRespawns() const
{
    uint64_t n = 0;
    for (const auto &w : workers)
        n += w.respawns;
    return n;
}

uint64_t
ProcPoolStats::totalBytes() const
{
    uint64_t n = 0;
    for (const auto &w : workers)
        n += w.bytesSent + w.bytesReceived;
    return n;
}

// ------------------------------------------------------------- ProcPool

ProcPool::ProcPool(size_t workers)
{
    h2o_assert(workers > 0, "proc pool with zero workers");
    _workers.resize(workers);
    for (size_t slot = 0; slot < workers; ++slot)
        spawn(slot);
}

ProcPool::~ProcPool()
{
    // Closing the coordinator end EOFs the worker's read loop; it
    // _exit(0)s and we reap it. A wedged worker (stuck in a task) is
    // killed so the destructor never blocks indefinitely.
    for (auto &w : _workers) {
        if (w.fd >= 0)
            ::close(w.fd);
    }
    for (auto &w : _workers) {
        if (w.pid > 0) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
        }
    }
}

void
ProcPool::spawn(size_t slot)
{
    Worker &w = _workers[slot];
    h2o_assert(w.pid <= 0 && w.fd < 0, "respawning a live worker");

    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        h2o_fatal("socketpair failed for proc worker: ",
                  std::strerror(errno));

    // Snapshot the task registry for the child (see g_forkSnapshot).
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        g_forkSnapshot = registry();
    }
    // Flush stdio so buffered output is not duplicated into the child.
    std::fflush(nullptr);

    pid_t pid = ::fork();
    if (pid < 0)
        h2o_fatal("fork failed for proc worker: ", std::strerror(errno));
    if (pid == 0) {
        // Worker: drop every coordinator-side fd we inherited — ours
        // and our siblings' (holding a sibling's coordinator end would
        // keep its socket open after the coordinator closes it, hiding
        // the EOF its worker shuts down on).
        for (const auto &other : _workers) {
            if (other.fd >= 0)
                ::close(other.fd);
        }
        ::close(fds[0]);
        workerMain(fds[1]);
    }
    ::close(fds[1]);
    w.pid = pid;
    w.fd = fds[0];
    w.stats.pid = static_cast<uint64_t>(pid);
    w.stats.alive = true;
}

void
ProcPool::workerMain(int fd)
{
    // One request at a time, forever, until the coordinator hangs up.
    // Tasks resolve against the fork-time registry snapshot — lock-free,
    // because this process is single-threaded by construction.
    std::string frame;
    while (readFrame(fd, frame)) {
        WireWriter reply;
        try {
            WireReader req(frame);
            std::string task = req.getBytes();
            uint64_t step = req.getU64();
            uint64_t shard = req.getU64();
            std::string payload = req.getBytes();
            auto it = g_forkSnapshot.find(task);
            if (it == g_forkSnapshot.end())
                throw std::runtime_error("unknown proc task '" + task +
                                         "' (registered after fork?)");
            std::string result = it->second(step, shard, payload);
            reply.putU32(kStatusOk);
            reply.putBytes(result);
        } catch (const std::exception &e) {
            reply = WireWriter();
            reply.putU32(kStatusError);
            reply.putBytes(e.what());
        }
        if (!writeFrame(fd, reply.bytes()))
            break; // coordinator is gone
    }
    // _exit, not exit: never run the coordinator's atexit handlers or
    // static destructors in the worker copy.
    ::_exit(0);
}

std::optional<std::string>
ProcPool::call(size_t worker, const std::string &task, uint64_t step,
               uint64_t shard, const std::string &request)
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    Worker &w = _workers[worker];
    if (w.fd < 0)
        return std::nullopt; // already known dead; await respawnDead()

    WireWriter msg;
    msg.putBytes(task);
    msg.putU64(step);
    msg.putU64(shard);
    msg.putBytes(request);

    if (!writeFrame(w.fd, msg.bytes())) {
        markDead(worker);
        return std::nullopt;
    }
    w.stats.bytesSent += sizeof(uint32_t) + msg.bytes().size();

    std::string reply;
    if (!readFrame(w.fd, reply)) {
        markDead(worker);
        return std::nullopt;
    }
    w.stats.bytesReceived += sizeof(uint32_t) + reply.size();

    WireReader r(reply);
    uint32_t status = r.getU32();
    std::string payload = r.getBytes();
    if (status != kStatusOk)
        throw std::runtime_error("proc task '" + task + "' failed: " +
                                 payload);
    ++w.stats.tasksServed;
    return payload;
}

void
ProcPool::markDead(size_t slot)
{
    Worker &w = _workers[slot];
    if (w.fd >= 0) {
        ::close(w.fd);
        w.fd = -1;
    }
    if (w.pid > 0) {
        // The transport failed, so the worker is dead or wedged; make
        // it the former and reap it so respawnDead() can re-fork.
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        w.pid = -1;
    }
    w.stats.alive = false;
    w.stats.pid = 0;
}

bool
ProcPool::alive(size_t worker) const
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    return _workers[worker].fd >= 0;
}

void
ProcPool::respawnDead()
{
    for (size_t slot = 0; slot < _workers.size(); ++slot) {
        if (_workers[slot].fd >= 0)
            continue;
        spawn(slot);
        ++_workers[slot].stats.respawns;
    }
}

void
ProcPool::killWorker(size_t worker)
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    pid_t pid = _workers[worker].pid;
    if (pid > 0)
        ::kill(pid, SIGKILL);
}

pid_t
ProcPool::workerPid(size_t worker) const
{
    h2o_assert(worker < _workers.size(), "proc worker out of range");
    return _workers[worker].pid > 0 ? _workers[worker].pid : 0;
}

ProcPoolStats
ProcPool::stats() const
{
    ProcPoolStats s;
    s.workers.reserve(_workers.size());
    for (const auto &w : _workers)
        s.workers.push_back(w.stats);
    return s;
}

size_t
ProcPool::resolve(size_t requested, size_t work_items)
{
    h2o_assert(requested > 0, "resolve() needs a positive proc count");
    if (work_items == 0)
        work_items = 1;
    return std::min(requested, work_items);
}

} // namespace h2o::exec
