file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_reward.dir/bench_fig5_reward.cc.o"
  "CMakeFiles/bench_fig5_reward.dir/bench_fig5_reward.cc.o.d"
  "bench_fig5_reward"
  "bench_fig5_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
