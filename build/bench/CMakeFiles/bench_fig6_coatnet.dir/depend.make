# Empty dependencies file for bench_fig6_coatnet.
# This may be replaced when dependencies are built.
