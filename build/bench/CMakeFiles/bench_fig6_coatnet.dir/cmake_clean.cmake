file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_coatnet.dir/bench_fig6_coatnet.cc.o"
  "CMakeFiles/bench_fig6_coatnet.dir/bench_fig6_coatnet.cc.o.d"
  "bench_fig6_coatnet"
  "bench_fig6_coatnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_coatnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
