file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mbconv.dir/bench_fig4_mbconv.cc.o"
  "CMakeFiles/bench_fig4_mbconv.dir/bench_fig4_mbconv.cc.o.d"
  "bench_fig4_mbconv"
  "bench_fig4_mbconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mbconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
