# Empty dependencies file for bench_fig4_mbconv.
# This may be replaced when dependencies are built.
