# Empty dependencies file for bench_fig10_production.
# This may be replaced when dependencies are built.
