file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_perfmodel.dir/bench_table1_perfmodel.cc.o"
  "CMakeFiles/bench_table1_perfmodel.dir/bench_table1_perfmodel.cc.o.d"
  "bench_table1_perfmodel"
  "bench_table1_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
