# Empty dependencies file for bench_table1_perfmodel.
# This may be replaced when dependencies are built.
