# Empty dependencies file for bench_cost_accounting.
# This may be replaced when dependencies are built.
