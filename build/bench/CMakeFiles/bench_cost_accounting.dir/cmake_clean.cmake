file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_accounting.dir/bench_cost_accounting.cc.o"
  "CMakeFiles/bench_cost_accounting.dir/bench_cost_accounting.cc.o.d"
  "bench_cost_accounting"
  "bench_cost_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
