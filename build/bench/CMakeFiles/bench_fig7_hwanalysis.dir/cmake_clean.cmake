file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hwanalysis.dir/bench_fig7_hwanalysis.cc.o"
  "CMakeFiles/bench_fig7_hwanalysis.dir/bench_fig7_hwanalysis.cc.o.d"
  "bench_fig7_hwanalysis"
  "bench_fig7_hwanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hwanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
