# Empty dependencies file for bench_table4_efficientnet.
# This may be replaced when dependencies are built.
