file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_efficientnet.dir/bench_table4_efficientnet.cc.o"
  "CMakeFiles/bench_table4_efficientnet.dir/bench_table4_efficientnet.cc.o.d"
  "bench_table4_efficientnet"
  "bench_table4_efficientnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_efficientnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
