file(REMOVE_RECURSE
  "CMakeFiles/cnn_serving_search.dir/cnn_serving_search.cpp.o"
  "CMakeFiles/cnn_serving_search.dir/cnn_serving_search.cpp.o.d"
  "cnn_serving_search"
  "cnn_serving_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_serving_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
