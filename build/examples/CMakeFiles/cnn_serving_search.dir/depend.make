# Empty dependencies file for cnn_serving_search.
# This may be replaced when dependencies are built.
