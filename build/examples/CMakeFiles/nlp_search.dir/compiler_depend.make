# Empty compiler generated dependencies file for nlp_search.
# This may be replaced when dependencies are built.
