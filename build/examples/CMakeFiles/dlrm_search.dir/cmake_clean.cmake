file(REMOVE_RECURSE
  "CMakeFiles/dlrm_search.dir/dlrm_search.cpp.o"
  "CMakeFiles/dlrm_search.dir/dlrm_search.cpp.o.d"
  "dlrm_search"
  "dlrm_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlrm_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
