# Empty dependencies file for dlrm_search.
# This may be replaced when dependencies are built.
