# Empty compiler generated dependencies file for perfmodel_workflow.
# This may be replaced when dependencies are built.
