file(REMOVE_RECURSE
  "CMakeFiles/perfmodel_workflow.dir/perfmodel_workflow.cpp.o"
  "CMakeFiles/perfmodel_workflow.dir/perfmodel_workflow.cpp.o.d"
  "perfmodel_workflow"
  "perfmodel_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmodel_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
