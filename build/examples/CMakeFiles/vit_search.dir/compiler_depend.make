# Empty compiler generated dependencies file for vit_search.
# This may be replaced when dependencies are built.
