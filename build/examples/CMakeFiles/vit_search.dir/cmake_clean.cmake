file(REMOVE_RECURSE
  "CMakeFiles/vit_search.dir/vit_search.cpp.o"
  "CMakeFiles/vit_search.dir/vit_search.cpp.o.d"
  "vit_search"
  "vit_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vit_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
