file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_search.dir/test_baseline_search.cc.o"
  "CMakeFiles/test_baseline_search.dir/test_baseline_search.cc.o.d"
  "test_baseline_search"
  "test_baseline_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
