# Empty compiler generated dependencies file for test_baseline_search.
# This may be replaced when dependencies are built.
