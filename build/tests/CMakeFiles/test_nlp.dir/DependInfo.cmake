
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nlp.cc" "tests/CMakeFiles/test_nlp.dir/test_nlp.cc.o" "gcc" "tests/CMakeFiles/test_nlp.dir/test_nlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2o_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/h2o_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/h2o_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/h2o_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/h2o_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/h2o_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/supernet/CMakeFiles/h2o_supernet.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/h2o_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/h2o_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/reward/CMakeFiles/h2o_reward.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/h2o_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/h2o_search.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/h2o_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
