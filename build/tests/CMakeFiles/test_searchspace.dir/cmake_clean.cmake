file(REMOVE_RECURSE
  "CMakeFiles/test_searchspace.dir/test_searchspace.cc.o"
  "CMakeFiles/test_searchspace.dir/test_searchspace.cc.o.d"
  "test_searchspace"
  "test_searchspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_searchspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
