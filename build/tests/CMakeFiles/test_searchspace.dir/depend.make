# Empty dependencies file for test_searchspace.
# This may be replaced when dependencies are built.
