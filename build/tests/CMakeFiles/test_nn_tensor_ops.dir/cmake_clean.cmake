file(REMOVE_RECURSE
  "CMakeFiles/test_nn_tensor_ops.dir/test_nn_tensor_ops.cc.o"
  "CMakeFiles/test_nn_tensor_ops.dir/test_nn_tensor_ops.cc.o.d"
  "test_nn_tensor_ops"
  "test_nn_tensor_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_tensor_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
