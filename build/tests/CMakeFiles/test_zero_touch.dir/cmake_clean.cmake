file(REMOVE_RECURSE
  "CMakeFiles/test_zero_touch.dir/test_zero_touch.cc.o"
  "CMakeFiles/test_zero_touch.dir/test_zero_touch.cc.o.d"
  "test_zero_touch"
  "test_zero_touch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_touch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
