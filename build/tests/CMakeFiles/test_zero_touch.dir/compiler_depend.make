# Empty compiler generated dependencies file for test_zero_touch.
# This may be replaced when dependencies are built.
