file(REMOVE_RECURSE
  "libh2o_common.a"
)
