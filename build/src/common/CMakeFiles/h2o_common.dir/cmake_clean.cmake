file(REMOVE_RECURSE
  "CMakeFiles/h2o_common.dir/flags.cc.o"
  "CMakeFiles/h2o_common.dir/flags.cc.o.d"
  "CMakeFiles/h2o_common.dir/logging.cc.o"
  "CMakeFiles/h2o_common.dir/logging.cc.o.d"
  "CMakeFiles/h2o_common.dir/rng.cc.o"
  "CMakeFiles/h2o_common.dir/rng.cc.o.d"
  "CMakeFiles/h2o_common.dir/serialize.cc.o"
  "CMakeFiles/h2o_common.dir/serialize.cc.o.d"
  "CMakeFiles/h2o_common.dir/stats.cc.o"
  "CMakeFiles/h2o_common.dir/stats.cc.o.d"
  "CMakeFiles/h2o_common.dir/table.cc.o"
  "CMakeFiles/h2o_common.dir/table.cc.o.d"
  "libh2o_common.a"
  "libh2o_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
