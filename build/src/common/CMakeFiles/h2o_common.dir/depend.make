# Empty dependencies file for h2o_common.
# This may be replaced when dependencies are built.
