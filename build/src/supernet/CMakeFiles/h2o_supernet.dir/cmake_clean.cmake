file(REMOVE_RECURSE
  "CMakeFiles/h2o_supernet.dir/dlrm_model.cc.o"
  "CMakeFiles/h2o_supernet.dir/dlrm_model.cc.o.d"
  "CMakeFiles/h2o_supernet.dir/dlrm_supernet.cc.o"
  "CMakeFiles/h2o_supernet.dir/dlrm_supernet.cc.o.d"
  "libh2o_supernet.a"
  "libh2o_supernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_supernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
