# Empty compiler generated dependencies file for h2o_supernet.
# This may be replaced when dependencies are built.
