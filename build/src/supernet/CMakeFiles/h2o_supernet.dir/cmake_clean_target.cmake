file(REMOVE_RECURSE
  "libh2o_supernet.a"
)
