file(REMOVE_RECURSE
  "libh2o_nn.a"
)
