
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/h2o_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/h2o_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/h2o_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/h2o_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/h2o_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/low_rank_dense.cc" "src/nn/CMakeFiles/h2o_nn.dir/low_rank_dense.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/low_rank_dense.cc.o.d"
  "/root/repo/src/nn/masked_dense.cc" "src/nn/CMakeFiles/h2o_nn.dir/masked_dense.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/masked_dense.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/h2o_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/normalizer.cc" "src/nn/CMakeFiles/h2o_nn.dir/normalizer.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/normalizer.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/h2o_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/h2o_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/h2o_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/h2o_nn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2o_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
