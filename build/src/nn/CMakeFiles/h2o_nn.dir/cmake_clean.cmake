file(REMOVE_RECURSE
  "CMakeFiles/h2o_nn.dir/activation.cc.o"
  "CMakeFiles/h2o_nn.dir/activation.cc.o.d"
  "CMakeFiles/h2o_nn.dir/dense.cc.o"
  "CMakeFiles/h2o_nn.dir/dense.cc.o.d"
  "CMakeFiles/h2o_nn.dir/embedding.cc.o"
  "CMakeFiles/h2o_nn.dir/embedding.cc.o.d"
  "CMakeFiles/h2o_nn.dir/layer.cc.o"
  "CMakeFiles/h2o_nn.dir/layer.cc.o.d"
  "CMakeFiles/h2o_nn.dir/loss.cc.o"
  "CMakeFiles/h2o_nn.dir/loss.cc.o.d"
  "CMakeFiles/h2o_nn.dir/low_rank_dense.cc.o"
  "CMakeFiles/h2o_nn.dir/low_rank_dense.cc.o.d"
  "CMakeFiles/h2o_nn.dir/masked_dense.cc.o"
  "CMakeFiles/h2o_nn.dir/masked_dense.cc.o.d"
  "CMakeFiles/h2o_nn.dir/mlp.cc.o"
  "CMakeFiles/h2o_nn.dir/mlp.cc.o.d"
  "CMakeFiles/h2o_nn.dir/normalizer.cc.o"
  "CMakeFiles/h2o_nn.dir/normalizer.cc.o.d"
  "CMakeFiles/h2o_nn.dir/ops.cc.o"
  "CMakeFiles/h2o_nn.dir/ops.cc.o.d"
  "CMakeFiles/h2o_nn.dir/optimizer.cc.o"
  "CMakeFiles/h2o_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/h2o_nn.dir/tensor.cc.o"
  "CMakeFiles/h2o_nn.dir/tensor.cc.o.d"
  "libh2o_nn.a"
  "libh2o_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
