# Empty compiler generated dependencies file for h2o_nn.
# This may be replaced when dependencies are built.
