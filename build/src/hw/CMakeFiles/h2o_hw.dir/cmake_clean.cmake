file(REMOVE_RECURSE
  "CMakeFiles/h2o_hw.dir/chip.cc.o"
  "CMakeFiles/h2o_hw.dir/chip.cc.o.d"
  "CMakeFiles/h2o_hw.dir/power.cc.o"
  "CMakeFiles/h2o_hw.dir/power.cc.o.d"
  "CMakeFiles/h2o_hw.dir/roofline.cc.o"
  "CMakeFiles/h2o_hw.dir/roofline.cc.o.d"
  "libh2o_hw.a"
  "libh2o_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
