# Empty dependencies file for h2o_hw.
# This may be replaced when dependencies are built.
