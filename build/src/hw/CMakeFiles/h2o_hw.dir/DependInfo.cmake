
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/chip.cc" "src/hw/CMakeFiles/h2o_hw.dir/chip.cc.o" "gcc" "src/hw/CMakeFiles/h2o_hw.dir/chip.cc.o.d"
  "/root/repo/src/hw/power.cc" "src/hw/CMakeFiles/h2o_hw.dir/power.cc.o" "gcc" "src/hw/CMakeFiles/h2o_hw.dir/power.cc.o.d"
  "/root/repo/src/hw/roofline.cc" "src/hw/CMakeFiles/h2o_hw.dir/roofline.cc.o" "gcc" "src/hw/CMakeFiles/h2o_hw.dir/roofline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2o_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
