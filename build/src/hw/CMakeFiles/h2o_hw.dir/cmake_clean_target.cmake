file(REMOVE_RECURSE
  "libh2o_hw.a"
)
