# Empty dependencies file for h2o_search.
# This may be replaced when dependencies are built.
