file(REMOVE_RECURSE
  "CMakeFiles/h2o_search.dir/baseline_search.cc.o"
  "CMakeFiles/h2o_search.dir/baseline_search.cc.o.d"
  "CMakeFiles/h2o_search.dir/h2o_dlrm_search.cc.o"
  "CMakeFiles/h2o_search.dir/h2o_dlrm_search.cc.o.d"
  "CMakeFiles/h2o_search.dir/pareto.cc.o"
  "CMakeFiles/h2o_search.dir/pareto.cc.o.d"
  "CMakeFiles/h2o_search.dir/surrogate_search.cc.o"
  "CMakeFiles/h2o_search.dir/surrogate_search.cc.o.d"
  "CMakeFiles/h2o_search.dir/telemetry.cc.o"
  "CMakeFiles/h2o_search.dir/telemetry.cc.o.d"
  "CMakeFiles/h2o_search.dir/tunas_search.cc.o"
  "CMakeFiles/h2o_search.dir/tunas_search.cc.o.d"
  "CMakeFiles/h2o_search.dir/zero_touch.cc.o"
  "CMakeFiles/h2o_search.dir/zero_touch.cc.o.d"
  "libh2o_search.a"
  "libh2o_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
