file(REMOVE_RECURSE
  "libh2o_search.a"
)
