file(REMOVE_RECURSE
  "CMakeFiles/h2o_sim.dir/cost_model.cc.o"
  "CMakeFiles/h2o_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/h2o_sim.dir/dump.cc.o"
  "CMakeFiles/h2o_sim.dir/dump.cc.o.d"
  "CMakeFiles/h2o_sim.dir/fusion.cc.o"
  "CMakeFiles/h2o_sim.dir/fusion.cc.o.d"
  "CMakeFiles/h2o_sim.dir/graph.cc.o"
  "CMakeFiles/h2o_sim.dir/graph.cc.o.d"
  "CMakeFiles/h2o_sim.dir/memory.cc.o"
  "CMakeFiles/h2o_sim.dir/memory.cc.o.d"
  "CMakeFiles/h2o_sim.dir/ops.cc.o"
  "CMakeFiles/h2o_sim.dir/ops.cc.o.d"
  "CMakeFiles/h2o_sim.dir/serving.cc.o"
  "CMakeFiles/h2o_sim.dir/serving.cc.o.d"
  "CMakeFiles/h2o_sim.dir/simulator.cc.o"
  "CMakeFiles/h2o_sim.dir/simulator.cc.o.d"
  "libh2o_sim.a"
  "libh2o_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
