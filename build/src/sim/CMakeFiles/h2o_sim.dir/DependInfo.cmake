
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/h2o_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/dump.cc" "src/sim/CMakeFiles/h2o_sim.dir/dump.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/dump.cc.o.d"
  "/root/repo/src/sim/fusion.cc" "src/sim/CMakeFiles/h2o_sim.dir/fusion.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/fusion.cc.o.d"
  "/root/repo/src/sim/graph.cc" "src/sim/CMakeFiles/h2o_sim.dir/graph.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/graph.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/h2o_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/ops.cc" "src/sim/CMakeFiles/h2o_sim.dir/ops.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/ops.cc.o.d"
  "/root/repo/src/sim/serving.cc" "src/sim/CMakeFiles/h2o_sim.dir/serving.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/serving.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/h2o_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/h2o_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2o_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/h2o_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/h2o_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
