# Empty compiler generated dependencies file for h2o_sim.
# This may be replaced when dependencies are built.
