file(REMOVE_RECURSE
  "libh2o_sim.a"
)
