file(REMOVE_RECURSE
  "CMakeFiles/h2o_baselines.dir/coatnet.cc.o"
  "CMakeFiles/h2o_baselines.dir/coatnet.cc.o.d"
  "CMakeFiles/h2o_baselines.dir/efficientnet.cc.o"
  "CMakeFiles/h2o_baselines.dir/efficientnet.cc.o.d"
  "CMakeFiles/h2o_baselines.dir/production_models.cc.o"
  "CMakeFiles/h2o_baselines.dir/production_models.cc.o.d"
  "CMakeFiles/h2o_baselines.dir/quality_model.cc.o"
  "CMakeFiles/h2o_baselines.dir/quality_model.cc.o.d"
  "libh2o_baselines.a"
  "libh2o_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
