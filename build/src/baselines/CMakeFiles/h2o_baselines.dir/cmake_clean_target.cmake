file(REMOVE_RECURSE
  "libh2o_baselines.a"
)
