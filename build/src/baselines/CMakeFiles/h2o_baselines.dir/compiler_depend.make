# Empty compiler generated dependencies file for h2o_baselines.
# This may be replaced when dependencies are built.
