file(REMOVE_RECURSE
  "libh2o_perfmodel.a"
)
