
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/features.cc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/features.cc.o" "gcc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/features.cc.o.d"
  "/root/repo/src/perfmodel/hardware_oracle.cc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/hardware_oracle.cc.o" "gcc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/hardware_oracle.cc.o.d"
  "/root/repo/src/perfmodel/perf_model.cc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/perf_model.cc.o" "gcc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/perf_model.cc.o.d"
  "/root/repo/src/perfmodel/two_phase.cc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/two_phase.cc.o" "gcc" "src/perfmodel/CMakeFiles/h2o_perfmodel.dir/two_phase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2o_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/h2o_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/h2o_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/h2o_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/searchspace/CMakeFiles/h2o_searchspace.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/h2o_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
