file(REMOVE_RECURSE
  "CMakeFiles/h2o_perfmodel.dir/features.cc.o"
  "CMakeFiles/h2o_perfmodel.dir/features.cc.o.d"
  "CMakeFiles/h2o_perfmodel.dir/hardware_oracle.cc.o"
  "CMakeFiles/h2o_perfmodel.dir/hardware_oracle.cc.o.d"
  "CMakeFiles/h2o_perfmodel.dir/perf_model.cc.o"
  "CMakeFiles/h2o_perfmodel.dir/perf_model.cc.o.d"
  "CMakeFiles/h2o_perfmodel.dir/two_phase.cc.o"
  "CMakeFiles/h2o_perfmodel.dir/two_phase.cc.o.d"
  "libh2o_perfmodel.a"
  "libh2o_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
