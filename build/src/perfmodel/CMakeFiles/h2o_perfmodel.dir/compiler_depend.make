# Empty compiler generated dependencies file for h2o_perfmodel.
# This may be replaced when dependencies are built.
