file(REMOVE_RECURSE
  "CMakeFiles/h2o_controller.dir/policy.cc.o"
  "CMakeFiles/h2o_controller.dir/policy.cc.o.d"
  "CMakeFiles/h2o_controller.dir/reinforce.cc.o"
  "CMakeFiles/h2o_controller.dir/reinforce.cc.o.d"
  "libh2o_controller.a"
  "libh2o_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
