file(REMOVE_RECURSE
  "libh2o_controller.a"
)
