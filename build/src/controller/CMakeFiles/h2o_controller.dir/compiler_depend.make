# Empty compiler generated dependencies file for h2o_controller.
# This may be replaced when dependencies are built.
