file(REMOVE_RECURSE
  "CMakeFiles/h2o_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/h2o_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/h2o_pipeline.dir/traffic_generator.cc.o"
  "CMakeFiles/h2o_pipeline.dir/traffic_generator.cc.o.d"
  "libh2o_pipeline.a"
  "libh2o_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
