# Empty dependencies file for h2o_pipeline.
# This may be replaced when dependencies are built.
