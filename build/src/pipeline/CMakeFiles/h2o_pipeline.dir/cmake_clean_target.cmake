file(REMOVE_RECURSE
  "libh2o_pipeline.a"
)
