# Empty compiler generated dependencies file for h2o_reward.
# This may be replaced when dependencies are built.
