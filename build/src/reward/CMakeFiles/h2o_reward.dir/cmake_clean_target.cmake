file(REMOVE_RECURSE
  "libh2o_reward.a"
)
