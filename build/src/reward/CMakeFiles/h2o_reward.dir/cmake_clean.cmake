file(REMOVE_RECURSE
  "CMakeFiles/h2o_reward.dir/reward.cc.o"
  "CMakeFiles/h2o_reward.dir/reward.cc.o.d"
  "libh2o_reward.a"
  "libh2o_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
