file(REMOVE_RECURSE
  "CMakeFiles/h2o_searchspace.dir/conv_space.cc.o"
  "CMakeFiles/h2o_searchspace.dir/conv_space.cc.o.d"
  "CMakeFiles/h2o_searchspace.dir/decision_space.cc.o"
  "CMakeFiles/h2o_searchspace.dir/decision_space.cc.o.d"
  "CMakeFiles/h2o_searchspace.dir/dlrm_space.cc.o"
  "CMakeFiles/h2o_searchspace.dir/dlrm_space.cc.o.d"
  "CMakeFiles/h2o_searchspace.dir/nlp_space.cc.o"
  "CMakeFiles/h2o_searchspace.dir/nlp_space.cc.o.d"
  "CMakeFiles/h2o_searchspace.dir/vit_space.cc.o"
  "CMakeFiles/h2o_searchspace.dir/vit_space.cc.o.d"
  "libh2o_searchspace.a"
  "libh2o_searchspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_searchspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
