# Empty compiler generated dependencies file for h2o_searchspace.
# This may be replaced when dependencies are built.
