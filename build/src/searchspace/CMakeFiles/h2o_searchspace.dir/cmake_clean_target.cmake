file(REMOVE_RECURSE
  "libh2o_searchspace.a"
)
