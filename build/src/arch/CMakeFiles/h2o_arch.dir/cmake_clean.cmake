file(REMOVE_RECURSE
  "CMakeFiles/h2o_arch.dir/conv_arch.cc.o"
  "CMakeFiles/h2o_arch.dir/conv_arch.cc.o.d"
  "CMakeFiles/h2o_arch.dir/dlrm_arch.cc.o"
  "CMakeFiles/h2o_arch.dir/dlrm_arch.cc.o.d"
  "CMakeFiles/h2o_arch.dir/lowering.cc.o"
  "CMakeFiles/h2o_arch.dir/lowering.cc.o.d"
  "CMakeFiles/h2o_arch.dir/nlp_arch.cc.o"
  "CMakeFiles/h2o_arch.dir/nlp_arch.cc.o.d"
  "CMakeFiles/h2o_arch.dir/vit_arch.cc.o"
  "CMakeFiles/h2o_arch.dir/vit_arch.cc.o.d"
  "libh2o_arch.a"
  "libh2o_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2o_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
