file(REMOVE_RECURSE
  "libh2o_arch.a"
)
