# Empty compiler generated dependencies file for h2o_arch.
# This may be replaced when dependencies are built.
