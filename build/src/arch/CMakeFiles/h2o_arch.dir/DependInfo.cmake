
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/conv_arch.cc" "src/arch/CMakeFiles/h2o_arch.dir/conv_arch.cc.o" "gcc" "src/arch/CMakeFiles/h2o_arch.dir/conv_arch.cc.o.d"
  "/root/repo/src/arch/dlrm_arch.cc" "src/arch/CMakeFiles/h2o_arch.dir/dlrm_arch.cc.o" "gcc" "src/arch/CMakeFiles/h2o_arch.dir/dlrm_arch.cc.o.d"
  "/root/repo/src/arch/lowering.cc" "src/arch/CMakeFiles/h2o_arch.dir/lowering.cc.o" "gcc" "src/arch/CMakeFiles/h2o_arch.dir/lowering.cc.o.d"
  "/root/repo/src/arch/nlp_arch.cc" "src/arch/CMakeFiles/h2o_arch.dir/nlp_arch.cc.o" "gcc" "src/arch/CMakeFiles/h2o_arch.dir/nlp_arch.cc.o.d"
  "/root/repo/src/arch/vit_arch.cc" "src/arch/CMakeFiles/h2o_arch.dir/vit_arch.cc.o" "gcc" "src/arch/CMakeFiles/h2o_arch.dir/vit_arch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/h2o_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/h2o_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/h2o_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/h2o_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
