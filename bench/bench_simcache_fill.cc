/**
 * @file
 * Cold-path SimCache fill: the wall-clock and determinism harness for
 * SimCache::getOrComputeBatch's parallel miss fan-out.
 *
 * One candidate list (--candidates distinct DLRM samples, each repeated
 * --dup times and interleaved across the batch) is filled into a fresh
 * cache at several fill-pool sizes. For every pool size the bench
 * checks, against the serial (1-thread) baseline:
 *
 *  - every SimResult field of every batch position is bit-identical;
 *  - hit/miss/entry counters are identical (duplicates hit nothing on
 *    a cold fill: they dedupe inside the batch instead);
 *  - save() produces byte-identical streams, i.e. insertion order and
 *    the global recency ticks do not depend on worker timing;
 *  - the miss computation saw each distinct key exactly once (the
 *    dedupe guarantee), regardless of chunking or pool size.
 *
 * Emits BENCH_simcache_fill.json and exits non-zero on any mismatch,
 * so the ctest smoke doubles as an end-to-end determinism check. On a
 * single-core host the speedup column is expected to hover around 1x
 * (or below: pool hand-off without parallel hardware); the checks are
 * the point there, the speedup is meaningful on multi-core hosts.
 */

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "arch/dlrm_arch.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "searchspace/dlrm_space.h"
#include "sim/sim_cache.h"
#include "sim/simulator.h"

using namespace h2o;

namespace {

using Clock = std::chrono::steady_clock;

/** Bitwise equality over every SimResult field, perOp included. */
bool
identicalResult(const sim::SimResult &a, const sim::SimResult &b)
{
    auto scalars = [](const sim::SimResult &r) {
        return std::vector<double>{
            r.stepTimeSec,     r.totalFlops,     r.achievedFlops,
            r.operationalIntensity, r.hbmBytes,  r.onChipBytes,
            r.networkBytes,    r.hbmBandwidthUsed, r.onChipBandwidthUsed,
            r.tensorBusySec,   r.vpuBusySec,     r.hbmSec,
            r.onChipSec,       r.networkSec,     r.criticalPathSec,
            r.tensorUtilization, r.avgPowerW,    r.energyPerStepJ};
    };
    if (scalars(a) != scalars(b) || a.boundBy != b.boundBy ||
        a.liveOps != b.liveOps || a.fusedOps != b.fusedOps ||
        a.paramsResident != b.paramsResident ||
        a.perOp.size() != b.perOp.size())
        return false;
    for (size_t i = 0; i < a.perOp.size(); ++i) {
        const auto &x = a.perOp[i];
        const auto &y = b.perOp[i];
        if (x.seconds != y.seconds || x.tensorBusySec != y.tensorBusySec ||
            x.vpuBusySec != y.vpuBusySec || x.hbmBytes != y.hbmBytes ||
            x.onChipBytes != y.onChipBytes ||
            x.networkBytes != y.networkBytes || x.boundBy != y.boundBy)
            return false;
    }
    return true;
}

/** One cold fill at a given pool size. */
struct FillRun
{
    size_t threads = 1;
    double seconds = 0.0;
    uint64_t computeCalls = 0;     ///< computeMisses invocations (chunks)
    uint64_t computedPositions = 0; ///< total miss positions computed
    sim::SimCacheStats stats;
    std::vector<sim::SimResult> results;
    std::string saved; ///< save() image, for byte comparison
};

} // namespace

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("candidates", 512, "distinct candidate samples");
    flags.defineInt("dup", 2, "repetitions of each candidate in the batch");
    flags.defineInt("seed", 23, "RNG seed");
    flags.defineInt("chunk",
                    static_cast<int>(sim::SimCache::kDefaultFillChunk),
                    "distinct misses per computeMisses call (smaller "
                    "values force multi-chunk fills on small batches)");
    flags.defineString("json", "BENCH_simcache_fill.json",
                       "output path for the JSON report");
    flags.parse(argc, argv);

    size_t n_distinct = static_cast<size_t>(flags.getInt("candidates"));
    size_t dup = static_cast<size_t>(flags.getInt("dup"));
    uint64_t seed = static_cast<uint64_t>(flags.getInt("seed"));
    size_t fill_chunk = static_cast<size_t>(flags.getInt("chunk"));

    searchspace::DlrmSearchSpace space(arch::baselineDlrm());
    hw::Platform platform = hw::trainingPlatform();
    sim::SimConfig config{platform.chip, true, true, {}};

    // The shared batch: distinct samples, duplicates interleaved so a
    // duplicate rarely lands in the same fill chunk as its
    // representative (position i -> sample i % n_distinct).
    common::Rng rng(seed);
    std::vector<searchspace::Sample> samples;
    samples.reserve(n_distinct);
    for (size_t i = 0; i < n_distinct; ++i)
        samples.push_back(space.decisions().uniformSample(rng));
    std::vector<sim::SimCacheKey> keys;
    keys.reserve(n_distinct * dup);
    for (size_t i = 0; i < n_distinct * dup; ++i)
        keys.push_back(
            sim::makeSimCacheKey(samples[i % n_distinct], 0, config));

    // Random samples can collide; the dedupe check must count unique
    // KEYS, not requested candidates.
    struct KeyHash
    {
        size_t operator()(const sim::SimCacheKey &k) const
        {
            return static_cast<size_t>(sim::simCacheKeyHash(k));
        }
    };
    size_t n_unique =
        std::unordered_set<sim::SimCacheKey, KeyHash>(keys.begin(),
                                                      keys.end())
            .size();

    auto fill = [&](size_t threads) {
        FillRun run;
        run.threads = threads;
        sim::SimCache cache(1 << 16);
        std::unique_ptr<exec::ThreadPool> pool;
        if (threads > 1)
            pool = std::make_unique<exec::ThreadPool>(threads);
        std::atomic<uint64_t> calls{0};
        std::atomic<uint64_t> positions{0};
        auto compute = [&](const std::vector<size_t> &misses) {
            calls.fetch_add(1, std::memory_order_relaxed);
            positions.fetch_add(misses.size(), std::memory_order_relaxed);
            sim::Simulator simulator(config);
            std::vector<sim::Graph> graphs;
            graphs.reserve(misses.size());
            for (size_t k : misses)
                graphs.push_back(arch::buildDlrmGraph(
                    space.decode(samples[k % n_distinct]), platform,
                    arch::ExecMode::Training));
            std::vector<const sim::Graph *> ptrs;
            ptrs.reserve(graphs.size());
            for (const auto &g : graphs)
                ptrs.push_back(&g);
            return simulator.runBatch(ptrs);
        };
        auto start = Clock::now();
        run.results =
            cache.getOrComputeBatch(keys, compute, pool.get(), fill_chunk);
        run.seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        run.computeCalls = calls.load();
        run.computedPositions = positions.load();
        run.stats = cache.stats();
        std::ostringstream os;
        cache.save(os);
        run.saved = os.str();
        return run;
    };

    const std::vector<size_t> sweep{1, 2, 8};
    std::vector<FillRun> runs;
    for (size_t t : sweep)
        runs.push_back(fill(t));
    const FillRun &base = runs.front();

    bool ok = true;
    auto check = [&](bool cond, const std::string &what) {
        if (!cond) {
            std::cerr << "MISMATCH: " << what << "\n";
            ok = false;
        }
    };
    check(base.computedPositions == n_unique,
          "serial fill computed " +
              std::to_string(base.computedPositions) + " positions for " +
              std::to_string(n_unique) + " distinct keys");
    for (const FillRun &run : runs) {
        std::string tag = "threads=" + std::to_string(run.threads);
        check(run.computedPositions == n_unique,
              tag + " computed positions != distinct keys");
        check(run.stats.hits == base.stats.hits &&
                  run.stats.misses == base.stats.misses &&
                  run.stats.entries == base.stats.entries &&
                  run.stats.evictions == base.stats.evictions,
              tag + " counters differ from serial");
        check(run.saved == base.saved,
              tag + " save() image differs from serial");
        check(run.results.size() == base.results.size(),
              tag + " result count differs");
        for (size_t i = 0; i < base.results.size() && ok; ++i)
            check(identicalResult(run.results[i], base.results[i]),
                  tag + " result " + std::to_string(i) + " differs");
    }

    std::cout << "simcache fill: " << n_distinct << " distinct x " << dup
              << " dup = " << keys.size() << " lookups (" << n_unique
              << " unique keys)\n";
    for (const FillRun &run : runs)
        std::cout << "  threads=" << run.threads << "  " << run.seconds
                  << " s  (" << run.computeCalls << " chunks, "
                  << run.computedPositions << " simulated, speedup "
                  << (run.seconds > 0.0 ? base.seconds / run.seconds : 0.0)
                  << "x)\n";
    std::cout << "determinism checks "
              << (ok ? "passed" : "FAILED") << "\n";

    std::string json_path = flags.getString("json");
    std::ofstream js(json_path);
    if (!js) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
    }
    js << "{\n"
       << "  \"distinct\": " << n_distinct << ",\n"
       << "  \"dup\": " << dup << ",\n"
       << "  \"unique_keys\": " << n_unique << ",\n"
       << "  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const FillRun &run = runs[i];
        js << "    {\"threads\": " << run.threads
           << ", \"seconds\": " << run.seconds
           << ", \"chunks\": " << run.computeCalls
           << ", \"simulated\": " << run.computedPositions
           << ", \"speedup\": "
           << (run.seconds > 0.0 ? base.seconds / run.seconds : 0.0)
           << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"bit_identical\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
    return ok ? 0 : 1;
}
