/**
 * @file
 * Regenerates Table 4 of the paper: geometric-mean speedups of the
 * H2O-NAS-designed EfficientNet-H family over the EfficientNet-X
 * baseline family, for training on TPUv4 and serving on TPUv4i and
 * GPUv100, family-wide and for the B5~B7 members (the only ones the
 * search changed).
 *
 * Paper reference: 5% (14%) training on TPUv4, 6% (16%) serving on
 * TPUv4i, 6% (17%) serving on V100 — family-wide (B5~B7 in parens).
 */

#include <iostream>

#include "arch/lowering.h"
#include "baselines/efficientnet.h"
#include "baselines/quality_model.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "hw/chip.h"

using namespace h2o;

namespace {

double
stepTime(const arch::ConvArch &a, const hw::Platform &platform,
         arch::ExecMode mode)
{
    return bench::simulate(arch::buildConvGraph(a, platform, mode),
                           platform.chip)
        .stepTimeSec;
}

} // namespace

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.parse(argc, argv);

    hw::Platform train{hw::tpuV4(), 128};
    hw::Platform serve_tpu{hw::tpuV4i(), 1};
    hw::Platform serve_gpu{hw::gpuV100(), 1};

    common::AsciiTable per_model("Per-member speedups: EfficientNet-H "
                                 "over EfficientNet-X");
    per_model.setHeader({"member", "train TPUv4", "serve TPUv4i",
                         "serve V100", "quality delta"});

    std::vector<double> tr_all, st_all, sg_all;
    std::vector<double> tr_big, st_big, sg_big;
    for (int i = 0; i <= 7; ++i) {
        auto x = baselines::efficientnetX(i);
        auto h = baselines::efficientnetH(i);
        double tr = stepTime(x, train, arch::ExecMode::Training) /
                    stepTime(h, train, arch::ExecMode::Training);
        double st = stepTime(x, serve_tpu, arch::ExecMode::Serving) /
                    stepTime(h, serve_tpu, arch::ExecMode::Serving);
        double sg = stepTime(x, serve_gpu, arch::ExecMode::Serving) /
                    stepTime(h, serve_gpu, arch::ExecMode::Serving);
        double dq = baselines::convQuality(h) - baselines::convQuality(x);
        per_model.addRow({"B" + std::to_string(i),
                          common::AsciiTable::times(tr, 3),
                          common::AsciiTable::times(st, 3),
                          common::AsciiTable::times(sg, 3),
                          common::AsciiTable::num(dq, 2)});
        tr_all.push_back(tr);
        st_all.push_back(st);
        sg_all.push_back(sg);
        if (i >= 5) {
            tr_big.push_back(tr);
            st_big.push_back(st);
            sg_big.push_back(sg);
        }
    }
    per_model.print(std::cout);

    common::AsciiTable t("Table 4: geomean speedup of EfficientNet-H "
                         "over EfficientNet-X");
    t.setHeader({"scope", "train TPUv4", "serve TPUv4i", "serve V100",
                 "paper"});
    auto pct = [](double x) {
        return common::AsciiTable::pct(x - 1.0, 1);
    };
    t.addRow({"family (B0~B7)", pct(common::geomean(tr_all)),
              pct(common::geomean(st_all)), pct(common::geomean(sg_all)),
              "5% / 6% / 6%"});
    t.addRow({"B5~B7", pct(common::geomean(tr_big)),
              pct(common::geomean(st_big)), pct(common::geomean(sg_big)),
              "14% / 16% / 17%"});
    t.print(std::cout);
    return 0;
}
