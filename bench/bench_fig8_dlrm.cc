/**
 * @file
 * Regenerates Figure 8 of the paper: training step time of the
 * H2O-NAS-designed DLRM-H, normalized to the original (baseline) DLRM,
 * where step time = MAX(embedding computing time, DNN computing time).
 *
 * The bench (1) measures the baseline's embedding/MLP imbalance, then
 * (2) runs the surrogate H2O-NAS search over the DLRM space with the
 * baseline's step time and model size as targets, and (3) reports the
 * found DLRM-H's step-time breakdown and quality delta.
 *
 * Expected shape (paper): baseline is MLP-dominated; the search shrinks
 * the total embedding size and grows MLP balance, improving end-to-end
 * step time by ~10% with a +0.02% quality gain and neutral serving
 * memory.
 */

#include <iostream>
#include <span>

#include "arch/dlrm_arch.h"
#include "baselines/quality_model.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "reward/reward.h"
#include "search/surrogate_search.h"
#include "search/telemetry.h"
#include "searchspace/dlrm_space.h"

using namespace h2o;

namespace {

/** Per-branch (embedding vs DNN) time breakdown for a DLRM graph. */
struct Breakdown
{
    double embeddingSec = 0.0;
    double dnnSec = 0.0;
    double stepSec = 0.0;
};

Breakdown
breakdown(const arch::DlrmArch &a, const hw::Platform &platform)
{
    sim::Graph g =
        arch::buildDlrmGraph(a, platform, arch::ExecMode::Training);
    sim::Simulator simulator({platform.chip, true, true, {}});
    auto res = simulator.run(g);
    Breakdown b;
    b.stepSec = res.stepTimeSec;
    for (size_t i = 0; i < g.size(); ++i) {
        const auto &op = g.op(static_cast<sim::OpId>(i));
        double sec = res.perOp[i].seconds;
        if (op.kind == sim::OpKind::EmbeddingLookup ||
            op.kind == sim::OpKind::AllToAll)
            b.embeddingSec += sec;
        else if (op.kind == sim::OpKind::Matmul)
            b.dnnSec += sec;
    }
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("steps", 400, "search steps");
    flags.defineInt("shards", 8, "parallel candidates per step");
    flags.defineInt("seed", 5, "RNG seed");
    flags.defineString("sim_cache_file", "",
                       "persist the SimCache across runs: warm-start "
                       "from the file if it exists, merge-save after");
    common::defineThreadsFlag(flags);
    flags.parse(argc, argv);

    hw::Platform platform = hw::trainingPlatform();
    searchspace::DlrmSearchSpace space(arch::baselineDlrm());
    const arch::DlrmArch &base = space.baseline();
    Breakdown base_bd = breakdown(base, platform);
    double base_quality = baselines::dlrmQualitySurrogate(base);
    double base_size = base.modelBytes();

    // --- H2O-NAS search: step time primary, model size secondary.
    auto quality_fn = [&](const searchspace::Sample &s) {
        return 100.0 * baselines::dlrmQualitySurrogate(space.decode(s));
    };
    // Memoize step-time simulation: as the RL policy converges it
    // re-samples the same candidates, and those repeats hit the cache.
    // SimCache is thread-safe, so the sharded evaluators share it; the
    // cold path (early steps, before repeats accumulate) fills misses
    // on --threads workers with bit-identical results.
    bench::CachedDlrmTimer timer(
        platform, hw::servingPlatform(), 1 << 16,
        static_cast<size_t>(flags.getInt("threads")));
    std::string cache_file = flags.getString("sim_cache_file");
    if (sim::warmSimCacheFromFile(timer.cache(), cache_file))
        std::cout << "SimCache warmed from " << cache_file << " ("
                  << timer.cacheStats().entries << " entries)\n";
    // Batched performance stage: one SimCache lookupBatch + one
    // Simulator::runBatch over the step's surviving shard candidates.
    auto perf_fn = [&](std::span<const searchspace::Sample> ss) {
        auto step_times = timer.trainStepTimes(space, ss);
        std::vector<std::vector<double>> out;
        out.reserve(ss.size());
        for (size_t i = 0; i < ss.size(); ++i)
            out.push_back(
                {step_times[i], space.decode(ss[i]).modelBytes()});
        return out;
    };
    reward::ReluReward rwd({{"step_time", base_bd.stepSec, -2.0},
                            {"model_size", base_size, -2.0}});
    search::SurrogateSearchConfig cfg;
    cfg.numSteps = static_cast<size_t>(flags.getInt("steps"));
    cfg.samplesPerStep = static_cast<size_t>(flags.getInt("shards"));
    cfg.rl.learningRate = 0.08;
    cfg.rl.entropyWeight = 5e-3;
    cfg.threads = static_cast<size_t>(flags.getInt("threads"));
    search::SurrogateSearch search(space.decisions(), quality_fn, perf_fn,
                                   rwd, cfg);
    common::Rng rng(static_cast<uint64_t>(flags.getInt("seed")));
    auto outcome = search.run(rng);

    arch::DlrmArch found = space.decode(outcome.finalSample);
    found.name = "dlrm-h";
    Breakdown h_bd = breakdown(found, platform);
    double h_quality = baselines::dlrmQualitySurrogate(found);

    common::AsciiTable t("Figure 8: DLRM-H training step time, "
                         "normalized to baseline DLRM (TPUv4 x128)");
    t.setHeader({"model", "embedding time", "DNN time", "step time",
                 "quality delta", "serving memory"});
    t.addRow({"DLRM (baseline)", "1.00", "1.00", "1.00", "--", "1.00"});
    t.addRow({"DLRM-H",
              common::AsciiTable::num(
                  h_bd.embeddingSec / base_bd.embeddingSec, 2),
              common::AsciiTable::num(h_bd.dnnSec / base_bd.dnnSec, 2),
              common::AsciiTable::num(h_bd.stepSec / base_bd.stepSec, 2),
              common::AsciiTable::pct(h_quality - base_quality, 3),
              common::AsciiTable::num(found.modelBytes() / base_size, 2)});
    t.print(std::cout);

    common::AsciiTable detail("Embedding/DNN balance detail");
    detail.setHeader({"model", "emb ms", "dnn ms", "step ms",
                      "emb params", "dense params"});
    auto detail_row = [&](const char *name, const arch::DlrmArch &a,
                          const Breakdown &b) {
        detail.addRow({name, common::AsciiTable::num(b.embeddingSec * 1e3, 3),
                       common::AsciiTable::num(b.dnnSec * 1e3, 3),
                       common::AsciiTable::num(b.stepSec * 1e3, 3),
                       common::AsciiTable::num(a.embeddingParamCount() / 1e6,
                                               1) + "M",
                       common::AsciiTable::num(a.denseParamCount() / 1e6,
                                               2) + "M"});
    };
    detail_row("DLRM", base, base_bd);
    detail_row("DLRM-H", found, h_bd);
    detail.print(std::cout);

    std::cout << "speedup: "
              << common::AsciiTable::times(base_bd.stepSec / h_bd.stepSec,
                                           2)
              << " (paper: ~1.1x / 10%), quality delta "
              << common::AsciiTable::pct(h_quality - base_quality, 3)
              << " (paper: +0.02%)\n";
    std::cout << "SimCache counters:\n";
    search::writeSimCacheStatsCsv(timer.cacheStats(), std::cout);
    if (!cache_file.empty()) {
        sim::saveSimCacheFileMerged(timer.cache(), cache_file);
        std::cout << "SimCache persisted to " << cache_file << " ("
                  << timer.cacheStats().entries << " entries)\n";
    }
    return 0;
}
