/**
 * @file
 * Google-benchmark microbenchmarks for the RL controller: sampling,
 * REINFORCE gradient accumulation, and updates over spaces as large as
 * the production DLRM space (hundreds of categorical decisions). The
 * controller runs once per search step on the critical path, so its
 * cost must stay negligible next to the supernet forward pass.
 */

#include <benchmark/benchmark.h>

#include "arch/dlrm_arch.h"
#include "common/rng.h"
#include "controller/reinforce.h"
#include "searchspace/dlrm_space.h"

using namespace h2o;

namespace {

searchspace::DlrmSearchSpace &
productionSpace()
{
    static searchspace::DlrmSearchSpace space(arch::baselineDlrm());
    return space;
}

} // namespace

static void
BM_PolicySample(benchmark::State &state)
{
    controller::Policy policy(productionSpace().decisions());
    common::Rng rng(1);
    for (auto _ : state) {
        auto s = policy.sample(rng);
        benchmark::DoNotOptimize(s.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicySample);

static void
BM_ControllerUpdate(benchmark::State &state)
{
    size_t shards = static_cast<size_t>(state.range(0));
    controller::ReinforceController ctl(productionSpace().decisions(), {});
    common::Rng rng(2);
    std::vector<searchspace::Sample> samples;
    std::vector<double> rewards;
    for (size_t s = 0; s < shards; ++s) {
        samples.push_back(ctl.policy().sample(rng));
        rewards.push_back(rng.uniform());
    }
    for (auto _ : state) {
        auto stats = ctl.update(samples, rewards);
        benchmark::DoNotOptimize(stats.meanReward);
    }
}
BENCHMARK(BM_ControllerUpdate)->Arg(8)->Arg(64);

static void
BM_SpaceDecode(benchmark::State &state)
{
    auto &space = productionSpace();
    common::Rng rng(3);
    auto sample = space.decisions().uniformSample(rng);
    for (auto _ : state) {
        auto a = space.decode(sample);
        benchmark::DoNotOptimize(a.tables.data());
    }
}
BENCHMARK(BM_SpaceDecode);

static void
BM_PolicyEntropy(benchmark::State &state)
{
    controller::Policy policy(productionSpace().decisions());
    for (auto _ : state) {
        double h = policy.meanEntropy();
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_PolicyEntropy);

BENCHMARK_MAIN();
