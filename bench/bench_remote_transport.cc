/**
 * @file
 * Cross-host shard transport bench: the SAME searches run threads-only,
 * on forked worker processes, on loopback TCP worker daemons, and on a
 * mixed fork+TCP pool — and every cell is byte-compared against the
 * thread-path reference. The bench doubles as the end-to-end
 * determinism gate for exec::RemotePool/MixedTransport, exactly as
 * bench_exec_multiproc does for ProcPool.
 *
 * Part 1 sweeps the surrogate search over a transport matrix
 * (procs x workers, quality and perf running inside the workers).
 * Part 2 runs the unified single-step supernet search with remote and
 * mixed pools (batched quality: the supernet stays coordinator-side).
 * Part 3 runs the TuNAS alternating search over a remote worker.
 * Part 4 SIGKILLs a worker daemon SESSION mid-run and requires the
 * search to complete byte-identically anyway (reconnect-as-respawn +
 * cached-request retry), with the reconnect visible in the telemetry.
 *
 * Emits BENCH_remote.json and exits non-zero on ANY divergence or if
 * the killed run fails to reconnect. Exits 77 (the ctest skip code)
 * when the sandbox forbids loopback TCP. The "remote" daemons here are
 * fork-local loopback daemons — same wire protocol, same handshake,
 * same reconnect path as a daemon on another host — so the wall-clock
 * columns document the TCP framing overhead, not network latency.
 *
 *   $ ./bench_remote_transport --steps=10 --shards=8
 */

#include <arpa/inet.h>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "arch/dlrm_arch.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "pipeline/pipeline.h"
#include "pipeline/traffic_generator.h"
#include "reward/reward.h"
#include "search/h2o_dlrm_search.h"
#include "search/stepwise.h"
#include "search/surrogate_search.h"
#include "search/telemetry.h"
#include "search/tunas_search.h"
#include "searchspace/dlrm_space.h"
#include "supernet/dlrm_supernet.h"

using namespace h2o;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool
identicalOutcomes(const search::SearchOutcome &a,
                  const search::SearchOutcome &b)
{
    if (a.finalSample != b.finalSample ||
        !sameBits(a.finalMeanReward, b.finalMeanReward) ||
        !sameBits(a.finalEntropy, b.finalEntropy) ||
        a.history.size() != b.history.size())
        return false;
    for (size_t i = 0; i < a.history.size(); ++i) {
        const auto &ra = a.history[i];
        const auto &rb = b.history[i];
        if (ra.sample != rb.sample || ra.step != rb.step ||
            !sameBits(ra.quality, rb.quality) ||
            !sameBits(ra.reward, rb.reward) ||
            ra.performance.size() != rb.performance.size())
            return false;
        for (size_t j = 0; j < ra.performance.size(); ++j)
            if (!sameBits(ra.performance[j], rb.performance[j]))
                return false;
    }
    return true;
}

/** Loopback TCP probe; the bench skips (exit 77) when the sandbox
 *  forbids sockets rather than reporting a transport failure. */
bool
loopbackAvailable()
{
    int l = ::socket(AF_INET, SOCK_STREAM, 0);
    if (l < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    bool ok = ::bind(l, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)) == 0 &&
              ::listen(l, 1) == 0;
    if (ok) {
        socklen_t len = sizeof(addr);
        ok = ::getsockname(l, reinterpret_cast<sockaddr *>(&addr), &len) ==
             0;
    }
    if (ok) {
        int c = ::socket(AF_INET, SOCK_STREAM, 0);
        ok = c >= 0 && ::connect(c, reinterpret_cast<sockaddr *>(&addr),
                                 sizeof(addr)) == 0;
        if (c >= 0)
            ::close(c);
    }
    ::close(l);
    return ok;
}

arch::DlrmArch
benchDlrm()
{
    arch::DlrmArch a;
    a.numDenseFeatures = 8;
    a.tables = {{2048, 16, 1.0}, {512, 8, 1.0}};
    a.bottomMlp = {{32, 0}};
    a.topMlp = {{64, 0}};
    a.globalBatch = 1024;
    return a;
}

/** Pure per-candidate signals: they ship into forked workers and
 *  fork-local daemon sessions alike, so they depend only on the
 *  candidate and pre-fork immutable state. */
struct SurrogateTask
{
    searchspace::DlrmSearchSpace space{benchDlrm()};
    hw::Platform platform{hw::tpuV4(), 4};

    double quality(const searchspace::Sample &s) const
    {
        return -space.decode(s).flopsPerExample() / 1e6;
    }
    std::vector<double> perf(const searchspace::Sample &s) const
    {
        return {bench::dlrmTrainStepTime(space.decode(s), platform)};
    }
};

search::SurrogateSearchConfig
surrogateConfig(size_t steps, size_t shards, size_t procs,
                const std::string &workers)
{
    search::SurrogateSearchConfig cfg;
    cfg.numSteps = steps;
    cfg.samplesPerStep = shards;
    cfg.rl.learningRate = 0.08;
    cfg.threads = 1;
    cfg.procs = procs;
    cfg.workers = workers;
    cfg.retryBackoffMs = 0.0;
    return cfg;
}

search::SurrogateSearch
makeSurrogate(const SurrogateTask &task, size_t steps, size_t shards,
              size_t procs, const std::string &workers)
{
    static reward::ReluReward rwd({{"step_time", 1.0, -1.0}});
    return search::SurrogateSearch(
        task.space.decisions(),
        [&task](const searchspace::Sample &s) { return task.quality(s); },
        search::PerfFn([&task](const searchspace::Sample &s) {
            return task.perf(s);
        }),
        rwd, surrogateConfig(steps, shards, procs, workers));
}

search::SearchOutcome
runSurrogate(const SurrogateTask &task, size_t steps, size_t shards,
             size_t procs, const std::string &workers, uint64_t seed,
             double &seconds)
{
    auto search = makeSurrogate(task, steps, shards, procs, workers);
    common::Rng rng(seed);
    auto start = Clock::now();
    auto outcome = search.run(rng);
    seconds = secondsSince(start);
    return outcome;
}

/** Supernet fixture for parts 2-3 (fresh per run: the search trains
 *  the shared weights, so runs must not share a supernet). */
struct SupernetFixture
{
    searchspace::DlrmSearchSpace space{benchDlrm()};
    common::Rng netRng;
    supernet::DlrmSupernet net;
    std::unique_ptr<pipeline::InMemoryPipeline> pipe;
    hw::Platform platform{hw::tpuV4(), 4};

    explicit SupernetFixture(uint64_t seed)
        : netRng(seed),
          net(space, supernet::SupernetConfig{512, 64}, netRng)
    {
        std::vector<uint64_t> vocabs;
        std::vector<double> ids;
        for (const auto &tab : space.baseline().tables) {
            vocabs.push_back(tab.vocab);
            ids.push_back(tab.avgIds);
        }
        auto gen = std::make_unique<pipeline::TrafficGenerator>(
            pipeline::trafficConfigFor(space.baseline().numDenseFeatures,
                                       vocabs, ids),
            seed + 1);
        pipe = std::make_unique<pipeline::InMemoryPipeline>(std::move(gen),
                                                            16);
    }

    std::vector<double> perf(const searchspace::Sample &s) const
    {
        return {bench::dlrmTrainStepTime(space.decode(s), platform)};
    }
};

search::SearchOutcome
runSupernet(size_t steps, size_t shards, size_t procs,
            const std::string &workers, uint64_t seed, double &seconds)
{
    SupernetFixture f(seed);
    reward::ReluReward rwd({{"step_time", 1.0, -1.0}});
    search::H2oSearchConfig cfg;
    cfg.numShards = shards;
    cfg.numSteps = steps;
    cfg.warmupSteps = steps / 5;
    cfg.threads = 1;
    cfg.procs = procs;
    cfg.workers = workers;
    cfg.retryBackoffMs = 0.0;
    search::H2oDlrmSearch search(
        f.space, f.net, *f.pipe,
        search::DlrmPerfFn(
            [&f](const searchspace::Sample &s) { return f.perf(s); }),
        rwd, cfg);
    common::Rng rng(seed + 2);
    auto start = Clock::now();
    auto outcome = search.run(rng);
    seconds = secondsSince(start);
    return outcome;
}

search::SearchOutcome
runTunas(size_t steps, size_t procs, const std::string &workers,
         uint64_t seed, double &seconds)
{
    SupernetFixture f(seed);
    reward::ReluReward rwd({{"step_time", 1.0, -1.0}});
    search::TunasSearchConfig cfg;
    cfg.numIterations = steps;
    cfg.warmupSteps = steps / 5;
    cfg.procs = procs;
    cfg.workers = workers;
    cfg.retryBackoffMs = 0.0;
    search::TunasSearch search(
        f.space, f.net, *f.pipe,
        search::PerfFn(
            [&f](const searchspace::Sample &s) { return f.perf(s); }),
        rwd, cfg);
    common::Rng rng(seed + 2);
    auto start = Clock::now();
    auto outcome = search.run(rng);
    seconds = secondsSince(start);
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    common::Flags flags;
    flags.defineInt("steps", 10, "search steps per configuration");
    flags.defineInt("shards", 8, "virtual accelerator shards");
    flags.defineInt("seed", 17, "RNG seed");
    flags.defineString("json", "BENCH_remote.json",
                       "output path for the JSON report");
    flags.parse(argc, argv);
    size_t steps = static_cast<size_t>(flags.getInt("steps"));
    size_t shards = static_cast<size_t>(flags.getInt("shards"));
    uint64_t seed = static_cast<uint64_t>(flags.getInt("seed"));

    if (!loopbackAvailable()) {
        std::cout << "SKIP: loopback TCP unavailable in this sandbox; "
                     "the remote transport cannot be exercised\n";
        return 77; // ctest SKIP_RETURN_CODE
    }

    SurrogateTask task;

    // --- Part 1: surrogate search over the transport matrix. Every
    // cell must be byte-identical to the threads-only reference.
    struct Cell
    {
        size_t procs;
        std::string workers;
        double sec;
        bool identical;
    };
    const std::vector<std::pair<size_t, std::string>> matrix = {
        {2, ""},             // forks only
        {0, "local"},        // one TCP daemon
        {0, "local,local"},  // two TCP daemons
        {1, "local"},        // mixed: fork slot + TCP slot
        {2, "local,local"},  // mixed, wider
    };
    common::AsciiTable t1("cross-host transport: surrogate search, "
                          "procs x workers (same seeds)");
    t1.setHeader({"procs", "workers", "wall time (s)",
                  "outcome vs threads"});
    double ref_sec = 0.0;
    auto ref = runSurrogate(task, steps, shards, 0, "", seed, ref_sec);
    t1.addRow({"0", "(none)", common::AsciiTable::num(ref_sec, 2),
               "(reference)"});
    std::vector<Cell> cells;
    bool surrogate_identical = true;
    for (const auto &[procs, workers] : matrix) {
        double sec = 0.0;
        auto outcome =
            runSurrogate(task, steps, shards, procs, workers, seed, sec);
        bool same = identicalOutcomes(ref, outcome);
        surrogate_identical = surrogate_identical && same;
        cells.push_back({procs, workers, sec, same});
        t1.addRow({std::to_string(procs),
                   workers.empty() ? "(none)" : workers,
                   common::AsciiTable::num(sec, 2),
                   same ? "bit-identical" : "DIVERGED"});
    }
    t1.print(std::cout);

    // --- Part 2: unified single-step supernet search, remote + mixed.
    bool supernet_identical = true;
    {
        double sec = 0.0;
        auto sref = runSupernet(steps, shards, 0, "", seed, sec);
        for (const auto &[procs, workers] :
             std::vector<std::pair<size_t, std::string>>{{0, "local"},
                                                         {1, "local"}}) {
            auto outcome =
                runSupernet(steps, shards, procs, workers, seed, sec);
            supernet_identical = supernet_identical &&
                                 identicalOutcomes(sref, outcome);
        }
    }
    std::cout << "supernet (unified single-step) search over remote/mixed "
                 "workers: "
              << (supernet_identical ? "bit-identical" : "DIVERGED (bug)")
              << "\n";

    // --- Part 3: TuNAS alternating search over one remote worker.
    bool tunas_identical = true;
    {
        double sec = 0.0;
        auto tref = runTunas(steps, 0, "", seed, sec);
        tunas_identical = identicalOutcomes(
            tref, runTunas(steps, 0, "local", seed, sec));
    }
    std::cout << "tunas (alternating) search over a remote worker: "
              << (tunas_identical ? "bit-identical" : "DIVERGED (bug)")
              << "\n";

    // --- Part 4: SIGKILL a daemon SESSION mid-run; the search must
    // reconnect (= respawn), resend the cached request bytes, and
    // finish byte-identical to the unkilled reference.
    bool kill_identical = false;
    uint64_t kill_respawns = 0;
    uint64_t transport_tasks = 0;
    uint64_t transport_bytes = 0;
    {
        auto search =
            makeSurrogate(task, steps, shards, 0, "local,local");
        common::Rng rng(seed);
        auto stepper = search.makeStepper(rng);
        while (!stepper->done()) {
            stepper->step();
            if (stepper->stepIndex() == steps / 2) {
                auto stats = stepper->transportStats();
                // Find a live TCP slot via the endpoint telemetry and
                // kill its daemon session.
                for (const auto &w : stats.workers) {
                    if (w.alive &&
                        w.endpoint.rfind("local/", 0) == 0) {
                        ::kill(static_cast<pid_t>(w.pid), SIGKILL);
                        break;
                    }
                }
            }
        }
        auto killed = stepper->finish();
        kill_identical = identicalOutcomes(ref, killed);

        auto stats = stepper->transportStats();
        kill_respawns = stats.totalRespawns();
        transport_tasks = stats.totalTasksServed();
        transport_bytes = stats.totalBytes();
        std::cout << "kill -9 daemon session mid-run (workers="
                     "local,local): outcome "
                  << (kill_identical ? "bit-identical to unkilled run"
                                     : "DIVERGED (bug)")
                  << ", " << kill_respawns << " reconnect(s), "
                  << transport_tasks << " tasks served, "
                  << transport_bytes << " bytes over the transport\n";
        search::writeTransportStatsCsv(stats, std::cout);
    }

    bool ok = surrogate_identical && supernet_identical &&
              tunas_identical && kill_identical && kill_respawns >= 1;

    std::string json_path = flags.getString("json");
    std::ofstream js(json_path);
    if (!js) {
        std::cerr << "cannot open " << json_path << "\n";
        return 1;
    }
    js << "{\n"
       << "  \"steps\": " << steps << ",\n"
       << "  \"shards\": " << shards << ",\n"
       << "  \"threads_ref_sec\": " << ref_sec << ",\n"
       << "  \"matrix\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        js << "    {\"procs\": " << cells[i].procs << ", \"workers\": \""
           << cells[i].workers << "\", \"wall_sec\": " << cells[i].sec
           << ", \"identical\": "
           << (cells[i].identical ? "true" : "false") << "}"
           << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    js << "  ],\n"
       << "  \"surrogate_identical\": "
       << (surrogate_identical ? "true" : "false") << ",\n"
       << "  \"supernet_identical\": "
       << (supernet_identical ? "true" : "false") << ",\n"
       << "  \"tunas_identical\": "
       << (tunas_identical ? "true" : "false") << ",\n"
       << "  \"kill_recovered_identical\": "
       << (kill_identical ? "true" : "false") << ",\n"
       << "  \"kill_reconnects\": " << kill_respawns << ",\n"
       << "  \"transport_tasks_served\": " << transport_tasks << ",\n"
       << "  \"transport_bytes\": " << transport_bytes << "\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
    return ok ? 0 : 1;
}
